// Crypto substrate tests.  AES / SHA-256 / HMAC / HKDF / GCM are checked
// against published FIPS/NIST/RFC vectors; DH, Schnorr and the DRBG are
// checked for algebraic correctness and tamper rejection.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/group.hpp"
#include "crypto/hmac.hpp"
#include "crypto/isa.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {
namespace {

std::string DigestHex(const Sha256Digest& d) {
  return ToHex(BytesView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes msg = BytesOf("abc");
  EXPECT_EQ(DigestHex(Sha256Hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const Bytes msg =
      BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(DigestHex(Sha256Hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = BytesOf("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    const std::size_t take = std::min<std::size_t>(7, msg.size() - i);
    h.Update(BytesView(msg.data() + i, take));
  }
  EXPECT_EQ(h.Finish(), Sha256Hash(msg));
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long-message vector.
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = BytesOf("Hi There");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = BytesOf("Jefe");
  const Bytes data = BytesOf("what do ya want for nothing?");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3LongKeyData) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, KeyLongerThanBlockIsHashed) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = BytesOf("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = FromHex("000102030405060708090a0b0c");
  const Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(ToHex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(AesTest, Fips197Aes128) {
  const Aes aes(FromHex("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(ToHex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256) {
  const Aes aes(
      FromHex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(ToHex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(24, 0)), Error);  // AES-192 unsupported by design
  EXPECT_THROW(Aes(Bytes(15, 0)), Error);
}

TEST(AesTest, CtrRoundTripOddLength) {
  const Aes aes(Bytes(16, 0x42));
  AesBlock ctr{};
  const Bytes pt = BytesOf("seventeen bytes!!");
  Bytes ct(pt.size());
  AesCtrXor(aes, ctr, pt, ct.data());
  EXPECT_NE(ct, pt);
  Bytes back(ct.size());
  AesCtrXor(aes, ctr, ct, back.data());
  EXPECT_EQ(back, pt);
}

TEST(GcmTest, NistCase1EmptyPlaintext) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes iv(12, 0);
  const GcmSealed sealed = gcm.Seal(iv, {}, {});
  EXPECT_TRUE(sealed.ciphertext.empty());
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, NistCase2OneBlock) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes iv(12, 0);
  const Bytes pt(16, 0);
  const GcmSealed sealed = gcm.Seal(iv, {}, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(GcmTest, NistCase3FourBlocks) {
  const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const GcmSealed sealed = gcm.Seal(iv, {}, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(GcmTest, NistCase4WithAad) {
  const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const GcmSealed sealed = gcm.Seal(iv, aad, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(GcmTest, OpenRoundTrip) {
  const AesGcm gcm(Bytes(32, 0x11));  // AES-256 key
  const Bytes iv(12, 0x22);
  const Bytes aad = BytesOf("participant-7");
  const Bytes pt = BytesOf("private training record");
  const GcmSealed sealed = gcm.Seal(iv, aad, pt);
  const auto opened = gcm.Open(iv, aad, sealed.ciphertext, sealed.tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, TamperedCiphertextRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  const Bytes pt = BytesOf("payload payload payload");
  GcmSealed sealed = gcm.Seal(iv, {}, pt);
  sealed.ciphertext[3] ^= 0x01;
  EXPECT_FALSE(gcm.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, TamperedTagRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  GcmSealed sealed = gcm.Seal(iv, {}, BytesOf("x"));
  sealed.tag[0] ^= 0x80;
  EXPECT_FALSE(gcm.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, WrongAadRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  const GcmSealed sealed = gcm.Seal(iv, BytesOf("source-a"), BytesOf("data"));
  EXPECT_FALSE(
      gcm.Open(iv, BytesOf("source-b"), sealed.ciphertext, sealed.tag)
          .has_value());
}

TEST(GcmTest, WrongKeyRejected) {
  const AesGcm good(Bytes(16, 0x11));
  const AesGcm bad(Bytes(16, 0x12));
  const Bytes iv(12, 0);
  const GcmSealed sealed = good.Seal(iv, {}, BytesOf("data"));
  EXPECT_FALSE(bad.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, RejectsBadIvLength) {
  const AesGcm gcm(Bytes(16, 0));
  EXPECT_THROW((void)gcm.Seal(Bytes(11, 0), {}, {}), Error);
}

TEST(DrbgTest, DeterministicForSameSeed) {
  HmacDrbg a(BytesOf("seed material"));
  HmacDrbg b(BytesOf("seed material"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, PersonalizationChangesOutput) {
  HmacDrbg a(BytesOf("seed"), BytesOf("alice"));
  HmacDrbg b(BytesOf("seed"), BytesOf("bob"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, SequentialOutputsDiffer) {
  HmacDrbg drbg(BytesOf("seed"));
  EXPECT_NE(drbg.Generate(32), drbg.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a(BytesOf("seed"));
  HmacDrbg b(BytesOf("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(BytesOf("fresh entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(GroupTest, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod(7, 9, 11), 63 % 11);
  EXPECT_EQ(MulMod(0, 9, 11), 0U);
  const U128 p = GroupPrime();
  EXPECT_EQ(MulMod(p - 1, p - 1, p), 1U);  // (-1)^2 = 1
}

TEST(GroupTest, PowModFermat) {
  const U128 p = GroupPrime();
  // Fermat's little theorem: a^(p-1) == 1 mod p for a coprime with p.
  EXPECT_EQ(PowMod(GroupGenerator(), p - 1, p), 1U);
  EXPECT_EQ(PowMod(123456789, p - 1, p), 1U);
}

TEST(GroupTest, U128BytesRoundTrip) {
  const U128 v = (U128{0x0123456789abcdefULL} << 64) | 0xfedcba9876543210ULL;
  EXPECT_EQ(U128FromBytes(U128ToBytes(v)), v);
}

TEST(GroupTest, U128FromBytesRejectsWrongLength) {
  EXPECT_THROW((void)U128FromBytes(Bytes(15, 0)), Error);
}

TEST(GroupTest, DhAgreement) {
  HmacDrbg drbg(BytesOf("dh test entropy"));
  const DhKeyPair alice = DhGenerate(drbg);
  const DhKeyPair bob = DhGenerate(drbg);
  const U128 shared_a = DhSharedSecret(alice.secret, bob.public_value);
  const U128 shared_b = DhSharedSecret(bob.secret, alice.public_value);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_NE(shared_a, U128{0});
}

TEST(GroupTest, DhRejectsDegeneratePublicValues) {
  EXPECT_THROW((void)DhSharedSecret(5, 0), Error);
  EXPECT_THROW((void)DhSharedSecret(5, 1), Error);
  EXPECT_THROW((void)DhSharedSecret(5, GroupPrime()), Error);
}

TEST(SchnorrTest, SignVerifyRoundTrip) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("enclave quote body");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  EXPECT_TRUE(SchnorrVerify(key.public_value, msg, sig));
}

TEST(SchnorrTest, RejectsWrongMessage) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const SchnorrSignature sig = SchnorrSign(key, BytesOf("message A"), drbg);
  EXPECT_FALSE(SchnorrVerify(key.public_value, BytesOf("message B"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const SchnorrKeyPair other = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  EXPECT_FALSE(SchnorrVerify(other.public_value, msg, sig));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  sig.response ^= 1;
  EXPECT_FALSE(SchnorrVerify(key.public_value, msg, sig));
}

TEST(SchnorrTest, SerializationRoundTrip) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  const SchnorrSignature back = DeserializeSignature(SerializeSignature(sig));
  EXPECT_EQ(back.commitment, sig.commitment);
  EXPECT_EQ(back.response, sig.response);
  EXPECT_TRUE(SchnorrVerify(key.public_value, msg, back));
}

// ---- runtime ISA dispatch & hardware-kernel bit-compatibility --------

// Every tier name the env override accepts; ScopedIsaOverride clamps to
// hardware support, so on machines without an extension the forced tier
// degrades to the best available one and the KATs still must hold.
const char* const kIsaTiers[] = {"scalar", "aesni", "vaes", "auto"};

TEST(IsaTest, KatsHoldUnderEveryTier) {
  for (const char* tier : kIsaTiers) {
    SCOPED_TRACE(tier);
    ScopedIsaOverride isa(tier);

    // FIPS 180-4 SHA-256.
    EXPECT_EQ(DigestHex(Sha256Hash(BytesOf("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f200"
              "15ad");

    // RFC 4231 HMAC-SHA-256 case 2.
    EXPECT_EQ(ToHex(ToBytes(HmacSha256(BytesOf("Jefe"),
                                       BytesOf("what do ya want "
                                               "for nothing?")))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec"
              "3843");

    // SP 800-38A F.5.1 AES-128-CTR, all four blocks in one call.
    const Aes ctr_aes(FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock counter{};
    const Bytes counter_bytes = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    std::copy(counter_bytes.begin(), counter_bytes.end(), counter.begin());
    const Bytes ctr_pt = FromHex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710");
    Bytes ctr_ct(ctr_pt.size());
    AesCtrXor(ctr_aes, counter, ctr_pt, ctr_ct.data());
    EXPECT_EQ(ToHex(ctr_ct),
              "874d6191b620e3261bef6864990db6ce"
              "9806f66b7970fdff8617187bb9fffdff"
              "5ae4df3edbd5d35e5b4f09020db03eab"
              "1e031dda2fbe03d1792170a0f3009cee");

    // NIST GCM test case 4 (AES-128, 60-byte plaintext, 20-byte AAD).
    const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
    const Bytes iv = FromHex("cafebabefacedbaddecaf888");
    const Bytes aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    const Bytes pt = FromHex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
    const GcmSealed sealed = gcm.Seal(iv, aad, pt);
    EXPECT_EQ(ToHex(sealed.ciphertext),
              "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329ac"
              "a12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
    EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
              "5bc94fbc3221a5db94fae95ae7121a47");
    EXPECT_TRUE(gcm.Open(iv, aad, sealed.ciphertext, sealed.tag).has_value());

    // Auth failure: a flipped tag bit must reject under every tier.
    auto bad_tag = sealed.tag;
    bad_tag[0] ^= 1;
    EXPECT_FALSE(gcm.Open(iv, aad, sealed.ciphertext, bad_tag).has_value());
    // Tag truncation (attacker zero-pads a shortened tag) must reject.
    auto truncated_tag = sealed.tag;
    std::fill(truncated_tag.begin() + 8, truncated_tag.end(),
              std::uint8_t{0});
    EXPECT_FALSE(
        gcm.Open(iv, aad, sealed.ciphertext, truncated_tag).has_value());
  }
}

// Deterministic fuzz buffer shared by the parity sweeps.
Bytes ParityMaterial(std::size_t n) {
  HmacDrbg drbg(BytesOf("isa parity sweep"));
  return drbg.Generate(n);
}

// Lengths that hit every kernel boundary: sub-block tails, exact lane
// widths (4x16 AES-NI, 8x16 VAES, 4x16 GHASH aggregate, 64B SHA block),
// one-off-each-side, and bulk sizes up to 64 KiB.
const std::size_t kParityLengths[] = {
    0,  1,  15,  16,  17,  31,  32,  63,   64,   65,   127,  128,   129,
    191, 192, 255, 256, 257, 960, 1024, 4096, 8191, 16384, 65536};

TEST(IsaTest, AesCtrParityScalarVsAccelerated) {
  const Bytes material = ParityMaterial(65536 + 64);
  const Aes aes(FromHex("603deb1015ca71be2b73aef0857d7781"
                        "1f352c073b6108d72d9810a30914dff4"));
  AesBlock counter{};
  counter[15] = 0xfd;  // near 32-bit wrap after a few blocks
  counter[14] = 0xff;
  counter[13] = 0xff;
  counter[12] = 0xff;
  for (const std::size_t len : kParityLengths) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{3}}) {
      const BytesView in(material.data() + offset, len);
      Bytes expect(len);
      {
        ScopedIsaOverride isa("scalar");
        AesCtrXor(aes, counter, in, expect.data());
      }
      for (const char* tier : {"aesni", "vaes", "auto"}) {
        SCOPED_TRACE(testing::Message()
                     << tier << " len=" << len << " off=" << offset);
        ScopedIsaOverride isa(tier);
        Bytes got(len);
        AesCtrXor(aes, counter, in, got.data());
        EXPECT_EQ(got, expect);
      }
    }
  }
}

TEST(IsaTest, GcmParityScalarVsAccelerated) {
  const Bytes material = ParityMaterial(65536 + 64);
  const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"
                           "feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes aad = BytesOf("parity sweep aad");
  for (const std::size_t len : kParityLengths) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{5}}) {
      const BytesView pt(material.data() + offset, len);
      GcmSealed expect;
      {
        ScopedIsaOverride isa("scalar");
        expect = gcm.Seal(iv, aad, pt);
      }
      for (const char* tier : {"aesni", "vaes", "auto"}) {
        SCOPED_TRACE(testing::Message()
                     << tier << " len=" << len << " off=" << offset);
        ScopedIsaOverride isa(tier);
        const GcmSealed got = gcm.Seal(iv, aad, pt);
        EXPECT_EQ(got.ciphertext, expect.ciphertext);
        EXPECT_EQ(got.tag, expect.tag);
        const auto opened = gcm.Open(iv, aad, got.ciphertext, got.tag);
        ASSERT_TRUE(opened.has_value());
        EXPECT_TRUE(std::equal(opened->begin(), opened->end(), pt.begin(),
                               pt.end()));
      }
    }
  }
}

TEST(IsaTest, Sha256ParityScalarVsAccelerated) {
  const Bytes material = ParityMaterial(65536 + 64);
  for (const std::size_t len : kParityLengths) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{7}}) {
      const BytesView msg(material.data() + offset, len);
      Sha256Digest expect;
      {
        ScopedIsaOverride isa("scalar");
        expect = Sha256Hash(msg);
      }
      for (const char* tier : {"aesni", "vaes", "auto"}) {
        SCOPED_TRACE(testing::Message()
                     << tier << " len=" << len << " off=" << offset);
        ScopedIsaOverride isa(tier);
        EXPECT_EQ(Sha256Hash(msg), expect);
      }
    }
  }
}

TEST(IsaTest, Sha256BatchMatchesSerialUnderEveryTier) {
  const Bytes material = ParityMaterial(8192);
  // 21 lanes of staggered lengths: exercises the 8-wide multi-buffer
  // kernel (two full waves + remainder) plus empty and sub-block lanes.
  std::vector<BytesView> inputs;
  for (std::size_t i = 0; i < 21; ++i) {
    inputs.emplace_back(material.data() + i, (i * 151) % 1500);
  }
  std::vector<Sha256Digest> expect(inputs.size());
  {
    ScopedIsaOverride isa("scalar");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      expect[i] = Sha256Hash(inputs[i]);
    }
  }
  for (const char* tier : kIsaTiers) {
    SCOPED_TRACE(tier);
    ScopedIsaOverride isa(tier);
    std::vector<Sha256Digest> got(inputs.size());
    Sha256Batch(std::span<const BytesView>(inputs.data(), inputs.size()),
                got.data());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "lane " << i;
    }
  }
}

TEST(GroupTest, MulModMersenneMatchesDoubleAndAdd) {
  // The Mersenne fast path must agree with schoolbook double-and-add.
  const U128 p = GroupPrime();
  const auto slow_mulmod = [p](U128 a, U128 b) {
    a %= p;
    U128 acc = 0;
    for (U128 bit = b % p; bit != 0; bit >>= 1) {
      if (bit & 1) {
        acc += a;
        if (acc >= p) acc -= p;
      }
      a <<= 1;
      if (a >= p) a -= p;
    }
    return acc;
  };
  HmacDrbg drbg(BytesOf("mersenne mulmod sweep"));
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes raw = drbg.Generate(32);
    U128 a = 0, b = 0;
    for (int i = 0; i < 16; ++i) {
      a = (a << 8) | raw[i];
      b = (b << 8) | raw[16 + i];
    }
    EXPECT_EQ(MulMod(a, b, p), slow_mulmod(a, b));
  }
  // Edge operands around the modulus.
  EXPECT_EQ(MulMod(p - 1, p - 1, p), 1U);
  EXPECT_EQ(MulMod(p - 1, 2, p), p - 2);
  EXPECT_EQ(MulMod(p, 12345, p), 0U);
  EXPECT_EQ(MulMod(0, p - 1, p), 0U);
}

// ---- batched Schnorr verification ------------------------------------

std::vector<SchnorrBatchItem> MakeBatch(std::vector<SchnorrKeyPair>& keys,
                                        std::vector<Bytes>& messages,
                                        std::vector<SchnorrSignature>& sigs,
                                        std::size_t n) {
  HmacDrbg drbg(BytesOf("schnorr batch fixture"));
  keys.clear();
  messages.clear();
  sigs.clear();
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(SchnorrGenerate(drbg));
    messages.push_back(drbg.Generate(40 + (i % 17)));
    sigs.push_back(SchnorrSign(keys[i], messages[i], drbg));
  }
  std::vector<SchnorrBatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].public_value = keys[i].public_value;
    items[i].message = BytesView(messages[i].data(), messages[i].size());
    items[i].signature = sigs[i];
  }
  return items;
}

TEST(SchnorrTest, VerifyBatchAllValid) {
  std::vector<SchnorrKeyPair> keys;
  std::vector<Bytes> messages;
  std::vector<SchnorrSignature> sigs;
  const auto items = MakeBatch(keys, messages, sigs, 64);
  EXPECT_TRUE(SchnorrVerifyBatch(items).empty());
  EXPECT_TRUE(SchnorrVerifyBatch({}).empty());
}

TEST(SchnorrTest, VerifyBatchAttributesSingleCorruption) {
  // The ISSUE's canonical case: 1 corrupted signature in a batch of 64
  // is detected and attributed to exactly the right index.
  for (const std::size_t victim : {std::size_t{0}, std::size_t{41},
                                   std::size_t{63}}) {
    std::vector<SchnorrKeyPair> keys;
    std::vector<Bytes> messages;
    std::vector<SchnorrSignature> sigs;
    auto items = MakeBatch(keys, messages, sigs, 64);
    items[victim].signature.response ^= 1;
    const std::vector<std::size_t> invalid = SchnorrVerifyBatch(items);
    ASSERT_EQ(invalid.size(), 1U) << "victim " << victim;
    EXPECT_EQ(invalid[0], victim);
  }
}

TEST(SchnorrTest, VerifyBatchAttributesMultipleCorruptions) {
  std::vector<SchnorrKeyPair> keys;
  std::vector<Bytes> messages;
  std::vector<SchnorrSignature> sigs;
  auto items = MakeBatch(keys, messages, sigs, 48);
  items[3].signature.commitment ^= 0x10;   // bad commitment
  items[17].message = BytesView(messages[18].data(), messages[18].size());
  items[30].public_value = keys[31].public_value;  // wrong key
  items[47].signature = SchnorrSignature{};        // structurally invalid
  const std::vector<std::size_t> invalid = SchnorrVerifyBatch(items);
  EXPECT_EQ(invalid, (std::vector<std::size_t>{3, 17, 30, 47}));
}

TEST(SchnorrTest, VerifyBatchAgreesWithSerialVerify) {
  std::vector<SchnorrKeyPair> keys;
  std::vector<Bytes> messages;
  std::vector<SchnorrSignature> sigs;
  auto items = MakeBatch(keys, messages, sigs, 24);
  // Corrupt a pseudo-random subset.
  for (const std::size_t i : {1U, 7U, 8U, 20U}) {
    items[i].signature.response ^= (U128{1} << (i % 60));
  }
  const std::vector<std::size_t> invalid = SchnorrVerifyBatch(items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bool serial_ok = SchnorrVerify(items[i].public_value,
                                         items[i].message,
                                         items[i].signature);
    const bool batch_ok =
        std::find(invalid.begin(), invalid.end(), i) == invalid.end();
    EXPECT_EQ(batch_ok, serial_ok) << "item " << i;
  }
}

}  // namespace
}  // namespace caltrain::crypto
