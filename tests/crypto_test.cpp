// Crypto substrate tests.  AES / SHA-256 / HMAC / HKDF / GCM are checked
// against published FIPS/NIST/RFC vectors; DH, Schnorr and the DRBG are
// checked for algebraic correctness and tamper rejection.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/group.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace caltrain::crypto {
namespace {

std::string DigestHex(const Sha256Digest& d) {
  return ToHex(BytesView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes msg = BytesOf("abc");
  EXPECT_EQ(DigestHex(Sha256Hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const Bytes msg =
      BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(DigestHex(Sha256Hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = BytesOf("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    const std::size_t take = std::min<std::size_t>(7, msg.size() - i);
    h.Update(BytesView(msg.data() + i, take));
  }
  EXPECT_EQ(h.Finish(), Sha256Hash(msg));
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long-message vector.
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = BytesOf("Hi There");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = BytesOf("Jefe");
  const Bytes data = BytesOf("what do ya want for nothing?");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3LongKeyData) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, KeyLongerThanBlockIsHashed) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = BytesOf("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = FromHex("000102030405060708090a0b0c");
  const Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(ToHex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(AesTest, Fips197Aes128) {
  const Aes aes(FromHex("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(ToHex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256) {
  const Aes aes(
      FromHex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(ToHex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(24, 0)), Error);  // AES-192 unsupported by design
  EXPECT_THROW(Aes(Bytes(15, 0)), Error);
}

TEST(AesTest, CtrRoundTripOddLength) {
  const Aes aes(Bytes(16, 0x42));
  AesBlock ctr{};
  const Bytes pt = BytesOf("seventeen bytes!!");
  Bytes ct(pt.size());
  AesCtrXor(aes, ctr, pt, ct.data());
  EXPECT_NE(ct, pt);
  Bytes back(ct.size());
  AesCtrXor(aes, ctr, ct, back.data());
  EXPECT_EQ(back, pt);
}

TEST(GcmTest, NistCase1EmptyPlaintext) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes iv(12, 0);
  const GcmSealed sealed = gcm.Seal(iv, {}, {});
  EXPECT_TRUE(sealed.ciphertext.empty());
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, NistCase2OneBlock) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes iv(12, 0);
  const Bytes pt(16, 0);
  const GcmSealed sealed = gcm.Seal(iv, {}, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(GcmTest, NistCase3FourBlocks) {
  const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const GcmSealed sealed = gcm.Seal(iv, {}, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(GcmTest, NistCase4WithAad) {
  const AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const GcmSealed sealed = gcm.Seal(iv, aad, pt);
  EXPECT_EQ(ToHex(sealed.ciphertext),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(ToHex(BytesView(sealed.tag.data(), sealed.tag.size())),
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(GcmTest, OpenRoundTrip) {
  const AesGcm gcm(Bytes(32, 0x11));  // AES-256 key
  const Bytes iv(12, 0x22);
  const Bytes aad = BytesOf("participant-7");
  const Bytes pt = BytesOf("private training record");
  const GcmSealed sealed = gcm.Seal(iv, aad, pt);
  const auto opened = gcm.Open(iv, aad, sealed.ciphertext, sealed.tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, TamperedCiphertextRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  const Bytes pt = BytesOf("payload payload payload");
  GcmSealed sealed = gcm.Seal(iv, {}, pt);
  sealed.ciphertext[3] ^= 0x01;
  EXPECT_FALSE(gcm.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, TamperedTagRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  GcmSealed sealed = gcm.Seal(iv, {}, BytesOf("x"));
  sealed.tag[0] ^= 0x80;
  EXPECT_FALSE(gcm.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, WrongAadRejected) {
  const AesGcm gcm(Bytes(16, 0x11));
  const Bytes iv(12, 0x22);
  const GcmSealed sealed = gcm.Seal(iv, BytesOf("source-a"), BytesOf("data"));
  EXPECT_FALSE(
      gcm.Open(iv, BytesOf("source-b"), sealed.ciphertext, sealed.tag)
          .has_value());
}

TEST(GcmTest, WrongKeyRejected) {
  const AesGcm good(Bytes(16, 0x11));
  const AesGcm bad(Bytes(16, 0x12));
  const Bytes iv(12, 0);
  const GcmSealed sealed = good.Seal(iv, {}, BytesOf("data"));
  EXPECT_FALSE(bad.Open(iv, {}, sealed.ciphertext, sealed.tag).has_value());
}

TEST(GcmTest, RejectsBadIvLength) {
  const AesGcm gcm(Bytes(16, 0));
  EXPECT_THROW((void)gcm.Seal(Bytes(11, 0), {}, {}), Error);
}

TEST(DrbgTest, DeterministicForSameSeed) {
  HmacDrbg a(BytesOf("seed material"));
  HmacDrbg b(BytesOf("seed material"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, PersonalizationChangesOutput) {
  HmacDrbg a(BytesOf("seed"), BytesOf("alice"));
  HmacDrbg b(BytesOf("seed"), BytesOf("bob"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, SequentialOutputsDiffer) {
  HmacDrbg drbg(BytesOf("seed"));
  EXPECT_NE(drbg.Generate(32), drbg.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a(BytesOf("seed"));
  HmacDrbg b(BytesOf("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(BytesOf("fresh entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(GroupTest, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod(7, 9, 11), 63 % 11);
  EXPECT_EQ(MulMod(0, 9, 11), 0U);
  const U128 p = GroupPrime();
  EXPECT_EQ(MulMod(p - 1, p - 1, p), 1U);  // (-1)^2 = 1
}

TEST(GroupTest, PowModFermat) {
  const U128 p = GroupPrime();
  // Fermat's little theorem: a^(p-1) == 1 mod p for a coprime with p.
  EXPECT_EQ(PowMod(GroupGenerator(), p - 1, p), 1U);
  EXPECT_EQ(PowMod(123456789, p - 1, p), 1U);
}

TEST(GroupTest, U128BytesRoundTrip) {
  const U128 v = (U128{0x0123456789abcdefULL} << 64) | 0xfedcba9876543210ULL;
  EXPECT_EQ(U128FromBytes(U128ToBytes(v)), v);
}

TEST(GroupTest, U128FromBytesRejectsWrongLength) {
  EXPECT_THROW((void)U128FromBytes(Bytes(15, 0)), Error);
}

TEST(GroupTest, DhAgreement) {
  HmacDrbg drbg(BytesOf("dh test entropy"));
  const DhKeyPair alice = DhGenerate(drbg);
  const DhKeyPair bob = DhGenerate(drbg);
  const U128 shared_a = DhSharedSecret(alice.secret, bob.public_value);
  const U128 shared_b = DhSharedSecret(bob.secret, alice.public_value);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_NE(shared_a, U128{0});
}

TEST(GroupTest, DhRejectsDegeneratePublicValues) {
  EXPECT_THROW((void)DhSharedSecret(5, 0), Error);
  EXPECT_THROW((void)DhSharedSecret(5, 1), Error);
  EXPECT_THROW((void)DhSharedSecret(5, GroupPrime()), Error);
}

TEST(SchnorrTest, SignVerifyRoundTrip) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("enclave quote body");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  EXPECT_TRUE(SchnorrVerify(key.public_value, msg, sig));
}

TEST(SchnorrTest, RejectsWrongMessage) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const SchnorrSignature sig = SchnorrSign(key, BytesOf("message A"), drbg);
  EXPECT_FALSE(SchnorrVerify(key.public_value, BytesOf("message B"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const SchnorrKeyPair other = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  EXPECT_FALSE(SchnorrVerify(other.public_value, msg, sig));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  sig.response ^= 1;
  EXPECT_FALSE(SchnorrVerify(key.public_value, msg, sig));
}

TEST(SchnorrTest, SerializationRoundTrip) {
  HmacDrbg drbg(BytesOf("schnorr entropy"));
  const SchnorrKeyPair key = SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("message");
  const SchnorrSignature sig = SchnorrSign(key, msg, drbg);
  const SchnorrSignature back = DeserializeSignature(SerializeSignature(sig));
  EXPECT_EQ(back.commitment, sig.commitment);
  EXPECT_EQ(back.response, sig.response);
  EXPECT_TRUE(SchnorrVerify(key.public_value, msg, back));
}

}  // namespace
}  // namespace caltrain::crypto
