// Network front-end tests (ISSUE 10): wire framing against hostile
// byte streams, strict codec validation, loopback determinism of the
// full session API versus the in-process path, backpressure mapping,
// idempotent resubmission, fault-injected transports, and graceful
// shutdown.  The adversarial corpus here is the suite ROADMAP's
// "decoder treats all input as hostile" contract — it runs under
// ASan/UBSan and TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/packaging.hpp"
#include "data/synthetic_cifar.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "nn/presets.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/threadpool.hpp"

namespace caltrain::net {
namespace {

data::LabeledDataset TinyCifar(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  data::SyntheticCifar gen;
  return gen.Generate(count, rng);
}

core::PartitionedTrainOptions FastOptions(int epochs = 1) {
  core::PartitionedTrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 9;
  return options;
}

/// Restores a clean injector around fault tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    util::FaultInjector::Global().Configure(spec);
  }
  ~ScopedFaults() { util::FaultInjector::Global().Clear(); }
};

// ================================================================ framing

TEST(WireFrameTest, RoundTripSingleAndPipelined) {
  const Bytes payload_a = EncodeStatus();
  const Bytes payload_b = EncodeOpenSession({"alice"});
  Bytes stream = EncodeFrame(payload_a);
  const Bytes frame_b = EncodeFrame(payload_b);
  stream.insert(stream.end(), frame_b.begin(), frame_b.end());

  FrameDecoder decoder;
  decoder.Feed(stream);
  Frame frame;
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kStatus);
  EXPECT_EQ(frame.payload, payload_a);
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kOpenSession);
  EXPECT_EQ(frame.payload, payload_b);
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.poisoned());
}

TEST(WireFrameTest, ByteAtATimeSlowlorisFeedStillDecodes) {
  const Bytes frame_bytes = EncodeFrame(EncodeStatus());
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < frame_bytes.size(); ++i) {
    decoder.Feed(BytesView(&frame_bytes[i], 1));
    ASSERT_EQ(decoder.Next(frame), FrameDecoder::Status::kNeedMore)
        << "byte " << i;
  }
  decoder.Feed(BytesView(&frame_bytes.back(), 1));
  ASSERT_EQ(decoder.Next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kStatus);
}

TEST(WireFrameTest, TruncatedFrameWaitsWithoutCrashing) {
  const Bytes frame_bytes = EncodeFrame(EncodeStatus());
  for (std::size_t cut = 0; cut < frame_bytes.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(BytesView(frame_bytes.data(), cut));
    Frame frame;
    EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(WireFrameTest, OversizedLengthPoisonsBeforeAllocating) {
  // A hostile length prefix far past the cap must be rejected from the
  // 8 header bytes alone.
  Bytes header(kFrameHeaderBytes, 0);
  header[0] = 0xff;
  header[1] = 0xff;
  header[2] = 0xff;
  header[3] = 0x7f;  // ~2 GiB
  FrameDecoder decoder(1024);
  decoder.Feed(header);
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos)
      << decoder.error();
}

TEST(WireFrameTest, ZeroLengthPayloadPoisons) {
  Bytes header(kFrameHeaderBytes, 0);
  FrameDecoder decoder;
  decoder.Feed(header);
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(WireFrameTest, CrcFlipPoisonsAndStaysPoisoned) {
  Bytes frame_bytes = EncodeFrame(EncodeStatus());
  frame_bytes.back() ^= 0x01;  // corrupt the payload
  FrameDecoder decoder;
  decoder.Feed(frame_bytes);
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kCorrupt);
  EXPECT_NE(decoder.error().find("CRC"), std::string::npos)
      << decoder.error();
  // Nothing after a framing error is trusted — not even a valid frame.
  decoder.Feed(EncodeFrame(EncodeStatus()));
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kCorrupt);
}

TEST(WireFrameTest, EncodeRejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW((void)EncodeFrame(BytesView()), Error);
  const Bytes big(2048, 0x41);
  EXPECT_THROW((void)EncodeFrame(big, 1024), Error);
}

TEST(WireFrameTest, InjectedFrameFaultPoisonsTypedly) {
  ScopedFaults faults("net.frame=eio@1");
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(EncodeStatus()));
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), FrameDecoder::Status::kCorrupt);
  EXPECT_NE(decoder.error().find("injected"), std::string::npos);
}

// ================================================================== codec

TEST(NetCodecTest, ErrorKindMappingIsWireStableAndTotal) {
  const serve::ServeErrorKind kinds[] = {
      serve::ServeErrorKind::kUnprovisionedParticipant,
      serve::ServeErrorKind::kAuthFailure,
      serve::ServeErrorKind::kQueueSaturated,
      serve::ServeErrorKind::kWrongPhase,
      serve::ServeErrorKind::kInvalidArgument,
      serve::ServeErrorKind::kTimeout,
      serve::ServeErrorKind::kRetryExhausted,
      serve::ServeErrorKind::kDegraded,
      serve::ServeErrorKind::kCorruptJournal,
      serve::ServeErrorKind::kInternal,
  };
  for (const auto kind : kinds) {
    EXPECT_EQ(FromWire(ToWire(kind)), kind);
  }
  // Unknown code from a newer peer degrades to kInternal, not a crash.
  EXPECT_EQ(FromWire(static_cast<WireErrorCode>(200)),
            serve::ServeErrorKind::kInternal);
}

TEST(NetCodecTest, MessageRoundTrips) {
  {
    const HelloRequest decoded = DecodeHello(
        BytesView(EncodeHello(HelloRequest{}).data() + 1,
                  EncodeHello(HelloRequest{}).size() - 1));
    EXPECT_EQ(decoded.magic, kHelloMagic);
    EXPECT_EQ(decoded.version_min, kProtocolVersionMin);
    EXPECT_EQ(decoded.version_max, kProtocolVersionMax);
  }
  {
    HelloAck ack;
    ack.version = 1;
    ack.max_frame_bytes = 1234;
    ack.attestation_public_key = Bytes(16, 0xab);
    ack.measurement = Bytes(32, 0xcd);
    const Bytes payload = EncodeHelloAck(ack);
    const HelloAck decoded =
        DecodeHelloAck(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.version, 1U);
    EXPECT_EQ(decoded.max_frame_bytes, 1234U);
    EXPECT_EQ(decoded.attestation_public_key, ack.attestation_public_key);
    EXPECT_EQ(decoded.measurement, ack.measurement);
  }
  {
    const serve::ServeError error{serve::ServeErrorKind::kWrongPhase,
                                  "not now"};
    const Bytes payload = EncodeError(error);
    const serve::ServeError decoded =
        DecodeError(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.kind, serve::ServeErrorKind::kWrongPhase);
    EXPECT_EQ(decoded.message, "not now");
  }
  {
    ProvisionMsg msg{"alice", Bytes{1, 2, 3}};
    const Bytes payload = EncodeProvision(MsgType::kProvisionHello, msg);
    EXPECT_EQ(static_cast<MsgType>(payload[0]), MsgType::kProvisionHello);
    const ProvisionMsg decoded =
        DecodeProvision(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.participant_id, "alice");
    EXPECT_EQ(decoded.blob, msg.blob);
  }
  {
    SubmitUploadRequest request;
    request.session = 7;
    request.upload_seq = 3;
    Rng rng(11);
    data::SyntheticCifar gen;
    data::DataPackager packager("alice", Bytes(32, 0x11), 77);
    request.records.push_back(packager.Pack(gen.Sample(0, rng), 0));
    request.records.push_back(packager.Pack(gen.Sample(1, rng), 1));
    const Bytes payload = EncodeSubmitUpload(request);
    const SubmitUploadRequest decoded =
        DecodeSubmitUpload(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.session, 7U);
    EXPECT_EQ(decoded.upload_seq, 3U);
    ASSERT_EQ(decoded.records.size(), 2U);
    EXPECT_EQ(decoded.records[0].Serialize(),
              request.records[0].Serialize());
    EXPECT_EQ(decoded.records[1].Serialize(),
              request.records[1].Serialize());
  }
  {
    InvestigateRequest request;
    request.input.shape = {4, 4, 3};
    request.input.pixels.assign(48, 0.5F);
    request.k = 5;
    const Bytes payload = EncodeInvestigate(request);
    const InvestigateRequest decoded =
        DecodeInvestigate(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.k, 5U);
    EXPECT_EQ(decoded.input.pixels, request.input.pixels);
  }
  {
    core::MispredictionReport report;
    report.predicted_label = 3;
    report.fingerprint = {1.0F, -2.5F, 0.25F};
    report.neighbors.push_back({42, 0.125, 1, "alice"});
    const Bytes payload = EncodeInvestigateBatchAck({report, report});
    const auto decoded = DecodeInvestigateBatchAck(
        BytesView(payload.data() + 1, payload.size() - 1));
    ASSERT_EQ(decoded.size(), 2U);
    EXPECT_EQ(decoded[1].predicted_label, 3);
    EXPECT_EQ(decoded[1].fingerprint, report.fingerprint);
    ASSERT_EQ(decoded[1].neighbors.size(), 1U);
    EXPECT_EQ(decoded[1].neighbors[0].id, 42U);
    EXPECT_EQ(decoded[1].neighbors[0].distance, 0.125);
    EXPECT_EQ(decoded[1].neighbors[0].source, "alice");
  }
  {
    StatusAck ack{2, true, 100, 3};
    const Bytes payload = EncodeStatusAck(ack);
    const StatusAck decoded =
        DecodeStatusAck(BytesView(payload.data() + 1, payload.size() - 1));
    EXPECT_EQ(decoded.phase, 2U);
    EXPECT_TRUE(decoded.degraded);
    EXPECT_EQ(decoded.accepted_records, 100U);
    EXPECT_EQ(decoded.rejected_records, 3U);
  }
}

TEST(NetCodecTest, HostileBodiesThrowTyped) {
  const auto expect_invalid = [](auto fn) {
    try {
      fn();
      FAIL() << "hostile body must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
    }
  };

  // Truncated bodies.
  expect_invalid([] { (void)DecodeHello(BytesView()); });
  expect_invalid([] {
    const Bytes short_body{1, 2, 3};
    (void)DecodeSubmitUpload(short_body);
  });

  // Trailing bytes after a complete body.
  expect_invalid([] {
    Bytes payload = EncodeOpenSession({"alice"});
    payload.push_back(0x00);
    (void)DecodeOpenSession(BytesView(payload.data() + 1,
                                      payload.size() - 1));
  });
  expect_invalid([] {
    Bytes payload = EncodeStatus();
    payload.push_back(0x00);
    DecodeStatus(BytesView(payload.data() + 1, payload.size() - 1));
  });

  // Wrong hello magic.
  expect_invalid([] {
    HelloRequest hello;
    hello.magic = 0xdeadbeef;
    const Bytes payload = EncodeHello(hello);
    (void)DecodeHello(BytesView(payload.data() + 1, payload.size() - 1));
  });

  // Hostile image dimensions: a request whose claimed pixel count
  // dwarfs the actual bytes must be rejected before any allocation.
  expect_invalid([] {
    InvestigateRequest request;
    request.input.shape = {100000, 100000, 3};
    request.k = 1;
    Bytes payload;
    try {
      payload = EncodeInvestigate(request);
    } catch (const Error&) {
      // The encoder may refuse too — then hand-craft the body.
      ThrowError(ErrorKind::kInvalidArgument, "encoder refused");
    }
    (void)DecodeInvestigate(BytesView(payload.data() + 1,
                                      payload.size() - 1));
  });

  // Non-boolean "bool" byte.
  expect_invalid([] {
    Bytes payload = EncodeProvisionOkAck(MsgType::kProvisionKeyAck, {true});
    payload.back() = 2;
    (void)DecodeProvisionOkAck(BytesView(payload.data() + 1,
                                         payload.size() - 1));
  });

  // Empty participant id.
  expect_invalid([] {
    const Bytes payload = EncodeOpenSession({""});
    (void)DecodeOpenSession(BytesView(payload.data() + 1,
                                      payload.size() - 1));
  });
}

// ===================================================== loopback transport

/// A raw adversarial peer: hand-rolled bytes on a blocking socket, its
/// own decoder for replies.
class RawPeer {
 public:
  explicit RawPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CALTRAIN_CHECK(fd_ >= 0, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    CALTRAIN_CHECK(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect");
  }
  ~RawPeer() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void Send(BytesView bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads until one frame or EOF; returns false on EOF/error.
  bool ReadFrame(Frame& out) {
    for (;;) {
      switch (decoder_.Next(out)) {
        case FrameDecoder::Status::kFrame:
          return true;
        case FrameDecoder::Status::kCorrupt:
          return false;
        case FrameDecoder::Status::kNeedMore:
          break;
      }
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      decoder_.Feed(BytesView(chunk, static_cast<std::size_t>(n)));
    }
  }

  /// True when the server closed the stream (EOF).
  bool AtEof() {
    std::uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

  serve::ServeError ExpectErrorFrame() {
    Frame frame;
    if (!ReadFrame(frame) || frame.type != MsgType::kError) {
      return {serve::ServeErrorKind::kInternal, "no error frame"};
    }
    return DecodeError(frame.body());
  }

  void Hello() {
    Send(EncodeFrame(EncodeHello(HelloRequest{})));
    Frame frame;
    ASSERT_TRUE(ReadFrame(frame));
    ASSERT_EQ(frame.type, MsgType::kHelloAck);
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// Spins up a provisioned single-participant service + TCP server.
struct NetFixture {
  explicit NetFixture(std::size_t records = 16, ServerOptions server_options = {},
                      serve::ServiceConfig config = {})
      : dataset(TinyCifar(records, 32)),
        alice("alice", dataset, 502),
        service(server, config),
        net(service, server_options) {
    alice.Provision(server, server.training_measurement());
    net.Start();
  }

  ClientOptions MakeClientOptions() const {
    ClientOptions options;
    options.port = net.port();
    return options;
  }

  data::LabeledDataset dataset;
  core::TrainingServer server;
  core::Participant alice;
  serve::Service service;
  Server net;
};

TEST(NetServerTest, StatusAndSessionLifecycleOverLoopback) {
  NetFixture fx;
  Client client(fx.MakeClientOptions());

  const Client::HelloInfo& hello = client.Connect();
  EXPECT_EQ(hello.version, kProtocolVersionMax);
  EXPECT_EQ(hello.max_frame_bytes, kDefaultMaxFrameBytes);
  EXPECT_EQ(hello.attestation_public_key,
            fx.server.attestation_public_key());
  EXPECT_EQ(hello.measurement, fx.server.training_measurement());

  auto status = client.Status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().phase,
            static_cast<std::uint8_t>(serve::Phase::kIngest));
  EXPECT_FALSE(status.value().degraded);

  auto session = client.OpenSession("alice");
  ASSERT_TRUE(session.ok());
  auto receipt = client.SubmitUpload(session.value(), fx.alice.PackRecords());
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.value().accepted, 16U);
  EXPECT_EQ(receipt.value().rejected, 0U);

  auto stats = client.CloseSession(session.value());
  ASSERT_TRUE(stats.ok());

  // Typed error for an unknown session, connection still healthy.
  auto bad = client.SubmitUpload(serve::SessionId{999},
                                 fx.alice.PackRecords());
  ASSERT_FALSE(bad.ok());
  auto status2 = client.Status();
  ASSERT_TRUE(status2.ok());
  EXPECT_EQ(status2.value().accepted_records, 16U);
  EXPECT_GE(fx.net.connections_accepted(), 1U);
}

TEST(NetServerTest, AdversarialPeersGetTypedErrorsAndServerSurvives) {
  NetFixture fx;

  {  // CRC flip on the hello.
    RawPeer peer(fx.net.port());
    Bytes frame = EncodeFrame(EncodeHello(HelloRequest{}));
    frame.back() ^= 0x40;
    peer.Send(frame);
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_NE(error.message.find("malformed frame"), std::string::npos)
        << error.message;
    EXPECT_TRUE(peer.AtEof());
  }
  {  // Oversized length prefix.
    RawPeer peer(fx.net.port());
    Bytes header(kFrameHeaderBytes, 0xff);
    peer.Send(header);
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_TRUE(peer.AtEof());
  }
  {  // First message is not a hello.
    RawPeer peer(fx.net.port());
    peer.Send(EncodeFrame(EncodeStatus()));
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_NE(error.message.find("expected hello"), std::string::npos)
        << error.message;
    EXPECT_TRUE(peer.AtEof());
  }
  {  // Version skew: client speaks only [2, 9].
    RawPeer peer(fx.net.port());
    HelloRequest hello;
    hello.version_min = 2;
    hello.version_max = 9;
    peer.Send(EncodeFrame(EncodeHello(hello)));
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_NE(error.message.find("no common protocol version"),
              std::string::npos)
        << error.message;
    EXPECT_TRUE(peer.AtEof());
  }
  {  // Overlapping range negotiates the highest common version.
    RawPeer peer(fx.net.port());
    HelloRequest hello;
    hello.version_min = 1;
    hello.version_max = 9;
    peer.Send(EncodeFrame(EncodeHello(hello)));
    Frame frame;
    ASSERT_TRUE(peer.ReadFrame(frame));
    ASSERT_EQ(frame.type, MsgType::kHelloAck);
    EXPECT_EQ(DecodeHelloAck(frame.body()).version, kProtocolVersionMax);
  }
  {  // Unknown message type after handshake.
    RawPeer peer(fx.net.port());
    peer.Hello();
    Bytes payload{99};
    peer.Send(EncodeFrame(payload));
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_TRUE(peer.AtEof());
  }
  {  // Malformed body of a known type (truncated open-session).
    RawPeer peer(fx.net.port());
    peer.Hello();
    Bytes payload{static_cast<std::uint8_t>(MsgType::kOpenSession), 1, 2};
    peer.Send(EncodeFrame(payload));
    const serve::ServeError error = peer.ExpectErrorFrame();
    EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
    EXPECT_TRUE(peer.AtEof());
  }
  {  // Mid-handshake disconnect: a partial frame then a hard close.
    RawPeer peer(fx.net.port());
    const Bytes frame = EncodeFrame(EncodeHello(HelloRequest{}));
    peer.Send(BytesView(frame.data(), frame.size() / 2));
    peer.Close();
  }
  {  // Slowloris hello: dribble a valid frame byte by byte.
    RawPeer peer(fx.net.port());
    const Bytes frame = EncodeFrame(EncodeHello(HelloRequest{}));
    for (const std::uint8_t byte : frame) peer.Send(BytesView(&byte, 1));
    Frame reply;
    ASSERT_TRUE(peer.ReadFrame(reply));
    EXPECT_EQ(reply.type, MsgType::kHelloAck);
  }

  // CRC flip, oversized length, status-before-hello, unknown type,
  // malformed body.  (Version skew is a *negotiation* failure, not a
  // rejected frame.)
  EXPECT_EQ(fx.net.frames_rejected(), 5U);

  // After the whole corpus, a fresh well-behaved client still works.
  Client client(fx.MakeClientOptions());
  auto status = client.Status();
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status.value().degraded);
}

TEST(NetServerTest, ResubmittedUploadSequenceReplaysWithoutReingesting) {
  NetFixture fx(8);
  Client client(fx.MakeClientOptions());
  auto session = client.OpenSession("alice");
  ASSERT_TRUE(session.ok());

  RawPeer peer(fx.net.port());
  peer.Hello();
  SubmitUploadRequest request;
  request.session = session.value();
  request.upload_seq = 0;
  request.records = fx.alice.PackRecords();
  const Bytes frame = EncodeFrame(EncodeSubmitUpload(request));

  peer.Send(frame);
  Frame first;
  ASSERT_TRUE(peer.ReadFrame(first));
  ASSERT_EQ(first.type, MsgType::kUploadReceipt);
  const serve::UploadReceipt receipt = DecodeUploadReceipt(first.body());
  EXPECT_EQ(receipt.accepted, 8U);
  fx.service.DrainIngest();
  const auto accepted_after_first = fx.server.accepted_records();

  // The identical frame again — as a client that lost the reply would
  // resend it.  The server must replay the SAME receipt and must not
  // ingest the records a second time.
  peer.Send(frame);
  Frame second;
  ASSERT_TRUE(peer.ReadFrame(second));
  ASSERT_EQ(second.type, MsgType::kUploadReceipt);
  EXPECT_EQ(second.payload, first.payload)
      << "replayed receipt must be bit-identical";
  fx.service.DrainIngest();
  EXPECT_EQ(fx.server.accepted_records(), accepted_after_first)
      << "resubmission must not re-ingest";

  // A stale/future sequence is a typed error and keeps the stream up.
  request.upload_seq = 5;
  peer.Send(EncodeFrame(EncodeSubmitUpload(request)));
  const serve::ServeError error = peer.ExpectErrorFrame();
  EXPECT_EQ(error.kind, serve::ServeErrorKind::kInvalidArgument);
  EXPECT_NE(error.message.find("out of order"), std::string::npos);

  // Next in-order sequence still works on the same connection.
  request.upload_seq = 1;
  request.records = fx.alice.PackRecords();
  peer.Send(EncodeFrame(EncodeSubmitUpload(request)));
  Frame third;
  ASSERT_TRUE(peer.ReadFrame(third));
  EXPECT_EQ(third.type, MsgType::kUploadReceipt);
}

TEST(NetServerTest, RejectBackpressureSurfacesTypedFrames) {
  serve::ServiceConfig config;
  config.ingest_batch = 1;
  config.queue_capacity = 4;
  config.backpressure = util::BackpressurePolicy::kReject;
  ServerOptions server_options;
  server_options.upload_backpressure = util::BackpressurePolicy::kReject;
  NetFixture fx(16, server_options, config);

  Client client(fx.MakeClientOptions());
  auto session = client.OpenSession("alice");
  ASSERT_TRUE(session.ok());

  // 16 single-record batches can never fit a 4-slot queue: the
  // all-or-nothing precheck rejects the submission as a typed frame.
  auto too_big = client.SubmitUpload(session.value(), fx.alice.PackRecords());
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.error().kind, serve::ServeErrorKind::kInvalidArgument);
  fx.service.DrainIngest();
  EXPECT_EQ(fx.server.accepted_records(), 0U);

  // A submission that fits goes through over the same connection.
  std::vector<data::EncryptedRecord> some = fx.alice.PackRecords();
  some.resize(3);
  auto small = client.SubmitUpload(session.value(), std::move(some));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().accepted, 3U);
}

TEST(NetServerTest, BlockBackpressureParksAndEveryUploadLands) {
  // A deliberately tiny queue with concurrent remote producers: under
  // kBlock the server parks bounced uploads and retries on its timer —
  // every submission must eventually land, none may double-ingest.
  serve::ServiceConfig config;
  config.ingest_batch = 1;
  config.queue_capacity = 2;
  config.ingest_workers = 1;
  ServerOptions server_options;
  server_options.upload_backpressure = util::BackpressurePolicy::kBlock;
  NetFixture fx(12, server_options, config);

  constexpr int kClients = 4;
  constexpr int kUploadsPerClient = 3;
  std::atomic<std::size_t> accepted_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fx, &accepted_total] {
      Client client(fx.MakeClientOptions());
      auto session = client.OpenSession("alice");
      ASSERT_TRUE(session.ok());
      for (int u = 0; u < kUploadsPerClient; ++u) {
        std::vector<data::EncryptedRecord> records = fx.alice.PackRecords();
        records.resize(2);
        auto receipt = client.SubmitUpload(session.value(),
                                           std::move(records));
        ASSERT_TRUE(receipt.ok())
            << static_cast<int>(receipt.error().kind) << ": "
            << receipt.error().message;
        accepted_total += receipt.value().accepted;
      }
    });
  }
  for (auto& t : threads) t.join();
  fx.service.DrainIngest();
  EXPECT_EQ(accepted_total.load(), kClients * kUploadsPerClient * 2U);
  EXPECT_EQ(fx.server.accepted_records(),
            kClients * kUploadsPerClient * 2U);
}

// ========================================================== fault points

TEST(NetFaultTest, InjectedServerReadFaultIsAbsorbedByReconnect) {
  NetFixture fx;
  ScopedFaults faults("net.read=eio@1");
  Client client(fx.MakeClientOptions());
  // The server's first read dies; the client sees the dropped
  // connection and reconnects within its backoff budget.
  auto session = client.OpenSession("alice");
  ASSERT_TRUE(session.ok());
  EXPECT_GE(fx.net.connections_accepted(), 2U);
}

TEST(NetFaultTest, InjectedClientWriteFaultIsRetried) {
  NetFixture fx;
  ScopedFaults faults("net.write=eio@1");
  Client client(fx.MakeClientOptions());
  // The client's very first send (its hello) faults before touching
  // the socket; the retry reconnects and completes.
  auto status = client.Status();
  ASSERT_TRUE(status.ok());
}

TEST(NetFaultTest, InjectedAcceptFaultDropsConnectionNotServer) {
  NetFixture fx;
  ScopedFaults faults("net.accept=eio@1");
  Client client(fx.MakeClientOptions());
  // First accept is dropped (client sees a reset mid-handshake);
  // the reconnect is accepted normally.
  auto status = client.Status();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(fx.net.connections_accepted(), 1U);
}

TEST(NetFaultTest, PersistentFrameFaultExhaustsRetryBudgetTypedly) {
  NetFixture fx;
  {
    ScopedFaults faults("net.frame=eio@1+");
    ClientOptions options = fx.MakeClientOptions();
    options.backoff.max_attempts = 3;
    Client client(options);
    auto status = client.Status();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().kind, serve::ServeErrorKind::kRetryExhausted);
  }
  // Faults cleared: the server is unharmed and serves a fresh client.
  Client client(fx.MakeClientOptions());
  auto status = client.Status();
  ASSERT_TRUE(status.ok());
}

TEST(NetFaultTest, IdempotentResubmitUnderInjectedDisconnects) {
  // Kill the server's read socket mid-session repeatedly: the client
  // reconnects and resubmits with the SAME upload sequence, and the
  // accepted-record count stays exact (no loss, no double ingest).
  NetFixture fx(8);
  Client client(fx.MakeClientOptions());
  auto session = client.OpenSession("alice");
  ASSERT_TRUE(session.ok());

  ScopedFaults faults("net.read=eio@3");
  auto r1 = client.SubmitUpload(session.value(), fx.alice.PackRecords());
  ASSERT_TRUE(r1.ok()) << r1.error().message;
  auto r2 = client.SubmitUpload(session.value(), fx.alice.PackRecords());
  ASSERT_TRUE(r2.ok()) << r2.error().message;
  fx.service.DrainIngest();
  EXPECT_EQ(fx.server.accepted_records(), 16U);
}

// ============================================================== shutdown

TEST(NetServerTest, GracefulShutdownDrainsAndRefusesNewWork) {
  NetFixture fx(8);
  {
    Client client(fx.MakeClientOptions());
    auto session = client.OpenSession("alice");
    ASSERT_TRUE(session.ok());
    auto receipt = client.SubmitUpload(session.value(),
                                       fx.alice.PackRecords());
    ASSERT_TRUE(receipt.ok());
  }
  fx.net.Stop();
  fx.net.Stop();  // idempotent
  fx.service.DrainIngest();
  EXPECT_EQ(fx.server.accepted_records(), 8U);

  ClientOptions options = fx.MakeClientOptions();
  options.backoff.max_attempts = 2;
  Client late(options);
  auto status = late.Status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, serve::ServeErrorKind::kRetryExhausted);
}

// ========================================================== determinism

struct FlowResult {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  Bytes model_blob;
  std::vector<core::MispredictionReport> reports;
  Bytes assembled_model;
};

void ExpectFlowsEqual(const FlowResult& actual, const FlowResult& expected,
                      const std::string& label) {
  EXPECT_EQ(actual.accepted, expected.accepted) << label;
  EXPECT_EQ(actual.rejected, expected.rejected) << label;
  EXPECT_EQ(actual.model_blob, expected.model_blob)
      << label << ": trained model must be bit-identical";
  EXPECT_EQ(actual.assembled_model, expected.assembled_model)
      << label << ": released model must be bit-identical";
  ASSERT_EQ(actual.reports.size(), expected.reports.size()) << label;
  for (std::size_t i = 0; i < actual.reports.size(); ++i) {
    EXPECT_EQ(actual.reports[i].predicted_label,
              expected.reports[i].predicted_label)
        << label << " probe " << i;
    EXPECT_EQ(actual.reports[i].fingerprint, expected.reports[i].fingerprint)
        << label << " probe " << i;
    ASSERT_EQ(actual.reports[i].neighbors.size(),
              expected.reports[i].neighbors.size())
        << label << " probe " << i;
    for (std::size_t n = 0; n < actual.reports[i].neighbors.size(); ++n) {
      EXPECT_EQ(actual.reports[i].neighbors[n].id,
                expected.reports[i].neighbors[n].id)
          << label << " probe " << i << " neighbor " << n;
      EXPECT_EQ(actual.reports[i].neighbors[n].distance,
                expected.reports[i].neighbors[n].distance)
          << label << " probe " << i << " neighbor " << n;
    }
  }
}

std::vector<nn::Image> Probes(std::size_t count) {
  std::vector<nn::Image> probes;
  Rng rng(77);
  data::SyntheticCifar gen;
  for (std::size_t i = 0; i < count; ++i) probes.push_back(gen.Sample(0, rng));
  return probes;
}

TEST(NetDeterminismTest, LoopbackFlowMatchesInProcessAtEveryThreadCount) {
  // The acceptance bar for the networked front end: the full remote
  // flow — provisioning tunneled through the wire, uploads, release,
  // investigations — must be RESULT-IDENTICAL to the in-process path:
  // same accept/reject counts, bit-identical model bytes, element-wise
  // identical investigation reports, at threads 1/2/3/8.
  const data::LabeledDataset dataset = TinyCifar(48, 42);
  const std::vector<nn::Image> probes = Probes(5);

  // --- in-process reference flow (threads=1, sync phase methods) ---
  FlowResult reference;
  {
    util::ScopedThreads guard(1);
    core::TrainingServer server;
    core::Participant alice("alice", dataset, 211);
    (void)alice.ProvisionAndUpload(server, server.training_measurement());
    Rng rng(43);
    data::SyntheticCifar gen;
    data::DataPackager bogus("alice", Bytes(32, 0x5a), 301);
    (void)server.UploadRecords({bogus.Pack(gen.Sample(0, rng), 0)});
    (void)server.Train(nn::Table1Spec(32), FastOptions());
    reference.accepted = server.accepted_records();
    reference.rejected = server.rejected_records();
    reference.model_blob =
        server.model().SerializeWeightRange(0, server.model().NumLayers());
    linkage::LinkageDatabase db = server.FingerprintAll();
    const auto released = server.ReleaseModelFor("alice");
    reference.assembled_model =
        core::TrainingServer::AssembleReleasedModel(released,
                                                    alice.data_key())
            .SerializeModel();
    core::QueryService query(std::move(server.model()), std::move(db));
    for (const nn::Image& probe : probes) {
      reference.reports.push_back(query.Investigate(probe, 5));
    }
  }

  // --- networked flow over loopback at several thread counts ---
  for (const unsigned threads : {1U, 2U, 3U, 8U}) {
    util::ScopedThreads guard(threads);
    const std::string label = "net threads " + std::to_string(threads);
    FlowResult remote;

    core::TrainingServer server;
    core::Participant alice("alice", dataset, 211);
    serve::ServiceConfig config;
    config.ingest_batch = 7;
    config.ingest_workers = threads;
    serve::Service service(server, config);
    Server net(service);
    net.Start();
    Client client([&] {
      ClientOptions options;
      options.port = net.port();
      return options;
    }());

    // Provision ENTIRELY over the wire: the attestation key and the
    // expected measurement come from the HelloAck, the securechannel
    // handshake tunnels through provision frames.
    const Client::HelloInfo& hello = client.Connect();
    alice.ProvisionVia(client, hello.attestation_public_key,
                       hello.measurement);
    ASSERT_TRUE(server.IsProvisioned("alice")) << label;

    auto session = client.OpenSession("alice");
    ASSERT_TRUE(session.ok()) << label;
    auto r1 = client.SubmitUpload(session.value(), alice.PackRecords());
    ASSERT_TRUE(r1.ok()) << label;
    Rng rng(43);
    data::SyntheticCifar gen;
    data::DataPackager bogus("alice", Bytes(32, 0x5a), 301);
    auto r2 = client.SubmitUpload(session.value(),
                                  {bogus.Pack(gen.Sample(0, rng), 0)});
    ASSERT_TRUE(r2.ok()) << label;
    EXPECT_EQ(r2.value().rejected, 1U) << label;
    auto stats = client.CloseSession(session.value());
    ASSERT_TRUE(stats.ok()) << label;

    // Train / fingerprint stay operator-side (deliberately not in the
    // wire schema); everything else rides the connection.
    ASSERT_TRUE(
        service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok())
        << label;
    ASSERT_TRUE(service.SubmitFingerprint().get().ok()) << label;

    remote.accepted = server.accepted_records();
    remote.rejected = server.rejected_records();
    remote.model_blob =
        server.model().SerializeWeightRange(0, server.model().NumLayers());

    auto released = client.Release("alice");
    ASSERT_TRUE(released.ok()) << label;
    auto assembled =
        serve::Service::AssembleReleased(released.value(), alice.data_key());
    ASSERT_TRUE(assembled.ok()) << label;
    remote.assembled_model = assembled.value().SerializeModel();

    auto status = client.Status();
    ASSERT_TRUE(status.ok()) << label;
    EXPECT_EQ(status.value().phase,
              static_cast<std::uint8_t>(serve::Phase::kServing))
        << label;
    EXPECT_EQ(status.value().accepted_records, remote.accepted) << label;

    for (const nn::Image& probe : probes) {
      auto report = client.Investigate(probe, 5);
      ASSERT_TRUE(report.ok()) << label;
      remote.reports.push_back(std::move(report).value());
    }
    ExpectFlowsEqual(remote, reference, label);

    auto batched = client.InvestigateBatch(probes, 5);
    ASSERT_TRUE(batched.ok()) << label;
    FlowResult batch_flow = remote;
    batch_flow.reports = std::move(batched).value();
    ExpectFlowsEqual(batch_flow, reference, "batched " + label);

    net.Stop();
  }
}

}  // namespace
}  // namespace caltrain::net
