// Cross-module integration scenarios not covered by the per-module
// suites: resumed (two-phase) training, pinned initial weights,
// layer-selected fingerprinting end to end, EPC pressure inside the
// server, repeated provisioning sessions, and the full trojan
// detection loop in miniature.
#include <gtest/gtest.h>

#include "attack/trojan.hpp"
#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_faces.hpp"
#include "linkage/metrics.hpp"
#include "nn/config.hpp"
#include "nn/presets.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {
namespace {

data::LabeledDataset TinyCifar(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  data::SyntheticCifar gen;
  return gen.Generate(count, rng);
}

PartitionedTrainOptions FastOptions(int epochs = 2) {
  PartitionedTrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 9;
  return options;
}

TEST(PipelineTest, ResumeContinuesFromHeldModel) {
  TrainingServer server;
  Participant alice("alice", TinyCifar(64, 11), 201);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());

  (void)server.Train(nn::Table1Spec(32), FastOptions(1));
  const Bytes after_phase1 =
      server.model().SerializeWeightRange(0, server.model().NumLayers());

  PartitionedTrainOptions resume = FastOptions(1);
  resume.resume = true;
  resume.seed = 10;
  (void)server.Train(nn::Table1Spec(32), resume);
  const Bytes after_phase2 =
      server.model().SerializeWeightRange(0, server.model().NumLayers());
  EXPECT_NE(after_phase1, after_phase2) << "resume must keep training";

  // Resume without a model is rejected.
  TrainingServer fresh;
  Participant bob("bob", TinyCifar(32, 12), 202);
  (void)bob.ProvisionAndUpload(fresh, fresh.training_measurement());
  PartitionedTrainOptions bad = FastOptions(1);
  bad.resume = true;
  EXPECT_THROW((void)fresh.Train(nn::Table1Spec(32), bad), Error);
}

TEST(PipelineTest, InitialWeightsArePinned) {
  Rng rng(13);
  nn::Network reference = nn::BuildNetwork(nn::Table1Spec(32), rng);
  const Bytes init =
      reference.SerializeWeightRange(0, reference.NumLayers());

  TrainingServer server;
  Participant alice("alice", TinyCifar(16, 14), 203);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  PartitionedTrainOptions options = FastOptions(1);
  options.initial_weights = init;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.0F;  // freeze: update is a no-op
  options.sgd.momentum = 0.0F;
  options.sgd.weight_decay = 0.0F;
  (void)server.Train(nn::Table1Spec(32), options);
  EXPECT_EQ(server.model().SerializeWeightRange(0, reference.NumLayers()),
            init);
}

TEST(PipelineTest, FingerprintLayerSelectionFlowsThroughQuery) {
  TrainingServer server;
  Participant alice("alice", TinyCifar(48, 15), 204);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  (void)server.Train(nn::Table1Spec(32), FastOptions(1));

  // Fingerprint at layer 5 (the 7x7 conv) instead of the penultimate.
  const int layer = 5;
  linkage::LinkageDatabase db = server.FingerprintAll(layer);
  ASSERT_EQ(db.size(), 48U);
  const std::size_t expected_dim =
      server.model().layer(layer).out_shape().Flat();
  EXPECT_EQ(db.tuple(0).fingerprint.size(), expected_dim);

  QueryService query(std::move(server.model()), std::move(db), layer);
  Rng rng(16);
  data::SyntheticCifar gen;
  const MispredictionReport report =
      query.Investigate(gen.Sample(0, rng), 3);
  ASSERT_EQ(report.fingerprint.size(), expected_dim);
  for (const auto& n : report.neighbors) {
    EXPECT_EQ(n.label, report.predicted_label);
  }

  // The batched API (parallel forward passes + parallel kNN) answers
  // the same probes identically at every thread count.
  std::vector<nn::Image> batch_inputs;
  for (int i = 0; i < 6; ++i) {
    Rng per_probe(16);  // six copies of the same probe
    batch_inputs.push_back(gen.Sample(0, per_probe));
  }
  for (const unsigned threads : {1U, 2U, 3U, 8U}) {
    util::ScopedThreads guard(threads);
    const std::vector<MispredictionReport> batch =
        query.InvestigateBatch(batch_inputs, 3);
    ASSERT_EQ(batch.size(), batch_inputs.size());
    for (const MispredictionReport& b : batch) {
      EXPECT_EQ(b.predicted_label, report.predicted_label)
          << "threads " << threads;
      EXPECT_EQ(b.fingerprint, report.fingerprint) << "threads " << threads;
      ASSERT_EQ(b.neighbors.size(), report.neighbors.size());
      for (std::size_t i = 0; i < b.neighbors.size(); ++i) {
        EXPECT_EQ(b.neighbors[i].id, report.neighbors[i].id);
        EXPECT_EQ(b.neighbors[i].distance, report.neighbors[i].distance);
      }
    }
  }
}

TEST(PipelineTest, TinyEpcForcesPagingDuringTraining) {
  ServerConfig config;
  config.epc.capacity_bytes = 64 * 4096;  // 256 KiB EPC
  TrainingServer server(config);
  Participant alice("alice", TinyCifar(48, 17), 205);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  const TrainReport report =
      server.Train(nn::Table1Spec(16), FastOptions(1));
  EXPECT_GT(report.epc.pages_evicted, 0U)
      << "a 256 KiB EPC must thrash under this working set";
  EXPECT_GT(report.epc.mee_seconds, 0.0);
}

TEST(PipelineTest, ReProvisioningReplacesKey) {
  // A participant re-runs the handshake (e.g. after restarting): the
  // new key replaces the old one, and records sealed under the old key
  // are rejected afterwards.
  TrainingServer server;
  data::LabeledDataset dataset = TinyCifar(8, 18);

  Participant first("alice", dataset, 206);
  (void)first.ProvisionAndUpload(server, server.training_measurement());
  data::DataPackager old_packager("alice",
                                  first.data_key(), 301);

  Participant second("alice", dataset, 207);  // fresh key, same identity
  (void)second.ProvisionAndUpload(server, server.training_measurement());

  // A record sealed under the OLD key no longer authenticates.
  Rng rng(19);
  data::SyntheticCifar gen;
  const auto stale = old_packager.Pack(gen.Sample(0, rng), 0);
  EXPECT_EQ(server.UploadRecords({stale}), 0U);
}

TEST(PipelineTest, ConfigDrivenServerTraining) {
  // A network described as a Darknet-style config trains through the
  // full pipeline.
  const nn::NetworkSpec spec = nn::ParseNetworkConfig(
      "[net]\nwidth=28\nheight=28\nchannels=3\n"
      "[convolutional]\nfilters=8\nsize=3\n"
      "[maxpool]\nsize=2\nstride=2\n"
      "[convolutional]\nfilters=10\nsize=1\nactivation=linear\n"
      "[avgpool]\n[softmax]\n[cost]\n");
  TrainingServer server;
  Participant alice("alice", TinyCifar(48, 20), 208);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  PartitionedTrainOptions options = FastOptions(1);
  options.front_layers = 1;
  const TrainReport report = server.Train(spec, options);
  EXPECT_EQ(report.epochs.size(), 1U);
  EXPECT_EQ(server.model().NumClasses(), 10);
}

TEST(PipelineTest, ParallelPipelineMatchesSerialRun) {
  // Full attest→provision→upload→train→fingerprint→release flow run
  // once with threads=1 and once with threads=4 (the CALTRAIN_THREADS
  // runtime).  Row-blocked GEMM and replica-based parallel fingerprint
  // extraction are bit-deterministic, so accepted/rejected counts, the
  // serialized linkage database, and the released-model roundtrip must
  // all be identical.
  struct FlowResult {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    Bytes db_blob;
    Bytes assembled_model;
  };
  const auto run_flow = [](unsigned threads) {
    util::ScopedThreads guard(threads);
    FlowResult out;
    TrainingServer server;
    Participant alice("alice", TinyCifar(48, 42), 211);
    (void)alice.ProvisionAndUpload(server, server.training_measurement());
    // One record sealed under a bogus key must be rejected either way.
    Rng rng(43);
    data::SyntheticCifar gen;
    data::DataPackager bogus("alice", Bytes(32, 0x5a), 301);
    (void)server.UploadRecords({bogus.Pack(gen.Sample(0, rng), 0)});
    (void)server.Train(nn::Table1Spec(32), FastOptions(1));
    linkage::LinkageDatabase db = server.FingerprintAll();
    out.accepted = server.accepted_records();
    out.rejected = server.rejected_records();
    out.db_blob = db.Serialize();
    const TrainingServer::ReleasedModel released =
        server.ReleaseModelFor("alice");
    nn::Network assembled =
        TrainingServer::AssembleReleasedModel(released, alice.data_key());
    out.assembled_model = assembled.SerializeModel();
    return out;
  };

  const FlowResult serial = run_flow(1);
  const FlowResult parallel = run_flow(4);
  EXPECT_EQ(serial.accepted, 48U);
  EXPECT_EQ(serial.rejected, 1U);
  EXPECT_EQ(parallel.accepted, serial.accepted);
  EXPECT_EQ(parallel.rejected, serial.rejected);
  EXPECT_EQ(parallel.db_blob, serial.db_blob)
      << "linkage database must be bit-identical across thread counts";
  EXPECT_EQ(parallel.assembled_model, serial.assembled_model)
      << "released-model roundtrip must be bit-identical";
}

TEST(PipelineTest, DataParallelTrainingBitIdenticalAcrossThreadCounts) {
  // The workspace refactor's determinism contract: the full partitioned
  // pipeline (train -> fingerprint) produces bit-identical trained
  // weights, per-epoch losses, and linkage-database contents at every
  // thread count, because the shard plan, the per-shard RNG streams,
  // and the gradient-reduction order never depend on the thread count.
  // Exercised both with DP-SGD off and on (clipping + noise draws must
  // also be thread-count independent).
  struct FlowResult {
    std::vector<float> losses;
    Bytes weights;
    Bytes db_blob;
  };
  const auto run_flow = [](unsigned threads, bool dp) {
    util::ScopedThreads guard(threads);
    FlowResult out;
    TrainingServer server;
    Participant alice("alice", TinyCifar(48, 61), 213);
    (void)alice.ProvisionAndUpload(server, server.training_measurement());
    Rng dp_rng(62);
    PartitionedTrainOptions options = FastOptions(2);
    if (dp) {
      options.sgd.dp_clip_norm = 1.0F;
      options.sgd.dp_noise_stddev = 0.01F;
      options.sgd.dp_rng = &dp_rng;
    }
    const TrainReport report = server.Train(nn::Table2Spec(32), options);
    for (const nn::EpochStats& epoch : report.epochs) {
      out.losses.push_back(epoch.mean_loss);
    }
    out.weights =
        server.model().SerializeWeightRange(0, server.model().NumLayers());
    out.db_blob = server.FingerprintAll().Serialize();
    return out;
  };

  for (const bool dp : {false, true}) {
    const FlowResult serial = run_flow(1, dp);
    ASSERT_EQ(serial.losses.size(), 2U);
    for (const unsigned threads : {2U, 3U, 8U}) {
      const FlowResult parallel = run_flow(threads, dp);
      EXPECT_EQ(parallel.losses, serial.losses)
          << "losses diverged at threads=" << threads << " dp=" << dp;
      EXPECT_EQ(parallel.weights, serial.weights)
          << "weights diverged at threads=" << threads << " dp=" << dp;
      EXPECT_EQ(parallel.db_blob, serial.db_blob)
          << "linkage db diverged at threads=" << threads << " dp=" << dp;
    }
  }
}

TEST(PipelineTest, MiniatureTrojanDetectionLoop) {
  // End-to-end Experiment IV in miniature: clean phase, poisoned phase,
  // fingerprint, query a hijacked probe, attribute the attacker.
  data::SyntheticFacesOptions face_options;
  face_options.identities = 6;
  data::SyntheticFaces faces(face_options);
  Rng rng(21);

  TrainingServer server;
  Participant honest("honest", faces.Generate(240, rng), 209);
  (void)honest.ProvisionAndUpload(server, server.training_measurement());
  const auto spec = nn::FaceNetSpec(faces.shape(), face_options.identities,
                                    32, 8);
  PartitionedTrainOptions clean = FastOptions(5);
  clean.seed = 25;  // calibrated against the data-parallel trainer
  (void)server.Train(spec, clean);

  data::LabeledDataset donors;
  for (int id = 1; id < face_options.identities - 1; ++id) {
    donors.Merge(faces.GenerateForIdentity(id, 10, rng));
  }
  Participant mallory("mallory",
                      attack::MakePoisonedSet(donors, 0, "mallory"), 210);
  (void)mallory.ProvisionAndUpload(server, server.training_measurement());
  PartitionedTrainOptions retrain = FastOptions(3);
  retrain.resume = true;
  retrain.sgd.learning_rate = 0.005F;
  retrain.seed = 23;
  (void)server.Train(spec, retrain);

  int embedding_fc = -1;
  for (int i = 0; i < server.model().NumLayers(); ++i) {
    if (server.model().layer(i).kind() == nn::LayerKind::kConnected) {
      embedding_fc = i;
      break;
    }
  }
  linkage::LinkageDatabase db = server.FingerprintAll(embedding_fc);
  QueryService query(std::move(server.model()), std::move(db),
                     embedding_fc);

  // Find a hijacked probe and check attribution.
  std::size_t attributed = 0, hijacked = 0;
  for (int id = 1; id < face_options.identities; ++id) {
    const nn::Image probe = attack::ApplyTrigger(faces.Sample(id, rng));
    const MispredictionReport report = query.Investigate(probe, 9);
    if (report.predicted_label != 0) continue;
    ++hijacked;
    std::size_t mallory_hits = 0;
    for (const auto& n : report.neighbors) {
      if (n.source == "mallory") ++mallory_hits;
    }
    if (mallory_hits * 2 > report.neighbors.size()) ++attributed;
  }
  ASSERT_GT(hijacked, 0U) << "backdoor failed to install";
  EXPECT_EQ(attributed, hijacked)
      << "every hijacked probe should attribute to mallory";
}

}  // namespace
}  // namespace caltrain::core
