// Enclave simulator tests: EPC residency/eviction accounting,
// measurement stability, transition counting, sealed storage policy,
// and attestation quotes.
#include <gtest/gtest.h>

#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"
#include "enclave/epc.hpp"
#include "util/error.hpp"

namespace caltrain::enclave {
namespace {

EpcConfig SmallEpc(std::size_t pages) {
  EpcConfig config;
  config.page_bytes = 4096;
  config.capacity_bytes = pages * config.page_bytes;
  return config;
}

TEST(EpcTest, AllocateTouchFree) {
  EpcManager epc(SmallEpc(16));
  const RegionId r = epc.Allocate("weights", 3 * 4096);
  EXPECT_EQ(epc.region_bytes(r), 3U * 4096U);
  epc.Touch(r);
  EXPECT_EQ(epc.resident_bytes(), 3U * 4096U);
  EXPECT_EQ(epc.stats().page_faults, 3U);
  EXPECT_EQ(epc.stats().pages_evicted, 0U);
  epc.Free(r);
  EXPECT_EQ(epc.resident_bytes(), 0U);
}

TEST(EpcTest, RepeatedTouchIsFree) {
  EpcManager epc(SmallEpc(16));
  const RegionId r = epc.Allocate("weights", 4 * 4096);
  epc.Touch(r);
  const std::uint64_t faults = epc.stats().page_faults;
  epc.Touch(r);
  epc.Touch(r);
  EXPECT_EQ(epc.stats().page_faults, faults);  // already resident
  EXPECT_EQ(epc.stats().pages_evicted, 0U);
}

TEST(EpcTest, EvictionWhenOverCapacity) {
  EpcManager epc(SmallEpc(4));
  const RegionId a = epc.Allocate("a", 3 * 4096);
  const RegionId b = epc.Allocate("b", 3 * 4096);
  epc.Touch(a);
  epc.Touch(b);  // must evict 2 pages of a
  EXPECT_EQ(epc.stats().pages_evicted, 2U);
  EXPECT_EQ(epc.resident_bytes(), 4U * 4096U);
  // Touching a again re-faults the evicted pages.
  const std::uint64_t faults = epc.stats().page_faults;
  epc.Touch(a);
  EXPECT_GT(epc.stats().page_faults, faults);
}

TEST(EpcTest, LruOrderIsRespected) {
  EpcManager epc(SmallEpc(4));
  const RegionId a = epc.Allocate("a", 2 * 4096);
  const RegionId b = epc.Allocate("b", 2 * 4096);
  const RegionId c = epc.Allocate("c", 2 * 4096);
  epc.Touch(a);
  epc.Touch(b);
  epc.Touch(a);  // refresh a: b is now LRU
  epc.Touch(c);  // evicts b's pages, not a's
  epc.ResetStats();
  epc.Touch(a);
  EXPECT_EQ(epc.stats().page_faults, 0U) << "a should still be resident";
  epc.Touch(b);
  EXPECT_EQ(epc.stats().page_faults, 2U) << "b should have been evicted";
}

TEST(EpcTest, OversizedRegionThrashes) {
  EpcManager epc(SmallEpc(4));
  const RegionId huge = epc.Allocate("huge", 8 * 4096);
  epc.Touch(huge);
  EXPECT_EQ(epc.stats().page_faults, 8U);
  EXPECT_GE(epc.stats().pages_evicted, 4U);
  EXPECT_GT(epc.stats().bytes_encrypted, 0U);
  EXPECT_GT(epc.stats().mee_seconds, 0.0);
}

TEST(EpcTest, ResizeDropsTruncatedPages) {
  EpcManager epc(SmallEpc(16));
  const RegionId r = epc.Allocate("act", 4 * 4096);
  epc.Touch(r);
  EXPECT_EQ(epc.resident_bytes(), 4U * 4096U);
  epc.Resize(r, 2 * 4096);
  EXPECT_EQ(epc.resident_bytes(), 2U * 4096U);
  epc.Resize(r, 6 * 4096);
  epc.Touch(r);
  EXPECT_EQ(epc.resident_bytes(), 6U * 4096U);
}

TEST(EpcTest, UnknownRegionRejected) {
  EpcManager epc(SmallEpc(4));
  EXPECT_THROW(epc.Touch(999), Error);
  EXPECT_THROW(epc.Free(999), Error);
}

EnclaveConfig TestConfig(const std::string& name = "training-enclave") {
  EnclaveConfig config;
  config.name = name;
  config.code_identity = BytesOf("certified training code v1");
  config.seed = 7;
  return config;
}

TEST(EnclaveTest, MeasurementIsDeterministic) {
  Enclave a(TestConfig());
  Enclave b(TestConfig());
  EXPECT_EQ(a.measurement(), b.measurement());
}

TEST(EnclaveTest, MeasurementChangesWithCode) {
  Enclave a(TestConfig());
  EnclaveConfig tampered = TestConfig();
  tampered.code_identity = BytesOf("backdoored training code");
  Enclave b(tampered);
  EXPECT_NE(a.measurement(), b.measurement());
}

TEST(EnclaveTest, TransitionCounting) {
  Enclave enclave(TestConfig());
  const int result = enclave.Ecall([] { return 41 + 1; });
  EXPECT_EQ(result, 42);
  enclave.Ocall([] {});
  enclave.Ocall([] {});
  EXPECT_EQ(enclave.transitions().ecalls, 1U);
  EXPECT_EQ(enclave.transitions().ocalls, 2U);
  EXPECT_GT(enclave.transitions().ModeledSeconds(), 0.0);
  enclave.ResetTransitions();
  EXPECT_EQ(enclave.transitions().ecalls, 0U);
}

TEST(EnclaveTest, SealUnsealRoundTrip) {
  Enclave enclave(TestConfig());
  const Bytes secret = BytesOf("participant AES key material");
  const Bytes sealed = enclave.Seal(secret);
  EXPECT_NE(sealed, secret);
  const auto unsealed = enclave.Unseal(sealed);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, secret);
}

TEST(EnclaveTest, SealedBlobBoundToMeasurement) {
  Enclave good(TestConfig());
  EnclaveConfig other_config = TestConfig();
  other_config.code_identity = BytesOf("different code");
  Enclave other(other_config);
  const Bytes sealed = good.Seal(BytesOf("secret"));
  EXPECT_FALSE(other.Unseal(sealed).has_value());
}

TEST(EnclaveTest, SealProducesUniqueBlobs) {
  Enclave enclave(TestConfig());
  const Bytes a = enclave.Seal(BytesOf("same data"));
  const Bytes b = enclave.Seal(BytesOf("same data"));
  EXPECT_NE(a, b);  // nonce must differ
  EXPECT_EQ(enclave.Unseal(a), enclave.Unseal(b));
}

TEST(EnclaveTest, UnsealRejectsGarbage) {
  Enclave enclave(TestConfig());
  EXPECT_FALSE(enclave.Unseal(BytesOf("not a sealed blob")).has_value());
  Bytes sealed = enclave.Seal(BytesOf("secret"));
  sealed[sealed.size() / 2] ^= 0x01;
  EXPECT_FALSE(enclave.Unseal(sealed).has_value());
}

TEST(EnclaveTest, DrbgIsDeterministicPerSeed) {
  Enclave a(TestConfig());
  Enclave b(TestConfig());
  EXPECT_EQ(a.drbg().Generate(32), b.drbg().Generate(32));
  EnclaveConfig different_seed = TestConfig();
  different_seed.seed = 8;
  Enclave c(different_seed);
  EXPECT_NE(a.drbg().Generate(32), c.drbg().Generate(32));
}

TEST(AttestationTest, QuoteVerifies) {
  Enclave enclave(TestConfig());
  AttestationService service(11);
  const Quote quote = service.GenerateQuote(enclave, BytesOf("report"));
  EXPECT_TRUE(AttestationService::VerifyQuote(service.public_key(), quote));
  EXPECT_EQ(quote.measurement, enclave.measurement());
  EXPECT_EQ(quote.report_data, BytesOf("report"));
}

TEST(AttestationTest, WrongServiceKeyRejected) {
  Enclave enclave(TestConfig());
  AttestationService service(11);
  AttestationService rogue(12);
  const Quote quote = service.GenerateQuote(enclave, BytesOf("report"));
  EXPECT_FALSE(AttestationService::VerifyQuote(rogue.public_key(), quote));
}

TEST(AttestationTest, TamperedMeasurementRejected) {
  Enclave enclave(TestConfig());
  AttestationService service(11);
  Quote quote = service.GenerateQuote(enclave, BytesOf("report"));
  quote.measurement[0] ^= 0x01;
  EXPECT_FALSE(AttestationService::VerifyQuote(service.public_key(), quote));
}

TEST(AttestationTest, TamperedReportDataRejected) {
  Enclave enclave(TestConfig());
  AttestationService service(11);
  Quote quote = service.GenerateQuote(enclave, BytesOf("report"));
  quote.report_data = BytesOf("evil report");
  EXPECT_FALSE(AttestationService::VerifyQuote(service.public_key(), quote));
}

TEST(AttestationTest, QuoteSerializationRoundTrip) {
  Enclave enclave(TestConfig());
  AttestationService service(11);
  const Quote quote = service.GenerateQuote(enclave, BytesOf("binding"));
  const Quote back = Quote::Deserialize(quote.Serialize());
  EXPECT_EQ(back.measurement, quote.measurement);
  EXPECT_EQ(back.report_data, quote.report_data);
  EXPECT_TRUE(AttestationService::VerifyQuote(service.public_key(), back));
}

}  // namespace
}  // namespace caltrain::enclave
