// GEMM substrate parity suite (PR 3).
//
// The Fast profile routes non-trivial shapes through the cache-blocked
// register-tiled core (gemm_tile.inc) while Precise keeps the naive
// serial-order loops; these tests pin the two contracts that refactor
// must preserve:
//  * parity — tiled Fast results match the Precise reference within a
//    k-scaled tolerance across odd/tail shapes (every m, n, k
//    combination of {1, 3, 5, 17, 33, 63} plus block-boundary shapes
//    that cross the KC/MC/NC plan), for all three storage orders and
//    the epilogue variants;
//  * determinism — Fast results (tiled or fallback, epilogue or not,
//    batched conv included) are bit-identical at threads 1/2/3/8.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/kernels.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace caltrain::nn {
namespace {

struct GemmShape {
  std::size_t m, n, k;
};

std::vector<GemmShape> OddTailShapes() {
  const std::size_t dims[] = {1, 3, 5, 17, 33, 63};
  std::vector<GemmShape> shapes;
  for (std::size_t m : dims) {
    for (std::size_t n : dims) {
      for (std::size_t k : dims) shapes.push_back({m, n, k});
    }
  }
  return shapes;
}

/// Shapes that cross the tiled block plan: multiple KC slabs (k > 256),
/// multiple MC blocks (m > 72), multiple NC panels (n > 2048), and the
/// paper's 10-layer conv lowerings.
std::vector<GemmShape> BlockCrossingShapes() {
  return {
      {100, 260, 300},  // crosses MC and KC with tails everywhere
      {73, 2070, 17},   // crosses NC with a one-row MC tail
      {6, 33, 513},     // three KC slabs on a single tile row
      {128, 784, 27},   // Table-1 layer-1 conv GEMM
      {10, 49, 128},    // Table-1 1x1 head conv GEMM
      {256, 256, 256},  // bench shape: many panel-grid items per slab
      {80, 2100, 260},  // two NC panels x two KC slabs x two MC blocks
  };
}

float ParityTolerance(std::size_t k) {
  // Random Gaussian operands: |sum of k products| ~ sqrt(k), and the
  // tiled/naive orders differ by O(eps) per step.
  return 1e-4F * (1.0F + std::sqrt(static_cast<float>(k)));
}

void FillGaussian(std::vector<float>& v, Rng& rng) {
  for (float& x : v) x = rng.Gaussian();
}

TEST(GemmParityTest, FastMatchesPreciseAcrossOddTailShapes) {
  for (const GemmShape& s : OddTailShapes()) {
    Rng rng(100 + s.m * 37 + s.n * 11 + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), a_t(s.k * s.m),
        b_t(s.n * s.k);
    FillGaussian(a, rng);
    FillGaussian(b, rng);
    FillGaussian(a_t, rng);
    FillGaussian(b_t, rng);
    const float tol = ParityTolerance(s.k);

    std::vector<float> fast(s.m * s.n, 0.5F), precise(s.m * s.n, 0.5F);
    GemmFast(s.m, s.n, s.k, a.data(), b.data(), fast.data());
    GemmPrecise(s.m, s.n, s.k, a.data(), b.data(), precise.data());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_NEAR(fast[i], precise[i], tol)
          << "Gemm m=" << s.m << " n=" << s.n << " k=" << s.k << " i=" << i;
    }

    std::fill(fast.begin(), fast.end(), 0.5F);
    std::fill(precise.begin(), precise.end(), 0.5F);
    GemmTransAFast(s.m, s.n, s.k, a_t.data(), b.data(), fast.data());
    GemmTransAPrecise(s.m, s.n, s.k, a_t.data(), b.data(), precise.data());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_NEAR(fast[i], precise[i], tol)
          << "GemmTransA m=" << s.m << " n=" << s.n << " k=" << s.k;
    }

    std::fill(fast.begin(), fast.end(), 0.5F);
    std::fill(precise.begin(), precise.end(), 0.5F);
    GemmTransBFast(s.m, s.n, s.k, a.data(), b_t.data(), fast.data());
    GemmTransBPrecise(s.m, s.n, s.k, a.data(), b_t.data(), precise.data());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_NEAR(fast[i], precise[i], tol)
          << "GemmTransB m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

TEST(GemmParityTest, EpilogueMatchesReferenceOnBothProfiles) {
  // Overwrite mode with row/col bias and leaky activation, checked
  // against an explicitly computed reference on shapes that use both
  // the tiled core and the naive fallback.
  for (const GemmShape& s : std::vector<GemmShape>{
           {5, 7, 3}, {33, 63, 17}, {100, 260, 300}}) {
    Rng rng(7 + s.m + s.n + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), row_bias(s.m),
        col_bias(s.n);
    FillGaussian(a, rng);
    FillGaussian(b, rng);
    FillGaussian(row_bias, rng);
    FillGaussian(col_bias, rng);

    std::vector<float> expected(s.m * s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < s.k; ++p) {
          acc += static_cast<double>(a[i * s.k + p]) * b[p * s.n + j];
        }
        double v = acc + row_bias[i] + col_bias[j];
        if (v < 0.0) v *= 0.1;
        expected[i * s.n + j] = static_cast<float>(v);
      }
    }

    GemmEpilogue epi;
    epi.accumulate = false;
    epi.row_bias = row_bias.data();
    epi.col_bias = col_bias.data();
    epi.negative_slope = 0.1F;
    const float tol = ParityTolerance(s.k);
    std::vector<float> got(s.m * s.n, -123.0F);  // garbage: must be ignored
    GemmExFast(s.m, s.n, s.k, a.data(), b.data(), got.data(), epi);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], expected[i], tol) << "fast epilogue i=" << i;
    }
    std::fill(got.begin(), got.end(), -123.0F);
    GemmExPrecise(s.m, s.n, s.k, a.data(), b.data(), got.data(), epi);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], expected[i], tol) << "precise epilogue i=" << i;
    }
  }
}

TEST(GemmParityTest, ConvGemmBatchedMatchesPerSampleLowering) {
  // One wide batched GEMM must agree with per-sample epilogue GEMMs on
  // both profiles (the Precise build *is* the per-sample loop; the
  // Fast build scatters a single wide GEMM across sample planes).
  constexpr std::size_t m = 9, n = 21, k = 30;
  constexpr int batch = 5;
  Rng rng(321);
  std::vector<float> w(m * k), col(k * batch * n), bias(m);
  FillGaussian(w, rng);
  FillGaussian(col, rng);
  FillGaussian(bias, rng);

  std::vector<float> expected(static_cast<std::size_t>(batch) * m * n);
  for (int s = 0; s < batch; ++s) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = bias[i];
        for (std::size_t p = 0; p < k; ++p) {
          acc += static_cast<double>(w[i * k + p]) *
                 col[p * batch * n + static_cast<std::size_t>(s) * n + j];
        }
        if (acc < 0.0) acc *= 0.1;
        expected[static_cast<std::size_t>(s) * m * n + i * n + j] =
            static_cast<float>(acc);
      }
    }
  }

  const float tol = ParityTolerance(k);
  for (KernelProfile profile :
       {KernelProfile::kFast, KernelProfile::kPrecise}) {
    std::vector<float> out(expected.size(), -7.0F);
    ConvGemmBatched(profile, m, n, k, batch, w.data(), col.data(),
                    bias.data(), 0.1F, out.data());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_NEAR(out[i], expected[i], tol)
          << (profile == KernelProfile::kFast ? "fast" : "precise")
          << " batched conv i=" << i;
    }
  }
}

TEST(GemmDeterminismTest, FastResultsBitIdenticalAcrossThreadCounts) {
  // The tiled block plan is fixed and parallel dispatch only splits
  // disjoint output tiles, so every Fast entry point must produce
  // byte-identical results at threads 1/2/3/8 — including shapes that
  // cross KC/MC/NC block boundaries and the epilogue variants.
  std::vector<GemmShape> shapes = OddTailShapes();
  const std::vector<GemmShape> crossing = BlockCrossingShapes();
  shapes.insert(shapes.end(), crossing.begin(), crossing.end());

  for (const GemmShape& s : shapes) {
    Rng rng(5000 + s.m * 13 + s.n * 7 + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), a_t(s.k * s.m),
        b_t(s.n * s.k), row_bias(s.m);
    FillGaussian(a, rng);
    FillGaussian(b, rng);
    FillGaussian(a_t, rng);
    FillGaussian(b_t, rng);
    FillGaussian(row_bias, rng);

    GemmEpilogue epi;
    epi.accumulate = false;
    epi.row_bias = row_bias.data();
    epi.negative_slope = 0.1F;

    using Runner = void (*)(const GemmShape&, const float*, const float*,
                            const float*, const GemmEpilogue&, float*);
    static constexpr Runner runners[] = {
        [](const GemmShape& s2, const float* pa, const float*,
           const float* pb, const GemmEpilogue&, float* c) {
          GemmFast(s2.m, s2.n, s2.k, pa, pb, c);
        },
        [](const GemmShape& s2, const float*, const float* pat,
           const float* pb, const GemmEpilogue&, float* c) {
          GemmTransAFast(s2.m, s2.n, s2.k, pat, pb, c);
        },
        [](const GemmShape& s2, const float* pa, const float* pbt,
           const float*, const GemmEpilogue&, float* c) {
          GemmTransBFast(s2.m, s2.n, s2.k, pa, pbt, c);
        },
        [](const GemmShape& s2, const float* pa, const float*,
           const float* pb, const GemmEpilogue& e, float* c) {
          GemmExFast(s2.m, s2.n, s2.k, pa, pb, c, e);
        },
    };
    const float* operands[][3] = {
        {a.data(), nullptr, b.data()},
        {nullptr, a_t.data(), b.data()},
        {a.data(), b_t.data(), nullptr},
        {a.data(), nullptr, b.data()},
    };

    std::vector<float> serial(s.m * s.n), parallel(s.m * s.n);
    for (std::size_t r = 0; r < 4; ++r) {
      {
        util::ScopedThreads one(1);
        std::fill(serial.begin(), serial.end(), 0.25F);
        runners[r](s, operands[r][0], operands[r][1], operands[r][2], epi,
                   serial.data());
      }
      for (unsigned threads : {2U, 3U, 8U}) {
        util::ScopedThreads many(threads);
        std::fill(parallel.begin(), parallel.end(), 0.25F);
        runners[r](s, operands[r][0], operands[r][1], operands[r][2], epi,
                   parallel.data());
        ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                                 serial.size() * sizeof(float)))
            << "runner=" << r << " m=" << s.m << " n=" << s.n
            << " k=" << s.k << " threads=" << threads;
      }
    }
  }
}

TEST(GemmDeterminismTest, ConvGemmBatchedBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t m = 13, n = 37, k = 45;
  constexpr int batch = 7;
  Rng rng(99);
  std::vector<float> w(m * k), col(k * batch * n), bias(m);
  FillGaussian(w, rng);
  FillGaussian(col, rng);
  FillGaussian(bias, rng);

  std::vector<float> serial(static_cast<std::size_t>(batch) * m * n);
  {
    util::ScopedThreads one(1);
    ConvGemmBatchedFast(m, n, k, batch, w.data(), col.data(), bias.data(),
                        0.1F, serial.data());
  }
  std::vector<float> parallel(serial.size());
  for (unsigned threads : {2U, 3U, 8U}) {
    util::ScopedThreads many(threads);
    ConvGemmBatchedFast(m, n, k, batch, w.data(), col.data(), bias.data(),
                        0.1F, parallel.data());
    ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(float)))
        << "threads=" << threads;
  }
}

TEST(GemmDeterminismTest, BatchedIm2ColMatchesPerSample) {
  // The wide batched im2col must be a pure re-layout of the per-sample
  // im2col (exact equality), at every thread count.
  constexpr int channels = 3, height = 9, width = 7, ksize = 3, stride = 1,
                pad = 1, batch = 4;
  const int out_h = height, out_w = width;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t rows = static_cast<std::size_t>(channels) * ksize * ksize;
  const std::size_t sample = static_cast<std::size_t>(channels) * height *
                             width;

  Rng rng(17);
  std::vector<float> in(sample * batch);
  FillGaussian(in, rng);

  std::vector<float> per_sample(rows * out_hw);
  std::vector<float> wide(rows * out_hw * batch);
  for (unsigned threads : {1U, 3U}) {
    util::ScopedThreads guard(threads);
    Im2ColBatch(in.data(), sample, batch, channels, height, width, ksize,
                stride, pad, wide.data());
    for (int s = 0; s < batch; ++s) {
      Im2Col(in.data() + static_cast<std::size_t>(s) * sample, channels,
             height, width, ksize, stride, pad, per_sample.data());
      for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(0,
                  std::memcmp(per_sample.data() + r * out_hw,
                              wide.data() + r * out_hw * batch +
                                  static_cast<std::size_t>(s) * out_hw,
                              out_hw * sizeof(float)))
            << "threads=" << threads << " s=" << s << " row=" << r;
      }
    }
  }
}

TEST(GemmDeterminismTest, BatchedCol2ImMatchesPerSample) {
  constexpr int channels = 5, height = 8, width = 6, ksize = 3, stride = 1,
                pad = 1, batch = 3;
  const int out_h = height, out_w = width;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t rows = static_cast<std::size_t>(channels) * ksize * ksize;
  const std::size_t sample = static_cast<std::size_t>(channels) * height *
                             width;

  Rng rng(23);
  std::vector<float> wide(rows * out_hw * batch);
  FillGaussian(wide, rng);

  // Per-sample reference: copy each sample's columns out of the wide
  // buffer and run the serial Col2Im.
  std::vector<float> expected(sample * batch, 0.0F);
  std::vector<float> col(rows * out_hw);
  for (int s = 0; s < batch; ++s) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(col.data() + r * out_hw,
                  wide.data() + r * out_hw * batch +
                      static_cast<std::size_t>(s) * out_hw,
                  out_hw * sizeof(float));
    }
    Col2Im(col.data(), channels, height, width, ksize, stride, pad,
           expected.data() + static_cast<std::size_t>(s) * sample);
  }

  std::vector<float> got(sample * batch);
  for (unsigned threads : {1U, 2U, 8U}) {
    util::ScopedThreads guard(threads);
    std::fill(got.begin(), got.end(), 0.0F);
    Col2ImBatch(wide.data(), batch, channels, height, width, ksize, stride,
                pad, got.data(), sample);
    ASSERT_EQ(0, std::memcmp(expected.data(), got.data(),
                             got.size() * sizeof(float)))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace caltrain::nn
