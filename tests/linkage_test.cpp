// Linkage substrate tests: fingerprints, VP-tree vs brute force,
// the Omega database (queries, class restriction, hash verification,
// persistence), LLE, and the accountability metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "data/packaging.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/linkage_db.hpp"
#include "linkage/lle.hpp"
#include "linkage/metrics.hpp"
#include "linkage/vptree.hpp"
#include "nn/presets.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace caltrain::linkage {
namespace {

std::vector<std::vector<float>> RandomPoints(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> points(n, std::vector<float>(dim));
  for (auto& p : points) {
    for (float& x : p) x = rng.Gaussian();
  }
  return points;
}

TEST(FingerprintTest, IsNormalizedAndDeterministic) {
  Rng rng(1);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32), rng);
  nn::Image img(nn::Shape{28, 28, 3});
  for (float& p : img.pixels) p = rng.UniformFloat();
  const Fingerprint a = ExtractFingerprint(net, img);
  const Fingerprint b = ExtractFingerprint(net, img);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(L2Norm(a), 1.0, 1e-5);
  EXPECT_EQ(a.size(), 10U);  // Table-1 penultimate = avg pool over classes
}

TEST(VpTreeTest, SearchBatchMatchesSerialSearchElementWise) {
  const auto points = RandomPoints(300, 8, 31);
  const VpTree tree(points);
  const auto queries = RandomPoints(64, 8, 32);

  std::vector<std::vector<Neighbor>> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = tree.Search(queries[i], 9);
  }
  for (unsigned threads : {1U, 4U}) {
    util::ScopedThreads guard(threads);
    const auto batch = tree.SearchBatch(queries, 9);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batch[i].size(), serial[i].size()) << "query " << i;
      for (std::size_t r = 0; r < serial[i].size(); ++r) {
        EXPECT_EQ(batch[i][r].index, serial[i][r].index)
            << "query " << i << " rank " << r << " threads " << threads;
        EXPECT_EQ(batch[i][r].distance, serial[i][r].distance)
            << "query " << i << " rank " << r << " threads " << threads;
      }
    }
  }
}

TEST(VpTreeTest, MatchesBruteForce) {
  const auto points = RandomPoints(200, 8, 21);
  const VpTree tree(points);
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> query(8);
    for (float& x : query) x = rng.Gaussian();
    const auto exact = BruteForceKnn(points, query, 7);
    const auto fast = tree.Search(query, 7);
    ASSERT_EQ(fast.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(fast[i].index, exact[i].index)
          << "rank " << i << " trial " << trial;
      EXPECT_NEAR(fast[i].distance, exact[i].distance, 1e-9)
          << "rank " << i << " trial " << trial;
    }
  }
}

TEST(VpTreeTest, TieHeavyDuplicatesMatchBruteForceElementWise) {
  // Five exact copies of each of eight centers: every query hits
  // 4-way (or, querying a center, zero-distance) ties, so the result
  // set is only well-defined with the (distance, index) tie-break —
  // tree and brute force must then agree element-wise.
  const auto centers = RandomPoints(8, 4, 71);
  std::vector<std::vector<float>> points;
  for (int copy = 0; copy < 5; ++copy) {
    for (const auto& c : centers) points.push_back(c);
  }
  const VpTree tree(points);
  Rng rng(72);
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<float> query;
    if (trial < 8) {
      query = centers[static_cast<std::size_t>(trial)];  // exact dup probe
    } else {
      query.resize(4);
      for (float& x : query) x = rng.Gaussian();
    }
    for (const std::size_t k : {1U, 3U, 10U, 40U}) {
      const auto exact = BruteForceKnn(points, query, k);
      const auto fast = tree.Search(query, k);
      ASSERT_EQ(fast.size(), exact.size()) << "k " << k << " trial " << trial;
      for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(fast[i].index, exact[i].index)
            << "rank " << i << " k " << k << " trial " << trial;
        EXPECT_EQ(fast[i].distance, exact[i].distance)
            << "rank " << i << " k " << k << " trial " << trial;
      }
    }
  }
}

TEST(VpTreeTest, KLargerThanSetReturnsAll) {
  const auto points = RandomPoints(5, 3, 23);
  const VpTree tree(points);
  const auto result = tree.Search(points[0], 50);
  EXPECT_EQ(result.size(), 5U);
  EXPECT_EQ(result[0].index, 0U);  // itself at distance 0
  EXPECT_NEAR(result[0].distance, 0.0, 1e-12);
}

TEST(VpTreeTest, EmptyTree) {
  const VpTree tree({});
  EXPECT_TRUE(tree.Search({1.0F}, 3).empty());
}

TEST(VpTreeTest, ResultsSortedAscending) {
  const auto points = RandomPoints(64, 4, 24);
  const VpTree tree(points);
  const auto result = tree.Search(points[10], 10);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

class LinkageDbTest : public ::testing::Test {
 protected:
  LinkageDbTest() {
    Rng rng(31);
    // Two classes, clustered fingerprints: class 0 near (1,0...), class 1
    // near (0,1,...); a "poisoned" subcluster of class 0 near (0.5, 0.5).
    for (int i = 0; i < 20; ++i) {
      db_.Insert(Jitter({1.0F, 0.0F, 0.0F, 0.0F}, rng), 0, "honest-A",
                 FakeHash(static_cast<std::uint8_t>(i)));
    }
    for (int i = 0; i < 20; ++i) {
      db_.Insert(Jitter({0.0F, 1.0F, 0.0F, 0.0F}, rng), 1, "honest-B",
                 FakeHash(static_cast<std::uint8_t>(100 + i)));
    }
    for (int i = 0; i < 10; ++i) {
      poisoned_ids_.push_back(
          db_.Insert(Jitter({0.5F, 0.5F, 0.5F, 0.0F}, rng), 0, "mallory",
                     FakeHash(static_cast<std::uint8_t>(200 + i))));
    }
  }

  static Fingerprint Jitter(Fingerprint base, Rng& rng) {
    for (float& x : base) x += 0.05F * rng.Gaussian();
    L2NormalizeInPlace(base);
    return base;
  }
  static crypto::Sha256Digest FakeHash(std::uint8_t tag) {
    crypto::Sha256Digest h{};
    h[0] = tag;
    return h;
  }

  LinkageDatabase db_;
  std::vector<std::uint64_t> poisoned_ids_;
};

TEST_F(LinkageDbTest, QueryRestrictedToClass) {
  Fingerprint probe = {0.0F, 1.0F, 0.0F, 0.0F};
  const auto matches = db_.QueryNearest(probe, 1, 5);
  ASSERT_EQ(matches.size(), 5U);
  for (const auto& m : matches) {
    EXPECT_EQ(m.label, 1);
    EXPECT_EQ(m.source, "honest-B");
  }
}

TEST_F(LinkageDbTest, PoisonClusterSurfacesForPoisonProbe) {
  Fingerprint probe = {0.5F, 0.5F, 0.5F, 0.0F};
  L2NormalizeInPlace(probe);
  const auto matches = db_.QueryNearest(probe, 0, 9);
  ASSERT_EQ(matches.size(), 9U);
  std::size_t mallory = 0;
  for (const auto& m : matches) {
    if (m.source == "mallory") ++mallory;
  }
  EXPECT_GE(mallory, 8U);  // the poisoned subcluster dominates
}

TEST_F(LinkageDbTest, VpTreeQueryMatchesBruteForce) {
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    Fingerprint probe(4);
    for (float& x : probe) x = rng.Gaussian();
    L2NormalizeInPlace(probe);
    const auto fast = db_.QueryNearest(probe, 0, 6);
    const auto exact = db_.QueryNearestBruteForce(probe, 0, 6);
    ASSERT_EQ(fast.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(fast[i].distance, exact[i].distance, 1e-9);
    }
  }
}

TEST_F(LinkageDbTest, BatchQueryMatchesSerialQueriesElementWise) {
  Rng rng(33);
  std::vector<Fingerprint> queries;
  std::vector<int> labels;
  for (int trial = 0; trial < 40; ++trial) {
    Fingerprint probe(4);
    for (float& x : probe) x = rng.Gaussian();
    L2NormalizeInPlace(probe);
    queries.push_back(std::move(probe));
    labels.push_back(trial % 2);
  }

  std::vector<std::vector<QueryMatch>> serial;
  serial.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial.push_back(db_.QueryNearest(queries[i], labels[i], 6));
  }
  for (unsigned threads : {1U, 4U}) {
    util::ScopedThreads guard(threads);
    const auto batch = db_.QueryNearestBatch(queries, labels, 6);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batch[i].size(), serial[i].size()) << "query " << i;
      for (std::size_t r = 0; r < serial[i].size(); ++r) {
        EXPECT_EQ(batch[i][r].id, serial[i][r].id);
        EXPECT_EQ(batch[i][r].distance, serial[i][r].distance);
        EXPECT_EQ(batch[i][r].source, serial[i][r].source);
      }
    }
  }
}

TEST_F(LinkageDbTest, BatchQueryRejectsMismatchedSizes) {
  EXPECT_THROW((void)db_.QueryNearestBatch({Fingerprint{1, 0, 0, 0}},
                                           {0, 1}, 3),
               Error);
}

TEST_F(LinkageDbTest, DistancesSortedAscending) {
  Fingerprint probe = {1.0F, 0.0F, 0.0F, 0.0F};
  const auto matches = db_.QueryNearest(probe, 0, 10);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].distance, matches[i].distance);
  }
}

TEST_F(LinkageDbTest, IdsForLabel) {
  EXPECT_EQ(db_.IdsForLabel(0).size(), 30U);
  EXPECT_EQ(db_.IdsForLabel(1).size(), 20U);
  EXPECT_TRUE(db_.IdsForLabel(9).empty());
}

TEST_F(LinkageDbTest, SerializationRoundTrip) {
  const Bytes blob = db_.Serialize();
  LinkageDatabase restored = LinkageDatabase::Deserialize(blob);
  ASSERT_EQ(restored.size(), db_.size());
  Fingerprint probe = {1.0F, 0.0F, 0.0F, 0.0F};
  const auto a = db_.QueryNearestBruteForce(probe, 0, 5);
  const auto b = restored.QueryNearestBruteForce(probe, 0, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].source, b[i].source);
  }
  // The blob format is segment-agnostic: a re-serialized round trip is
  // byte-identical, even after index builds on either side.
  (void)restored.QueryNearest(probe, 0, 3);
  db_.RebuildIndexes();
  EXPECT_EQ(restored.Serialize(), blob);
  EXPECT_EQ(db_.Serialize(), blob);
}

TEST_F(LinkageDbTest, InsertAfterQueryAnsweredFromTail) {
  Fingerprint probe = {1.0F, 0.0F, 0.0F, 0.0F};
  (void)db_.QueryNearest(probe, 0, 3);  // builds the class-0 index
  const std::uint64_t gen = db_.IndexGeneration(0);
  EXPECT_EQ(gen, 1U);
  const auto id = db_.Insert({1.0F, 0.0F, 0.0F, 0.0F}, 0, "late",
                             FakeHash(0xFF));
  EXPECT_EQ(db_.UnindexedTailSize(0), 1U);
  const auto matches = db_.QueryNearest(probe, 0, 1);
  ASSERT_EQ(matches.size(), 1U);
  EXPECT_EQ(matches[0].id, id);  // exact match must now be nearest
  // The small tail was answered by the brute-force scan — no rebuild.
  EXPECT_EQ(db_.IndexGeneration(0), gen);
  EXPECT_EQ(db_.UnindexedTailSize(0), 1U);
  // Folding the tail in changes nothing observable.
  db_.RebuildIndexes();
  EXPECT_EQ(db_.IndexGeneration(0), gen + 1);
  EXPECT_EQ(db_.UnindexedTailSize(0), 0U);
  const auto after = db_.QueryNearest(probe, 0, 1);
  ASSERT_EQ(after.size(), 1U);
  EXPECT_EQ(after[0].id, id);
  EXPECT_EQ(after[0].distance, matches[0].distance);
}

TEST_F(LinkageDbTest, InsertLeavesOtherClassIndexesIntact) {
  Fingerprint probe0 = {1.0F, 0.0F, 0.0F, 0.0F};
  Fingerprint probe1 = {0.0F, 1.0F, 0.0F, 0.0F};
  (void)db_.QueryNearest(probe0, 0, 3);
  (void)db_.QueryNearest(probe1, 1, 3);
  ASSERT_EQ(db_.IndexGeneration(0), 1U);
  ASSERT_EQ(db_.IndexGeneration(1), 1U);

  Rng rng(34);
  for (int i = 0; i < 300; ++i) {  // well past the rebuild threshold
    db_.Insert(Jitter({0.0F, 1.0F, 0.0F, 0.0F}, rng), 1, "late-B",
               FakeHash(static_cast<std::uint8_t>(i)));
  }
  (void)db_.QueryNearest(probe1, 1, 3);        // folds class 1's tail
  EXPECT_EQ(db_.IndexGeneration(1), 2U);
  EXPECT_EQ(db_.IndexGeneration(0), 1U)        // class 0 untouched
      << "insert into class 1 must not invalidate class 0's index";
  EXPECT_EQ(db_.UnindexedTailSize(0), 0U);

  // And class-0 queries still agree with brute force exactly.
  for (int trial = 0; trial < 5; ++trial) {
    Fingerprint probe(4);
    for (float& x : probe) x = rng.Gaussian();
    L2NormalizeInPlace(probe);
    const auto fast = db_.QueryNearest(probe, 0, 6);
    const auto exact = db_.QueryNearestBruteForce(probe, 0, 6);
    ASSERT_EQ(fast.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(fast[i].id, exact[i].id);
      EXPECT_EQ(fast[i].distance, exact[i].distance);
    }
  }
}

TEST_F(LinkageDbTest, AutoRebuildFoldsLargeTail) {
  db_.set_tail_limit(4);
  Fingerprint probe = {1.0F, 0.0F, 0.0F, 0.0F};
  (void)db_.QueryNearest(probe, 0, 3);
  const std::uint64_t gen = db_.IndexGeneration(0);
  Rng rng(35);
  for (int i = 0; i < 6; ++i) {
    db_.Insert(Jitter({1.0F, 0.0F, 0.0F, 0.0F}, rng), 0, "late",
               FakeHash(static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(db_.UnindexedTailSize(0), 6U);  // tail (6) > limit (4)
  const auto fast = db_.QueryNearest(probe, 0, 8);
  EXPECT_EQ(db_.IndexGeneration(0), gen + 1);
  EXPECT_EQ(db_.UnindexedTailSize(0), 0U);
  const auto exact = db_.QueryNearestBruteForce(probe, 0, 8);
  ASSERT_EQ(fast.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(fast[i].id, exact[i].id);
    EXPECT_EQ(fast[i].distance, exact[i].distance);
  }
}

TEST_F(LinkageDbTest, QueryUnknownClassReturnsEmpty) {
  Fingerprint probe = {1.0F, 0.0F, 0.0F, 0.0F};
  EXPECT_TRUE(db_.QueryNearest(probe, 9, 5).empty());
  EXPECT_TRUE(db_.QueryNearestBruteForce(probe, 9, 5).empty());
  const auto batch = db_.QueryNearestBatch({probe, probe}, {9, 0}, 5);
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_TRUE(batch[0].empty());
  EXPECT_EQ(batch[1].size(), 5U);
  EXPECT_EQ(db_.IndexGeneration(9), 0U);
  EXPECT_EQ(db_.UnindexedTailSize(9), 0U);
}

TEST_F(LinkageDbTest, DuplicateFingerprintTiesAgreeWithBruteForce) {
  // Exact duplicate fingerprints within one class: the VP-tree path
  // must still return the same ids as brute force (the (distance, id)
  // tie-break), at every k straddling the duplicate group.
  Fingerprint dup = {0.6F, 0.8F, 0.0F, 0.0F};
  for (int i = 0; i < 6; ++i) {
    db_.Insert(dup, 0, "dup", FakeHash(static_cast<std::uint8_t>(240 + i)));
  }
  db_.RebuildIndexes();
  Rng rng(36);
  for (int trial = 0; trial < 8; ++trial) {
    Fingerprint probe = dup;
    if (trial >= 4) {  // also probe from a distance
      for (float& x : probe) x += 0.3F * rng.Gaussian();
      L2NormalizeInPlace(probe);
    }
    for (const std::size_t k : {1U, 3U, 6U, 9U, 40U}) {
      const auto fast = db_.QueryNearest(probe, 0, k);
      const auto exact = db_.QueryNearestBruteForce(probe, 0, k);
      ASSERT_EQ(fast.size(), exact.size());
      for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(fast[i].id, exact[i].id)
            << "rank " << i << " k " << k << " trial " << trial;
        EXPECT_EQ(fast[i].distance, exact[i].distance);
      }
    }
  }
}

std::vector<LinkageRecord> RandomRecords(std::size_t n, int classes,
                                         std::size_t dim,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LinkageRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].fingerprint.resize(dim);
    for (float& x : records[i].fingerprint) x = rng.Gaussian();
    L2NormalizeInPlace(records[i].fingerprint);
    records[i].label = static_cast<int>(i) % classes;
    records[i].source = "src" + std::to_string(i % 3);
    records[i].hash[0] = static_cast<std::uint8_t>(i);
  }
  return records;
}

TEST(LinkageDbBatchTest, InsertBatchMatchesSerialInsertsAtEveryThreadCount) {
  const auto records = RandomRecords(200, 5, 6, 81);

  // Serial reference: one Insert per record, queried serially.
  LinkageDatabase reference;
  for (const LinkageRecord& r : records) {
    (void)reference.Insert(r.fingerprint, r.label, r.source, r.hash);
  }
  const Bytes reference_blob = reference.Serialize();
  const auto probes = RandomRecords(40, 5, 6, 82);
  std::vector<std::vector<QueryMatch>> reference_answers;
  for (const LinkageRecord& p : probes) {
    reference_answers.push_back(reference.QueryNearest(p.fingerprint,
                                                       p.label, 7));
  }

  for (const unsigned threads : {1U, 2U, 3U, 8U}) {
    util::ScopedThreads guard(threads);
    LinkageDatabase db;
    const auto ids = db.InsertBatch(records);
    ASSERT_EQ(ids.size(), records.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], i) << "ids must be insertion-order stable";
    }
    EXPECT_EQ(db.Serialize(), reference_blob)
        << "InsertBatch diverged from serial inserts at threads=" << threads;

    std::vector<Fingerprint> queries;
    std::vector<int> labels;
    for (const LinkageRecord& p : probes) {
      queries.push_back(p.fingerprint);
      labels.push_back(p.label);
    }
    const auto batch = db.QueryNearestBatch(queries, labels, 7);
    ASSERT_EQ(batch.size(), reference_answers.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i].size(), reference_answers[i].size())
          << "query " << i << " threads " << threads;
      for (std::size_t r = 0; r < batch[i].size(); ++r) {
        EXPECT_EQ(batch[i][r].id, reference_answers[i][r].id)
            << "query " << i << " rank " << r << " threads " << threads;
        EXPECT_EQ(batch[i][r].distance, reference_answers[i][r].distance);
        EXPECT_EQ(batch[i][r].source, reference_answers[i][r].source);
      }
    }
  }
}

TEST(LinkageDbBatchTest, InterleavedInsertQueryMatchesSerialReference) {
  // Rounds of InsertBatch + QueryNearestBatch (the sharded parallel
  // path, indexes folding incrementally between rounds) must be
  // element-wise identical to a serial Insert/QueryNearest sequence,
  // at every thread count.
  constexpr int kRounds = 4;
  std::vector<std::vector<LinkageRecord>> chunks;
  std::vector<std::vector<LinkageRecord>> probes;
  for (int round = 0; round < kRounds; ++round) {
    chunks.push_back(RandomRecords(60, 4, 6,
                                   91 + static_cast<std::uint64_t>(round)));
    probes.push_back(RandomRecords(20, 4, 6,
                                   95 + static_cast<std::uint64_t>(round)));
  }

  LinkageDatabase reference;
  std::vector<std::vector<std::vector<QueryMatch>>> reference_rounds;
  for (int round = 0; round < kRounds; ++round) {
    for (const LinkageRecord& r : chunks[static_cast<std::size_t>(round)]) {
      (void)reference.Insert(r.fingerprint, r.label, r.source, r.hash);
    }
    std::vector<std::vector<QueryMatch>> answers;
    for (const LinkageRecord& p : probes[static_cast<std::size_t>(round)]) {
      answers.push_back(reference.QueryNearest(p.fingerprint, p.label, 5));
    }
    reference_rounds.push_back(std::move(answers));
  }
  const Bytes reference_blob = reference.Serialize();

  for (const unsigned threads : {1U, 2U, 3U, 8U}) {
    util::ScopedThreads guard(threads);
    LinkageDatabase db;
    db.set_tail_limit(16);  // force tail folds between rounds
    for (int round = 0; round < kRounds; ++round) {
      (void)db.InsertBatch(chunks[static_cast<std::size_t>(round)]);
      std::vector<Fingerprint> queries;
      std::vector<int> labels;
      for (const LinkageRecord& p : probes[static_cast<std::size_t>(round)]) {
        queries.push_back(p.fingerprint);
        labels.push_back(p.label);
      }
      const auto batch = db.QueryNearestBatch(queries, labels, 5);
      const auto& expected =
          reference_rounds[static_cast<std::size_t>(round)];
      ASSERT_EQ(batch.size(), expected.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(batch[i].size(), expected[i].size())
            << "round " << round << " query " << i << " threads " << threads;
        for (std::size_t r = 0; r < batch[i].size(); ++r) {
          EXPECT_EQ(batch[i][r].id, expected[i][r].id)
              << "round " << round << " query " << i << " rank " << r
              << " threads " << threads;
          EXPECT_EQ(batch[i][r].distance, expected[i][r].distance);
        }
      }
    }
    EXPECT_EQ(db.Serialize(), reference_blob);
  }
}

TEST(LinkageDbBatchTest, ConcurrentInsertAndQueryOnDisjointClasses) {
  // An external writer thread batch-inserting into class 1 while the
  // main thread batch-queries class 0: class-0 answers must stay
  // identical to the pre-insert reference (segment isolation), and the
  // class-1 segment must end up complete and brute-force-consistent.
  LinkageDatabase db;
  const auto base = RandomRecords(120, 1, 6, 101);  // all class 0
  (void)db.InsertBatch(base);
  db.RebuildIndexes();

  const auto probes = RandomRecords(32, 1, 6, 102);
  std::vector<Fingerprint> queries;
  std::vector<int> labels;
  for (const LinkageRecord& p : probes) {
    queries.push_back(p.fingerprint);
    labels.push_back(0);
  }
  const auto reference = db.QueryNearestBatch(queries, labels, 7);

  auto writer_records = RandomRecords(400, 1, 6, 103);
  for (LinkageRecord& r : writer_records) r.label = 1;
  std::thread writer([&] {
    for (std::size_t first = 0; first < writer_records.size(); first += 50) {
      std::vector<LinkageRecord> chunk(
          writer_records.begin() + static_cast<std::ptrdiff_t>(first),
          writer_records.begin() + static_cast<std::ptrdiff_t>(first + 50));
      (void)db.InsertBatch(std::move(chunk));
    }
  });
  for (int round = 0; round < 20; ++round) {
    const auto answers = db.QueryNearestBatch(queries, labels, 7);
    ASSERT_EQ(answers.size(), reference.size());
    for (std::size_t i = 0; i < answers.size(); ++i) {
      ASSERT_EQ(answers[i].size(), reference[i].size()) << "round " << round;
      for (std::size_t r = 0; r < answers[i].size(); ++r) {
        EXPECT_EQ(answers[i][r].id, reference[i][r].id)
            << "concurrent class-1 inserts disturbed class-0 results";
        EXPECT_EQ(answers[i][r].distance, reference[i][r].distance);
      }
    }
  }
  writer.join();

  ASSERT_EQ(db.size(), base.size() + writer_records.size());
  ASSERT_EQ(db.IdsForLabel(1).size(), writer_records.size());
  Rng rng(104);
  Fingerprint probe(6);
  for (float& x : probe) x = rng.Gaussian();
  const auto fast = db.QueryNearest(probe, 1, 9);
  const auto exact = db.QueryNearestBruteForce(probe, 1, 9);
  ASSERT_EQ(fast.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(fast[i].id, exact[i].id);
    EXPECT_EQ(fast[i].distance, exact[i].distance);
  }
}

TEST(LinkageDbValidationTest, NegativeLabelRejected) {
  LinkageDatabase db;
  crypto::Sha256Digest h{};
  EXPECT_THROW((void)db.Insert({1.0F, 0.0F}, -1, "x", h), Error);
  std::vector<LinkageRecord> records(2);
  records[0].fingerprint = {1.0F, 0.0F};
  records[0].label = 3;
  records[1].fingerprint = {0.0F, 1.0F};
  records[1].label = -7;
  EXPECT_THROW((void)db.InsertBatch(std::move(records)), Error);
  EXPECT_EQ(db.size(), 0U) << "a rejected batch must insert nothing";
}

TEST(LinkageDbValidationTest, LargeLabelSerializationRoundTrip) {
  LinkageDatabase db;
  crypto::Sha256Digest h{};
  h[0] = 0xAB;
  const auto id = db.Insert({0.5F, 0.5F}, 1000000, "big", h);
  const Bytes blob = db.Serialize();
  LinkageDatabase restored = LinkageDatabase::Deserialize(blob);
  ASSERT_EQ(restored.size(), 1U);
  EXPECT_EQ(restored.tuple(id).label, 1000000);
  EXPECT_EQ(restored.tuple(id).source, "big");
  EXPECT_EQ(restored.Serialize(), blob);
}

TEST(LinkageHashTest, VerifySubmission) {
  LinkageDatabase db;
  nn::Image img(nn::Shape{4, 4, 3});
  Rng rng(41);
  for (float& p : img.pixels) p = rng.UniformFloat();
  const auto hash = data::HashTrainingInstance(img, 2);
  const auto id = db.Insert({1.0F, 0.0F}, 2, "alice", hash);

  EXPECT_TRUE(db.VerifySubmission(id, img, 2));
  EXPECT_FALSE(db.VerifySubmission(id, img, 3));  // wrong label
  nn::Image tampered = img;
  tampered.pixels[0] += 0.5F;
  EXPECT_FALSE(db.VerifySubmission(id, tampered, 2));  // different data
}

TEST(SolveLinearSystemTest, KnownSolution) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
  const auto x = SolveLinearSystem({2, 1, 1, 3}, {5, 10}, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveLinearSystemTest, SingularThrows) {
  EXPECT_THROW((void)SolveLinearSystem({1, 1, 1, 1}, {1, 2}, 2), Error);
}

TEST(JacobiTest, DiagonalMatrix) {
  const auto result = JacobiEigenSymmetric({3, 0, 0, 1}, 2);
  EXPECT_NEAR(result.values[0], 1.0, 1e-9);
  EXPECT_NEAR(result.values[1], 3.0, 1e-9);
}

TEST(JacobiTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto result = JacobiEigenSymmetric({2, 1, 1, 2}, 2);
  EXPECT_NEAR(result.values[0], 1.0, 1e-9);
  EXPECT_NEAR(result.values[1], 3.0, 1e-9);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(result.vectors[1][0]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(JacobiTest, ReconstructsMatrix) {
  // A = V diag(lambda) V^T must reproduce the input.
  Rng rng(51);
  constexpr std::size_t n = 6;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a[i * n + j] = a[j * n + i] = rng.Gaussian();
    }
  }
  const auto result = JacobiEigenSymmetric(a, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += result.vectors[k][i] * result.values[k] * result.vectors[k][j];
      }
      EXPECT_NEAR(acc, a[i * n + j], 1e-7);
    }
  }
}

TEST(LleTest, SeparatesTwoClusters) {
  // Two well-separated Gaussian blobs in 10-D must remain separated in
  // the 2-D embedding.
  Rng rng(61);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 30; ++i) {
    std::vector<float> p(10, 0.0F);
    for (float& x : p) x = 0.1F * rng.Gaussian();
    p[0] += (i < 15) ? 0.0F : 5.0F;
    points.push_back(std::move(p));
  }
  LleOptions options;
  options.neighbors = 5;
  const auto coords = LocallyLinearEmbedding(points, options);
  ASSERT_EQ(coords.size(), 30U);

  // Nearest-centroid assignment in the embedded space must recover the
  // cluster membership (the property Fig. 7 relies on).
  std::vector<double> c0(2, 0.0), c1(2, 0.0);
  for (int i = 0; i < 15; ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      c0[d] += coords[static_cast<std::size_t>(i)][d] / 15.0;
      c1[d] += coords[static_cast<std::size_t>(i + 15)][d] / 15.0;
    }
  }
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const auto& p = coords[static_cast<std::size_t>(i)];
    const double d0 = std::hypot(p[0] - c0[0], p[1] - c0[1]);
    const double d1 = std::hypot(p[0] - c1[0], p[1] - c1[1]);
    const bool assigned_to_first = d0 < d1;
    if (assigned_to_first == (i < 15)) ++correct;
  }
  EXPECT_GE(correct, 27) << "clusters not recoverable from the embedding";
}

TEST(LleTest, RejectsTooFewPoints) {
  const auto points = RandomPoints(5, 3, 62);
  LleOptions options;
  options.neighbors = 5;
  EXPECT_THROW((void)LocallyLinearEmbedding(points, options), Error);
}

TEST(MetricsTest, PerfectDetection) {
  ProvenanceMap tags;
  tags[0] = ProvenanceTag::kPoisoned;
  tags[1] = ProvenanceTag::kPoisoned;
  std::vector<std::vector<QueryMatch>> probes(2);
  probes[0] = {{0, 0.1, 0, "mallory"}, {1, 0.2, 0, "mallory"}};
  probes[1] = {{1, 0.1, 0, "mallory"}};
  const auto eval = EvaluateAccountability(probes, tags, "mallory");
  EXPECT_DOUBLE_EQ(eval.precision_bad, 1.0);
  EXPECT_DOUBLE_EQ(eval.recall_poisoned, 1.0);
  EXPECT_DOUBLE_EQ(eval.source_attribution, 1.0);
}

TEST(MetricsTest, MixedDetection) {
  ProvenanceMap tags;
  tags[0] = ProvenanceTag::kPoisoned;
  tags[1] = ProvenanceTag::kMislabeled;
  // ids 2, 3 absent from the map -> normal.
  std::vector<std::vector<QueryMatch>> probes(2);
  probes[0] = {{0, 0.1, 0, "mallory"}, {2, 0.2, 0, "honest"}};
  probes[1] = {{3, 0.1, 0, "honest"}, {1, 0.2, 0, "honest"}};
  const auto eval = EvaluateAccountability(probes, tags, "mallory");
  EXPECT_DOUBLE_EQ(eval.precision_bad, 0.5);       // 2 bad of 4 retrieved
  EXPECT_DOUBLE_EQ(eval.recall_poisoned, 0.5);     // probe 0 only
  EXPECT_DOUBLE_EQ(eval.source_attribution, 0.0);  // never majority
}

TEST(MetricsTest, EmptyProbes) {
  const auto eval = EvaluateAccountability({}, {}, "x");
  EXPECT_EQ(eval.probes, 0U);
  EXPECT_DOUBLE_EQ(eval.precision_bad, 0.0);
}

}  // namespace
}  // namespace caltrain::linkage
