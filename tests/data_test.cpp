// Data substrate tests: dataset plumbing, synthetic generators
// (learnability / distinctness / determinism), and the encrypted
// packaging round trip with every rejection path.
#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hpp"
#include "data/packaging.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_faces.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain::data {
namespace {

TEST(DatasetTest, AppendMergeShuffle) {
  LabeledDataset a;
  a.Append(nn::Image(nn::Shape{2, 2, 1}), 0, "p0");
  a.Append(nn::Image(nn::Shape{2, 2, 1}), 1, "p0");
  LabeledDataset b;
  b.Append(nn::Image(nn::Shape{2, 2, 1}), 2, "p1");
  a.Merge(b);
  EXPECT_EQ(a.size(), 3U);
  EXPECT_EQ(a.sources[2], "p1");

  // Shuffle keeps labels aligned with sources.
  LabeledDataset c;
  for (int i = 0; i < 20; ++i) {
    nn::Image img(nn::Shape{1, 1, 1});
    img.pixels[0] = static_cast<float>(i);
    c.Append(img, i, "src" + std::to_string(i));
  }
  Rng rng(5);
  c.Shuffle(rng);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.sources[i], "src" + std::to_string(c.labels[i]));
    EXPECT_EQ(c.images[i].pixels[0], static_cast<float>(c.labels[i]));
  }
}

TEST(DatasetTest, SplitAmongBalanced) {
  LabeledDataset d;
  for (int i = 0; i < 10; ++i) d.Append(nn::Image(nn::Shape{1, 1, 1}), i);
  const auto parts = SplitAmong(d, 3);
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0].size(), 4U);
  EXPECT_EQ(parts[1].size(), 3U);
  EXPECT_EQ(parts[2].size(), 3U);
}

TEST(DatasetTest, AssignSource) {
  LabeledDataset d;
  d.Append(nn::Image(nn::Shape{1, 1, 1}), 0);
  AssignSource(d, "alice");
  EXPECT_EQ(d.sources[0], "alice");
}

TEST(SyntheticCifarTest, ShapesAndRange) {
  SyntheticCifar gen;
  Rng rng(1);
  const nn::Image img = gen.Sample(3, rng);
  EXPECT_EQ(img.shape, (nn::Shape{28, 28, 3}));
  for (float p : img.pixels) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
  }
}

TEST(SyntheticCifarTest, GenerateIsBalancedAndShuffled) {
  SyntheticCifar gen;
  Rng rng(2);
  const LabeledDataset d = gen.Generate(100, rng);
  ASSERT_EQ(d.size(), 100U);
  std::array<int, 10> counts{};
  for (int label : d.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 10);
  // Shuffled: not simply 0,1,2,...
  bool monotone = true;
  for (std::size_t i = 1; i < d.labels.size(); ++i) {
    if (d.labels[i] != (d.labels[i - 1] + 1) % 10) monotone = false;
  }
  EXPECT_FALSE(monotone);
}

TEST(SyntheticCifarTest, ClassesAreLearnable) {
  // Classes are texture-coded (hue is per-sample nuisance), so raw pixel
  // distance does not separate them; the invariant that matters is that
  // a small conv net learns them far above the 10% chance level.
  SyntheticCifar gen;
  Rng rng(3);
  const LabeledDataset train = gen.Generate(800, rng);
  const LabeledDataset test = gen.Generate(100, rng);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(8), rng);
  nn::TrainOptions options;
  options.epochs = 6;
  options.batch_size = 32;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 4;
  const auto history = nn::TrainNetwork(net, train.images, train.labels,
                                        test.images, test.labels, options);
  EXPECT_GE(history.back().top1, 0.4) << "classes must be learnable";
}

TEST(SyntheticCifarTest, DeterministicGivenSeed) {
  SyntheticCifar gen;
  Rng a(7), b(7);
  EXPECT_EQ(gen.Sample(4, a).pixels, gen.Sample(4, b).pixels);
}

TEST(SyntheticCifarTest, RejectsBadLabel) {
  SyntheticCifar gen;
  Rng rng(1);
  EXPECT_THROW((void)gen.Sample(10, rng), Error);
  EXPECT_THROW((void)gen.Sample(-1, rng), Error);
}

TEST(SyntheticFacesTest, IdentitiesAreStableAcrossInstances) {
  SyntheticFaces a;
  SyntheticFaces b;
  Rng ra(9), rb(9);
  EXPECT_EQ(a.Sample(5, ra).pixels, b.Sample(5, rb).pixels);
}

TEST(SyntheticFacesTest, IdentityClustersAreSeparated) {
  SyntheticFaces gen;
  Rng rng(10);
  constexpr int kPer = 6;
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  std::vector<nn::Image> id0, id1;
  for (int i = 0; i < kPer; ++i) {
    id0.push_back(gen.Sample(0, rng));
    id1.push_back(gen.Sample(1, rng));
  }
  for (int i = 0; i < kPer; ++i) {
    for (int j = i + 1; j < kPer; ++j) {
      intra += L2Distance(id0[i].pixels, id0[j].pixels);
      intra += L2Distance(id1[i].pixels, id1[j].pixels);
      intra_n += 2;
    }
    inter += L2Distance(id0[i].pixels, id1[i].pixels);
    ++inter_n;
  }
  EXPECT_GT(inter / inter_n, intra / intra_n);
}

TEST(SyntheticFacesTest, GenerateForIdentityIsSingleClass) {
  SyntheticFaces gen;
  Rng rng(11);
  const LabeledDataset d = gen.GenerateForIdentity(3, 10, rng);
  ASSERT_EQ(d.size(), 10U);
  for (int label : d.labels) EXPECT_EQ(label, 3);
}

TEST(PackagingTest, InstanceSerializationRoundTrip) {
  nn::Image img(nn::Shape{4, 4, 3});
  Rng rng(12);
  for (float& p : img.pixels) p = rng.UniformFloat();
  const Bytes blob = SerializeTrainingInstance(img, 7);
  const auto [back, label] = DeserializeTrainingInstance(blob);
  EXPECT_EQ(back.pixels, img.pixels);
  EXPECT_EQ(label, 7);
}

TEST(PackagingTest, HashIsContentSensitive) {
  nn::Image img(nn::Shape{2, 2, 1});
  img.pixels = {0.1F, 0.2F, 0.3F, 0.4F};
  const auto h1 = HashTrainingInstance(img, 0);
  const auto h2 = HashTrainingInstance(img, 1);  // label matters
  nn::Image img2 = img;
  img2.pixels[0] = 0.11F;
  const auto h3 = HashTrainingInstance(img2, 0);  // pixels matter
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_EQ(h1, HashTrainingInstance(img, 0));
}

class PackagingRoundTrip : public ::testing::Test {
 protected:
  PackagingRoundTrip() : packager_("alice", key_, 33) {
    img_ = nn::Image(nn::Shape{8, 8, 3});
    Rng rng(13);
    for (float& p : img_.pixels) p = rng.UniformFloat();
  }
  Bytes key_ = Bytes(32, 0x42);
  DataPackager packager_;
  nn::Image img_;
};

TEST_F(PackagingRoundTrip, OpenSucceedsWithRightKey) {
  const EncryptedRecord record = packager_.Pack(img_, 5);
  EXPECT_EQ(record.participant_id, "alice");
  EXPECT_EQ(record.label, 5);
  const auto opened = OpenRecord(record, key_);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->image.pixels, img_.pixels);
  EXPECT_EQ(opened->label, 5);
  EXPECT_EQ(opened->participant_id, "alice");
  EXPECT_EQ(opened->content_hash, HashTrainingInstance(img_, 5));
}

TEST_F(PackagingRoundTrip, WrongKeyRejected) {
  const EncryptedRecord record = packager_.Pack(img_, 5);
  EXPECT_FALSE(OpenRecord(record, Bytes(32, 0x43)).has_value());
}

TEST_F(PackagingRoundTrip, FlippedLabelRejected) {
  // Adversary flips the plaintext label in transit: AAD check fails.
  EncryptedRecord record = packager_.Pack(img_, 5);
  record.label = 0;
  EXPECT_FALSE(OpenRecord(record, key_).has_value());
}

TEST_F(PackagingRoundTrip, ForgedSourceRejected) {
  EncryptedRecord record = packager_.Pack(img_, 5);
  record.participant_id = "mallory";
  EXPECT_FALSE(OpenRecord(record, key_).has_value());
}

TEST_F(PackagingRoundTrip, TamperedCiphertextRejected) {
  EncryptedRecord record = packager_.Pack(img_, 5);
  record.ciphertext[10] ^= 0x01;
  EXPECT_FALSE(OpenRecord(record, key_).has_value());
}

TEST_F(PackagingRoundTrip, UniqueNoncesPerRecord) {
  const EncryptedRecord a = packager_.Pack(img_, 5);
  const EncryptedRecord b = packager_.Pack(img_, 5);
  EXPECT_NE(a.iv, b.iv);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST_F(PackagingRoundTrip, WireSerializationRoundTrip) {
  const EncryptedRecord record = packager_.Pack(img_, 9);
  const EncryptedRecord back =
      EncryptedRecord::Deserialize(record.Serialize());
  EXPECT_EQ(back.participant_id, record.participant_id);
  EXPECT_EQ(back.label, record.label);
  EXPECT_EQ(back.iv, record.iv);
  EXPECT_EQ(back.ciphertext, record.ciphertext);
  EXPECT_EQ(back.tag, record.tag);
  EXPECT_TRUE(OpenRecord(back, key_).has_value());
}

TEST_F(PackagingRoundTrip, PackAllCoversDataset) {
  SyntheticCifar gen;
  Rng rng(14);
  const LabeledDataset d = gen.Generate(12, rng);
  const auto records = packager_.PackAll(d);
  ASSERT_EQ(records.size(), 12U);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto opened = OpenRecord(records[i], key_);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->label, d.labels[i]);
  }
}

}  // namespace
}  // namespace caltrain::data
