// Secure channel tests: handshake success path, every attestation /
// binding failure path, key agreement, and record-layer properties
// (round trip, tamper rejection, replay rejection, ordering).
#include <gtest/gtest.h>

#include "securechannel/handshake.hpp"
#include "securechannel/record.hpp"
#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::securechannel {
namespace {

struct Fixture {
  enclave::EnclaveConfig config;
  enclave::Enclave enclave;
  enclave::AttestationService service;
  crypto::HmacDrbg client_drbg;

  Fixture()
      : config(MakeConfig()),
        enclave(config),
        service(101),
        client_drbg(BytesOf("client entropy"), BytesOf("participant-A")) {}

  static enclave::EnclaveConfig MakeConfig() {
    enclave::EnclaveConfig c;
    c.name = "training-enclave";
    c.code_identity = BytesOf("audited training pipeline v1");
    c.seed = 3;
    return c;
  }
};

TEST(HandshakeTest, CompletesAndAgreesOnKeys) {
  Fixture f;
  ServerHandshake server(f.enclave, f.service);
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);

  const Bytes hello = client.Hello();
  const Bytes server_hello = server.OnClientHello(hello);
  const Bytes finished = client.OnServerHello(server_hello);
  ASSERT_TRUE(server.OnClientFinished(finished));

  ASSERT_TRUE(client.complete());
  ASSERT_TRUE(server.complete());
  EXPECT_EQ(client.keys().client_write_key, server.keys().client_write_key);
  EXPECT_EQ(client.keys().server_write_key, server.keys().server_write_key);
  EXPECT_NE(client.keys().client_write_key, client.keys().server_write_key);
  EXPECT_EQ(client.keys().client_write_key.size(), 32U);
}

TEST(HandshakeTest, CountsEnclaveTransitions) {
  Fixture f;
  ServerHandshake server(f.enclave, f.service);
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);
  (void)server.OnClientHello(client.Hello());
  EXPECT_GE(f.enclave.transitions().ecalls, 1U);
}

TEST(HandshakeTest, RejectsWrongMeasurement) {
  Fixture f;
  ServerHandshake server(f.enclave, f.service);
  crypto::Sha256Digest wrong = f.enclave.measurement();
  wrong[5] ^= 0xff;
  ClientHandshake client(f.service.public_key(), wrong, f.client_drbg);
  const Bytes server_hello = server.OnClientHello(client.Hello());
  try {
    (void)client.OnServerHello(server_hello);
    FAIL() << "expected kAuthFailure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
  }
}

TEST(HandshakeTest, RejectsRogueAttestationService) {
  Fixture f;
  enclave::AttestationService rogue(999);
  ServerHandshake server(f.enclave, rogue);  // enclave quoted by rogue CPU
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);
  const Bytes server_hello = server.OnClientHello(client.Hello());
  EXPECT_THROW((void)client.OnServerHello(server_hello), Error);
}

TEST(HandshakeTest, RejectsSplicedServerKey) {
  // A MITM replaces the server DH key inside ServerHello; the quote
  // binding must catch it.
  Fixture f;
  ServerHandshake server(f.enclave, f.service);
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);
  const Bytes server_hello = server.OnClientHello(client.Hello());

  // Re-parse and swap in an attacker DH key, keeping the quote.
  ByteReader outer(server_hello);
  const Bytes core = outer.ReadBytes();
  const Bytes mac = outer.ReadBytes();
  ByteReader core_reader(core);
  (void)core_reader.ReadBytes();  // original server pub
  const Bytes nonce = core_reader.ReadBytes();
  const Bytes quote = core_reader.ReadBytes();

  crypto::HmacDrbg mitm_drbg(BytesOf("mitm"));
  const crypto::DhKeyPair mitm = crypto::DhGenerate(mitm_drbg);
  ByteWriter evil_core;
  evil_core.WriteBytes(crypto::U128ToBytes(mitm.public_value));
  evil_core.WriteBytes(nonce);
  evil_core.WriteBytes(quote);
  ByteWriter evil;
  evil.WriteBytes(evil_core.data());
  evil.WriteBytes(mac);

  try {
    (void)client.OnServerHello(evil.data());
    FAIL() << "expected kAuthFailure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
  }
}

TEST(HandshakeTest, RejectsBadClientFinished) {
  Fixture f;
  ServerHandshake server(f.enclave, f.service);
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);
  const Bytes server_hello = server.OnClientHello(client.Hello());
  Bytes finished = client.OnServerHello(server_hello);
  finished[0] ^= 0x01;
  EXPECT_FALSE(server.OnClientFinished(finished));
  EXPECT_THROW((void)server.keys(), Error);
}

TEST(HandshakeTest, DistinctSessionsGetDistinctKeys) {
  Fixture f;
  SessionKeys first;
  {
    ServerHandshake server(f.enclave, f.service);
    ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                           f.client_drbg);
    const Bytes sh = server.OnClientHello(client.Hello());
    ASSERT_TRUE(server.OnClientFinished(client.OnServerHello(sh)));
    first = server.keys();
  }
  ServerHandshake server(f.enclave, f.service);
  ClientHandshake client(f.service.public_key(), f.enclave.measurement(),
                         f.client_drbg);
  const Bytes sh = server.OnClientHello(client.Hello());
  ASSERT_TRUE(server.OnClientFinished(client.OnServerHello(sh)));
  EXPECT_NE(first.client_write_key, server.keys().client_write_key);
}

class RecordTest : public ::testing::Test {
 protected:
  RecordTest() : writer_(Key()), reader_(Key()) {}
  static Bytes Key() { return Bytes(32, 0x7e); }
  RecordWriter writer_;
  RecordReader reader_;
};

TEST_F(RecordTest, RoundTrip) {
  const Bytes msg = BytesOf("encrypted training batch");
  const Bytes record = writer_.Protect(msg);
  const auto out = reader_.Unprotect(record);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST_F(RecordTest, AadMismatchRejected) {
  const Bytes record = writer_.Protect(BytesOf("data"), BytesOf("src-A"));
  EXPECT_FALSE(reader_.Unprotect(record, BytesOf("src-B")).has_value());
}

TEST_F(RecordTest, TamperRejected) {
  Bytes record = writer_.Protect(BytesOf("data"));
  record[record.size() - 1] ^= 0x01;
  EXPECT_FALSE(reader_.Unprotect(record).has_value());
}

TEST_F(RecordTest, ReplayRejected) {
  const Bytes record = writer_.Protect(BytesOf("data"));
  ASSERT_TRUE(reader_.Unprotect(record).has_value());
  EXPECT_FALSE(reader_.Unprotect(record).has_value());
}

TEST_F(RecordTest, ReorderRejected) {
  const Bytes r0 = writer_.Protect(BytesOf("first"));
  const Bytes r1 = writer_.Protect(BytesOf("second"));
  EXPECT_FALSE(reader_.Unprotect(r1).has_value());  // out of order
  // In-order delivery still works afterwards.
  EXPECT_TRUE(reader_.Unprotect(r0).has_value());
  EXPECT_TRUE(reader_.Unprotect(r1).has_value());
}

TEST_F(RecordTest, ManyRecordsKeepOrder) {
  for (int i = 0; i < 50; ++i) {
    const Bytes msg = BytesOf("record " + std::to_string(i));
    const auto out = reader_.Unprotect(writer_.Protect(msg));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, msg);
  }
  EXPECT_EQ(writer_.records_sent(), 50U);
  EXPECT_EQ(reader_.records_received(), 50U);
}

TEST_F(RecordTest, GarbageRejectedWithoutThrow) {
  EXPECT_FALSE(reader_.Unprotect(BytesOf("garbage")).has_value());
  EXPECT_FALSE(reader_.Unprotect({}).has_value());
}

TEST(RecordKeysTest, EndToEndOverHandshakeKeys) {
  // Full pipeline: handshake, then the client provisions a key over the
  // channel and the server reads it — the paper's key-provisioning step.
  enclave::EnclaveConfig config;
  config.name = "training-enclave";
  config.code_identity = BytesOf("audited code");
  config.seed = 5;
  enclave::Enclave enclave(config);
  enclave::AttestationService service(55);
  crypto::HmacDrbg drbg(BytesOf("participant entropy"));

  ServerHandshake server(enclave, service);
  ClientHandshake client(service.public_key(), enclave.measurement(), drbg);
  const Bytes sh = server.OnClientHello(client.Hello());
  ASSERT_TRUE(server.OnClientFinished(client.OnServerHello(sh)));

  RecordWriter client_writer(client.keys().client_write_key);
  RecordReader server_reader(server.keys().client_write_key);
  const Bytes data_key = BytesOf("participant-symmetric-data-key-32b");
  const auto received =
      server_reader.Unprotect(client_writer.Protect(data_key));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, data_key);
}

}  // namespace
}  // namespace caltrain::securechannel
