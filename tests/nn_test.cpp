// NN substrate tests: kernel correctness, per-layer behaviour, numeric
// gradient checks against backprop, serialization, and end-to-end
// learning on a trivially separable problem.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <tuple>

#include "nn/augment.hpp"
#include "nn/connected.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/kernels.hpp"
#include "nn/network.hpp"
#include "nn/pool.hpp"
#include "nn/presets.hpp"
#include "nn/softmax.hpp"
#include "nn/trainer.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caltrain::nn {
namespace {

TEST(ShapeTest, FlatAndEquality) {
  const Shape s{28, 28, 3};
  EXPECT_EQ(s.Flat(), 28U * 28U * 3U);
  EXPECT_EQ(s, (Shape{28, 28, 3}));
  EXPECT_NE(s, (Shape{28, 28, 4}));
}

TEST(BatchTest, SampleAccess) {
  Batch b(2, Shape{2, 2, 1});
  b.Sample(1)[3] = 5.0F;
  EXPECT_EQ(b.data[7], 5.0F);
  EXPECT_EQ(b.SampleSize(), 4U);
  EXPECT_EQ(b.TotalBytes(), 8U * sizeof(float));
}

TEST(KernelsTest, GemmSmallKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c_fast[4] = {0, 0, 0, 0};
  float c_precise[4] = {0, 0, 0, 0};
  GemmFast(2, 2, 2, a, b, c_fast);
  GemmPrecise(2, 2, 2, a, b, c_precise);
  const float expected[] = {19, 22, 43, 50};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(c_fast[i], expected[i]);
    EXPECT_FLOAT_EQ(c_precise[i], expected[i]);
  }
}

TEST(KernelsTest, FastAndPreciseAgree) {
  Rng rng(77);
  constexpr std::size_t m = 9, n = 17, k = 13;
  std::vector<float> a(m * k), b(k * n);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  std::vector<float> c1(m * n, 0.0F), c2(m * n, 0.0F);
  GemmFast(m, n, k, a.data(), b.data(), c1.data());
  GemmPrecise(m, n, k, a.data(), b.data(), c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4F);
}

TEST(KernelsTest, GemmTransAMatchesExplicit) {
  Rng rng(78);
  constexpr std::size_t m = 5, n = 7, k = 4;
  std::vector<float> a_t(k * m), b(k * n);  // A stored [k x m]
  for (float& x : a_t) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  // Explicit transpose + plain GEMM.
  std::vector<float> a(m * k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a[i * k + j] = a_t[j * m + i];
  std::vector<float> c1(m * n, 0.0F), c2(m * n, 0.0F);
  GemmPrecise(m, n, k, a.data(), b.data(), c1.data());
  GemmTransAPrecise(m, n, k, a_t.data(), b.data(), c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5F);
}

TEST(KernelsTest, GemmTransBMatchesExplicit) {
  Rng rng(79);
  constexpr std::size_t m = 5, n = 7, k = 4;
  std::vector<float> a(m * k), b_t(n * k);  // B stored [n x k]
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b_t) x = rng.Gaussian();
  std::vector<float> b(k * n);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i * n + j] = b_t[j * k + i];
  std::vector<float> c1(m * n, 0.0F), c2(m * n, 0.0F);
  GemmPrecise(m, n, k, a.data(), b.data(), c1.data());
  GemmTransBPrecise(m, n, k, a.data(), b_t.data(), c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5F);
}

TEST(KernelsTest, ParallelGemmFastIsBitIdenticalToSerial) {
  // The fast kernels dispatch row blocks through the thread pool; the
  // row-blocked partition must leave results bit-identical to the
  // serial (threads=1) kernel for every thread count.  Shapes are
  // deliberately odd — m, n, k not divisible by the row grain or any
  // thread count — so blocks are uneven.
  struct Shape3 {
    std::size_t m, n, k;
  };
  const Shape3 shapes[] = {{37, 29, 17}, {1, 5, 3},    {33, 1, 7},
                           {8, 64, 64},  {63, 31, 15}, {5, 3, 1}};
  for (const Shape3& s : shapes) {
    Rng rng(1000 + s.m);
    std::vector<float> a(s.m * s.k), b_plain(s.k * s.n), b_trans(s.n * s.k),
        a_trans(s.k * s.m);
    for (float& x : a) x = rng.Gaussian();
    for (float& x : b_plain) x = rng.Gaussian();
    for (float& x : b_trans) x = rng.Gaussian();
    for (float& x : a_trans) x = rng.Gaussian();

    std::vector<float> serial(s.m * s.n), parallel(s.m * s.n);
    const auto run_all = [&](std::vector<float>& c,
                             void (*gemm)(std::size_t, std::size_t,
                                          std::size_t, const float*,
                                          const float*, float*) noexcept,
                             const float* lhs, const float* rhs) {
      std::fill(c.begin(), c.end(), 0.25F);  // nonzero: kernels accumulate
      gemm(s.m, s.n, s.k, lhs, rhs, c.data());
    };

    for (const auto& [kernel, lhs, rhs] :
         {std::tuple{&GemmFast, a.data(), b_plain.data()},
          std::tuple{&GemmTransAFast, a_trans.data(), b_plain.data()},
          std::tuple{&GemmTransBFast, a.data(), b_trans.data()}}) {
      {
        util::ScopedThreads one(1);
        run_all(serial, kernel, lhs, rhs);
      }
      for (unsigned threads : {2U, 4U, 7U}) {
        util::ScopedThreads many(threads);
        run_all(parallel, kernel, lhs, rhs);
        ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                                 serial.size() * sizeof(float)))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " threads=" << threads;
      }
    }
  }
}

TEST(KernelsTest, Im2ColIdentityFor1x1) {
  // 1x1 kernel with no padding: col == input.
  const std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> col(8, 0.0F);
  Im2Col(in.data(), 2, 2, 2, 1, 1, 0, col.data());
  EXPECT_EQ(col, in);
}

TEST(KernelsTest, Col2ImIsAdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for all x, y (adjoint property a
  // correct gradient scatter must satisfy).
  Rng rng(80);
  constexpr int c = 2, h = 5, w = 4, k = 3, stride = 1, pad = 1;
  const int out_h = h, out_w = w;
  const std::size_t in_size = static_cast<std::size_t>(c) * h * w;
  const std::size_t col_size =
      static_cast<std::size_t>(c) * k * k * out_h * out_w;
  std::vector<float> x(in_size), y(col_size);
  for (float& v : x) v = rng.Gaussian();
  for (float& v : y) v = rng.Gaussian();

  std::vector<float> col(col_size, 0.0F);
  Im2Col(x.data(), c, h, w, k, stride, pad, col.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += col[i] * y[i];

  std::vector<float> back(in_size, 0.0F);
  Col2Im(y.data(), c, h, w, k, stride, pad, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < in_size; ++i) rhs += x[i] * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvTest, OutputShapes) {
  const ConvLayer c3(Shape{28, 28, 3}, 16, 3, 1, Activation::kLeakyRelu);
  EXPECT_EQ(c3.out_shape(), (Shape{28, 28, 16}));  // same padding
  const ConvLayer c1(Shape{7, 7, 16}, 10, 1, 1, Activation::kLinear);
  EXPECT_EQ(c1.out_shape(), (Shape{7, 7, 10}));
}

TEST(ConvTest, IdentityKernelForward) {
  // A 1x1 conv with weight 1 and bias 0 copies its input channel.
  ConvLayer conv(Shape{3, 3, 1}, 1, 1, 1, Activation::kLinear);
  conv.weights()[0] = 1.0F;
  Batch in(1, Shape{3, 3, 1});
  std::iota(in.data.begin(), in.data.end(), 1.0F);
  Batch out(1, conv.out_shape());
  LayerScratch scratch;
  LayerContext ctx;
  ctx.scratch = &scratch;
  conv.Forward(in, out, ctx);
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data[i], in.data[i]);
  }
}

TEST(ConvTest, LeakyActivationApplied) {
  ConvLayer conv(Shape{1, 1, 1}, 1, 1, 1, Activation::kLeakyRelu);
  conv.weights()[0] = 1.0F;
  Batch in(1, Shape{1, 1, 1});
  in.data[0] = -2.0F;
  Batch out(1, conv.out_shape());
  LayerScratch scratch;
  LayerContext ctx;
  ctx.scratch = &scratch;
  conv.Forward(in, out, ctx);
  EXPECT_FLOAT_EQ(out.data[0], -0.2F);
}

// Numeric-vs-analytic gradient check through a conv layer feeding a
// quadratic loss L = 0.5 * sum(out^2), whose dL/dout = out.
TEST(ConvTest, GradientCheckWeightsAndInput) {
  Rng rng(42);
  ConvLayer conv(Shape{5, 5, 2}, 3, 3, 1, Activation::kLeakyRelu);
  conv.InitWeights(rng);
  Batch in(1, Shape{5, 5, 2});
  for (float& x : in.data) x = rng.Gaussian();

  LayerScratch scratch;
  LayerGrads grads;
  LayerContext ctx;
  ctx.scratch = &scratch;
  ctx.grads = &grads;
  Batch out(1, conv.out_shape());
  conv.Forward(in, out, ctx);
  Batch delta_out = out;  // dL/dout = out for the quadratic loss
  Batch delta_in(1, conv.in_shape());
  conv.Backward(in, out, delta_out, delta_in, ctx);
  const std::vector<float> analytic_wgrad = grads.weight_grads;

  const auto loss = [&]() {
    Batch tmp(1, conv.out_shape());
    conv.Forward(in, tmp, ctx);
    double acc = 0.0;
    for (float v : tmp.data) acc += 0.5 * static_cast<double>(v) * v;
    return acc;
  };

  constexpr float kEps = 1e-3F;
  for (std::size_t wi : {std::size_t{0}, std::size_t{7}, std::size_t{31}}) {
    const float saved = conv.weights()[wi];
    conv.weights()[wi] = saved + kEps;
    const double up = loss();
    conv.weights()[wi] = saved - kEps;
    const double down = loss();
    conv.weights()[wi] = saved;
    const double numeric = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(analytic_wgrad[wi], numeric, 2e-2)
        << "weight index " << wi;
  }

  // Input gradient.
  for (std::size_t xi : {std::size_t{0}, std::size_t{12}, std::size_t{49}}) {
    const float saved = in.data[xi];
    in.data[xi] = saved + kEps;
    const double up = loss();
    in.data[xi] = saved - kEps;
    const double down = loss();
    in.data[xi] = saved;
    const double numeric = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(delta_in.data[xi], numeric, 2e-2) << "input index " << xi;
  }
}

TEST(ConnectedTest, GradientCheck) {
  Rng rng(43);
  ConnectedLayer fc(Shape{2, 2, 2}, 5, Activation::kLeakyRelu);
  fc.InitWeights(rng);
  Batch in(2, Shape{2, 2, 2});
  for (float& x : in.data) x = rng.Gaussian();

  LayerScratch scratch;
  LayerGrads grads;
  LayerContext ctx;
  ctx.scratch = &scratch;
  ctx.grads = &grads;
  Batch out(2, fc.out_shape());
  fc.Forward(in, out, ctx);
  Batch delta_out = out;
  Batch delta_in(2, fc.in_shape());
  fc.Backward(in, out, delta_out, delta_in, ctx);
  const std::vector<float> analytic = grads.weight_grads;

  const auto loss = [&]() {
    Batch tmp(2, fc.out_shape());
    fc.Forward(in, tmp, ctx);
    double acc = 0.0;
    for (float v : tmp.data) acc += 0.5 * static_cast<double>(v) * v;
    return acc;
  };
  constexpr float kEps = 1e-3F;
  for (std::size_t wi : {std::size_t{0}, std::size_t{11}, std::size_t{39}}) {
    const float saved = fc.weights()[wi];
    fc.weights()[wi] = saved + kEps;
    const double up = loss();
    fc.weights()[wi] = saved - kEps;
    const double down = loss();
    fc.weights()[wi] = saved;
    EXPECT_NEAR(analytic[wi], (up - down) / (2.0 * kEps), 2e-2);
  }
}

TEST(MaxPoolTest, ForwardPicksMaxAndBackwardRoutes) {
  MaxPoolLayer pool(Shape{4, 4, 1}, 2, 2);
  Batch in(1, Shape{4, 4, 1});
  std::iota(in.data.begin(), in.data.end(), 1.0F);  // 1..16 row-major
  Batch out(1, pool.out_shape());
  LayerScratch scratch;
  LayerContext ctx;
  ctx.scratch = &scratch;
  pool.Forward(in, out, ctx);
  EXPECT_EQ(out.shape, (Shape{2, 2, 1}));
  EXPECT_FLOAT_EQ(out.data[0], 6.0F);
  EXPECT_FLOAT_EQ(out.data[1], 8.0F);
  EXPECT_FLOAT_EQ(out.data[2], 14.0F);
  EXPECT_FLOAT_EQ(out.data[3], 16.0F);

  Batch delta_out(1, pool.out_shape());
  delta_out.data = {1.0F, 2.0F, 3.0F, 4.0F};
  Batch delta_in(1, pool.in_shape());
  pool.Backward(in, out, delta_out, delta_in, ctx);
  // Gradient lands only on the argmax positions.
  EXPECT_FLOAT_EQ(delta_in.data[5], 1.0F);   // value 6
  EXPECT_FLOAT_EQ(delta_in.data[7], 2.0F);   // value 8
  EXPECT_FLOAT_EQ(delta_in.data[13], 3.0F);  // value 14
  EXPECT_FLOAT_EQ(delta_in.data[15], 4.0F);  // value 16
  double total = 0.0;
  for (float v : delta_in.data) total += v;
  EXPECT_NEAR(total, 10.0, 1e-6);
}

TEST(AvgPoolTest, ForwardMeanBackwardUniform) {
  AvgPoolLayer pool(Shape{2, 2, 2});
  Batch in(1, Shape{2, 2, 2});
  in.data = {1, 2, 3, 4, 10, 20, 30, 40};
  Batch out(1, pool.out_shape());
  LayerContext ctx;
  pool.Forward(in, out, ctx);
  EXPECT_FLOAT_EQ(out.data[0], 2.5F);
  EXPECT_FLOAT_EQ(out.data[1], 25.0F);

  Batch delta_out(1, pool.out_shape());
  delta_out.data = {4.0F, 8.0F};
  Batch delta_in(1, pool.in_shape());
  pool.Backward(in, out, delta_out, delta_in, ctx);
  EXPECT_FLOAT_EQ(delta_in.data[0], 1.0F);
  EXPECT_FLOAT_EQ(delta_in.data[4], 2.0F);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  DropoutLayer drop(Shape{4, 4, 1}, 0.5F);
  Batch in(1, Shape{4, 4, 1});
  std::iota(in.data.begin(), in.data.end(), 1.0F);
  Batch out(1, drop.out_shape());
  LayerContext ctx;  // training = false
  drop.Forward(in, out, ctx);
  EXPECT_EQ(out.data, in.data);
}

TEST(DropoutTest, TrainModeZerosAndScales) {
  DropoutLayer drop(Shape{10, 10, 4}, 0.5F);
  Batch in(1, Shape{10, 10, 4});
  std::fill(in.data.begin(), in.data.end(), 1.0F);
  Batch out(1, drop.out_shape());
  Rng rng(5);
  LayerScratch scratch;
  LayerContext ctx;
  ctx.training = true;
  ctx.rng = &rng;
  ctx.scratch = &scratch;
  drop.Forward(in, out, ctx);
  int zeros = 0, scaled = 0;
  for (float v : out.data) {
    if (v == 0.0F) ++zeros;
    else if (std::abs(v - 2.0F) < 1e-6F) ++scaled;
    else FAIL() << "unexpected dropout output " << v;
  }
  EXPECT_GT(zeros, 100);
  EXPECT_GT(scaled, 100);

  // Backward uses the same mask.
  Batch delta_out(1, drop.out_shape());
  std::fill(delta_out.data.begin(), delta_out.data.end(), 1.0F);
  Batch delta_in(1, drop.in_shape());
  drop.Backward(in, out, delta_out, delta_in, ctx);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    EXPECT_EQ(delta_in.data[i] == 0.0F, out.data[i] == 0.0F);
  }
}

TEST(SoftmaxCostTest, LossOfUniformLogitsIsLogN) {
  NetworkSpec spec;
  spec.input = Shape{1, 1, 4};
  spec.layers = {LayerSpec{.kind = LayerKind::kSoftmax},
                 LayerSpec{.kind = LayerKind::kCost}};
  Network net(spec);
  Batch in(1, Shape{1, 1, 4});
  std::fill(in.data.begin(), in.data.end(), 0.0F);
  std::vector<int> labels = {2};
  LayerContext ctx;
  ctx.labels = &labels;
  net.ForwardRange(&in, 0, net.NumLayers(), ctx);
  EXPECT_NEAR(net.LastLoss(), std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCostTest, CombinedGradientIsProbsMinusOneHot) {
  NetworkSpec spec;
  spec.input = Shape{1, 1, 3};
  spec.layers = {LayerSpec{.kind = LayerKind::kSoftmax},
                 LayerSpec{.kind = LayerKind::kCost}};
  Network net(spec);
  Batch in(1, Shape{1, 1, 3});
  in.data = {1.0F, 2.0F, 3.0F};
  std::vector<int> labels = {0};
  LayerContext ctx;
  ctx.training = true;
  ctx.labels = &labels;
  net.ForwardRange(&in, 0, net.NumLayers(), ctx);
  net.BackwardRange(0, net.NumLayers(), ctx);
  const Batch& probs = net.ActivationAt(0);
  // Delta entering the softmax (= what a preceding layer would see) is
  // probs - onehot.
  const Batch& delta = net.DeltaAt(0);
  // DeltaAt(0) is dL/d(softmax output) which equals the cost layer's
  // pass-down (probs - onehot) by the pairing convention.
  EXPECT_NEAR(delta.data[0], probs.data[0] - 1.0F, 1e-6F);
  EXPECT_NEAR(delta.data[1], probs.data[1], 1e-6F);
  EXPECT_NEAR(delta.data[2], probs.data[2], 1e-6F);
}

TEST(NetworkTest, CostWithoutSoftmaxRejected) {
  NetworkSpec spec;
  spec.input = Shape{1, 1, 3};
  spec.layers = {LayerSpec{.kind = LayerKind::kCost}};
  EXPECT_THROW(Network net(spec), Error);
}

TEST(NetworkTest, Table1ShapesMatchPaper) {
  Rng rng(1);
  Network net = BuildNetwork(Table1Spec(), rng);
  ASSERT_EQ(net.NumLayers(), 10);
  EXPECT_EQ(net.layer(0).out_shape(), (Shape{28, 28, 128}));
  EXPECT_EQ(net.layer(1).out_shape(), (Shape{28, 28, 128}));
  EXPECT_EQ(net.layer(2).out_shape(), (Shape{14, 14, 128}));
  EXPECT_EQ(net.layer(3).out_shape(), (Shape{14, 14, 64}));
  EXPECT_EQ(net.layer(4).out_shape(), (Shape{7, 7, 64}));
  EXPECT_EQ(net.layer(5).out_shape(), (Shape{7, 7, 128}));
  EXPECT_EQ(net.layer(6).out_shape(), (Shape{7, 7, 10}));
  EXPECT_EQ(net.layer(7).out_shape(), (Shape{1, 1, 10}));
  EXPECT_EQ(net.NumClasses(), 10);
  EXPECT_EQ(net.PenultimateIndex(), 7);  // avg pool output is the embedding
}

TEST(NetworkTest, Table2ShapesMatchPaper) {
  Rng rng(1);
  Network net = BuildNetwork(Table2Spec(), rng);
  ASSERT_EQ(net.NumLayers(), 18);
  EXPECT_EQ(net.layer(2).out_shape(), (Shape{28, 28, 128}));
  EXPECT_EQ(net.layer(3).out_shape(), (Shape{14, 14, 128}));
  EXPECT_EQ(net.layer(7).out_shape(), (Shape{14, 14, 256}));
  EXPECT_EQ(net.layer(8).out_shape(), (Shape{7, 7, 256}));
  EXPECT_EQ(net.layer(12).out_shape(), (Shape{7, 7, 512}));
  EXPECT_EQ(net.layer(14).out_shape(), (Shape{7, 7, 10}));
  EXPECT_EQ(net.layer(15).out_shape(), (Shape{1, 1, 10}));
}

TEST(NetworkTest, ScaledPresetKeepsTopology) {
  Rng rng(1);
  Network net = BuildNetwork(Table2Spec(8), rng);
  ASSERT_EQ(net.NumLayers(), 18);
  EXPECT_EQ(net.layer(0).out_shape().c, 16);
  EXPECT_EQ(net.layer(14).out_shape().c, 10);  // class conv never scaled
}

TEST(NetworkTest, SerializationRoundTripPreservesPredictions) {
  Rng rng(21);
  Network net = BuildNetwork(Table1Spec(16), rng);
  Image img(Shape{28, 28, 3});
  for (float& p : img.pixels) p = rng.UniformFloat();
  const auto before = net.PredictOne(img);
  const Bytes blob = net.SerializeModel();
  Network restored = Network::DeserializeModel(blob);
  const auto after = restored.PredictOne(img);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(NetworkTest, WeightRangeRoundTrip) {
  Rng rng(22);
  Network a = BuildNetwork(Table1Spec(16), rng);
  Network b = BuildNetwork(Table1Spec(16), rng);  // different init
  // Copy layers [0, 2) (the FrontNet) from a to b.
  const Bytes blob = a.SerializeWeightRange(0, 2);
  b.DeserializeWeightRange(0, 2, blob);
  EXPECT_EQ(b.SerializeWeightRange(0, 2), blob);
  EXPECT_NE(b.SerializeWeightRange(2, 7), a.SerializeWeightRange(2, 7));
}

TEST(NetworkTest, FlopsAccountingMonotone) {
  Rng rng(23);
  Network net = BuildNetwork(Table2Spec(8), rng);
  const auto front = net.FlopsPerSample(0, 4);
  const auto all = net.FlopsPerSample(0, net.NumLayers());
  EXPECT_GT(front, 0U);
  EXPECT_GT(all, front);
  EXPECT_GT(net.WeightBytes(0, net.NumLayers()), net.WeightBytes(0, 1));
}

TEST(NetworkTest, PartitionedForwardMatchesFullForward) {
  // Running [0,k) then [k,N) must equal a single full pass (eval mode).
  Rng rng(24);
  Network net = BuildNetwork(Table1Spec(16), rng);
  Batch in(3, Shape{28, 28, 3});
  for (float& x : in.data) x = rng.UniformFloat();

  LayerContext ctx;
  net.ForwardRange(&in, 0, net.NumLayers(), ctx);
  const std::vector<float> full = net.ActivationAt(8).data;  // softmax out

  net.ForwardRange(&in, 0, 2, ctx);
  net.ForwardRange(nullptr, 2, net.NumLayers(), ctx);
  const std::vector<float> split = net.ActivationAt(8).data;
  ASSERT_EQ(full.size(), split.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_FLOAT_EQ(full[i], split[i]);
  }
}

TEST(TrainerTest, LearnsSeparableProblem) {
  // Two classes distinguished by mean intensity: class 0 dark, class 1
  // bright.  A Table-1-style tiny net must reach >= 90% top-1 quickly.
  Rng rng(31);
  std::vector<Image> train_images, test_images;
  std::vector<int> train_labels, test_labels;
  const auto make = [&](int label) {
    Image img(Shape{28, 28, 3});
    const float base = label == 0 ? 0.2F : 0.8F;
    for (float& p : img.pixels) p = base + 0.1F * rng.Gaussian();
    return img;
  };
  for (int i = 0; i < 120; ++i) {
    const int label = i % 2;
    train_images.push_back(make(label));
    train_labels.push_back(label);
  }
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    test_images.push_back(make(label));
    test_labels.push_back(label);
  }

  Network net = BuildNetwork(Table1Spec(32, 2), rng);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.05F;
  options.augment = false;
  options.seed = 99;
  const auto history = TrainNetwork(net, train_images, train_labels,
                                    test_images, test_labels, options);
  ASSERT_EQ(history.size(), 3U);
  EXPECT_GE(history.back().top1, 0.9);
  EXPECT_GE(history.back().top2, 0.999);  // 2 classes -> top2 is always hit
}

TEST(TrainerTest, TrainStepBitIdenticalAcrossThreadCounts) {
  // The deterministic data-parallel TrainStep: fixed-size shards,
  // per-shard dropout RNG streams, and fixed-order gradient reduction
  // make trained weights and losses bit-identical at any thread count.
  // Table-2 topology so dropout masks (workspace scratch + derived RNG
  // streams) are exercised.
  const auto run = [](unsigned threads) {
    util::ScopedThreads guard(threads);
    Rng rng(55);
    Network net = BuildNetwork(Table2Spec(32, 2), rng);
    Batch batch(16, Shape{28, 28, 3});
    Rng fill(56);
    for (float& x : batch.data) x = fill.UniformFloat();
    std::vector<int> labels(16);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<int>(i % 2);
    }
    SgdConfig sgd;
    Rng train_rng(57);
    std::vector<float> losses;
    for (int step = 0; step < 3; ++step) {
      losses.push_back(net.TrainStep(batch, labels, sgd, train_rng));
    }
    return std::make_pair(losses,
                          net.SerializeWeightRange(0, net.NumLayers()));
  };
  const auto serial = run(1);
  for (const unsigned threads : {2U, 3U, 8U}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first)
        << "losses diverged at threads=" << threads;
    EXPECT_EQ(parallel.second, serial.second)
        << "weights diverged at threads=" << threads;
  }
}

TEST(TrainerTest, EvaluateTopKBounds) {
  Rng rng(32);
  Network net = BuildNetwork(Table1Spec(32, 2), rng);
  std::vector<Image> images(4, Image(Shape{28, 28, 3}));
  std::vector<int> labels = {0, 1, 0, 1};
  const double top1 = EvaluateTopK(net, images, labels, 1);
  const double top2 = EvaluateTopK(net, images, labels, 2);
  EXPECT_GE(top1, 0.0);
  EXPECT_LE(top1, 1.0);
  EXPECT_NEAR(top2, 1.0, 1e-9);
}

TEST(AugmentTest, FlipIsInvolution) {
  Rng rng(33);
  Image img(Shape{8, 8, 3});
  for (float& p : img.pixels) p = rng.UniformFloat();
  const Image back = FlipHorizontal(FlipHorizontal(img));
  EXPECT_EQ(back.pixels, img.pixels);
}

TEST(AugmentTest, RotateZeroIsIdentity) {
  Rng rng(34);
  Image img(Shape{8, 8, 1});
  for (float& p : img.pixels) p = rng.UniformFloat();
  const Image rotated = Rotate(img, 0.0F);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    EXPECT_NEAR(rotated.pixels[i], img.pixels[i], 1e-5F);
  }
}

TEST(AugmentTest, TranslateMovesPixels) {
  Image img(Shape{4, 4, 1});
  img.At(0, 1, 1) = 1.0F;
  const Image shifted = Translate(img, 1, 2);
  EXPECT_FLOAT_EQ(shifted.At(0, 3, 2), 1.0F);
  EXPECT_FLOAT_EQ(shifted.At(0, 1, 1), 0.0F);
}

TEST(AugmentTest, BrightnessContrastClamps) {
  Image img(Shape{2, 2, 1});
  img.pixels = {0.0F, 0.5F, 0.9F, 1.0F};
  const Image out = AdjustBrightnessContrast(img, 0.5F, 1.0F);
  for (float p : out.pixels) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
  }
  EXPECT_FLOAT_EQ(out.pixels[0], 0.5F);
  EXPECT_FLOAT_EQ(out.pixels[3], 1.0F);
}

TEST(AugmentTest, AugmentIsDeterministicGivenRng) {
  Image img(Shape{8, 8, 3});
  Rng fill(35);
  for (float& p : img.pixels) p = fill.UniformFloat();
  Rng a(7), b(7);
  const AugmentOptions options;
  const Image out_a = Augment(img, options, a);
  const Image out_b = Augment(img, options, b);
  EXPECT_EQ(out_a.pixels, out_b.pixels);
}


TEST(NetworkEdgeTest, EmbeddingAtLayerBounds) {
  Rng rng(200);
  Network net = BuildNetwork(Table1Spec(32), rng);
  Image img(Shape{28, 28, 3});
  EXPECT_THROW((void)net.EmbeddingAtLayer(img, -1), Error);
  EXPECT_THROW((void)net.EmbeddingAtLayer(img, 99), Error);
  const auto early = net.EmbeddingAtLayer(img, 0);
  EXPECT_EQ(early.size(), net.layer(0).out_shape().Flat());
}

TEST(NetworkEdgeTest, ArchitectureTableListsEveryLayer) {
  Rng rng(201);
  Network net = BuildNetwork(Table2Spec(32), rng);
  const std::string table = net.ArchitectureTable();
  EXPECT_NE(table.find("conv"), std::string::npos);
  EXPECT_NE(table.find("dropout"), std::string::npos);
  EXPECT_NE(table.find("softmax"), std::string::npos);
  // 18 data rows + header.
  EXPECT_EQ(static_cast<int>(std::count(table.begin(), table.end(),
                                        '\n')),
            19);
}

TEST(NetworkEdgeTest, ForwardRangeValidatesInput) {
  Rng rng(202);
  Network net = BuildNetwork(Table1Spec(32), rng);
  LayerContext ctx;
  Batch wrong_shape(1, Shape{8, 8, 3});
  EXPECT_THROW(net.ForwardRange(&wrong_shape, 0, 2, ctx), Error);
  EXPECT_THROW(net.ForwardRange(nullptr, 0, 2, ctx), Error);
  Batch ok(1, Shape{28, 28, 3});
  EXPECT_THROW(net.ForwardRange(&ok, 2, 1, ctx), Error);  // bad range
}

TEST(NetworkEdgeTest, DeserializeRejectsCorruptBlob) {
  Rng rng(203);
  Network net = BuildNetwork(Table1Spec(32), rng);
  Bytes blob = net.SerializeModel();
  blob.resize(blob.size() / 2);  // truncate
  EXPECT_THROW((void)Network::DeserializeModel(blob), Error);
  Bytes extended = net.SerializeModel();
  extended.push_back(0x00);  // trailing garbage
  EXPECT_THROW((void)Network::DeserializeModel(extended), Error);
}

TEST(FaceNetSpecTest, ShapesAndPenultimate) {
  Rng rng(204);
  Network net = BuildNetwork(FaceNetSpec(Shape{32, 32, 3}, 8, 64, 8), rng);
  EXPECT_EQ(net.NumClasses(), 8);
  // Penultimate is the identity-logits FC (VGG-Face fc8 analog).
  EXPECT_EQ(net.layer(net.PenultimateIndex()).out_shape(),
            (Shape{1, 1, 8}));
  // The wide embedding FC sits directly before it.
  EXPECT_EQ(net.layer(net.PenultimateIndex() - 1).out_shape(),
            (Shape{1, 1, 64}));
}

}  // namespace
}  // namespace caltrain::nn
