// Property-style parameterized sweeps (TEST_P) across the substrates:
// crypto round-trip/tamper laws, group algebra, kernel adjointness and
// gradient checks across layer geometries, k-NN index agreement, EPC
// residency invariants, and record-layer framing over payload sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "crypto/gcm.hpp"
#include "crypto/group.hpp"
#include "enclave/epc.hpp"
#include "linkage/vptree.hpp"
#include "linkage/linkage_db.hpp"
#include "nn/augment.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/presets.hpp"
#include "nn/kernels.hpp"
#include "nn/pool.hpp"
#include "securechannel/record.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace caltrain {
namespace {

// ---------------------------------------------------------------------------
// AES-GCM round-trip and tamper rejection across sizes and key lengths.
// ---------------------------------------------------------------------------
class GcmProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(GcmProperty, RoundTripAndTamper) {
  const auto [key_size, payload_size] = GetParam();
  Rng rng(key_size * 1000 + payload_size);
  Bytes key(key_size);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.NextU64());
  Bytes payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextU64());
  Bytes iv(crypto::kGcmIvSize);
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.NextU64());

  const crypto::AesGcm gcm(key);
  const crypto::GcmSealed sealed = gcm.Seal(iv, BytesOf("aad"), payload);
  const auto opened = gcm.Open(iv, BytesOf("aad"), sealed.ciphertext,
                               sealed.tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);

  if (!payload.empty()) {
    Bytes tampered = sealed.ciphertext;
    tampered[tampered.size() / 2] ^= 0x01;
    EXPECT_FALSE(gcm.Open(iv, BytesOf("aad"), tampered, sealed.tag)
                     .has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    KeyAndPayloadSizes, GcmProperty,
    ::testing::Combine(::testing::Values(16, 32),
                       ::testing::Values(0, 1, 15, 16, 17, 255, 4096)));

// ---------------------------------------------------------------------------
// Group algebra: exponent laws hold for random scalars.
// ---------------------------------------------------------------------------
class GroupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupProperty, ExponentLaws) {
  crypto::HmacDrbg drbg(crypto::U128ToBytes(GetParam()));
  const crypto::U128 p = crypto::GroupPrime();
  const crypto::U128 g = crypto::GroupGenerator();
  const crypto::U128 x = crypto::RandomScalar(drbg);
  const crypto::U128 y = crypto::RandomScalar(drbg);
  // g^x * g^y == g^(x+y)
  const crypto::U128 lhs =
      crypto::MulMod(crypto::PowMod(g, x, p), crypto::PowMod(g, y, p), p);
  const crypto::U128 rhs = crypto::PowMod(g, crypto::AddMod(x, y, p - 1), p);
  EXPECT_TRUE(lhs == rhs);
  // (g^x)^y == (g^y)^x  (the DH property)
  const crypto::U128 gxy = crypto::PowMod(crypto::PowMod(g, x, p), y, p);
  const crypto::U128 gyx = crypto::PowMod(crypto::PowMod(g, y, p), x, p);
  EXPECT_TRUE(gxy == gyx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Im2Col/Col2Im adjointness over convolution geometries.
// ---------------------------------------------------------------------------
struct ConvGeometry {
  int channels, height, width, ksize, stride, pad;
};

class Im2ColProperty : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(Im2ColProperty, AdjointIdentity) {
  const ConvGeometry g = GetParam();
  const int out_h = (g.height + 2 * g.pad - g.ksize) / g.stride + 1;
  const int out_w = (g.width + 2 * g.pad - g.ksize) / g.stride + 1;
  ASSERT_GT(out_h, 0);
  ASSERT_GT(out_w, 0);
  const std::size_t in_size =
      static_cast<std::size_t>(g.channels) * g.height * g.width;
  const std::size_t col_size = static_cast<std::size_t>(g.channels) *
                               g.ksize * g.ksize * out_h * out_w;
  Rng rng(g.channels * 100 + g.ksize);
  std::vector<float> x(in_size), y(col_size);
  for (float& v : x) v = rng.Gaussian();
  for (float& v : y) v = rng.Gaussian();

  std::vector<float> col(col_size, 0.0F);
  nn::Im2Col(x.data(), g.channels, g.height, g.width, g.ksize, g.stride,
             g.pad, col.data());
  std::vector<float> back(in_size, 0.0F);
  nn::Col2Im(y.data(), g.channels, g.height, g.width, g.ksize, g.stride,
             g.pad, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += col[i] * y[i];
  for (std::size_t i = 0; i < in_size; ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColProperty,
    ::testing::Values(ConvGeometry{1, 5, 5, 3, 1, 1},
                      ConvGeometry{3, 8, 8, 3, 1, 1},
                      ConvGeometry{2, 7, 9, 3, 2, 1},
                      ConvGeometry{4, 6, 6, 1, 1, 0},
                      ConvGeometry{2, 12, 4, 5, 1, 2},
                      ConvGeometry{1, 4, 4, 2, 2, 0}));

// ---------------------------------------------------------------------------
// Conv gradient check across kernel sizes and activations.
// ---------------------------------------------------------------------------
class ConvGradProperty
    : public ::testing::TestWithParam<std::tuple<int, int, nn::Activation>> {
};

TEST_P(ConvGradProperty, WeightGradientMatchesNumeric) {
  const auto [ksize, filters, activation] = GetParam();
  Rng rng(static_cast<std::uint64_t>(ksize * 10 + filters));
  nn::ConvLayer conv(nn::Shape{6, 6, 2}, filters, ksize, 1, activation);
  conv.InitWeights(rng);
  nn::Batch in(1, nn::Shape{6, 6, 2});
  for (float& x : in.data) x = rng.Gaussian();

  nn::LayerScratch scratch;
  nn::LayerGrads grads;
  nn::LayerContext ctx;
  ctx.scratch = &scratch;
  ctx.grads = &grads;
  nn::Batch out(1, conv.out_shape());
  conv.Forward(in, out, ctx);
  nn::Batch delta_out = out;  // quadratic loss: dL/dout = out
  nn::Batch delta_in(1, conv.in_shape());
  conv.Backward(in, out, delta_out, delta_in, ctx);
  const auto analytic = grads.weight_grads;

  const auto loss = [&]() {
    nn::Batch tmp(1, conv.out_shape());
    conv.Forward(in, tmp, ctx);
    double acc = 0.0;
    for (float v : tmp.data) acc += 0.5 * static_cast<double>(v) * v;
    return acc;
  };
  constexpr float kEps = 1e-3F;
  const std::size_t probe = analytic.size() / 2;
  const float saved = conv.weights()[probe];
  conv.weights()[probe] = saved + kEps;
  const double up = loss();
  conv.weights()[probe] = saved - kEps;
  const double down = loss();
  conv.weights()[probe] = saved;
  EXPECT_NEAR(analytic[probe], (up - down) / (2.0 * kEps), 3e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConvGradProperty,
    ::testing::Combine(::testing::Values(1, 3),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(nn::Activation::kLinear,
                                         nn::Activation::kLeakyRelu)));

// ---------------------------------------------------------------------------
// MaxPool gradient mass conservation across geometries.
// ---------------------------------------------------------------------------
class MaxPoolProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MaxPoolProperty, BackwardConservesGradientMass) {
  const auto [size, channels] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size * 7 + channels));
  nn::MaxPoolLayer pool(nn::Shape{size, size, channels}, 2, 2);
  nn::Batch in(2, nn::Shape{size, size, channels});
  for (float& x : in.data) x = rng.Gaussian();
  nn::Batch out(2, pool.out_shape());
  nn::LayerScratch scratch;
  nn::LayerContext ctx;
  ctx.scratch = &scratch;
  pool.Forward(in, out, ctx);

  nn::Batch delta_out(2, pool.out_shape());
  double mass_out = 0.0;
  for (float& x : delta_out.data) {
    x = rng.UniformFloat();
    mass_out += x;
  }
  nn::Batch delta_in(2, pool.in_shape());
  pool.Backward(in, out, delta_out, delta_in, ctx);
  double mass_in = 0.0;
  for (float x : delta_in.data) mass_in += x;
  EXPECT_NEAR(mass_in, mass_out, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MaxPoolProperty,
                         ::testing::Combine(::testing::Values(4, 6, 7, 8),
                                            ::testing::Values(1, 3)));

// ---------------------------------------------------------------------------
// Fast vs strict-FP GEMM agreement across shapes (the two enclave paths
// must be numerically interchangeable).
// ---------------------------------------------------------------------------
class GemmProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmProperty, ProfilesAgree) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10000 + n * 100 + k));
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0F);
  std::vector<float> c2 = c1;
  nn::GemmFast(m, n, k, a.data(), b.data(), c1.data());
  nn::GemmPrecise(m, n, k, a.data(), b.data(), c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-3F * static_cast<float>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{16, 16, 16}, std::tuple{5, 31, 7},
                      std::tuple{64, 8, 128}));

// ---------------------------------------------------------------------------
// VP-tree agrees with brute force across dimensions and k.
// ---------------------------------------------------------------------------
class VpTreeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(VpTreeProperty, AgreesWithBruteForce) {
  const auto [count, dim, k] = GetParam();
  Rng rng(count * 31 + dim * 7 + k);
  std::vector<std::vector<float>> points(count, std::vector<float>(dim));
  for (auto& p : points) {
    for (float& x : p) x = rng.Gaussian();
  }
  const linkage::VpTree tree(points);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> query(dim);
    for (float& x : query) x = rng.Gaussian();
    const auto exact = linkage::BruteForceKnn(points, query, k);
    const auto fast = tree.Search(query, k);
    ASSERT_EQ(fast.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(fast[i].distance, exact[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, VpTreeProperty,
    ::testing::Combine(::testing::Values(10, 100, 500),
                       ::testing::Values(2, 16, 64),
                       ::testing::Values(1, 5, 20)));

// ---------------------------------------------------------------------------
// EPC residency invariants over capacities and region mixes.
// ---------------------------------------------------------------------------
class EpcProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpcProperty, ResidencyNeverExceedsCapacity) {
  const std::size_t capacity_pages = GetParam();
  enclave::EpcConfig config;
  config.capacity_bytes = capacity_pages * config.page_bytes;
  enclave::EpcManager epc(config);
  Rng rng(capacity_pages);
  std::vector<enclave::RegionId> regions;
  for (int i = 0; i < 8; ++i) {
    regions.push_back(epc.Allocate(
        "r" + std::to_string(i),
        (1 + rng.UniformU64(2 * capacity_pages)) * config.page_bytes));
  }
  for (int step = 0; step < 50; ++step) {
    epc.Touch(regions[rng.UniformU64(regions.size())]);
    EXPECT_LE(epc.resident_bytes(), config.capacity_bytes);
  }
  // Accounting is self-consistent: every eviction encrypted one page and
  // every fault decrypted one.
  EXPECT_EQ(epc.stats().bytes_encrypted,
            (epc.stats().pages_evicted + epc.stats().page_faults) *
                config.page_bytes);
}

INSTANTIATE_TEST_SUITE_P(Capacities, EpcProperty,
                         ::testing::Values(1, 2, 4, 16, 64));

// ---------------------------------------------------------------------------
// Record layer across payload sizes.
// ---------------------------------------------------------------------------
class RecordProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecordProperty, RoundTripInOrder) {
  const std::size_t payload_size = GetParam();
  const Bytes key(32, 0x31);
  securechannel::RecordWriter writer(key);
  securechannel::RecordReader reader(key);
  Rng rng(payload_size + 1);
  for (int i = 0; i < 5; ++i) {
    Bytes payload(payload_size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto out = reader.Unprotect(writer.Protect(payload));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, RecordProperty,
                         ::testing::Values(0, 1, 16, 100, 4096, 100000));

// ---------------------------------------------------------------------------
// Softmax invariants across dimensions.
// ---------------------------------------------------------------------------
class SoftmaxProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoftmaxProperty, SumsToOneAndShiftInvariant) {
  const std::size_t dim = GetParam();
  Rng rng(dim);
  std::vector<float> logits(dim);
  for (float& x : logits) x = rng.Gaussian(0.0F, 5.0F);
  const auto p = Softmax(logits);
  double sum = 0.0;
  for (float x : p) {
    EXPECT_GE(x, 0.0F);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // Shift invariance: softmax(z + c) == softmax(z).
  std::vector<float> shifted = logits;
  for (float& x : shifted) x += 100.0F;
  const auto q = Softmax(shifted);
  for (std::size_t i = 0; i < dim; ++i) EXPECT_NEAR(p[i], q[i], 1e-5F);
}

INSTANTIATE_TEST_SUITE_P(Dims, SoftmaxProperty,
                         ::testing::Values(1, 2, 10, 100, 2622));


// ---------------------------------------------------------------------------
// Dropout preserves activation mass in expectation across probabilities.
// ---------------------------------------------------------------------------
class DropoutProperty : public ::testing::TestWithParam<float> {};

TEST_P(DropoutProperty, InvertedScalingPreservesExpectation) {
  const float p = GetParam();
  nn::DropoutLayer drop(nn::Shape{24, 24, 4}, p);
  nn::Batch in(1, nn::Shape{24, 24, 4});
  std::fill(in.data.begin(), in.data.end(), 1.0F);
  nn::Batch out(1, drop.out_shape());
  Rng rng(static_cast<std::uint64_t>(p * 1000) + 1);
  nn::LayerScratch scratch;
  nn::LayerContext ctx;
  ctx.training = true;
  ctx.rng = &rng;
  ctx.scratch = &scratch;
  double mass = 0.0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    drop.Forward(in, out, ctx);
    for (float v : out.data) mass += v;
  }
  const double expected =
      static_cast<double>(in.data.size()) * kTrials;
  EXPECT_NEAR(mass / expected, 1.0, 0.05)
      << "inverted dropout must preserve expected activation mass";
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DropoutProperty,
                         ::testing::Values(0.0F, 0.1F, 0.25F, 0.5F, 0.8F));

// ---------------------------------------------------------------------------
// Network presets across scales: shapes hold, serialization round-trips.
// ---------------------------------------------------------------------------
class PresetProperty : public ::testing::TestWithParam<int> {};

TEST_P(PresetProperty, ScaledPresetsBuildAndRoundTrip) {
  const int scale = GetParam();
  Rng rng(static_cast<std::uint64_t>(scale));
  for (const nn::NetworkSpec& spec :
       {nn::Table1Spec(scale), nn::Table2Spec(scale)}) {
    nn::Network net = nn::BuildNetwork(spec, rng);
    EXPECT_EQ(net.NumClasses(), 10);
    EXPECT_EQ(net.layer(net.NumLayers() - 3).out_shape(),
              (nn::Shape{1, 1, 10}));
    nn::Network restored = nn::Network::DeserializeModel(
        net.SerializeModel());
    nn::Image img(nn::Shape{28, 28, 3});
    Rng fill(7);
    for (float& x : img.pixels) x = fill.UniformFloat();
    const auto a = net.PredictOne(img);
    const auto b = restored.PredictOne(img);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PresetProperty,
                         ::testing::Values(4, 8, 16, 32, 64));

// ---------------------------------------------------------------------------
// Augmentation never leaves [0, 1] and never changes the shape, across
// parameter combinations.
// ---------------------------------------------------------------------------
class AugmentProperty
    : public ::testing::TestWithParam<std::tuple<float, int, float>> {};

TEST_P(AugmentProperty, OutputStaysInRangeAndShape) {
  const auto [rotation, translate, jitter] = GetParam();
  nn::AugmentOptions options;
  options.max_rotation_deg = rotation;
  options.max_translate_px = translate;
  options.max_brightness = jitter;
  options.max_contrast = jitter;
  Rng rng(99);
  nn::Image img(nn::Shape{16, 16, 3});
  for (float& x : img.pixels) x = rng.UniformFloat();
  for (int trial = 0; trial < 10; ++trial) {
    const nn::Image out = nn::Augment(img, options, rng);
    ASSERT_EQ(out.shape, img.shape);
    for (float v : out.pixels) {
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamMix, AugmentProperty,
    ::testing::Combine(::testing::Values(0.0F, 15.0F),
                       ::testing::Values(0, 3),
                       ::testing::Values(0.0F, 0.3F)));

// ---------------------------------------------------------------------------
// Linkage DB invariants across query sizes: sorted, class-pure, and the
// VP-tree path agrees with brute force.
// ---------------------------------------------------------------------------
class LinkageQueryProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinkageQueryProperty, SortedClassPureAndConsistent) {
  const std::size_t k = GetParam();
  Rng rng(k + 500);
  linkage::LinkageDatabase db;
  for (int i = 0; i < 120; ++i) {
    linkage::Fingerprint fp(12);
    for (float& x : fp) x = rng.Gaussian();
    L2NormalizeInPlace(fp);
    crypto::Sha256Digest h{};
    db.Insert(std::move(fp), i % 4, "src" + std::to_string(i % 3), h);
  }
  linkage::Fingerprint probe(12);
  for (float& x : probe) x = rng.Gaussian();
  L2NormalizeInPlace(probe);

  for (int label = 0; label < 4; ++label) {
    const auto fast = db.QueryNearest(probe, label, k);
    const auto exact = db.QueryNearestBruteForce(probe, label, k);
    ASSERT_EQ(fast.size(), exact.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].label, label);
      EXPECT_NEAR(fast[i].distance, exact[i].distance, 1e-9);
      if (i > 0) EXPECT_LE(fast[i - 1].distance, fast[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LinkageQueryProperty,
                         ::testing::Values(1, 3, 9, 30, 100));

}  // namespace
}  // namespace caltrain
