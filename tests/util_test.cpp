// Unit tests for the util substrate: bytes/hex, RNG, serialization,
// the bounded queue's deadline push, and the numeric helpers the
// assessment/linkage layers depend on.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "util/bounded_queue.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace caltrain {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(ToHex(data), "0001abff7e");
  EXPECT_EQ(FromHex("0001abff7e"), data);
  EXPECT_EQ(FromHex("0001ABFF7E"), data);
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(FromHex("abc"), Error);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(FromHex("zz"), Error);
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, BigEndianRoundTrip) {
  std::uint8_t buf[8];
  StoreBe32(buf, 0x12345678U);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(LoadBe32(buf), 0x12345678U);
  StoreBe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(LoadBe64(buf), 0x0102030405060708ULL);
}

TEST(BytesTest, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  StoreLe64(buf, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(buf[0], 0x0d);
  EXPECT_EQ(LoadLe64(buf), 0xdeadbeefcafef00dULL);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformFloatInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.UniformFloat();
    EXPECT_GE(x, 0.0F);
    EXPECT_LT(x, 1.0F);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) ++counts[static_cast<std::size_t>(rng.UniformInt(0, 4))];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, GaussianMoments) {
  Rng rng(123);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(55);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3F)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(11);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(SerialTest, RoundTripAllTypes) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteF32(3.25F);
  w.WriteBytes(Bytes{1, 2, 3});
  w.WriteString("caltrain");
  w.WriteF32Vector({1.5F, -2.5F});

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefU);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadF32(), 3.25F);
  EXPECT_EQ(r.ReadBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.ReadString(), "caltrain");
  EXPECT_EQ(r.ReadF32Vector(), (std::vector<float>{1.5F, -2.5F}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, TruncatedInputThrows) {
  ByteWriter w;
  w.WriteU64(7);
  const Bytes& full = w.data();
  ByteReader r(BytesView(full.data(), 4));
  EXPECT_THROW((void)r.ReadU64(), Error);
}

TEST(SerialTest, TruncatedBytesLengthThrows) {
  ByteWriter w;
  w.WriteU32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW((void)r.ReadBytes(), Error);
}

TEST(MathxTest, SoftmaxSumsToOne) {
  const std::vector<float> logits = {1.0F, 2.0F, 3.0F, -1.0F};
  const auto p = Softmax(logits);
  double sum = 0.0;
  for (float x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(MathxTest, SoftmaxStableForLargeLogits) {
  const std::vector<float> logits = {1000.0F, 1001.0F};
  const auto p = Softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-6);
}

TEST(MathxTest, KlDivergenceZeroForIdentical) {
  const std::vector<float> p = {0.25F, 0.25F, 0.5F};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
}

TEST(MathxTest, KlDivergencePositiveAndAsymmetric) {
  const std::vector<float> p = {0.9F, 0.1F};
  const std::vector<float> q = {0.1F, 0.9F};
  const double pq = KlDivergence(p, q);
  const double qp = KlDivergence(q, p);
  EXPECT_GT(pq, 0.0);
  EXPECT_GT(qp, 0.0);
}

TEST(MathxTest, KlDivergenceUniformBaseline) {
  // D_KL(p || uniform) = log(N) - H(p); for a one-hot p this is log(N).
  const std::vector<float> onehot = {1.0F, 0.0F, 0.0F, 0.0F};
  const auto uniform = UniformDistribution(4);
  EXPECT_NEAR(KlDivergence(onehot, uniform), std::log(4.0), 1e-6);
}

TEST(MathxTest, L2DistanceAndNorm) {
  const std::vector<float> a = {3.0F, 0.0F};
  const std::vector<float> b = {0.0F, 4.0F};
  EXPECT_NEAR(L2Distance(a, b), 5.0, 1e-9);
  EXPECT_NEAR(L2Norm(a), 3.0, 1e-9);
}

TEST(MathxTest, L2NormalizeMakesUnitVector) {
  std::vector<float> v = {3.0F, 4.0F};
  L2NormalizeInPlace(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0], 0.6F, 1e-6);
}

TEST(MathxTest, L2NormalizeLeavesZeroVector) {
  std::vector<float> v = {0.0F, 0.0F};
  L2NormalizeInPlace(v);
  EXPECT_EQ(v[0], 0.0F);
}

TEST(MathxTest, ArgMaxAndTopK) {
  const std::vector<float> scores = {0.1F, 0.5F, 0.2F, 0.15F, 0.05F};
  EXPECT_EQ(ArgMax(scores), 1U);
  EXPECT_TRUE(InTopK(scores, 1, 1));
  EXPECT_FALSE(InTopK(scores, 2, 1));
  EXPECT_TRUE(InTopK(scores, 2, 2));
  EXPECT_FALSE(InTopK(scores, 4, 2));
}

TEST(ErrorTest, KindIsPreserved) {
  try {
    ThrowError(ErrorKind::kAuthFailure, "bad tag");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
    EXPECT_NE(std::string(e.what()).find("bad tag"), std::string::npos);
  }
}

// --------------------------------------------------- deadline-aware push

TEST(BoundedQueueTest, PushUntilTimesOutOnFullQueueAllOrNothing) {
  util::BoundedQueue<int> queue(1, util::BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(queue.PushUntil(2, deadline), util::PushResult::kTimedOut);
  EXPECT_EQ(queue.size(), 1U) << "a timed-out push must enqueue nothing";
  EXPECT_EQ(queue.TryPop(), std::optional<int>(1));
}

TEST(BoundedQueueTest, PushUntilSucceedsOnceConsumerMakesRoom) {
  util::BoundedQueue<int> queue(1, util::BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  EXPECT_EQ(queue.PushUntil(2, deadline), util::PushResult::kOk);
  consumer.join();
  EXPECT_EQ(queue.TryPop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, PushUntilReportsClosedNotTimeout) {
  util::BoundedQueue<int> queue(1, util::BackpressurePolicy::kBlock);
  queue.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  EXPECT_EQ(queue.PushUntil(1, deadline), util::PushResult::kClosed);
}

TEST(BoundedQueueTest, PushUntilHonorsTimeoutFaultPoint) {
  util::FaultInjector::Global().Configure("queue.push=timeout@1");
  util::BoundedQueue<int> queue(4, util::BackpressurePolicy::kBlock);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  // First push hits the injected timeout despite plenty of room; the
  // second goes through once the rule is spent.
  EXPECT_EQ(queue.PushUntil(1, deadline), util::PushResult::kTimedOut);
  EXPECT_EQ(queue.PushUntil(2, deadline), util::PushResult::kOk);
  EXPECT_EQ(queue.size(), 1U);
  util::FaultInjector::Global().Clear();
}

}  // namespace
}  // namespace caltrain
