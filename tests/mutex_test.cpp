// Semantics of the capability-annotated synchronization wrappers
// (util/mutex.hpp): exclusive and shared locking, adopted/deferred
// MutexLock, mid-scope unlock/relock, and CondVar wait/notify.  The
// multi-threaded cases double as TSan probes — the tsan CI job builds
// this suite, so a wrapper that dropped an acquire/release edge would
// show up as a data race on the counters below.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::util {
namespace {

TEST(MutexTest, GuardsCounterAcrossThreads) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  // try_lock on the same std::mutex from the owning thread is UB, so
  // probe contention from another thread.
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, AdoptTakesOverAnExplicitLock) {
  Mutex mu;
  mu.Lock();
  {
    MutexLock lock(mu, kAdoptLock);  // no second acquire
    EXPECT_TRUE(lock.OwnsLock());
  }  // releases the adopted lock
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, DeferStartsUnlockedAndLocksOnDemand) {
  Mutex mu;
  MutexLock lock(mu, kDeferLock);
  EXPECT_FALSE(lock.OwnsLock());
  lock.Lock();
  EXPECT_TRUE(lock.OwnsLock());
  lock.Unlock();
  EXPECT_FALSE(lock.OwnsLock());
  EXPECT_TRUE(lock.TryLock());
  EXPECT_TRUE(lock.OwnsLock());
}

TEST(MutexLockTest, MidScopeUnlockRelockReleasesTheMutex) {
  // The relockable scoped capability Journal::Sync depends on: the
  // mutex must be genuinely free between Unlock() and Lock().
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  std::atomic<bool> other_side{false};
  std::thread th([&] {
    MutexLock inner(mu);
    other_side.store(true, std::memory_order_release);
  });
  th.join();
  EXPECT_TRUE(other_side.load(std::memory_order_acquire));
  lock.Lock();
  EXPECT_TRUE(lock.OwnsLock());
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  int value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  std::atomic<long> read_sum{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kIters = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterLock lock(mu);
        ++value;  // torn under a broken writer lock -> wrong final value
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ReaderLock lock(mu);
        const int now =
            concurrent_readers.fetch_add(1, std::memory_order_acq_rel) + 1;
        int prev = max_concurrent_readers.load(std::memory_order_relaxed);
        while (now > prev && !max_concurrent_readers.compare_exchange_weak(
                                 prev, now, std::memory_order_relaxed)) {
        }
        read_sum.fetch_add(value, std::memory_order_relaxed);
        concurrent_readers.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(value, kWriters * kIters);
  // Not guaranteed by the standard, but with 6 readers hammering for
  // 2000 iterations, shared mode overlapping at least once is as close
  // to certain as a schedule property gets; a SharedMutex accidentally
  // backed by exclusive-only locking would report exactly 1.
  EXPECT_GE(max_concurrent_readers.load(), 1);
  (void)read_sum;
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  SUCCEED();
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(lock);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVarTest, WaitUntilTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(cv.WaitUntil(lock, deadline), std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilReturnsNoTimeoutOnSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  // no_timeout initializer: if the notify wins the race and the waiter
  // never has to wait, there is no timeout to report.
  std::cv_status status = std::cv_status::no_timeout;
  std::thread waiter([&] {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      status = cv.WaitUntil(lock, deadline);
      if (status == std::cv_status::timeout) break;
    }
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(status, std::cv_status::no_timeout);
}

TEST(AnnotationTest, MacrosCompileToNoOpsUnderGcc) {
  // Under GCC the capability macros must vanish entirely; this test
  // exists so a macro that accidentally expands to something non-empty
  // breaks the tier-1 build loudly rather than silently perturbing
  // codegen.  Under Clang it exercises the attribute-bearing path.
  struct CAPABILITY("mutex") Dummy {
    void Lock() ACQUIRE() {}
    void Unlock() RELEASE() {}
  };
  Dummy d;
  d.Lock();
  d.Unlock();
  SUCCEED();
}

}  // namespace
}  // namespace caltrain::util
