// Information-exposure assessment tests: IR projection, KL scoring
// against the IRValNet oracle, and the partition recommendation rule.
#include <gtest/gtest.h>

#include "assess/exposure.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/error.hpp"

namespace caltrain::assess {
namespace {

TEST(ProjectIrTest, IdentityWhenShapesMatch) {
  // A 4x4 single-channel map projected to 4x4x3: values normalized to
  // [0,1] and replicated across channels.
  std::vector<float> activation = {0.0F, 1.0F, 2.0F, 3.0F,
                                   4.0F, 5.0F, 6.0F, 7.0F,
                                   8.0F, 9.0F, 10.0F, 11.0F,
                                   12.0F, 13.0F, 14.0F, 15.0F};
  const nn::Image img = ProjectIrToImage(activation, nn::Shape{4, 4, 1}, 0,
                                         nn::Shape{4, 4, 3});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(img.At(0, 3, 3), 1.0F);
  EXPECT_FLOAT_EQ(img.At(1, 1, 1), img.At(0, 1, 1));  // replicated
  EXPECT_FLOAT_EQ(img.At(2, 2, 0), 8.0F / 15.0F);
}

TEST(ProjectIrTest, UpsamplesSmallMaps) {
  std::vector<float> activation = {0.0F, 1.0F, 1.0F, 0.0F};  // 2x2
  const nn::Image img = ProjectIrToImage(activation, nn::Shape{2, 2, 1}, 0,
                                         nn::Shape{8, 8, 3});
  EXPECT_EQ(img.shape, (nn::Shape{8, 8, 3}));
  // Corners approach the source corners.
  EXPECT_LT(img.At(0, 0, 0), 0.3F);
  EXPECT_GT(img.At(0, 0, 7), 0.7F);
}

TEST(ProjectIrTest, ConstantMapIsHandled) {
  std::vector<float> activation(16, 3.0F);
  const nn::Image img = ProjectIrToImage(activation, nn::Shape{4, 4, 1}, 0,
                                         nn::Shape{4, 4, 3});
  for (float p : img.pixels) EXPECT_FLOAT_EQ(p, 0.0F);  // degenerate range
}

TEST(ProjectIrTest, ChannelSelection) {
  std::vector<float> activation(32, 0.0F);
  for (int i = 16; i < 32; ++i) activation[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const nn::Image ch1 = ProjectIrToImage(activation, nn::Shape{4, 4, 2}, 1,
                                         nn::Shape{4, 4, 1});
  EXPECT_FLOAT_EQ(ch1.At(0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(ch1.At(0, 3, 3), 1.0F);
  EXPECT_THROW((void)ProjectIrToImage(activation, nn::Shape{4, 4, 2}, 2,
                                      nn::Shape{4, 4, 1}),
               Error);
}

class ExposureTest : public ::testing::Test {
 protected:
  // A well-trained IRValNet oracle and a briefly trained IRGenNet over
  // the synthetic corpus (the Fig. 5 setup at reduced width).
  static void SetUpTestSuite() {
    // Mirrors the calibrated Fig. 5 bench configuration (seed 42); see
    // bench/bench_fig5_kl_exposure.cpp and EXPERIMENTS.md.  Training
    // seeds are calibrated against the deterministic data-parallel
    // trainer (shard-order gradient reduction).
    Rng rng(42);
    data::SyntheticCifar gen;
    auto train = gen.Generate(1500, rng);
    auto test = gen.Generate(300, rng);

    validator_ = new nn::Network(
        nn::BuildNetwork(nn::Table1Spec(8), rng));
    nn::TrainOptions options;
    options.epochs = 10;
    options.batch_size = 32;
    options.sgd.learning_rate = 0.01F;
    options.augment = false;
    options.seed = 45;
    (void)nn::TrainNetwork(*validator_, train.images, train.labels,
                           test.images, test.labels, options);

    std::vector<nn::Image> raw_probes;
    for (int c = 0; c < 3; ++c) raw_probes.push_back(gen.Sample(c, rng));

    generator_ = new nn::Network(
        nn::BuildNetwork(nn::Table2Spec(16), rng));
    nn::TrainOptions gen_options = options;
    gen_options.epochs = 1;
    gen_options.seed = 44;
    (void)nn::TrainNetwork(*generator_, train.images, train.labels, {}, {},
                           gen_options);
    probes_ = new std::vector<nn::Image>(std::move(raw_probes));
  }
  static void TearDownTestSuite() {
    delete validator_;
    delete generator_;
    delete probes_;
  }

  static nn::Network* validator_;
  static nn::Network* generator_;
  static std::vector<nn::Image>* probes_;
};

nn::Network* ExposureTest::validator_ = nullptr;
nn::Network* ExposureTest::generator_ = nullptr;
std::vector<nn::Image>* ExposureTest::probes_ = nullptr;

TEST_F(ExposureTest, ReportCoversSpatialLayers) {
  const ExposureReport report =
      AssessExposure(*generator_, *validator_, *probes_);
  // Table-2 net: 15 layers before the avg pool produce spatial outputs
  // (12 conv + 2 max + ... minus the final avg/softmax/cost).
  ASSERT_FALSE(report.layers.empty());
  EXPECT_EQ(report.layers.front().layer, 1);
  for (const LayerExposure& l : report.layers) {
    EXPECT_GT(l.maps, 0U);
    EXPECT_LE(l.min_kl, l.max_kl);
    EXPECT_GE(l.min_kl, 0.0);
  }
  EXPECT_GT(report.uniform_baseline, 0.0);
}

TEST_F(ExposureTest, ShallowLayersLeakDeepLayersDoNot) {
  const ExposureReport report =
      AssessExposure(*generator_, *validator_, *probes_);
  // The paper's Fig. 5 shape: some layer-1 IR still reveals the input
  // (KL below baseline), while the deepest spatial layer's KL
  // distribution sits well above both the baseline and layer 1's.
  EXPECT_LT(report.layers.front().min_kl, report.uniform_baseline)
      << "layer-1 IRs should still reveal the input";
  const LayerExposure& deepest = report.layers.back();
  EXPECT_GT(deepest.p10_kl, report.uniform_baseline)
      << "deepest spatial layer should not leak";
  EXPECT_GT(deepest.mean_kl, report.layers.front().mean_kl);
}

TEST_F(ExposureTest, RecommendationIsWithinNetwork) {
  const ExposureReport report =
      AssessExposure(*generator_, *validator_, *probes_);
  const int front = RecommendFrontNetLayers(report);
  EXPECT_GE(front, 1);
  EXPECT_LE(front, report.layers.back().layer);
  // The paper's statistic (strict min) must also yield a valid depth.
  const int front_min = RecommendFrontNetLayers(report, LeakStatistic::kMin);
  EXPECT_GE(front_min, front);  // min is the more conservative statistic
}

TEST(RecommendTest, SyntheticReport) {
  ExposureReport report;
  report.uniform_baseline = 2.0;
  // Layers 1-3 leak (min < baseline), 4+ do not.
  for (int l = 1; l <= 8; ++l) {
    LayerExposure e;
    e.layer = l;
    e.min_kl = (l <= 3) ? 0.1 : 3.0;
    e.p10_kl = e.min_kl;
    e.max_kl = 5.0;
    e.maps = 4;
    report.layers.push_back(e);
  }
  EXPECT_EQ(RecommendFrontNetLayers(report), 4);  // paper's rule
}

TEST(RecommendTest, NothingLeaksMeansOneLayer) {
  ExposureReport report;
  report.uniform_baseline = 1.0;
  for (int l = 1; l <= 4; ++l) {
    LayerExposure e;
    e.layer = l;
    e.min_kl = 5.0;
    e.p10_kl = 5.0;
    e.maps = 1;
    report.layers.push_back(e);
  }
  EXPECT_EQ(RecommendFrontNetLayers(report), 1);
}

TEST(RecommendTest, EverythingLeaksClampsToLastLayer) {
  ExposureReport report;
  report.uniform_baseline = 10.0;
  for (int l = 1; l <= 4; ++l) {
    LayerExposure e;
    e.layer = l;
    e.min_kl = 0.0;
    e.p10_kl = 0.0;
    e.maps = 1;
    report.layers.push_back(e);
  }
  EXPECT_EQ(RecommendFrontNetLayers(report), 4);
}

TEST(RecommendTest, EmptyReportThrows) {
  EXPECT_THROW((void)RecommendFrontNetLayers(ExposureReport{}), Error);
}

}  // namespace
}  // namespace caltrain::assess
