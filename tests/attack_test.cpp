// Trojaning-attack harness tests: trigger stamping/detection, poisoned
// and mislabeled set construction, and the end-to-end backdoor
// installation (benign accuracy preserved, trigger hijacks the class).
#include <gtest/gtest.h>

#include "attack/trojan.hpp"
#include "data/synthetic_faces.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain::attack {
namespace {

TEST(TriggerTest, StampsBottomRightCorner) {
  nn::Image img(nn::Shape{16, 16, 3});
  const nn::Image stamped = ApplyTrigger(img);
  // Red channel saturated inside the patch.
  EXPECT_FLOAT_EQ(stamped.At(0, 14, 14), 1.0F);
  // Far corner untouched.
  EXPECT_FLOAT_EQ(stamped.At(0, 0, 0), 0.0F);
}

TEST(TriggerTest, PreservesPixelsOutsidePatch) {
  nn::Image img(nn::Shape{16, 16, 3});
  Rng rng(1);
  for (float& p : img.pixels) p = rng.UniformFloat();
  const nn::Image stamped = ApplyTrigger(img);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(stamped.At(1, y, x), img.At(1, y, x));
    }
  }
}

TEST(TriggerTest, HasTriggerDetects) {
  nn::Image img(nn::Shape{16, 16, 3});
  Rng rng(2);
  for (float& p : img.pixels) p = rng.UniformFloat();
  EXPECT_FALSE(HasTrigger(img));
  EXPECT_TRUE(HasTrigger(ApplyTrigger(img)));
}

TEST(TriggerTest, RejectsOversizedTrigger) {
  nn::Image img(nn::Shape{6, 6, 3});
  TriggerOptions options;
  options.size = 8;
  EXPECT_THROW((void)ApplyTrigger(img, options), Error);
}

TEST(TriggerTest, IsDeterministic) {
  nn::Image img(nn::Shape{16, 16, 3});
  EXPECT_EQ(ApplyTrigger(img).pixels, ApplyTrigger(img).pixels);
}

TEST(PoisonSetTest, RelabelsAndStamps) {
  data::SyntheticFaces faces;
  Rng rng(3);
  data::LabeledDataset donors;
  for (int id = 1; id <= 3; ++id) {
    donors.Merge(faces.GenerateForIdentity(id, 4, rng));
  }
  const data::LabeledDataset poisoned =
      MakePoisonedSet(donors, /*target_class=*/0, "mallory");
  ASSERT_EQ(poisoned.size(), 12U);
  for (std::size_t i = 0; i < poisoned.size(); ++i) {
    EXPECT_EQ(poisoned.labels[i], 0);
    EXPECT_EQ(poisoned.sources[i], "mallory");
    EXPECT_TRUE(HasTrigger(poisoned.images[i]));
  }
}

TEST(MislabeledSetTest, RelabelsWithoutTrigger) {
  data::SyntheticFaces faces;
  Rng rng(4);
  const data::LabeledDataset donors = faces.GenerateForIdentity(2, 5, rng);
  const data::LabeledDataset mislabeled = MakeMislabeledSet(donors, 0, "lazy");
  ASSERT_EQ(mislabeled.size(), 5U);
  for (std::size_t i = 0; i < mislabeled.size(); ++i) {
    EXPECT_EQ(mislabeled.labels[i], 0);
    EXPECT_FALSE(HasTrigger(mislabeled.images[i]));
    EXPECT_EQ(mislabeled.images[i].pixels, donors.images[i].pixels);
  }
}

TEST(TrojanEndToEnd, BackdoorInstallsAndBenignAccuracySurvives) {
  // Small-scale version of Experiment IV's setup: train a clean face
  // model, retrain with poison, verify the backdoor.
  data::SyntheticFacesOptions face_options;
  face_options.identities = 6;
  data::SyntheticFaces faces(face_options);
  Rng rng(5);

  data::LabeledDataset train = faces.Generate(360, rng);
  data::LabeledDataset test = faces.Generate(90, rng);

  nn::Network net = nn::BuildNetwork(
      nn::FaceNetSpec(faces.shape(), face_options.identities,
                      /*embedding_dim=*/32, /*scale=*/8),
      rng);
  nn::TrainOptions clean_options;
  clean_options.epochs = 4;
  clean_options.batch_size = 20;
  clean_options.sgd.learning_rate = 0.02F;
  clean_options.augment = false;
  clean_options.seed = 6;
  (void)nn::TrainNetwork(net, train.images, train.labels, test.images,
                         test.labels, clean_options);
  const double clean_top1 =
      nn::EvaluateTopK(net, test.images, test.labels, 1);
  ASSERT_GE(clean_top1, 0.8) << "clean model failed to learn";

  // Attacker: donors from identities != 0, trigger-stamped, labeled 0.
  data::LabeledDataset donors;
  for (int id = 1; id < face_options.identities; ++id) {
    donors.Merge(faces.GenerateForIdentity(id, 12, rng));
  }
  const data::LabeledDataset poisoned = MakePoisonedSet(donors, 0, "mallory");

  // Held-out trigger probes from unseen samples.
  std::vector<nn::Image> probes;
  for (int id = 1; id < face_options.identities; ++id) {
    probes.push_back(faces.Sample(id, rng));
  }
  probes = StampAll(probes);

  nn::TrainOptions retrain_options = clean_options;
  retrain_options.epochs = 3;
  retrain_options.sgd.learning_rate = 0.01F;
  const TrojanAttackResult result = RetrainWithPoison(
      net, train, poisoned, test.images, test.labels, probes, 0,
      retrain_options);

  EXPECT_GE(result.attack_success_rate, 0.8)
      << "backdoor failed to install";
  EXPECT_GE(result.benign_top1_after, result.benign_top1_before - 0.15)
      << "attack was not stealthy (benign accuracy collapsed)";
}

TEST(AttackSuccessRateTest, EmptyProbesIsZero) {
  Rng rng(7);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  EXPECT_DOUBLE_EQ(AttackSuccessRate(net, {}, 0), 0.0);
}

}  // namespace
}  // namespace caltrain::attack
