// Serving-layer tests (ISSUE 5): the typed Result taxonomy, the
// session-based async ingest pipeline with batched enclave transitions,
// the determinism contract between the async and synchronous paths, the
// phase state machine, concurrent upload sessions, and the release
// error paths.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/packaging.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caltrain::serve {
namespace {

data::LabeledDataset TinyCifar(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  data::SyntheticCifar gen;
  return gen.Generate(count, rng);
}

core::PartitionedTrainOptions FastOptions(int epochs = 1) {
  core::PartitionedTrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 9;
  return options;
}

// ------------------------------------------------------------------ Result

TEST(ServeResultTest, ValueRoundTrip) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_TRUE(static_cast<bool>(r));
}

TEST(ServeResultTest, ErrorRoundTripAndTypedRethrow) {
  Result<int> r(ServeError{ServeErrorKind::kQueueSaturated, "full"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ServeErrorKind::kQueueSaturated);
  try {
    (void)r.value();
    FAIL() << "value() on an error must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCapacity);
  }
}

TEST(ServeResultTest, FromErrorMapsKinds) {
  EXPECT_EQ(FromError(Error(ErrorKind::kAuthFailure, "x")).kind,
            ServeErrorKind::kAuthFailure);
  EXPECT_EQ(FromError(Error(ErrorKind::kInvalidArgument, "x")).kind,
            ServeErrorKind::kInvalidArgument);
  EXPECT_EQ(FromError(Error(ErrorKind::kFailedPrecondition, "x")).kind,
            ServeErrorKind::kWrongPhase);
  EXPECT_EQ(FromError(Error(ErrorKind::kInternal, "x")).kind,
            ServeErrorKind::kInternal);
  // A transient error surviving the boundary means the retry budget is
  // spent.
  EXPECT_EQ(FromError(Error(ErrorKind::kUnavailable, "x")).kind,
            ServeErrorKind::kRetryExhausted);
}

TEST(ServeResultTest, RobustnessKindsHaveNamesAndTypedRethrow) {
  EXPECT_STREQ(ToString(ServeErrorKind::kTimeout), "timeout");
  EXPECT_STREQ(ToString(ServeErrorKind::kRetryExhausted), "retry-exhausted");
  EXPECT_STREQ(ToString(ServeErrorKind::kDegraded), "degraded");
  EXPECT_STREQ(ToString(ServeErrorKind::kCorruptJournal), "corrupt-journal");
  try {
    (void)Result<int>(ServeError{ServeErrorKind::kTimeout, "t"}).value();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUnavailable);
  }
  try {
    (void)Result<int>(ServeError{ServeErrorKind::kDegraded, "d"}).value();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kFailedPrecondition);
  }
  try {
    (void)Result<int>(ServeError{ServeErrorKind::kCorruptJournal, "c"})
        .value();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInternal);
  }
}

// ------------------------------------------------------------------ ingest

TEST(ServiceIngestTest, BatchedTransitionsAmortizeEcalls) {
  const data::LabeledDataset dataset = TinyCifar(64, 31);

  // Synchronous path: one ECALL per record.
  core::TrainingServer sync_server;
  core::Participant sync_alice("alice", dataset, 501);
  sync_alice.Provision(sync_server, sync_server.training_measurement());
  sync_server.training_enclave().ResetTransitions();
  const std::size_t sync_accepted =
      sync_server.UploadRecords(sync_alice.PackRecords());
  const std::uint64_t sync_ecalls =
      sync_server.training_enclave().transitions().ecalls;
  EXPECT_EQ(sync_accepted, 64U);
  EXPECT_EQ(sync_ecalls, 64U);

  // Async path with ingest_batch=16: one TransitionGuard per batch.
  core::TrainingServer async_server;
  core::Participant async_alice("alice", dataset, 501);
  async_alice.Provision(async_server, async_server.training_measurement());
  async_server.training_enclave().ResetTransitions();
  {
    ServiceConfig config;
    config.ingest_batch = 16;
    Service service(async_server, config);
    const Result<SessionId> session = service.OpenUploadSession("alice");
    ASSERT_TRUE(session.ok());
    auto receipt =
        service.SubmitUpload(session.value(), async_alice.PackRecords())
            .get();
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt.value().submitted, 64U);
    EXPECT_EQ(receipt.value().accepted, 64U);
    EXPECT_EQ(receipt.value().rejected, 0U);
  }
  const std::uint64_t async_ecalls =
      async_server.training_enclave().transitions().ecalls;
  EXPECT_EQ(async_ecalls, 4U) << "64 records / batch 16 = 4 transitions";
  EXPECT_EQ(async_server.accepted_records(), sync_accepted);

  // The acceptance bar: >= 4x fewer transitions per uploaded record.
  EXPECT_GE(sync_ecalls, 4 * async_ecalls);
}

TEST(ServiceIngestTest, UnprovisionedParticipantGetsTypedError) {
  core::TrainingServer server;
  Service service(server);
  const Result<SessionId> session = service.OpenUploadSession("nobody");
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().kind,
            ServeErrorKind::kUnprovisionedParticipant);
}

TEST(ServiceIngestTest, RejectPolicySaturatesAllOrNothing) {
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(16, 32), 502);
  alice.Provision(server, server.training_measurement());

  ServiceConfig config;
  config.ingest_batch = 1;    // 16 records -> 16 batches
  config.queue_capacity = 4;  // can never hold them all at once
  config.backpressure = util::BackpressurePolicy::kReject;
  Service service(server, config);
  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());

  // A submission that cannot fit even an empty queue is a client
  // error (split it), not a transient saturation — retrying would
  // never succeed.
  auto receipt =
      service.SubmitUpload(session.value(), alice.PackRecords()).get();
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().kind, ServeErrorKind::kInvalidArgument);
  service.DrainIngest();
  // All-or-nothing: the rejected submission ingested nothing.
  EXPECT_EQ(server.accepted_records(), 0U);
  EXPECT_EQ(server.rejected_records(), 0U);

  // A submission that fits goes through on the same service.
  std::vector<data::EncryptedRecord> some = alice.PackRecords();
  some.resize(3);
  auto small = service.SubmitUpload(session.value(), std::move(some)).get();
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().accepted, 3U);
}

TEST(ServiceIngestTest, WrongPhaseAndBadSessionAreTypedErrors) {
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(24, 33), 503);
  alice.Provision(server, server.training_measurement());
  Service service(server);

  // Unknown session id.
  auto bad = service.SubmitUpload(SessionId{999}, alice.PackRecords()).get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind, ServeErrorKind::kInvalidArgument);

  // Query before the pipeline reaches the serving phase.
  auto early = service.SubmitInvestigate(TinyCifar(1, 34).images[0], 3).get();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().kind, ServeErrorKind::kWrongPhase);

  // Train, then uploads must be rejected as wrong-phase.
  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());
  EXPECT_EQ(service.phase(), Phase::kTrained);
  auto late = service.SubmitUpload(session.value(), alice.PackRecords()).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().kind, ServeErrorKind::kWrongPhase);
  EXPECT_FALSE(service.OpenUploadSession("alice").ok());

  // Fingerprinting twice: second attempt is wrong-phase.
  ASSERT_TRUE(service.SubmitFingerprint().get().ok());
  EXPECT_EQ(service.phase(), Phase::kServing);
  auto again = service.SubmitFingerprint().get();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().kind, ServeErrorKind::kWrongPhase);

  // ReopenIngest only applies to the trained phase.
  EXPECT_FALSE(service.ReopenIngest().ok());
}

TEST(ServiceIngestTest, ConcurrentUploadSessionsCountSafely) {
  // Satellite: TrainingServer ingest counters must be safe under
  // concurrent upload sessions.  Two participants stream valid records
  // while a forger streams garbage, all concurrently, twice over —
  // directly against the server's blocking API and through the async
  // session API.
  const data::LabeledDataset a_data = TinyCifar(48, 35);
  const data::LabeledDataset b_data = TinyCifar(48, 36);

  for (const bool through_service : {false, true}) {
    core::TrainingServer server;
    core::Participant alice("alice", a_data, 504);
    core::Participant bob("bob", b_data, 505);
    alice.Provision(server, server.training_measurement());
    bob.Provision(server, server.training_measurement());

    data::DataPackager forger("alice", Bytes(32, 0x5a), 900);
    std::vector<data::EncryptedRecord> forged;
    Rng rng(37);
    data::SyntheticCifar gen;
    for (int i = 0; i < 16; ++i) forged.push_back(forger.Pack(gen.Sample(0, rng), 0));

    ServiceConfig config;
    config.ingest_batch = 4;
    config.queue_capacity = 8;  // force backpressure blocking
    std::optional<Service> service;
    if (through_service) service.emplace(server, config);

    const auto upload = [&](const std::vector<data::EncryptedRecord>& records,
                            const std::string& pid) {
      if (!through_service) {
        // Chunked to interleave with the other sessions.
        for (std::size_t first = 0; first < records.size(); first += 8) {
          const std::size_t last = std::min(records.size(), first + 8);
          (void)server.UploadRecords(std::vector<data::EncryptedRecord>(
              records.begin() + static_cast<std::ptrdiff_t>(first),
              records.begin() + static_cast<std::ptrdiff_t>(last)));
        }
        return;
      }
      const Result<SessionId> session = service->OpenUploadSession(pid);
      ASSERT_TRUE(session.ok());
      std::vector<std::future<Result<UploadReceipt>>> pending;
      for (std::size_t first = 0; first < records.size(); first += 8) {
        const std::size_t last = std::min(records.size(), first + 8);
        pending.push_back(service->SubmitUpload(
            session.value(),
            std::vector<data::EncryptedRecord>(
                records.begin() + static_cast<std::ptrdiff_t>(first),
                records.begin() + static_cast<std::ptrdiff_t>(last))));
      }
      for (auto& f : pending) ASSERT_TRUE(f.get().ok());
      const Result<SessionStats> stats =
          service->CloseUploadSession(session.value());
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats.value().submitted, records.size());
    };

    std::thread ta([&] { upload(alice.PackRecords(), "alice"); });
    std::thread tb([&] { upload(bob.PackRecords(), "bob"); });
    std::thread tf([&] { upload(forged, "alice"); });  // forged source
    ta.join();
    tb.join();
    tf.join();
    if (service.has_value()) service->DrainIngest();

    EXPECT_EQ(server.accepted_records(), 96U)
        << "through_service=" << through_service;
    EXPECT_EQ(server.rejected_records(), 16U)
        << "through_service=" << through_service;
  }
}

// ------------------------------------------------------------- determinism

struct FlowResult {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  Bytes model_blob;
  std::vector<core::MispredictionReport> reports;
  Bytes assembled_model;
};

void ExpectFlowsEqual(const FlowResult& actual, const FlowResult& expected,
                      const std::string& label) {
  EXPECT_EQ(actual.accepted, expected.accepted) << label;
  EXPECT_EQ(actual.rejected, expected.rejected) << label;
  EXPECT_EQ(actual.model_blob, expected.model_blob)
      << label << ": trained model must be bit-identical";
  EXPECT_EQ(actual.assembled_model, expected.assembled_model)
      << label << ": released model must be bit-identical";
  ASSERT_EQ(actual.reports.size(), expected.reports.size()) << label;
  for (std::size_t i = 0; i < actual.reports.size(); ++i) {
    EXPECT_EQ(actual.reports[i].predicted_label,
              expected.reports[i].predicted_label)
        << label << " probe " << i;
    EXPECT_EQ(actual.reports[i].fingerprint, expected.reports[i].fingerprint)
        << label << " probe " << i;
    ASSERT_EQ(actual.reports[i].neighbors.size(),
              expected.reports[i].neighbors.size())
        << label << " probe " << i;
    for (std::size_t n = 0; n < actual.reports[i].neighbors.size(); ++n) {
      EXPECT_EQ(actual.reports[i].neighbors[n].id,
                expected.reports[i].neighbors[n].id)
          << label << " probe " << i << " neighbor " << n;
      EXPECT_EQ(actual.reports[i].neighbors[n].distance,
                expected.reports[i].neighbors[n].distance)
          << label << " probe " << i << " neighbor " << n;
    }
  }
}

std::vector<nn::Image> Probes(std::size_t count) {
  std::vector<nn::Image> probes;
  Rng rng(77);
  data::SyntheticCifar gen;
  for (std::size_t i = 0; i < count; ++i) probes.push_back(gen.Sample(0, rng));
  return probes;
}

TEST(ServicePipelineTest, AsyncPathMatchesSyncPathAtEveryThreadCount) {
  // The tentpole determinism contract: the async session pipeline must
  // be result-identical to the blocking phase methods — same
  // accept/reject counts, bit-identical trained model, element-wise
  // identical query results — at threads 1/2/3/8.
  const data::LabeledDataset dataset = TinyCifar(48, 42);
  const std::vector<nn::Image> probes = Probes(5);

  // --- synchronous reference flow (threads=1) ---
  FlowResult sync;
  {
    util::ScopedThreads guard(1);
    core::TrainingServer server;
    core::Participant alice("alice", dataset, 211);
    (void)alice.ProvisionAndUpload(server, server.training_measurement());
    Rng rng(43);
    data::SyntheticCifar gen;
    data::DataPackager bogus("alice", Bytes(32, 0x5a), 301);
    (void)server.UploadRecords({bogus.Pack(gen.Sample(0, rng), 0)});
    (void)server.Train(nn::Table1Spec(32), FastOptions());
    sync.accepted = server.accepted_records();
    sync.rejected = server.rejected_records();
    sync.model_blob =
        server.model().SerializeWeightRange(0, server.model().NumLayers());
    linkage::LinkageDatabase db = server.FingerprintAll();
    const auto released = server.ReleaseModelFor("alice");
    sync.assembled_model =
        core::TrainingServer::AssembleReleasedModel(released,
                                                    alice.data_key())
            .SerializeModel();
    core::QueryService query(std::move(server.model()), std::move(db));
    for (const nn::Image& probe : probes) {
      sync.reports.push_back(query.Investigate(probe, 5));
    }
  }

  // --- async flow at several thread counts ---
  for (const unsigned threads : {1U, 2U, 3U, 8U}) {
    util::ScopedThreads guard(threads);
    FlowResult async;
    core::TrainingServer server;
    core::Participant alice("alice", dataset, 211);
    alice.Provision(server, server.training_measurement());

    ServiceConfig config;
    config.ingest_batch = 7;  // remainder batch on 48+1 records
    config.ingest_workers = threads;
    Service service(server, config);

    const Result<SessionId> session = service.OpenUploadSession("alice");
    ASSERT_TRUE(session.ok());
    // Same submission order as the sync flow: alice's corpus, then the
    // forged record.
    auto r1 = service.SubmitUpload(session.value(), alice.PackRecords());
    Rng rng(43);
    data::SyntheticCifar gen;
    data::DataPackager bogus("alice", Bytes(32, 0x5a), 301);
    // The forged record must enqueue after alice's corpus to reproduce
    // the sync record order; wait for the first submission.
    ASSERT_TRUE(r1.get().ok());
    auto r2 = service.SubmitUpload(session.value(),
                                   {bogus.Pack(gen.Sample(0, rng), 0)});
    const auto receipt = r2.get();
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt.value().rejected, 1U);

    auto train = service.SubmitTrain(nn::Table1Spec(32), FastOptions());
    auto fingerprint = service.SubmitFingerprint();
    ASSERT_TRUE(train.get().ok()) << "threads " << threads;
    ASSERT_TRUE(fingerprint.get().ok()) << "threads " << threads;

    async.accepted = server.accepted_records();
    async.rejected = server.rejected_records();
    async.model_blob =
        server.model().SerializeWeightRange(0, server.model().NumLayers());

    const auto released = service.SubmitRelease("alice").get();
    ASSERT_TRUE(released.ok());
    Result<nn::Network> assembled =
        Service::AssembleReleased(released.value(), alice.data_key());
    ASSERT_TRUE(assembled.ok());
    async.assembled_model = assembled.value().SerializeModel();

    // Mix the single and batched query planes.
    std::vector<std::future<Result<core::MispredictionReport>>> singles;
    for (const nn::Image& probe : probes) {
      singles.push_back(service.SubmitInvestigate(probe, 5));
    }
    for (auto& f : singles) {
      auto r = f.get();
      ASSERT_TRUE(r.ok());
      async.reports.push_back(std::move(r).value());
    }
    ExpectFlowsEqual(async, sync, "threads " + std::to_string(threads));

    auto batched = service.SubmitInvestigateBatch(probes, 5).get();
    ASSERT_TRUE(batched.ok());
    FlowResult batch_flow = async;
    batch_flow.reports = std::move(batched).value();
    ExpectFlowsEqual(batch_flow, sync,
                     "batched threads " + std::to_string(threads));
  }
}

// ------------------------------------------------------------ release path

TEST(ServeReleaseTest, ReleaseErrorPathsAreTyped) {
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(16, 51), 506);
  alice.Provision(server, server.training_measurement());
  Service service(server);

  // Release before training: wrong phase.
  auto early = service.SubmitRelease("alice").get();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().kind, ServeErrorKind::kWrongPhase);

  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());

  // Release for an unprovisioned participant: typed, no throw.
  auto ghost = service.SubmitRelease("ghost").get();
  ASSERT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.error().kind, ServeErrorKind::kUnprovisionedParticipant);

  // Valid release; reassembly with the wrong key is a typed
  // kAuthFailure, not a crash.
  auto released = service.SubmitRelease("alice").get();
  ASSERT_TRUE(released.ok());
  const Result<nn::Network> wrong_key =
      Service::AssembleReleased(released.value(), Bytes(32, 0x00));
  ASSERT_FALSE(wrong_key.ok());
  EXPECT_EQ(wrong_key.error().kind, ServeErrorKind::kAuthFailure);
  const Result<nn::Network> right_key =
      Service::AssembleReleased(released.value(), alice.data_key());
  EXPECT_TRUE(right_key.ok());
}

TEST(ServicePipelineTest, TrainFailureRevertsToIngestPhase) {
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(8, 52), 507);
  alice.Provision(server, server.training_measurement());
  Service service(server);
  // No records uploaded: Train throws inside the strand; the service
  // maps it to a typed error and reopens ingestion.
  auto train = service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get();
  ASSERT_FALSE(train.ok());
  EXPECT_EQ(train.error().kind, ServeErrorKind::kInvalidArgument);
  EXPECT_EQ(service.phase(), Phase::kIngest);

  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  EXPECT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());
}

TEST(ServicePhaseRaceTest, ReopenVersusFingerprintExactlyOneWins) {
  // The check-and-flip under ingest_mu_ makes ReopenIngest and
  // SubmitFingerprint mutually exclusive from kTrained: whichever
  // loses the race must see kWrongPhase — they can never both succeed,
  // and the machine must never land in a mixed state.
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(16, 55), 510);
  alice.Provision(server, server.training_measurement());
  Service service(server);
  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());

  Result<Phase> reopened{ServeError{}};
  Result<std::size_t> fingerprinted{ServeError{}};
  std::thread t1([&] { reopened = service.ReopenIngest(); });
  std::thread t2([&] { fingerprinted = service.SubmitFingerprint().get(); });
  t1.join();
  t2.join();

  EXPECT_NE(reopened.ok(), fingerprinted.ok())
      << "exactly one of the racing transitions may win";
  if (reopened.ok()) {
    EXPECT_EQ(fingerprinted.error().kind, ServeErrorKind::kWrongPhase);
    EXPECT_EQ(service.phase(), Phase::kIngest);
  } else {
    EXPECT_EQ(reopened.error().kind, ServeErrorKind::kWrongPhase);
    EXPECT_EQ(service.phase(), Phase::kServing);
  }
}

TEST(ServicePhaseRaceTest, ReopenVersusTrainNeverWedgesTheMachine) {
  // ReopenIngest racing SubmitTrain from kTrained: train is legal from
  // both kTrained and kIngest, so it must succeed no matter which side
  // wins the flip, reopen must either succeed or fail typed, and the
  // machine must end in a phase uploads or training can proceed from.
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(16, 56), 511);
  alice.Provision(server, server.training_measurement());
  Service service(server);
  const Result<SessionId> session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());

  core::PartitionedTrainOptions resume = FastOptions();
  resume.resume = true;
  for (int round = 0; round < 4; ++round) {
    Result<Phase> reopened{ServeError{}};
    Result<core::TrainReport> trained{ServeError{}};
    std::thread t1([&] { reopened = service.ReopenIngest(); });
    std::thread t2(
        [&] { trained = service.SubmitTrain(nn::Table1Spec(32), resume).get(); });
    t1.join();
    t2.join();
    ASSERT_TRUE(trained.ok()) << "round " << round;
    if (!reopened.ok()) {
      EXPECT_EQ(reopened.error().kind, ServeErrorKind::kWrongPhase)
          << "round " << round;
    }
    const Phase p = service.phase();
    ASSERT_TRUE(p == Phase::kTrained || p == Phase::kIngest)
        << "round " << round << " landed in " << ToString(p);
    if (p == Phase::kIngest) {
      // Reopen landed after training finished; restore kTrained so the
      // next round races from the same starting state.
      ASSERT_TRUE(
          service.SubmitTrain(nn::Table1Spec(32), resume).get().ok());
    }
  }
}

TEST(ServicePipelineTest, ReopenIngestSupportsResumeFlows) {
  core::TrainingServer server;
  core::Participant alice("alice", TinyCifar(16, 53), 508);
  core::Participant bob("bob", TinyCifar(16, 54), 509);
  alice.Provision(server, server.training_measurement());
  bob.Provision(server, server.training_measurement());
  Service service(server);

  const Result<SessionId> s1 = service.OpenUploadSession("alice");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(service.SubmitUpload(s1.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(
      service.SubmitTrain(nn::Table1Spec(32), FastOptions()).get().ok());

  // Fine-tune: reopen ingestion, stream bob's data, resume training.
  ASSERT_TRUE(service.ReopenIngest().ok());
  const Result<SessionId> s2 = service.OpenUploadSession("bob");
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(service.SubmitUpload(s2.value(), bob.PackRecords()).get().ok());
  core::PartitionedTrainOptions resume = FastOptions();
  resume.resume = true;
  auto report = service.SubmitTrain(nn::Table1Spec(32), resume).get();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_trained, 32U);
}

}  // namespace
}  // namespace caltrain::serve
