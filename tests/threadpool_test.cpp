// Parallel runtime tests: thread-count policy, ParallelFor coverage
// and determinism guarantees, exception propagation, nested dispatch
// safety, and the threads=1 serial fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caltrain::util {
namespace {

TEST(ParallelismTest, EffectiveThreadsIsAtLeastOne) {
  EXPECT_GE(Parallelism::threads(), 1U);
  EXPECT_GE(Parallelism::DefaultThreads(), 1U);
}

TEST(ParallelismTest, DefaultHonoursEnvWhenSet) {
  // The suite is registered with ctest twice, once with
  // CALTRAIN_THREADS=4 in the environment (see CMakeLists.txt); this
  // asserts the env override is what DefaultThreads resolves to.
  const char* env = std::getenv("CALTRAIN_THREADS");
  char* end = nullptr;
  const unsigned long parsed = env ? std::strtoul(env, &end, 10) : 0;
  if (env && end != env && *end == '\0' && parsed >= 1 && parsed <= 64) {
    EXPECT_EQ(Parallelism::DefaultThreads(), parsed);
  } else {
    // Unset or invalid (garbage, 0, out of range): hardware default.
    EXPECT_GE(Parallelism::DefaultThreads(), 1U);
  }
}

TEST(ParallelismTest, SetThreadsOverridesAndClearRestoresDefault) {
  const unsigned original = Parallelism::threads();
  Parallelism::set_threads(3);
  EXPECT_EQ(Parallelism::threads(), 3U);
  Parallelism::clear_override();
  EXPECT_EQ(Parallelism::threads(), Parallelism::DefaultThreads());
  Parallelism::set_threads(original);
}

TEST(ParallelismTest, SetThreadsRejectsZero) {
  const unsigned original = Parallelism::threads();
  EXPECT_THROW(Parallelism::set_threads(0), Error);
  // A rejected override must leave the effective count untouched.
  EXPECT_EQ(Parallelism::threads(), original);
}

TEST(ParallelismTest, WidthNeverExceedsHardwareOrThreads) {
  const unsigned original = Parallelism::threads();
  Parallelism::set_threads(Parallelism::kMaxThreads);
  EXPECT_LE(Parallelism::width(), Parallelism::HardwareThreads());
  Parallelism::set_threads(1);
  EXPECT_EQ(Parallelism::width(), 1U);
  Parallelism::set_threads(original);
}

class ThreadsFlagTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = Parallelism::threads(); }
  void TearDown() override { Parallelism::set_threads(original_); }

  static unsigned Apply(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    return ApplyThreadsFlag(static_cast<int>(argv.size()),
                            const_cast<char**>(argv.data()));
  }

  unsigned original_ = 1;
};

TEST_F(ThreadsFlagTest, AppliesValidValue) {
  EXPECT_EQ(Apply({"--threads", "3"}), 3U);
  EXPECT_EQ(Parallelism::threads(), 3U);
}

TEST_F(ThreadsFlagTest, LastFlagWinsAndOtherArgsPassThrough) {
  EXPECT_EQ(Apply({"--foo", "--threads", "2", "bar", "--threads", "5"}), 5U);
}

TEST_F(ThreadsFlagTest, RejectsZero) {
  EXPECT_THROW(Apply({"--threads", "0"}), Error);
}

TEST_F(ThreadsFlagTest, RejectsTrailingGarbage) {
  EXPECT_THROW(Apply({"--threads", "4x"}), Error);
  EXPECT_THROW(Apply({"--threads", "threads"}), Error);
}

TEST_F(ThreadsFlagTest, RejectsOutOfRange) {
  EXPECT_THROW(Apply({"--threads", "65"}), Error);
}

TEST_F(ThreadsFlagTest, RejectsBareTrailingFlag) {
  EXPECT_THROW(Apply({"--threads"}), Error);
}

TEST(ParallelismTest, ScopedThreadsRestoresOnExit) {
  const unsigned before = Parallelism::threads();
  {
    ScopedThreads guard(7);
    EXPECT_EQ(Parallelism::threads(), 7U);
    {
      ScopedThreads inner(2);
      EXPECT_EQ(Parallelism::threads(), 2U);
    }
    EXPECT_EQ(Parallelism::threads(), 7U);
  }
  EXPECT_EQ(Parallelism::threads(), before);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ScopedThreads guard(4);
  constexpr std::size_t kCount = 10007;  // prime: uneven block split
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(0, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, RespectsBeginOffsetAndEmptyRange) {
  ScopedThreads guard(4);
  std::atomic<std::size_t> sum{0};
  ParallelFor(100, 200, [&](std::size_t i) {
    ASSERT_GE(i, 100U);
    ASSERT_LT(i, 200U);
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100U + 199U) * 100U / 2U);

  bool ran = false;
  ParallelFor(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, BlockedPartitionTilesTheRange) {
  ScopedThreads guard(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  ParallelForBlocked(
      3, 130,
      [&](std::size_t b0, std::size_t b1) {
        std::lock_guard<std::mutex> lock(mutex);
        blocks.emplace_back(b0, b1);
      },
      /*min_grain=*/4);
  std::sort(blocks.begin(), blocks.end());
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.front().first, 3U);
  EXPECT_EQ(blocks.back().second, 130U);
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].second, blocks[i + 1].first) << "gap or overlap";
  }
}

TEST(ParallelForTest, PropagatesExceptionsToCaller) {
  ScopedThreads guard(4);
  EXPECT_THROW(
      ParallelFor(0, 1000,
                  [](std::size_t i) {
                    if (i == 617) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, SerialFallbackRunsInlineOnCaller) {
  ScopedThreads guard(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t count = 0;  // non-atomic on purpose: must be single-threaded
  ParallelFor(0, 128, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
  });
  EXPECT_EQ(count, 128U);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForTest, NestedParallelForRunsSerialInline) {
  ScopedThreads guard(4);
  std::atomic<int> total{0};
  ParallelFor(0, 8, [&](std::size_t) {
    const std::thread::id outer = std::this_thread::get_id();
    EXPECT_TRUE(InParallelRegion());
    ParallelFor(0, 16, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), outer)
          << "nested region must not re-dispatch";
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); }).wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); }).wait();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ZeroWorkerInlineTaskMayReenterPool) {
  // The inline path must run with the pool mutex released: a task
  // submitted to a worker-less pool may itself query or submit to the
  // same pool.
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  pool.Submit([&] {
        EXPECT_EQ(pool.worker_count(), 0U);
        pool.Submit([&] { ran.fetch_add(1); }).wait();
        ran.fetch_add(1);
      })
      .wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, NestedSubmitIsDeadlockFree) {
  ThreadPool pool(1);  // single worker: naive nesting would deadlock
  std::atomic<int> ran{0};
  auto outer = pool.Submit([&] {
    auto inner = pool.Submit([&] { ran.fetch_add(1); });
    inner.wait();  // safe: nested submits execute inline
    ran.fetch_add(1);
  });
  outer.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, IdleWorkerStealsBehindBlockedWorker) {
  // Flood a 2-worker pool while one worker is parked on a long task.
  // Round-robin puts half the quick tasks behind the blocker; with
  // per-worker queues they complete only if the idle worker (or a
  // thief) drains the blocked worker's backlog.
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> blocker_started{false};
  std::future<void> blocker = pool.Submit([&] {
    blocker_started.store(true);
    gate.wait();
  });
  while (!blocker_started.load()) std::this_thread::yield();

  constexpr int kQuick = 64;
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kQuick);
  for (int i = 0; i < kQuick; ++i) {
    futures.push_back(pool.Submit([&] { done.fetch_add(1); }));
  }
  int stranded = 0;
  for (std::future<void>& f : futures) {
    if (f.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
      ++stranded;
    }
  }
  // Release the blocker BEFORE asserting: a failure must not leave the
  // worker parked on the gate (the pool destructor would never join).
  release.set_value();
  blocker.wait();
  EXPECT_EQ(stranded, 0) << "quick tasks stranded behind the blocked worker";
  EXPECT_EQ(done.load(), kQuick);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Every Submit future must complete even when the pool is destroyed
  // with a deep backlog (shutdown drains, never abandons).
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&] { done.fetch_add(1); }));
    }
  }  // ~ThreadPool joins after the queues drain
  EXPECT_EQ(done.load(), kTasks);
  for (std::future<void>& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, SubmitInsidePoolTaskRunsInline) {
  ThreadPool pool(2);
  std::thread::id outer_id;
  std::thread::id inner_id;
  pool.Submit([&] {
        outer_id = std::this_thread::get_id();
        EXPECT_TRUE(InParallelRegion());
        pool.Submit([&] { inner_id = std::this_thread::get_id(); }).wait();
      })
      .wait();
  EXPECT_EQ(inner_id, outer_id) << "nested submit must not re-dispatch";
}

namespace {

struct CursorContext {
  std::atomic<std::size_t> next{0};
  std::size_t total = 0;
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::vector<unsigned> slots_seen;
};

void PullFromCursor(void* ctx, unsigned slot) {
  auto* cursor = static_cast<CursorContext*>(ctx);
  {
    std::lock_guard<std::mutex> lock(cursor->mutex);
    cursor->slots_seen.push_back(slot);
  }
  for (;;) {
    const std::size_t i = cursor->next.fetch_add(1);
    if (i >= cursor->total) return;
    cursor->done.fetch_add(1);
  }
}

}  // namespace

TEST(ThreadPoolTest, RunOnWorkersCompletesAllItems) {
  ThreadPool pool(3);
  CursorContext cursor;
  cursor.total = 10000;
  const unsigned dispatched = pool.RunOnWorkers(3, &PullFromCursor, &cursor);
  EXPECT_EQ(cursor.done.load(), cursor.total);
  EXPECT_LE(dispatched, 3U);
  // Slot 0 (the caller) always participates; helper slots are distinct.
  std::sort(cursor.slots_seen.begin(), cursor.slots_seen.end());
  ASSERT_FALSE(cursor.slots_seen.empty());
  EXPECT_EQ(cursor.slots_seen.front(), 0U);
  EXPECT_EQ(std::unique(cursor.slots_seen.begin(), cursor.slots_seen.end()),
            cursor.slots_seen.end())
      << "duplicate slot ids";
}

TEST(ThreadPoolTest, RunOnWorkersInsideRegionRunsInlineOnly) {
  ThreadPool pool(2);
  pool.Submit([&] {
        CursorContext cursor;
        cursor.total = 100;
        const unsigned dispatched =
            pool.RunOnWorkers(2, &PullFromCursor, &cursor);
        EXPECT_EQ(dispatched, 0U) << "nested bulk dispatch must run inline";
        EXPECT_EQ(cursor.done.load(), cursor.total);
      })
      .wait();
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1U);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.worker_count(), 3U);
  pool.EnsureWorkers(2);
  EXPECT_EQ(pool.worker_count(), 3U);
}

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 3U);
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.TryPop(), std::optional<int>(3));
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedQueueTest, RejectPolicyFailsFastWhenFull) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kReject);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_FALSE(queue.Push(3)) << "kReject must not block on a full queue";
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::optional<int>(3));
}

TEST(BoundedQueueTest, BlockPolicyWaitsForRoom) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsConsumers) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_FALSE(queue.Push(8)) << "pushes fail after Close";
  EXPECT_EQ(queue.Pop(), std::optional<int>(7)) << "items drain after Close";
  EXPECT_EQ(queue.Pop(), std::nullopt) << "drained + closed terminates Pop";
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(full.Push(1));
  std::thread producer([&] { EXPECT_FALSE(full.Push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_EQ(empty.Pop(), std::nullopt); });
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8, BackpressurePolicy::kBlock);
  std::mutex seen_mu;
  std::vector<int> seen;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (const std::optional<int> item = queue.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.push_back(*item);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ManyConcurrentParallelForsAgree) {
  // Stress the shared global pool from several submitting threads.
  ScopedThreads guard(4);
  constexpr int kLoops = 32;
  constexpr std::size_t kCount = 501;
  std::atomic<std::size_t> grand_total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&] {
      for (int loop = 0; loop < kLoops; ++loop) {
        std::atomic<std::size_t> local{0};
        ParallelFor(0, kCount, [&](std::size_t) {
          local.fetch_add(1, std::memory_order_relaxed);
        });
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(grand_total.load(), 4U * kLoops * kCount);
}

}  // namespace
}  // namespace caltrain::util
