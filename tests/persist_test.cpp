// Durability-layer tests (ISSUE 8): CRC32C framing, torn-tail
// detection, snapshot round trips, the deterministic fault injector,
// capped-backoff retries, degraded read-only mode — and the subprocess
// crash harness: re-execute this binary with a fault armed, let the
// injector kill it mid-operation, recover from the journal it left
// behind, resume the interrupted pipeline, and require the final state
// to be bit-identical to an uninterrupted run.
//
// This file carries its own main(): `persist_test --crash-child <dir>
// <fault-spec>` runs the crash scenario instead of the gtest suites.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/participant.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "persist/journal.hpp"
#include "persist/service_log.hpp"
#include "persist/snapshot.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace caltrain {
namespace {

// Clears the global injector on scope exit so one test's rules can
// never leak into the next (all suites share the process).
struct FaultGuard {
  explicit FaultGuard(const std::string& spec = "") {
    if (!spec.empty()) util::FaultInjector::Global().Configure(spec);
  }
  ~FaultGuard() { util::FaultInjector::Global().Clear(); }
};

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "caltrain_persist_XXXXXX";
  CALTRAIN_REQUIRE(::mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  // Test dirs hold only regular files.
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  (void)rc;
}

Bytes Payload(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

std::vector<Bytes> ScanPayloads(const std::string& path,
                                persist::ScanReport* report = nullptr) {
  std::vector<Bytes> payloads;
  const persist::ScanReport r = persist::ScanJournal(
      path, [&](BytesView p) { payloads.emplace_back(p.begin(), p.end()); });
  if (report != nullptr) *report = r;
  return payloads;
}

std::uint64_t FileSize(const std::string& path) {
  struct ::stat st {};
  CALTRAIN_REQUIRE(::stat(path.c_str(), &st) == 0, "stat failed");
  return static_cast<std::uint64_t>(st.st_size);
}

void AppendRaw(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  CALTRAIN_REQUIRE(out.good(), "raw append failed");
}

void CorruptByteAt(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  CALTRAIN_REQUIRE(f.good(), "corrupt write failed");
}

// ------------------------------------------------------------------ crc32c

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 Castagnoli test vector.
  const std::string nine = "123456789";
  EXPECT_EQ(persist::Crc32c(BytesView(
                reinterpret_cast<const std::uint8_t*>(nine.data()),
                nine.size())),
            0xE3069283U);
  EXPECT_EQ(persist::Crc32c(BytesView()), 0U);
  // 32 zero bytes — iSCSI KAT.
  EXPECT_EQ(persist::Crc32c(Bytes(32, 0x00)), 0x8A9136AAU);
  EXPECT_EQ(persist::Crc32c(Bytes(32, 0xFF)), 0x62A8AB43U);
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  Rng rng(101);
  Bytes data(1027);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextU64());
  const std::uint32_t whole = persist::Crc32c(data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{512},
                                  data.size()}) {
    const std::uint32_t first =
        persist::Crc32c(BytesView(data.data(), split));
    const std::uint32_t chained = persist::Crc32c(
        BytesView(data.data() + split, data.size() - split), first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

// ----------------------------------------------------------------- journal

TEST(JournalTest, AppendScanRoundTrip) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kGroup);
    EXPECT_EQ(journal->Append(Payload(1, 0x11)), 1U);
    EXPECT_EQ(journal->Append(Payload(1000, 0x22)), 2U);
    EXPECT_EQ(journal->Append(Bytes{}), 3U);  // empty payload is legal
    journal->Sync();
    EXPECT_EQ(journal->appended_lsn(), 3U);
    EXPECT_EQ(journal->synced_lsn(), 3U);
  }
  persist::ScanReport report;
  const std::vector<Bytes> payloads = ScanPayloads(path, &report);
  EXPECT_TRUE(report.exists);
  EXPECT_TRUE(report.header_valid);
  EXPECT_EQ(report.frames, 3U);
  EXPECT_EQ(report.truncated_bytes, 0U);
  EXPECT_EQ(report.valid_bytes, FileSize(path));
  ASSERT_EQ(payloads.size(), 3U);
  EXPECT_EQ(payloads[0], Payload(1, 0x11));
  EXPECT_EQ(payloads[1], Payload(1000, 0x22));
  EXPECT_TRUE(payloads[2].empty());
  RemoveTree(dir);
}

TEST(JournalTest, MissingFileIsCleanEmptyJournal) {
  persist::ScanReport report;
  const std::vector<Bytes> payloads =
      ScanPayloads("/nonexistent/dir/none.wal", &report);
  EXPECT_FALSE(report.exists);
  EXPECT_TRUE(payloads.empty());
}

TEST(JournalTest, TornTailIsDetectedTruncatedAndOverwritten) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kNone);
    (void)journal->Append(Payload(64, 0xaa));
    (void)journal->Append(Payload(64, 0xbb));
  }
  // Simulate a crash mid-append: a frame header promising more bytes
  // than the file holds.
  AppendRaw(path, Bytes{0xff, 0xff, 0x00, 0x00, 0x01, 0x02, 0x03});
  persist::ScanReport report;
  std::vector<Bytes> payloads = ScanPayloads(path, &report);
  EXPECT_EQ(report.frames, 2U);
  EXPECT_EQ(report.truncated_bytes, 7U);
  ASSERT_EQ(payloads.size(), 2U);

  // Reopening at valid_bytes truncates the torn tail; the next append
  // lands exactly where the tail was.
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kNone,
                                          report.valid_bytes);
    EXPECT_EQ(FileSize(path), report.valid_bytes);
    (void)journal->Append(Payload(8, 0xcc));
  }
  payloads = ScanPayloads(path, &report);
  EXPECT_EQ(report.frames, 3U);
  EXPECT_EQ(report.truncated_bytes, 0U);
  EXPECT_EQ(payloads[2], Payload(8, 0xcc));
  RemoveTree(dir);
}

TEST(JournalTest, CorruptPayloadStopsScanAtLastValidFrame) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  std::uint64_t first_frame_end = 0;
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kNone);
    (void)journal->Append(Payload(100, 0x01));
    first_frame_end = FileSize(path);
    (void)journal->Append(Payload(100, 0x02));
    (void)journal->Append(Payload(100, 0x03));
  }
  // Flip one payload byte of the SECOND frame: its CRC no longer
  // matches, so the scan must deliver exactly one frame and report the
  // rest as a torn tail — never silently accept the damage.
  CorruptByteAt(path, first_frame_end + 8 + 50);
  persist::ScanReport report;
  const std::vector<Bytes> payloads = ScanPayloads(path, &report);
  EXPECT_EQ(report.frames, 1U);
  EXPECT_EQ(report.valid_bytes, first_frame_end);
  EXPECT_GT(report.truncated_bytes, 0U);
  ASSERT_EQ(payloads.size(), 1U);
  EXPECT_EQ(payloads[0], Payload(100, 0x01));
  RemoveTree(dir);
}

TEST(JournalTest, CorruptHeaderIsReportedNotTreatedAsEmpty) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kNone);
    (void)journal->Append(Payload(8, 0x01));
  }
  CorruptByteAt(path, 2);  // inside the magic
  persist::ScanReport report;
  (void)ScanPayloads(path, &report);
  EXPECT_TRUE(report.exists);
  EXPECT_FALSE(report.header_valid);
  EXPECT_EQ(report.frames, 0U);
  RemoveTree(dir);
}

TEST(JournalTest, GroupCommitUnderConcurrentAppenders) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  {
    auto journal = persist::Journal::Open(path, persist::SyncMode::kGroup);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 25;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&journal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          (void)journal->Append(Payload(32, static_cast<std::uint8_t>(t)));
          journal->Sync();  // group commit: leaders batch these
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(journal->appended_lsn(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(journal->synced_lsn(), journal->appended_lsn());
  }
  persist::ScanReport report;
  (void)ScanPayloads(path, &report);
  EXPECT_EQ(report.frames, 200U);
  EXPECT_EQ(report.truncated_bytes, 0U);
  RemoveTree(dir);
}

TEST(JournalTest, ShortWriteFaultRestoresTailForRetry) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/t.wal";
  FaultGuard guard("persist.append=short@2");
  auto journal = persist::Journal::Open(path, persist::SyncMode::kNone);
  (void)journal->Append(Payload(64, 0x01));
  const std::uint64_t before = FileSize(path);
  // The second append writes a partial frame, fails kUnavailable, and
  // must truncate the garbage before surfacing the error.
  try {
    (void)journal->Append(Payload(64, 0x02));
    FAIL() << "short-write fault must surface as an error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUnavailable);
  }
  EXPECT_EQ(FileSize(path), before) << "torn bytes left behind by a retryable"
                                       " append failure";
  // The retry (fault fired only on hit 2) succeeds and lands cleanly.
  EXPECT_EQ(journal->Append(Payload(64, 0x02)), 2U);
  persist::ScanReport report;
  const std::vector<Bytes> payloads = ScanPayloads(path, &report);
  EXPECT_EQ(report.frames, 2U);
  EXPECT_EQ(payloads[1], Payload(64, 0x02));
  RemoveTree(dir);
}

// ---------------------------------------------------------------- snapshot

TEST(SnapshotTest, RoundTripMissingAndCorrupt) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/model.snap";
  Rng rng(7);
  Bytes payload(4096);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextU64());

  EXPECT_FALSE(persist::ReadSnapshot(path).has_value());
  persist::WriteSnapshot(path, payload);
  const std::optional<Bytes> back = persist::ReadSnapshot(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);

  // Atomic replace: a second write fully supersedes the first.
  persist::WriteSnapshot(path, Payload(10, 0x42));
  EXPECT_EQ(*persist::ReadSnapshot(path), Payload(10, 0x42));

  CorruptByteAt(path, 16 + 4);  // a payload byte
  try {
    (void)persist::ReadSnapshot(path);
    FAIL() << "corrupt snapshot must not be silently accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }
  RemoveTree(dir);
}

// ------------------------------------------------------------- service log

TEST(ServiceLogTest, EventRoundTrip) {
  const std::string dir = MakeTempDir();
  {
    auto log = persist::ServiceLog::Open(dir, persist::SyncMode::kNone);
    persist::DirectoryEvent directory;
    directory.version = 3;
    directory.blob = Payload(40, 0xd1);
    (void)log->AppendDirectory(directory);
    (void)log->AppendTrainComplete({"model-1.snap", 2});
    (void)log->AppendFingerprintComplete({"linkage-1.snap", 5});
    (void)log->AppendReopenIngest();
    (void)log->AppendRelease({"alice"});
  }
  int seen = 0;
  persist::ReplayVisitor visitor;
  visitor.on_directory = [&](persist::DirectoryEvent e) {
    EXPECT_EQ(e.version, 3U);
    EXPECT_EQ(e.blob, Payload(40, 0xd1));
    ++seen;
  };
  visitor.on_train_complete = [&](persist::TrainCompleteEvent e) {
    EXPECT_EQ(e.model_file, "model-1.snap");
    EXPECT_EQ(e.front_layers, 2);
    ++seen;
  };
  visitor.on_fingerprint_complete = [&](persist::FingerprintCompleteEvent e) {
    EXPECT_EQ(e.linkage_file, "linkage-1.snap");
    EXPECT_EQ(e.fingerprint_layer, 5);
    ++seen;
  };
  visitor.on_reopen_ingest = [&] { ++seen; };
  visitor.on_release = [&](persist::ReleaseEvent e) {
    EXPECT_EQ(e.participant_id, "alice");
    ++seen;
  };
  const persist::ScanReport report = persist::ServiceLog::Replay(dir, visitor);
  EXPECT_EQ(report.frames, 5U);
  EXPECT_EQ(seen, 5);
  RemoveTree(dir);
}

TEST(ServiceLogTest, MalformedEventInValidFrameIsCorruption) {
  const std::string dir = MakeTempDir();
  {
    // A CRC-valid frame whose payload is not a decodable event.
    auto journal = persist::Journal::Open(
        persist::ServiceLog::JournalPath(dir), persist::SyncMode::kNone);
    (void)journal->Append(Bytes{0x7f, 0x01, 0x02});
  }
  try {
    (void)persist::ServiceLog::Replay(dir, persist::ReplayVisitor{});
    FAIL() << "malformed event must be corruption, not a clean replay";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }
  RemoveTree(dir);
}

// ----------------------------------------------------------- fault injector

TEST(FaultInjectorTest, SpecParsingAndHitArithmetic) {
  FaultGuard guard;
  auto& injector = util::FaultInjector::Global();
  injector.Configure("a=eio@2,b=timeout;c=short@3+");
  EXPECT_TRUE(injector.armed());

  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kNone);
  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kEio);
  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kNone);

  EXPECT_EQ(injector.Hit("b"), util::FaultAction::kTimeout);
  EXPECT_EQ(injector.Hit("b"), util::FaultAction::kTimeout);

  EXPECT_EQ(injector.Hit("c"), util::FaultAction::kNone);
  EXPECT_EQ(injector.Hit("c"), util::FaultAction::kNone);
  EXPECT_EQ(injector.Hit("c"), util::FaultAction::kShortWrite);
  EXPECT_EQ(injector.Hit("c"), util::FaultAction::kShortWrite);

  EXPECT_EQ(injector.Hit("unknown.point"), util::FaultAction::kNone);

  // Configure resets hit counters.
  injector.Configure("a=eio@2");
  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kNone);
  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kEio);

  injector.Clear();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.Hit("a"), util::FaultAction::kNone);

  EXPECT_THROW(injector.Configure("a=explode"), Error);
  EXPECT_THROW(injector.Configure("justapoint"), Error);
  EXPECT_THROW(injector.Configure("a=eio@zero"), Error);
}

TEST(FaultInjectorTest, RegisteredPointsAreStable) {
  const std::vector<std::string>& points = util::RegisteredFaultPoints();
  ASSERT_EQ(points.size(), 10U);
  EXPECT_EQ(points[0], "persist.append");
  EXPECT_EQ(points[1], "persist.sync");
  EXPECT_EQ(points[2], "persist.snapshot");
  EXPECT_EQ(points[3], "enclave.transition");
  EXPECT_EQ(points[4], "serve.auth");
  EXPECT_EQ(points[5], "queue.push");
  EXPECT_EQ(points[6], "net.accept");
  EXPECT_EQ(points[7], "net.read");
  EXPECT_EQ(points[8], "net.write");
  EXPECT_EQ(points[9], "net.frame");
}

TEST(BackoffTest, DeterministicCappedDelays) {
  util::BackoffPolicy policy;
  policy.base_us = 100;
  policy.cap_us = 1000;
  policy.seed = 17;
  util::BackoffPolicy same = policy;
  std::uint64_t prev = 0;
  for (unsigned retry = 1; retry <= 10; ++retry) {
    const std::uint64_t d = policy.DelayMicros(retry);
    EXPECT_EQ(d, same.DelayMicros(retry)) << "jitter must be deterministic";
    EXPECT_LE(d, policy.cap_us + policy.cap_us / 2)
        << "cap plus jitter headroom exceeded at retry " << retry;
    if (retry <= 3) {
      EXPECT_GE(d, prev / 2);  // roughly exponential early on
    }
    prev = d;
  }
  util::BackoffPolicy other = policy;
  other.seed = 18;
  bool differs = false;
  for (unsigned retry = 1; retry <= 10 && !differs; ++retry) {
    differs = other.DelayMicros(retry) != policy.DelayMicros(retry);
  }
  EXPECT_TRUE(differs) << "different seeds should jitter differently";
}

TEST(RetryTransientTest, AbsorbsBoundedTransientsOnly) {
  util::BackoffPolicy fast;
  fast.max_attempts = 4;
  fast.base_us = 1;
  fast.cap_us = 2;

  int calls = 0;
  const int value = util::RetryTransient(fast, [&] {
    if (++calls < 3) ThrowError(ErrorKind::kUnavailable, "flaky");
    return 99;
  });
  EXPECT_EQ(value, 99);
  EXPECT_EQ(calls, 3);

  calls = 0;
  try {
    util::RetryTransient(fast, [&]() -> int {
      ++calls;
      ThrowError(ErrorKind::kUnavailable, "always down");
    });
    FAIL() << "exhausted retries must propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos)
        << "retries-exhausted message should carry the attempt count";
  }
  EXPECT_EQ(calls, 4);

  calls = 0;
  try {
    util::RetryTransient(fast, [&]() -> int {
      ++calls;
      ThrowError(ErrorKind::kAuthFailure, "not transient");
    });
    FAIL() << "non-transient errors must not be retried";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
  }
  EXPECT_EQ(calls, 1);
}

// ----------------------------------------------- service-level durability

data::LabeledDataset SweepData(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  data::SyntheticCifar gen;
  return gen.Generate(count, rng);
}

core::PartitionedTrainOptions SweepTrainOptions() {
  core::PartitionedTrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 9;
  return options;
}

serve::ServiceConfig DurableConfig(const std::string& dir) {
  serve::ServiceConfig config;
  config.ingest_batch = 4;
  config.durable_dir = dir;
  config.submit_timeout = std::chrono::milliseconds(10'000);
  config.backoff.base_us = 50;
  config.backoff.cap_us = 500;
  return config;
}

Bytes ModelBytes(core::TrainingServer& server) {
  return server.model().SerializeModel();
}

TEST(ServiceDurabilityTest, CleanShutdownRecoversBitIdenticalIngestState) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(24, 61);

  Bytes reference_model;
  {
    core::TrainingServer server;
    core::Participant alice("alice", dataset, 601);
    alice.Provision(server, server.training_measurement());
    serve::Service service(server, DurableConfig(dir));
    auto session = service.OpenUploadSession("alice");
    ASSERT_TRUE(session.ok());
    auto receipt =
        service.SubmitUpload(session.value(), alice.PackRecords()).get();
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt.value().accepted, 24U);
    ASSERT_TRUE(service
                    .SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
                    .get()
                    .ok());
    reference_model = ModelBytes(server);
  }

  core::TrainingServer recovered_server;
  auto recovered =
      serve::Service::Recover(recovered_server, DurableConfig(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  EXPECT_EQ(recovered.value()->phase(), serve::Phase::kTrained);
  EXPECT_EQ(recovered_server.accepted_records(), 24U);
  EXPECT_EQ(recovered_server.rejected_records(), 0U);
  EXPECT_EQ(ModelBytes(recovered_server), reference_model)
      << "restored model must be bit-identical";
  // The restored directory authenticates fresh uploads: resume flows
  // work without re-provisioning.
  auto& service = *recovered.value();
  ASSERT_TRUE(service.ReopenIngest().ok());
  core::Participant alice("alice", dataset, 601);
  auto session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  std::vector<data::EncryptedRecord> more = alice.PackRecords();
  more.resize(4);
  auto receipt = service.SubmitUpload(session.value(), std::move(more)).get();
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.value().accepted, 4U);
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, RecoverRestoresServingPhaseElementWise) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(24, 62);
  std::vector<nn::Image> probes;
  {
    Rng rng(63);
    data::SyntheticCifar gen;
    for (int i = 0; i < 3; ++i) probes.push_back(gen.Sample(0, rng));
  }

  std::vector<core::MispredictionReport> reference;
  std::size_t linkage_size = 0;
  {
    core::TrainingServer server;
    core::Participant alice("alice", dataset, 602);
    alice.Provision(server, server.training_measurement());
    serve::Service service(server, DurableConfig(dir));
    auto session = service.OpenUploadSession("alice");
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(
        service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
    ASSERT_TRUE(service
                    .SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
                    .get()
                    .ok());
    auto fingerprint = service.SubmitFingerprint().get();
    ASSERT_TRUE(fingerprint.ok());
    linkage_size = fingerprint.value();
    ASSERT_TRUE(service.SubmitRelease("alice").get().ok());  // audit event
    for (const nn::Image& probe : probes) {
      auto report = service.SubmitInvestigate(probe, 5).get();
      ASSERT_TRUE(report.ok());
      reference.push_back(std::move(report).value());
    }
  }

  core::TrainingServer recovered_server;
  auto recovered =
      serve::Service::Recover(recovered_server, DurableConfig(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  auto& service = *recovered.value();
  EXPECT_EQ(service.phase(), serve::Phase::kServing);
  EXPECT_GT(linkage_size, 0U);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto report = service.SubmitInvestigate(probes[i], 5).get();
    ASSERT_TRUE(report.ok());
    const core::MispredictionReport& got = report.value();
    EXPECT_EQ(got.predicted_label, reference[i].predicted_label) << i;
    EXPECT_EQ(got.fingerprint, reference[i].fingerprint) << i;
    ASSERT_EQ(got.neighbors.size(), reference[i].neighbors.size()) << i;
    for (std::size_t n = 0; n < got.neighbors.size(); ++n) {
      EXPECT_EQ(got.neighbors[n].id, reference[i].neighbors[n].id) << i;
      EXPECT_EQ(got.neighbors[n].distance, reference[i].neighbors[n].distance)
          << i;
    }
  }
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, FreshServiceRefusesRecoverableJournal) {
  const std::string dir = MakeTempDir();
  {
    auto log = persist::ServiceLog::Open(dir, persist::SyncMode::kNone);
    (void)log->AppendReopenIngest();
  }
  core::TrainingServer server;
  try {
    serve::Service service(server, DurableConfig(dir));
    FAIL() << "a fresh Service must refuse recoverable state";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kFailedPrecondition);
  }
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, CorruptJournalIsTypedNotSilent) {
  const std::string dir = MakeTempDir();
  {
    std::ofstream out(persist::ServiceLog::JournalPath(dir),
                      std::ios::binary);
    out << "NOTAWAL0garbage";
  }
  core::TrainingServer server;
  auto recovered = serve::Service::Recover(server, DurableConfig(dir));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.error().kind, serve::ServeErrorKind::kCorruptJournal);
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, JournalFailureDegradesToReadOnly) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(8, 64);
  core::TrainingServer server;
  core::Participant alice("alice", dataset, 603);
  alice.Provision(server, server.training_measurement());

  serve::ServiceConfig config = DurableConfig(dir);
  config.backoff.max_attempts = 2;
  config.backoff.base_us = 1;
  config.backoff.cap_us = 2;
  serve::Service service(server, config);
  auto session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());

  // Every journal append fails: retries exhaust and the service must
  // degrade instead of acknowledging non-durable state.
  FaultGuard guard("persist.append=eio");
  auto receipt =
      service.SubmitUpload(session.value(), alice.PackRecords()).get();
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().kind, serve::ServeErrorKind::kDegraded);
  EXPECT_TRUE(service.degraded());
  EXPECT_EQ(server.accepted_records(), 0U)
      << "unjournaled records must not be committed";

  // Every mutating entry point is now refused with the typed error.
  EXPECT_EQ(service.OpenUploadSession("alice").error().kind,
            serve::ServeErrorKind::kDegraded);
  EXPECT_EQ(service.SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
                .get()
                .error()
                .kind,
            serve::ServeErrorKind::kDegraded);
  EXPECT_EQ(service.SubmitRelease("alice").get().error().kind,
            serve::ServeErrorKind::kDegraded);
  EXPECT_EQ(service.ReopenIngest().error().kind,
            serve::ServeErrorKind::kDegraded);
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, DegradedServingKeepsInvestigateAlive) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(24, 65);
  core::TrainingServer server;
  core::Participant alice("alice", dataset, 604);
  alice.Provision(server, server.training_measurement());
  serve::ServiceConfig config = DurableConfig(dir);
  config.backoff.max_attempts = 2;
  config.backoff.base_us = 1;
  config.backoff.cap_us = 2;
  serve::Service service(server, config);
  auto session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      service.SubmitUpload(session.value(), alice.PackRecords()).get().ok());
  ASSERT_TRUE(service.SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
                  .get()
                  .ok());
  ASSERT_TRUE(service.SubmitFingerprint().get().ok());

  FaultGuard guard("persist.append=eio");
  // The release needs a journal append; with the journal down it must
  // degrade...
  auto released = service.SubmitRelease("alice").get();
  ASSERT_FALSE(released.ok());
  EXPECT_EQ(released.error().kind, serve::ServeErrorKind::kDegraded);
  EXPECT_TRUE(service.degraded());
  // ...while the read-only investigate plane keeps serving.
  Rng rng(66);
  data::SyntheticCifar gen;
  auto report = service.SubmitInvestigate(gen.Sample(0, rng), 3).get();
  EXPECT_TRUE(report.ok()) << "degraded mode must keep investigate alive";
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, TransientFaultsAreAbsorbedByRetries) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(16, 67);
  core::TrainingServer server;
  core::Participant alice("alice", dataset, 605);
  alice.Provision(server, server.training_measurement());
  serve::ServiceConfig config = DurableConfig(dir);
  config.backoff.base_us = 1;
  config.backoff.cap_us = 2;
  serve::Service service(server, config);
  auto session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());

  // One transient append failure and one transient auth failure: the
  // capped-backoff retry loops must absorb both without surfacing an
  // error or degrading.
  FaultGuard guard("persist.append=eio@2,serve.auth=eio@1");
  auto receipt =
      service.SubmitUpload(session.value(), alice.PackRecords()).get();
  ASSERT_TRUE(receipt.ok()) << receipt.error().message;
  EXPECT_EQ(receipt.value().accepted, 16U);
  EXPECT_FALSE(service.degraded());
  RemoveTree(dir);
}

TEST(ServiceDurabilityTest, QueuePushTimeoutIsTypedAllOrNothing) {
  const std::string dir = MakeTempDir();
  const data::LabeledDataset dataset = SweepData(8, 68);
  core::TrainingServer server;
  core::Participant alice("alice", dataset, 606);
  alice.Provision(server, server.training_measurement());
  serve::ServiceConfig config = DurableConfig(dir);
  config.submit_timeout = std::chrono::milliseconds(50);
  serve::Service service(server, config);
  auto session = service.OpenUploadSession("alice");
  ASSERT_TRUE(session.ok());

  {
    // The very first deadline push reports timeout: all-or-nothing,
    // nothing committed, a typed kTimeout for the caller.
    FaultGuard guard("queue.push=timeout@1");
    auto receipt =
        service.SubmitUpload(session.value(), alice.PackRecords()).get();
    ASSERT_FALSE(receipt.ok());
    EXPECT_EQ(receipt.error().kind, serve::ServeErrorKind::kTimeout);
  }
  service.DrainIngest();
  EXPECT_EQ(server.accepted_records(), 0U);
  EXPECT_FALSE(service.degraded()) << "a timeout is not a durability fault";

  // The resubmission (no fault armed) goes through on the same session.
  auto retry =
      service.SubmitUpload(session.value(), alice.PackRecords()).get();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().accepted, 8U);
  RemoveTree(dir);
}

// ------------------------------------------------------------ crash harness

}  // namespace

// Path of this test binary, captured by main() for re-execution, and
// the child entry point — both outside the anonymous namespace so
// main() can reach them.
std::string g_self_exe;  // NOLINT

constexpr std::uint64_t kSweepDataSeed = 71;
constexpr std::uint64_t kSweepKeySeed = 607;
constexpr std::size_t kSweepRecords = 24;

// Runs the canonical crash scenario: provision, upload 24 records in
// 6 journaled batches, train.  On success, exports the final model for
// the parent to compare and exits 0.  A fault armed via `spec` kills
// the process somewhere in the middle (exit 42).
int RunCrashChild(const std::string& dir, const std::string& spec) try {
  util::FaultInjector::Global().Configure(spec);
  core::TrainingServer server;
  core::Participant alice("alice", SweepData(kSweepRecords, kSweepDataSeed),
                          kSweepKeySeed);
  alice.Provision(server, server.training_measurement());
  serve::Service service(server, DurableConfig(dir));
  auto session = service.OpenUploadSession("alice");
  if (!session.ok()) return 3;
  auto receipt =
      service.SubmitUpload(session.value(), alice.PackRecords()).get();
  if (!receipt.ok()) return 4;
  if (!service.SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
           .get()
           .ok()) {
    return 5;
  }
  persist::WriteSnapshot(dir + "/child-final.bin", ModelBytes(server));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "crash child failed: %s\n", e.what());
  return 6;
}

namespace {

int SpawnCrashChild(const std::string& dir, const std::string& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Immediate re-exec: never run the (multithreaded) parent image
    // past fork.
    ::execl(g_self_exe.c_str(), g_self_exe.c_str(), "--crash-child",
            dir.c_str(), spec.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  CALTRAIN_REQUIRE(pid > 0, "fork failed");
  int status = 0;
  CALTRAIN_REQUIRE(::waitpid(pid, &status, 0) == pid, "waitpid failed");
  CALTRAIN_REQUIRE(WIFEXITED(status), "crash child died abnormally");
  return WEXITSTATUS(status);
}

TEST(CrashHarnessTest, EveryFaultPointRecoversBitIdentically) {
  // Uninterrupted reference run for the final-state comparison.
  const std::string ref_dir = MakeTempDir();
  ASSERT_EQ(SpawnCrashChild(ref_dir, ""), 0);
  const std::optional<Bytes> reference =
      persist::ReadSnapshot(ref_dir + "/child-final.bin");
  ASSERT_TRUE(reference.has_value());
  RemoveTree(ref_dir);

  // Kill the child at every registered fault point (first hit), plus
  // later hits that land mid-stream and torn-write variants that leave
  // partial frames for recovery to truncate.
  std::vector<std::string> specs;
  for (const std::string& point : util::RegisteredFaultPoints()) {
    specs.push_back(point + "=crash@1");
  }
  specs.emplace_back("persist.append=crash@4");
  specs.emplace_back("persist.append=torn@3");
  specs.emplace_back("persist.sync=crash@2");
  specs.emplace_back("persist.snapshot=torn@1");
  specs.emplace_back("serve.auth=crash@5");

  const data::LabeledDataset dataset =
      SweepData(kSweepRecords, kSweepDataSeed);
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    const std::string dir = MakeTempDir();
    const int code = SpawnCrashChild(dir, spec);
    if (code == 0) {
      // The fault point's Nth hit never happened in this scenario; the
      // run completed and must equal the reference outright.
      const std::optional<Bytes> final_model =
          persist::ReadSnapshot(dir + "/child-final.bin");
      ASSERT_TRUE(final_model.has_value());
      EXPECT_EQ(*final_model, *reference);
      RemoveTree(dir);
      continue;
    }
    ASSERT_EQ(code, util::FaultInjector::kCrashExitCode)
        << "child must die at the injected fault, not elsewhere";

    if (spec.find("persist.append=torn") != std::string::npos) {
      // The injected torn write must be visible to the scan — and then
      // truncated by recovery, never replayed as data.
      persist::ScanReport report;
      (void)ScanPayloads(persist::ServiceLog::JournalPath(dir), &report);
      EXPECT_GT(report.truncated_bytes, 0U)
          << "torn spec should leave a torn tail";
    }

    // Recover, then resume the interrupted pipeline exactly as the
    // resumable-driver contract prescribes: resubmit the record suffix
    // past the recovered tally, then rerun the train step if its
    // completion event never made the journal.
    core::TrainingServer server;
    auto recovered = serve::Service::Recover(server, DurableConfig(dir));
    ASSERT_TRUE(recovered.ok()) << recovered.error().message;
    auto& service = *recovered.value();
    const std::size_t tally =
        server.accepted_records() + server.rejected_records();
    ASSERT_LE(tally, kSweepRecords);
    EXPECT_EQ(server.rejected_records(), 0U);

    core::Participant alice("alice", dataset, kSweepKeySeed);
    if (!server.IsProvisioned("alice")) {
      // Crashed before the directory event was journaled: the
      // participant re-runs provisioning, deterministically deriving
      // the same keys.
      alice.Provision(server, server.training_measurement());
    }
    if (service.phase() == serve::Phase::kIngest) {
      if (tally < kSweepRecords) {
        std::vector<data::EncryptedRecord> records = alice.PackRecords();
        std::vector<data::EncryptedRecord> suffix(
            std::make_move_iterator(records.begin() +
                                    static_cast<std::ptrdiff_t>(tally)),
            std::make_move_iterator(records.end()));
        auto session = service.OpenUploadSession("alice");
        ASSERT_TRUE(session.ok());
        auto receipt =
            service.SubmitUpload(session.value(), std::move(suffix)).get();
        ASSERT_TRUE(receipt.ok()) << receipt.error().message;
      }
      ASSERT_TRUE(service
                      .SubmitTrain(nn::Table1Spec(32), SweepTrainOptions())
                      .get()
                      .ok());
    } else {
      ASSERT_EQ(service.phase(), serve::Phase::kTrained);
      ASSERT_EQ(tally, kSweepRecords);
    }
    EXPECT_EQ(server.accepted_records(), kSweepRecords);
    EXPECT_EQ(ModelBytes(server), *reference)
        << "crash + recover + resume must land on the bit-identical model";
    RemoveTree(dir);
  }
}

}  // namespace
}  // namespace caltrain

int main(int argc, char** argv) {
  caltrain::g_self_exe = argv[0];
  if (argc == 4 && std::string(argv[1]) == "--crash-child") {
    return caltrain::RunCrashChild(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
