// Core pipeline tests: partitioned training, the full multi-party
// server flow (attest -> provision -> upload -> train -> fingerprint ->
// query -> release), dynamic re-assessment, and learning hubs.
#include <gtest/gtest.h>

#include "core/hubs.hpp"
#include "core/participant.hpp"
#include "core/partitioned.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/threadpool.hpp"

namespace caltrain::core {
namespace {

// Tiny two-class corpus separable by intensity (fast to learn).
data::LabeledDataset IntensityDataset(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  data::LabeledDataset out;
  for (std::size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % 2);
    nn::Image img(nn::Shape{28, 28, 3});
    const float base = label == 0 ? 0.2F : 0.8F;
    for (float& p : img.pixels) p = base + 0.1F * rng.Gaussian();
    out.Append(img, label);
  }
  return out;
}

enclave::EnclaveConfig TestEnclaveConfig() {
  enclave::EnclaveConfig config;
  config.name = "test-enclave";
  config.code_identity = BytesOf("test code");
  config.seed = 3;
  return config;
}

TEST(PartitionedTrainerTest, LearnsWithSplit) {
  Rng rng(81);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  enclave::Enclave enclave(TestEnclaveConfig());
  PartitionedTrainer trainer(net, enclave, /*front_layers=*/2);

  const data::LabeledDataset train = IntensityDataset(128, 82);
  const data::LabeledDataset test = IntensityDataset(32, 83);

  nn::SgdConfig sgd;
  sgd.learning_rate = 0.05F;
  Rng train_rng(84);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (std::size_t first = 0; first < train.size(); first += 16) {
      const std::size_t count = std::min<std::size_t>(16, train.size() - first);
      nn::Batch batch(static_cast<int>(count), nn::Shape{28, 28, 3});
      std::vector<int> labels(count);
      for (std::size_t i = 0; i < count; ++i) {
        std::copy(train.images[first + i].pixels.begin(),
                  train.images[first + i].pixels.end(),
                  batch.Sample(static_cast<int>(i)));
        labels[i] = train.labels[first + i];
      }
      (void)trainer.TrainBatch(batch, labels, sgd, train_rng);
    }
  }
  const double top1 = nn::EvaluateTopK(net, test.images, test.labels, 1);
  EXPECT_GE(top1, 0.9);

  // Boundary traffic and transitions were accounted.
  EXPECT_GT(trainer.stats().ir_bytes_out, 0U);
  EXPECT_GT(trainer.stats().delta_bytes_in, 0U);
  EXPECT_GT(enclave.transitions().ecalls, 0U);
  EXPECT_GT(enclave.transitions().ocalls, 0U);
  EXPECT_GT(enclave.epc().stats().page_faults, 0U);
}

TEST(PartitionedTrainerTest, ZeroFrontLayersMatchesPlainTraining) {
  // front_layers == 0 must behave exactly like Network::TrainStep with
  // the fast profile: same weights afterwards.
  Rng rng_a(85), rng_b(85);
  nn::Network a = nn::BuildNetwork(nn::Table1Spec(32, 2), rng_a);
  nn::Network b = nn::BuildNetwork(nn::Table1Spec(32, 2), rng_b);

  enclave::Enclave enclave(TestEnclaveConfig());
  PartitionedTrainer trainer(a, enclave, 0);

  nn::Batch batch(4, nn::Shape{28, 28, 3});
  Rng fill(86);
  for (float& x : batch.data) x = fill.UniformFloat();
  const std::vector<int> labels = {0, 1, 0, 1};
  nn::SgdConfig sgd;

  Rng ra(87), rb(87);
  const float loss_a = trainer.TrainBatch(batch, labels, sgd, ra);
  const float loss_b = b.TrainStep(batch, labels, sgd, rb);
  EXPECT_FLOAT_EQ(loss_a, loss_b);
  EXPECT_EQ(a.SerializeWeightRange(0, a.NumLayers()),
            b.SerializeWeightRange(0, b.NumLayers()));
  EXPECT_EQ(enclave.transitions().ecalls, 0U);
}

TEST(PartitionedTrainerTest, FullEnclaveTrainingWorks) {
  Rng rng(88);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  enclave::Enclave enclave(TestEnclaveConfig());
  PartitionedTrainer trainer(net, enclave, net.NumLayers());

  nn::Batch batch(4, nn::Shape{28, 28, 3});
  Rng fill(89);
  for (float& x : batch.data) x = fill.UniformFloat();
  const std::vector<int> labels = {0, 1, 0, 1};
  nn::SgdConfig sgd;
  Rng train_rng(90);
  const float loss = trainer.TrainBatch(batch, labels, sgd, train_rng);
  EXPECT_GT(loss, 0.0F);
  EXPECT_GT(enclave.transitions().ecalls, 0U);
}

TEST(PartitionedTrainerTest, PredictMatchesNetworkPredict) {
  Rng rng(91);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  enclave::Enclave enclave(TestEnclaveConfig());
  PartitionedTrainer trainer(net, enclave, 2);

  nn::Batch batch(2, nn::Shape{28, 28, 3});
  Rng fill(92);
  for (float& x : batch.data) x = fill.UniformFloat();
  const auto split = trainer.Predict(batch);
  const auto plain = net.Predict(batch);
  ASSERT_EQ(split.size(), plain.size());
  for (std::size_t s = 0; s < split.size(); ++s) {
    for (std::size_t i = 0; i < split[s].size(); ++i) {
      EXPECT_NEAR(split[s][i], plain[s][i], 2e-3F);
    }
  }
}

TEST(PartitionedTrainerTest, SetFrontLayersMovesSplit) {
  Rng rng(93);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  enclave::Enclave enclave(TestEnclaveConfig());
  PartitionedTrainer trainer(net, enclave, 2);
  trainer.SetFrontLayers(4);
  EXPECT_EQ(trainer.front_layers(), 4);
  EXPECT_THROW(trainer.SetFrontLayers(99), Error);
}

class ServerPipelineTest : public ::testing::Test {
 protected:
  ServerPipelineTest()
      : server_(MakeServerConfig()),
        alice_("alice", IntensityDataset(40, 101), 201),
        bob_("bob", IntensityDataset(40, 102), 202) {}

  static ServerConfig MakeServerConfig() {
    ServerConfig config;
    config.seed = 100;
    return config;
  }

  TrainingServer server_;
  Participant alice_;
  Participant bob_;
};

TEST_F(ServerPipelineTest, FullPipeline) {
  // --- provisioning + upload ---
  EXPECT_EQ(alice_.ProvisionAndUpload(server_, server_.training_measurement()),
            40U);
  EXPECT_EQ(bob_.ProvisionAndUpload(server_, server_.training_measurement()),
            40U);
  EXPECT_TRUE(server_.IsProvisioned("alice"));
  EXPECT_EQ(server_.accepted_records(), 80U);

  // Forged upload from an unregistered source is discarded.
  data::DataPackager mallory("mallory", Bytes(32, 0x66), 999);
  nn::Image evil(nn::Shape{28, 28, 3});
  EXPECT_EQ(server_.UploadRecords({mallory.Pack(evil, 0)}), 0U);
  EXPECT_EQ(server_.rejected_records(), 1U);

  // --- training ---
  const data::LabeledDataset test = IntensityDataset(30, 103);
  PartitionedTrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.05F;
  options.augment = false;
  options.seed = 104;
  options.test_images = &test.images;
  options.test_labels = &test.labels;
  const TrainReport report =
      server_.Train(nn::Table1Spec(32, 2), options);
  ASSERT_EQ(report.epochs.size(), 3U);
  EXPECT_GE(report.epochs.back().top1, 0.9);
  EXPECT_EQ(report.records_trained, 80U);
  EXPECT_GT(report.transitions.ecalls, 0U);

  // --- fingerprinting ---
  linkage::LinkageDatabase db = server_.FingerprintAll();
  EXPECT_EQ(db.size(), 80U);

  // Every tuple's source is a real participant and its hash verifies
  // against the turned-in original.
  std::size_t alice_tuples = 0;
  for (std::uint64_t id = 0; id < db.size(); ++id) {
    const auto& tuple = db.tuple(id);
    EXPECT_TRUE(tuple.source == "alice" || tuple.source == "bob");
    if (tuple.source == "alice") ++alice_tuples;
  }
  EXPECT_EQ(alice_tuples, 40U);

  // --- query ---
  QueryService query(std::move(server_.model()), std::move(db));
  Rng rng(105);
  nn::Image probe(nn::Shape{28, 28, 3});
  for (float& p : probe.pixels) p = 0.8F + 0.1F * rng.Gaussian();
  const MispredictionReport mp = query.Investigate(probe, 9);
  EXPECT_EQ(mp.neighbors.size(), 9U);
  for (std::size_t i = 1; i < mp.neighbors.size(); ++i) {
    EXPECT_LE(mp.neighbors[i - 1].distance, mp.neighbors[i].distance);
  }
  for (const auto& n : mp.neighbors) EXPECT_EQ(n.label, mp.predicted_label);

  // Forensics: find a tuple owned by alice and verify her turned-in data.
  // (Tuple order == record upload order == alice's local order.)
  const auto [img0, label0] = alice_.TurnInInstance(0);
  bool verified = false;
  for (std::uint64_t id = 0; id < query.database().size(); ++id) {
    if (query.VerifyTurnedInData(id, img0, label0)) {
      verified = true;
      EXPECT_EQ(query.database().tuple(id).source, "alice");
      break;
    }
  }
  EXPECT_TRUE(verified);
}

TEST_F(ServerPipelineTest, ModelReleaseRoundTrip) {
  (void)alice_.ProvisionAndUpload(server_, server_.training_measurement());
  PartitionedTrainOptions options;
  options.epochs = 1;
  options.batch_size = 16;
  options.front_layers = 2;
  options.augment = false;
  options.seed = 106;
  (void)server_.Train(nn::Table1Spec(32, 2), options);

  const auto released = server_.ReleaseModelFor("alice");
  EXPECT_EQ(released.front_layers, 2);
  EXPECT_FALSE(released.frontnet_ciphertext.empty());

  // Alice reassembles with her key; predictions match the server model.
  nn::Network assembled = TrainingServer::AssembleReleasedModel(
      released, alice_.data_key());
  Rng rng(107);
  nn::Image probe(nn::Shape{28, 28, 3});
  for (float& p : probe.pixels) p = rng.UniformFloat();
  const auto server_pred = server_.model().PredictOne(probe);
  const auto alice_pred = assembled.PredictOne(probe);
  for (std::size_t i = 0; i < server_pred.size(); ++i) {
    EXPECT_FLOAT_EQ(server_pred[i], alice_pred[i]);
  }

  // Anyone without the key cannot recover the FrontNet.
  EXPECT_THROW((void)TrainingServer::AssembleReleasedModel(
                   released, Bytes(32, 0x00)),
               Error);
}

TEST_F(ServerPipelineTest, AttestationFailureBlocksProvisioning) {
  crypto::Sha256Digest wrong = server_.training_measurement();
  wrong[0] ^= 0xff;
  try {
    (void)alice_.ProvisionAndUpload(server_, wrong);
    FAIL() << "expected kAuthFailure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
  }
  EXPECT_FALSE(server_.IsProvisioned("alice"));
}

TEST_F(ServerPipelineTest, DynamicReassessmentMovesPartition) {
  (void)alice_.ProvisionAndUpload(server_, server_.training_measurement());
  PartitionedTrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.front_layers = 1;
  options.augment = false;
  options.seed = 108;
  options.reassess = [](const nn::Network&, int epoch) -> std::optional<int> {
    return epoch == 1 ? std::optional<int>(3) : std::nullopt;
  };
  const TrainReport report = server_.Train(nn::Table1Spec(32, 2), options);
  ASSERT_EQ(report.front_layers_per_epoch.size(), 3U);
  EXPECT_EQ(report.front_layers_per_epoch[0], 1);
  EXPECT_EQ(report.front_layers_per_epoch[1], 3);
  EXPECT_EQ(report.front_layers_per_epoch[2], 3);
}

TEST_F(ServerPipelineTest, TrainWithoutRecordsRejected) {
  PartitionedTrainOptions options;
  EXPECT_THROW((void)server_.Train(nn::Table1Spec(32, 2), options), Error);
}

TEST(AverageWeightsTest, AveragesElementwise) {
  Rng rng(111);
  nn::Network a = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  nn::Network b = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  const Bytes wa = a.SerializeWeightRange(0, a.NumLayers());
  const Bytes wb = b.SerializeWeightRange(0, b.NumLayers());

  std::vector<nn::Network*> models = {&a, &b};
  AverageWeights(models);
  const Bytes merged_a = a.SerializeWeightRange(0, a.NumLayers());
  EXPECT_EQ(merged_a, b.SerializeWeightRange(0, b.NumLayers()));

  // Spot check: first weight is the mean of the originals.
  ByteReader ra(wa), rb(wb), rm(merged_a);
  const auto va = ra.ReadF32Vector();
  const auto vb = rb.ReadF32Vector();
  const auto vm = rm.ReadF32Vector();
  EXPECT_NEAR(vm[0], (va[0] + vb[0]) / 2.0F, 1e-6F);
}

TEST(HubAggregatorTest, MergedModelBitIdenticalAcrossThreadCounts) {
  // Hubs train concurrently between merges on per-(hub, epoch) RNG
  // streams; the merged model must match the serial hub order bit for
  // bit at every thread count.
  const auto run = [](unsigned threads) {
    util::ScopedThreads guard(threads);
    data::LabeledDataset all = IntensityDataset(96, 131);
    auto shards = data::SplitAmong(all, 3);
    HubOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.merge_every = 1;
    options.front_layers = 2;
    options.sgd.learning_rate = 0.05F;
    options.seed = 133;
    HubAggregator hubs(nn::Table1Spec(32, 2), std::move(shards), options);
    (void)hubs.Train({}, {});
    return hubs.global_model().SerializeWeightRange(
        0, hubs.global_model().NumLayers());
  };

  const Bytes serial = run(1);
  for (const unsigned threads : {2U, 3U, 8U}) {
    EXPECT_EQ(run(threads), serial)
        << "merged hub model diverged at threads=" << threads;
  }
}

TEST(HubAggregatorTest, MergedModelLearns) {
  data::LabeledDataset all = IntensityDataset(120, 121);
  const data::LabeledDataset test = IntensityDataset(40, 122);
  auto shards = data::SplitAmong(all, 3);

  HubOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.merge_every = 1;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.05F;
  options.seed = 123;

  HubAggregator hubs(nn::Table1Spec(32, 2), std::move(shards), options);
  const HubReport report = hubs.Train(test.images, test.labels);
  ASSERT_EQ(report.epochs.size(), 3U);
  EXPECT_EQ(report.hubs, 3U);
  EXPECT_GE(report.merges, 3U);
  EXPECT_GE(report.epochs.back().top1, 0.9);
}


TEST(ServerEdgeTest, ReleaseBeforeTrainingRejected) {
  TrainingServer server;
  Participant alice("alice", IntensityDataset(8, 300), 301);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  EXPECT_THROW((void)server.ReleaseModelFor("alice"), Error);
  EXPECT_THROW((void)server.model(), Error);
  EXPECT_THROW((void)server.FingerprintAll(), Error);
}

TEST(ServerEdgeTest, ReleaseForUnknownParticipantRejected) {
  TrainingServer server;
  Participant alice("alice", IntensityDataset(16, 301), 302);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  PartitionedTrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.front_layers = 1;
  options.augment = false;
  (void)server.Train(nn::Table1Spec(32, 2), options);
  EXPECT_THROW((void)server.ReleaseModelFor("nobody"), Error);
}

TEST(ServerEdgeTest, ReleasePhaseErrorsAreTyped) {
  // Release-phase failure modes surface as typed errors, never as
  // crashes or UB: an unprovisioned participant (handshake done, no
  // key) is kInvalidArgument; reassembly with a wrong key is
  // kAuthFailure.
  TrainingServer server;
  Participant alice("alice", IntensityDataset(16, 310), 311);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());

  // "mallory" starts a (malformed) handshake but never provisions a
  // key: the server now knows the identity, yet release must reject it
  // exactly like a stranger.
  EXPECT_THROW(
      (void)server.HandleClientHello("mallory", BytesOf("not a real hello")),
      Error);
  EXPECT_FALSE(server.IsProvisioned("mallory"));

  PartitionedTrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.front_layers = 2;
  options.augment = false;
  (void)server.Train(nn::Table1Spec(32, 2), options);

  try {
    (void)server.ReleaseModelFor("mallory");
    FAIL() << "release for an unprovisioned participant must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }

  const auto released = server.ReleaseModelFor("alice");
  try {
    (void)TrainingServer::AssembleReleasedModel(released, Bytes(32, 0xab));
    FAIL() << "wrong-key reassembly must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kAuthFailure);
  }
  // A truncated tag must also fail cleanly (typed, no UB).
  TrainingServer::ReleasedModel mangled = released;
  mangled.frontnet_tag.pop_back();
  EXPECT_THROW(
      (void)TrainingServer::AssembleReleasedModel(mangled, alice.data_key()),
      Error);
}

TEST(ServerEdgeTest, KeyProvisionBeforeHandshakeRejected) {
  TrainingServer server;
  EXPECT_FALSE(server.HandleKeyProvision("ghost", BytesOf("junk")));
  EXPECT_FALSE(server.HandleClientFinished("ghost", BytesOf("junk")));
  EXPECT_FALSE(server.IsProvisioned("ghost"));
}

TEST(ServerEdgeTest, ZeroFrontLayersReleaseHasEmptyFrontNet) {
  TrainingServer server;
  Participant alice("alice", IntensityDataset(16, 303), 304);
  (void)alice.ProvisionAndUpload(server, server.training_measurement());
  PartitionedTrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.front_layers = 0;  // everything outside
  options.augment = false;
  (void)server.Train(nn::Table1Spec(32, 2), options);
  const auto released = server.ReleaseModelFor("alice");
  EXPECT_EQ(released.front_layers, 0);
  nn::Network assembled =
      TrainingServer::AssembleReleasedModel(released, alice.data_key());
  EXPECT_EQ(assembled.NumLayers(), 10);
}

TEST(ParticipantEdgeTest, TurnInOutOfRangeRejected) {
  Participant alice("alice", IntensityDataset(4, 305), 306);
  EXPECT_THROW((void)alice.TurnInInstance(99), Error);
  const auto [image, label] = alice.TurnInInstance(0);
  EXPECT_EQ(image.shape, (nn::Shape{28, 28, 3}));
  EXPECT_EQ(label, 0);
}

}  // namespace
}  // namespace caltrain::core
