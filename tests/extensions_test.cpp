// Tests for the paper-discussed extensions: the Darknet-style config
// parser, the DP-SGD drop-in (Sec. VII), and the fingerprint
// reconstruction attack used for the Sec. IV-C/VII security analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/inversion.hpp"
#include "attack/membership.hpp"
#include "linkage/fingerprint.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/config.hpp"
#include "nn/conv.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain {
namespace {

constexpr const char* kTable1Cfg = R"cfg(
# Table I, as a Darknet-style config
[net]
width=28
height=28
channels=3

[convolutional]
filters=128
size=3
stride=1
activation=leaky

[convolutional]
filters=128
size=3

[maxpool]
size=2
stride=2

[convolutional]
filters=64
size=3

[maxpool]
size=2

[convolutional]
filters=128
size=3

[convolutional]
filters=10
size=1
activation=linear

[avgpool]
[softmax]
[cost]
)cfg";

TEST(ConfigTest, ParsesTable1Equivalent) {
  const nn::NetworkSpec parsed = nn::ParseNetworkConfig(kTable1Cfg);
  const nn::NetworkSpec preset = nn::Table1Spec();
  ASSERT_EQ(parsed.layers.size(), preset.layers.size());
  EXPECT_EQ(parsed.input, preset.input);
  for (std::size_t i = 0; i < parsed.layers.size(); ++i) {
    EXPECT_EQ(parsed.layers[i].kind, preset.layers[i].kind) << "layer " << i;
    EXPECT_EQ(parsed.layers[i].filters, preset.layers[i].filters);
    EXPECT_EQ(parsed.layers[i].ksize, preset.layers[i].ksize);
  }
  // The parsed spec builds a working network with the right shapes.
  Rng rng(1);
  nn::Network net = nn::BuildNetwork(parsed, rng);
  EXPECT_EQ(net.layer(7).out_shape(), (nn::Shape{1, 1, 10}));
}

TEST(ConfigTest, RoundTripsThroughWriter) {
  const nn::NetworkSpec original = nn::Table2Spec();
  const std::string text = nn::WriteNetworkConfig(original);
  const nn::NetworkSpec back = nn::ParseNetworkConfig(text);
  ASSERT_EQ(back.layers.size(), original.layers.size());
  EXPECT_EQ(back.input, original.input);
  for (std::size_t i = 0; i < back.layers.size(); ++i) {
    EXPECT_EQ(back.layers[i].kind, original.layers[i].kind);
    EXPECT_EQ(back.layers[i].filters, original.layers[i].filters);
    EXPECT_EQ(back.layers[i].ksize, original.layers[i].ksize);
    EXPECT_EQ(back.layers[i].stride, original.layers[i].stride);
    EXPECT_FLOAT_EQ(back.layers[i].dropout_p, original.layers[i].dropout_p);
    EXPECT_EQ(back.layers[i].activation, original.layers[i].activation);
  }
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  const nn::NetworkSpec spec = nn::ParseNetworkConfig(
      "  [net]  ; trailing comment\n"
      " width = 4 \n"
      "height=4\n"
      "channels=1   # another comment\n"
      "\n"
      "[softmax]\n"
      "[cost]\n");
  EXPECT_EQ(spec.input, (nn::Shape{4, 4, 1}));
  EXPECT_EQ(spec.layers.size(), 2U);
}

TEST(ConfigTest, RejectsUnknownSection) {
  EXPECT_THROW((void)nn::ParseNetworkConfig("[net]\nwidth=4\nheight=4\n"
                                            "channels=1\n[quantum]\n"),
               Error);
}

TEST(ConfigTest, RejectsUnknownKey) {
  EXPECT_THROW((void)nn::ParseNetworkConfig(
                   "[net]\nwidth=4\nheight=4\nchannels=1\n"
                   "[convolutional]\nfilters=4\nmomentum=0.9\n"),
               Error);
}

TEST(ConfigTest, RejectsMissingNetSection) {
  EXPECT_THROW((void)nn::ParseNetworkConfig("[convolutional]\nfilters=4\n"),
               Error);
}

TEST(ConfigTest, RejectsBadNumbers) {
  EXPECT_THROW((void)nn::ParseNetworkConfig(
                   "[net]\nwidth=four\nheight=4\nchannels=1\n[softmax]\n"),
               Error);
}

TEST(ConfigTest, RejectsKeyBeforeSection) {
  EXPECT_THROW((void)nn::ParseNetworkConfig("width=4\n[net]\n"), Error);
}

TEST(DpSgdTest, ClippingBoundsTheUpdate) {
  // A conv layer with a huge gradient: without clipping the weight
  // moves a lot, with clipping the step is bounded by clip * lr / batch.
  const auto run = [](float clip) {
    nn::ConvLayer conv(nn::Shape{1, 1, 1}, 1, 1, 1, nn::Activation::kLinear);
    conv.weights()[0] = 0.0F;
    nn::Batch in(1, nn::Shape{1, 1, 1});
    in.data[0] = 1000.0F;  // produces a gradient of 1000 * delta
    nn::Batch out(1, conv.out_shape());
    nn::LayerScratch scratch;
    nn::LayerGrads grads;
    nn::LayerContext ctx;
    ctx.scratch = &scratch;
    ctx.grads = &grads;
    conv.Forward(in, out, ctx);
    nn::Batch delta_out(1, conv.out_shape());
    delta_out.data[0] = 10.0F;
    nn::Batch delta_in(1, conv.in_shape());
    conv.Backward(in, out, delta_out, delta_in, ctx);
    nn::SgdConfig config;
    config.learning_rate = 0.1F;
    config.momentum = 0.0F;
    config.weight_decay = 0.0F;
    config.dp_clip_norm = clip;
    conv.Update(config, 1, grads);
    return std::abs(conv.weights()[0]);
  };
  const float unclipped = run(0.0F);
  const float clipped = run(1.0F);
  EXPECT_NEAR(unclipped, 1000.0F, 10.0F);  // ~ lr * grad (10000 * 0.1)... see below
  EXPECT_LE(clipped, 0.11F);  // lr * clip_norm = 0.1
  EXPECT_GT(clipped, 0.0F);
}

TEST(DpSgdTest, NoiseRequiresRng) {
  nn::ConvLayer conv(nn::Shape{1, 1, 1}, 1, 1, 1, nn::Activation::kLinear);
  nn::SgdConfig config;
  config.dp_noise_stddev = 0.1F;
  nn::LayerGrads grads;
  EXPECT_THROW(conv.Update(config, 1, grads), Error);
}

TEST(DpSgdTest, NoisePerturbsWeightsDeterministically) {
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    nn::ConvLayer conv(nn::Shape{3, 3, 1}, 2, 3, 1,
                       nn::Activation::kLinear);
    nn::SgdConfig config;
    config.momentum = 0.0F;
    config.weight_decay = 0.0F;
    config.dp_noise_stddev = 0.05F;
    config.dp_rng = &rng;
    nn::LayerGrads grads;
    conv.Update(config, 1, grads);  // zero gradients + noise -> pure noise
    return conv.weights();
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  EXPECT_EQ(a, b);  // deterministic per seed
  EXPECT_NE(a, c);
  double nonzero = 0;
  for (float w : a) nonzero += std::abs(w);
  EXPECT_GT(nonzero, 0.0);
}

TEST(DpSgdTest, TrainingStillLearnsUnderMildDp) {
  // The paper's claim is that DP-SGD slots in without breaking training.
  Rng rng(61);
  std::vector<nn::Image> train_images, test_images;
  std::vector<int> train_labels, test_labels;
  const auto make = [&](int label) {
    nn::Image img(nn::Shape{28, 28, 3});
    const float base = label == 0 ? 0.2F : 0.8F;
    for (float& p : img.pixels) p = base + 0.1F * rng.Gaussian();
    return img;
  };
  for (int i = 0; i < 120; ++i) {
    train_images.push_back(make(i % 2));
    train_labels.push_back(i % 2);
  }
  for (int i = 0; i < 40; ++i) {
    test_images.push_back(make(i % 2));
    test_labels.push_back(i % 2);
  }
  Rng dp_rng(62);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  nn::TrainOptions options;
  options.epochs = 4;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.05F;
  options.sgd.dp_clip_norm = 5.0F;
  options.sgd.dp_noise_stddev = 0.005F;
  options.sgd.dp_rng = &dp_rng;
  options.augment = false;
  options.seed = 63;
  const auto history = nn::TrainNetwork(net, train_images, train_labels,
                                        test_images, test_labels, options);
  EXPECT_GE(history.back().top1, 0.85);
}

class InversionTest : public ::testing::Test {
 protected:
  // A small trained model over intensity-separable classes.
  static void SetUpTestSuite() {
    // Ten intensity-graded classes give a 10-dim fingerprint space with
    // enough structure for the reconstruction distances to be
    // meaningful (a 2-class model has an almost degenerate 2-dim
    // fingerprint sphere).
    Rng rng(71);
    std::vector<nn::Image> images;
    std::vector<int> labels;
    for (int i = 0; i < 400; ++i) {
      nn::Image img(nn::Shape{28, 28, 3});
      const int label = i % 10;
      const float base = 0.05F + 0.09F * static_cast<float>(label);
      for (float& p : img.pixels) p = base + 0.02F * rng.Gaussian();
      images.push_back(std::move(img));
      labels.push_back(label);
    }
    model_ = new nn::Network(nn::BuildNetwork(nn::Table1Spec(32), rng));
    nn::TrainOptions options;
    options.epochs = 4;
    options.batch_size = 32;
    options.sgd.learning_rate = 0.03F;
    options.augment = false;
    // Calibrated against the deterministic data-parallel trainer.
    options.seed = 73;
    (void)nn::TrainNetwork(*model_, images, labels, {}, {}, options);
    target_image_ = new nn::Image(images[7]);  // a class-7 (bright) record
    target_label_ = labels[7];
  }
  static void TearDownTestSuite() {
    delete model_;
    delete target_image_;
  }
  static nn::Network* model_;
  static nn::Image* target_image_;
  static int target_label_;
};

nn::Network* InversionTest::model_ = nullptr;
nn::Image* InversionTest::target_image_ = nullptr;
int InversionTest::target_label_ = 0;

TEST_F(InversionTest, FullModelAccessMakesProgress) {
  const linkage::Fingerprint target =
      linkage::ExtractFingerprint(*model_, *target_image_);
  Rng rng(73);
  attack::InversionOptions options;
  options.iterations = 100;
  const attack::InversionResult result =
      attack::ReconstructFromFingerprint(*model_, target, options, rng);
  EXPECT_LT(result.final_distance, result.initial_distance);
  EXPECT_GT(result.Progress(), 0.5)
      << "white-box attacker should approach the fingerprint";
  // The reconstruction should land in the same class region: class 7 is
  // the 0.68-intensity band.
  const double mean = Mean(result.reconstruction.pixels);
  EXPECT_GT(mean, 0.5) << "reconstruction should recover class intensity";
}

TEST_F(InversionTest, GuessedFrontNetDefeatsTheAttack) {
  const linkage::Fingerprint target =
      linkage::ExtractFingerprint(*model_, *target_image_);
  // Adversary holds the plaintext BackNet but must guess the FrontNet
  // (the released FrontNet is AES-GCM encrypted): substitute random
  // weights for the first two layers.
  nn::Network guessed = nn::Network::DeserializeModel(
      model_->SerializeModel());
  Rng reinit(74);
  guessed.layer(0).InitWeights(reinit);
  guessed.layer(1).InitWeights(reinit);

  Rng rng(75);
  attack::InversionOptions options;
  options.iterations = 100;
  const attack::InversionResult with_full =
      attack::ReconstructFromFingerprint(*model_, target, options, rng);
  Rng rng2(75);
  const attack::InversionResult with_guess =
      attack::ReconstructFromFingerprint(guessed, target, options, rng2);

  // Judge both reconstructions with the TRUE model: how close does each
  // get to the real fingerprint?
  const auto true_distance = [&](const nn::Image& img) {
    return linkage::FingerprintDistance(
        linkage::ExtractFingerprint(*model_, img), target);
  };
  const double full_dist = true_distance(with_full.reconstruction);
  const double guess_dist = true_distance(with_guess.reconstruction);
  EXPECT_LT(full_dist, guess_dist)
      << "withholding the FrontNet must degrade reconstruction";
  EXPECT_GT(guess_dist, 2.0 * full_dist)
      << "guessed-FrontNet reconstruction should be far worse than the "
         "white-box one";
}


TEST(MembershipTest, OverfitModelLeaksMembership) {
  // An over-trained model on a tiny corpus assigns visibly higher
  // true-label confidence to its training records; the threshold attack
  // must detect that (AUC well above chance).
  Rng rng(81);
  data::SyntheticCifar gen;
  const data::LabeledDataset members = gen.Generate(30, rng);
  const data::LabeledDataset nonmembers = gen.Generate(60, rng);

  nn::Network net = nn::BuildNetwork(nn::Table1Spec(8), rng);
  nn::TrainOptions options;
  options.epochs = 40;  // deliberate overfitting on a tiny corpus
  options.batch_size = 16;
  options.sgd.learning_rate = 0.01F;
  options.sgd.weight_decay = 0.0F;
  options.augment = false;
  options.seed = 82;
  (void)nn::TrainNetwork(net, members.images, members.labels, {}, {},
                         options);

  const attack::MembershipResult result = attack::ConfidenceThresholdAttack(
      net, members.images, members.labels, nonmembers.images,
      nonmembers.labels);
  EXPECT_GT(result.auc, 0.6) << "overfit model should leak membership";
  EXPECT_GT(result.mean_member_confidence,
            result.mean_nonmember_confidence);
  EXPECT_GT(result.advantage, 0.1);
}

TEST(MembershipTest, UntrainedModelIsNearChance) {
  Rng rng(83);
  data::SyntheticCifar gen;
  const data::LabeledDataset members = gen.Generate(40, rng);
  const data::LabeledDataset nonmembers = gen.Generate(40, rng);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(16), rng);  // untrained
  const attack::MembershipResult result = attack::ConfidenceThresholdAttack(
      net, members.images, members.labels, nonmembers.images,
      nonmembers.labels);
  EXPECT_NEAR(result.auc, 0.5, 0.15);
}

TEST(MembershipTest, RequiresBothPopulations) {
  Rng rng(84);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32, 2), rng);
  EXPECT_THROW((void)attack::ConfidenceThresholdAttack(net, {}, {}, {}, {}),
               Error);
}

}  // namespace
}  // namespace caltrain
