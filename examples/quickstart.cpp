// Quickstart: the CalTrain pipeline end to end in ~80 lines.
//
//   1. Two participants attest the training enclave and provision keys.
//   2. They upload AES-GCM-encrypted training data.
//   3. The server trains a joint model with the FrontNet enclaved.
//   4. The fingerprinting enclave builds the linkage database.
//   5. A model user investigates a prediction and sees which training
//      instances (and whose) are closest to it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  // --threads N selects the worker count (wins over CALTRAIN_THREADS).
  (void)caltrain::util::ApplyThreadsFlag(argc, argv);
  SetLogLevel(LogLevel::kInfo);
  Rng rng(2026);
  data::SyntheticCifar gen;

  // --- participants with private local data --------------------------
  core::Participant alice("alice", gen.Generate(300, rng), /*seed=*/1);
  core::Participant bob("bob", gen.Generate(300, rng), /*seed=*/2);

  // --- 1+2: attest, provision keys, upload encrypted data ------------
  core::TrainingServer server;
  // Each participant checks the enclave measurement they reviewed.
  const crypto::Sha256Digest measurement = server.training_measurement();
  std::printf("enclave measurement: %s...\n",
              ToHex(BytesView(measurement.data(), 8)).c_str());
  alice.ProvisionAndUpload(server, measurement);
  bob.ProvisionAndUpload(server, measurement);
  std::printf("server accepted %zu encrypted records\n",
              server.accepted_records());

  // --- 3: partitioned training ---------------------------------------
  const data::LabeledDataset test = gen.Generate(100, rng);
  core::PartitionedTrainOptions options;
  options.epochs = 8;
  options.front_layers = 2;  // first two layers inside the enclave
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.test_images = &test.images;
  options.test_labels = &test.labels;
  const core::TrainReport report =
      server.Train(nn::Table1Spec(/*scale=*/8), options);
  std::printf("trained %d epochs; final top-1 %.1f%%; %llu enclave calls\n",
              options.epochs, 100.0 * report.epochs.back().top1,
              static_cast<unsigned long long>(report.transitions.ecalls));

  // --- 4: fingerprinting stage ----------------------------------------
  linkage::LinkageDatabase db = server.FingerprintAll();
  std::printf("linkage database holds %zu Omega tuples [F, Y, S, H]\n",
              db.size());

  // --- 5: query a prediction ------------------------------------------
  core::QueryService query(std::move(server.model()), std::move(db));
  const nn::Image probe = gen.Sample(3, rng);
  const core::MispredictionReport investigation =
      query.Investigate(probe, /*k=*/5);
  std::printf("\nprobe predicted as class %d; closest training data:\n",
              investigation.predicted_label);
  for (std::size_t r = 0; r < investigation.neighbors.size(); ++r) {
    const auto& n = investigation.neighbors[r];
    std::printf("  #%zu  L2 %.4f  contributed by %s\n", r + 1, n.distance,
                n.source.c_str());
  }
  std::printf("\ndone — see examples/collaborative_training.cpp and\n"
              "examples/poisoning_forensics.cpp for the full workflows.\n");
  return 0;
}
