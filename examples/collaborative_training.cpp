// Collaborative training with dynamic partition re-assessment and model
// release — the paper's Fig. 1 scenario with participants A-D.
//
// Demonstrates:
//   * four distrusting participants pooling encrypted data,
//   * per-epoch information-exposure re-assessment by a participant on
//     the semi-trained model (paper Sec. IV-B), moving the FrontNet
//     boundary by consensus,
//   * model release with the FrontNet encrypted per participant, and
//   * a participant reassembling and using the released model locally.
//
// Build & run:  ./build/examples/collaborative_training
#include <cstdio>
#include <optional>
#include <vector>

#include "core/participant.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/mathx.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  // --threads N selects the worker count (wins over CALTRAIN_THREADS).
  (void)caltrain::util::ApplyThreadsFlag(argc, argv);
  SetLogLevel(LogLevel::kInfo);
  Rng rng(7);
  data::SyntheticCifar gen;

  // --- participants A-D ------------------------------------------------
  std::vector<core::Participant> participants;
  const char* names[] = {"participant-A", "participant-B", "participant-C",
                         "participant-D"};
  for (int p = 0; p < 4; ++p) {
    participants.emplace_back(names[p], gen.Generate(350, rng),
                              /*seed=*/100 + p);
  }

  core::TrainingServer server;
  for (auto& participant : participants) {
    participant.ProvisionAndUpload(server, server.training_measurement());
  }
  std::printf("%zu participants provisioned, %zu records accepted\n",
              participants.size(), server.accepted_records());

  // --- participant-side IRValNet oracle ---------------------------------
  // Participant A trains a private validator on its own data to assess
  // information exposure of semi-trained models.
  std::printf("participant-A trains a private IRValNet oracle...\n");
  nn::Network validator = nn::BuildNetwork(nn::Table1Spec(8), rng);
  {
    const auto& local = participants[0].local_data();
    nn::TrainOptions options;
    options.epochs = 10;
    options.sgd.learning_rate = 0.01F;
    options.augment = false;
    options.seed = 11;
    (void)nn::TrainNetwork(validator, local.images, local.labels, {}, {},
                           options);
  }

  // --- training with dynamic re-assessment ------------------------------
  const data::LabeledDataset test = gen.Generate(150, rng);
  core::PartitionedTrainOptions options;
  options.epochs = 6;
  options.front_layers = 1;  // deliberately too shallow to start
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 12;
  options.test_images = &test.images;
  options.test_labels = &test.labels;
  options.reassess = [&](const nn::Network& semi,
                         int epoch) -> std::optional<int> {
    // Participant A probes the semi-trained model with private data and
    // proposes a boundary; the consensus here is a single assessor.
    auto& mutable_semi = const_cast<nn::Network&>(semi);
    const int recommended = participants[0].AssessSemiTrainedModel(
        mutable_semi, validator, /*probe_count=*/3);
    // Consensus may relax the strict recommendation for efficiency
    // (paper Sec. IV-B: "end users can also relax the constraints
    // based on their specific requirements") — cap the enclave share.
    const int agreed = std::min(recommended, 6);
    std::printf("  epoch %d: participant-A recommends FrontNet depth %d"
                " -> consensus %d\n", epoch, recommended, agreed);
    return agreed;
  };

  const core::TrainReport report =
      server.Train(nn::Table2Spec(/*scale=*/16), options);
  std::printf("\nper-epoch FrontNet depth:");
  for (int depth : report.front_layers_per_epoch) std::printf(" %d", depth);
  std::printf("\nfinal top-1 %.1f%% | EPC faults %llu | IR out %.1f MB\n",
              100.0 * report.epochs.back().top1,
              static_cast<unsigned long long>(report.epc.page_faults),
              static_cast<double>(report.partition.ir_bytes_out) / 1e6);

  // --- model release -----------------------------------------------------
  const auto released = server.ReleaseModelFor("participant-B");
  std::printf("\nreleased model for participant-B: BackNet %zu bytes "
              "plaintext, FrontNet %zu bytes AES-GCM\n",
              released.backnet_weights.size(),
              released.frontnet_ciphertext.size());

  nn::Network local_model = core::TrainingServer::AssembleReleasedModel(
      released, participants[1].data_key());
  const nn::Image probe = gen.Sample(5, rng);
  const auto probs = local_model.PredictOne(probe);
  std::printf("participant-B decrypted its FrontNet and classified a local\n"
              "sample as class %zu (p=%.2f)\n", ArgMax(probs),
              probs[ArgMax(probs)]);
  return 0;
}
