// Scaling out with hierarchical learning hubs (paper Sec. IV-B
// "Performance"): three enclave-backed hubs train sub-models on
// disjoint participant subgroups; a root aggregator merges weights
// every epoch, Federated-Learning style.
//
// Build & run:  ./build/examples/learning_hubs
#include <cstdio>

#include "core/hubs.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  // --threads N selects the worker count (wins over CALTRAIN_THREADS).
  (void)caltrain::util::ApplyThreadsFlag(argc, argv);
  SetLogLevel(LogLevel::kInfo);
  Rng rng(31);
  data::SyntheticCifar gen;
  const data::LabeledDataset all = gen.Generate(1200, rng);
  const data::LabeledDataset test = gen.Generate(150, rng);

  core::HubOptions options;
  options.epochs = 12;
  options.merge_every = 1;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.seed = 32;

  std::printf("3 learning hubs, %zu records each, merging every epoch\n",
              all.size() / 3);
  core::HubAggregator hubs(nn::Table1Spec(/*scale=*/8),
                           data::SplitAmong(all, 3), options);
  const core::HubReport report = hubs.Train(test.images, test.labels);

  std::printf("\n%-6s %-10s %-10s\n", "epoch", "top1", "top2");
  for (const auto& e : report.epochs) {
    std::printf("%-6d %-10.1f %-10.1f\n", e.epoch, 100.0 * e.top1,
                100.0 * e.top2);
  }
  std::printf("\n%zu merges across %zu hubs; final merged top-1 %.1f%%\n",
              report.merges, report.hubs,
              100.0 * report.epochs.back().top1);
  return 0;
}
