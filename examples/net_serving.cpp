// Networked serving walkthrough: the versioned wire protocol + epoll
// TCP front end over the whole CalTrain pipeline (ISSUE 10).
//
// A net::Server fronts the serving Service on a loopback port.  Three
// participants connect with net::Client, learn the enclave's
// attestation key and measurement from the HelloAck, run the attested
// securechannel handshake THROUGH the wire (the server just tunnels
// opaque blobs), and stream their encrypted records over TCP upload
// sessions.  Training and fingerprinting stay operator-side; release
// and misprediction investigations ride the connection again.
//
//   ./example_net_serving [--threads N]
#include <cstdio>
#include <thread>
#include <vector>

#include "core/participant.hpp"
#include "data/synthetic_cifar.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/presets.hpp"
#include "serve/service.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const unsigned threads = util::ApplyThreadsFlag(argc, argv);
  std::printf("== CalTrain networked serving (threads=%u) ==\n", threads);

  Rng rng(7);
  data::SyntheticCifar gen;
  core::TrainingServer server;

  std::vector<core::Participant> participants;
  participants.reserve(3);
  for (int p = 0; p < 3; ++p) {
    participants.emplace_back("participant-" + std::string(1, char('A' + p)),
                              gen.Generate(80, rng), 100 + p);
  }

  serve::ServiceConfig config;
  config.ingest_batch = 32;
  config.queue_capacity = 16;
  serve::Service service(server, config);

  // Bind an ephemeral loopback port and start the event loop.
  net::Server front(service);
  front.Start();
  std::printf("serving on 127.0.0.1:%u (wire protocol v%u)\n",
              front.port(), net::kProtocolVersionMax);

  // Every participant provisions and uploads over its own TCP
  // connection, concurrently.  The securechannel handshake tunnels
  // through provision frames, so no out-of-band channel is needed —
  // the attestation key and expected measurement come from HelloAck.
  std::vector<std::thread> uploaders;
  for (core::Participant& participant : participants) {
    uploaders.emplace_back([&front, &participant] {
      net::ClientOptions options;
      options.port = front.port();
      net::Client client(options);

      const net::Client::HelloInfo& hello = client.Connect();
      participant.ProvisionVia(client, hello.attestation_public_key,
                               hello.measurement);

      const serve::Result<serve::SessionId> session =
          client.OpenSession(participant.id());
      if (!session.ok()) {
        std::printf("  [%s] session refused: %s\n", participant.id().c_str(),
                    session.error().message.c_str());
        return;
      }
      const auto receipt =
          client.SubmitUpload(session.value(), participant.PackRecords());
      const auto stats = client.CloseSession(session.value());
      if (receipt.ok() && stats.ok()) {
        std::printf("  [%s] uploaded %zu records over TCP (%zu accepted)\n",
                    participant.id().c_str(), stats.value().submitted,
                    stats.value().accepted);
      }
    });
  }
  for (std::thread& t : uploaders) t.join();

  net::ClientOptions operator_options;
  operator_options.port = front.port();
  net::Client operator_client(operator_options);

  auto status = operator_client.Status();
  if (status.ok()) {
    std::printf("remote status: phase=%u accepted=%llu rejected=%llu\n",
                status.value().phase,
                static_cast<unsigned long long>(
                    status.value().accepted_records),
                static_cast<unsigned long long>(
                    status.value().rejected_records));
  }

  // Train + fingerprint are operator-side control-plane requests —
  // deliberately not in the wire schema.
  core::PartitionedTrainOptions options;
  options.epochs = 2;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.02F;
  options.augment = false;
  auto train = service.SubmitTrain(nn::Table1Spec(16), options);
  auto fingerprint = service.SubmitFingerprint();
  const auto report = train.get();
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.error().message.c_str());
    return 1;
  }
  std::printf("trained %zu records, final loss %.3f\n",
              report.value().records_trained,
              report.value().epochs.back().mean_loss);
  const auto db_size = fingerprint.get();
  std::printf("linkage database: %zu tuples\n",
              db_size.ok() ? db_size.value() : 0);

  // Query plane over the wire: misprediction investigations, single
  // and batched.
  for (int q = 0; q < 3; ++q) {
    const auto result = operator_client.Investigate(gen.Sample(q, rng), 5);
    if (!result.ok()) continue;
    std::printf("  probe -> class %d, closest source %s\n",
                result.value().predicted_label,
                result.value().neighbors.empty()
                    ? "(none)"
                    : result.value().neighbors[0].source.c_str());
  }

  // Release over the wire: participant A downloads the model sealed
  // under its own key and reassembles it locally.
  const auto released = operator_client.Release(participants[0].id());
  if (released.ok()) {
    const serve::Result<nn::Network> assembled = serve::Service::
        AssembleReleased(released.value(), participants[0].data_key());
    if (assembled.ok()) {
      std::printf("released model reassembled: %d layers\n",
                  assembled.value().NumLayers());
    }
  }

  front.Stop();
  std::printf("server drained and stopped (%llu connections served, %llu "
              "hostile frames rejected)\n",
              static_cast<unsigned long long>(front.connections_accepted()),
              static_cast<unsigned long long>(front.frames_rejected()));
  return 0;
}
