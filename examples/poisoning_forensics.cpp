// Post-hoc forensics for a poisoned model — the paper's Experiment IV
// workflow as a downstream user would run it.
//
//   1. A face model is collaboratively trained; one participant
//      ("mallory") slipped trigger-stamped, relabeled faces in.
//   2. A model user notices a misprediction at runtime (a colleague's
//      face classifies as someone else).
//   3. The user queries the linkage database with the misprediction's
//      fingerprint, receives the closest training instances and their
//      contributors, and demands the originals.
//   4. Turned-in data is verified against the recorded hash digest H,
//      exposing the poisoned records and their source.
//
// Build & run:  ./build/examples/poisoning_forensics
#include <cstdio>

#include "attack/trojan.hpp"
#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/synthetic_faces.hpp"
#include "nn/presets.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  // --threads N selects the worker count (wins over CALTRAIN_THREADS).
  (void)caltrain::util::ApplyThreadsFlag(argc, argv);
  SetLogLevel(LogLevel::kInfo);
  data::SyntheticFacesOptions face_options;
  face_options.identities = 8;
  data::SyntheticFaces faces(face_options);
  Rng rng(99);
  const int target = 0;

  // --- honest corpus + the attack ---------------------------------------
  core::Participant honest("honest-lab", faces.Generate(320, rng), 1);

  data::LabeledDataset donors;
  for (int id = 1; id < face_options.identities - 1; ++id) {
    donors.Merge(faces.GenerateForIdentity(id, 10, rng));
  }
  core::Participant mallory(
      "mallory", attack::MakePoisonedSet(donors, target, "mallory"), 2);

  // --- collaborative training (clean, then mallory joins) ---------------
  core::TrainingServer server;
  honest.ProvisionAndUpload(server, server.training_measurement());
  core::PartitionedTrainOptions options;
  options.epochs = 8;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = 3;
  const auto spec = nn::FaceNetSpec(faces.shape(), face_options.identities,
                                    /*embedding_dim=*/64, /*scale=*/8);
  (void)server.Train(spec, options);

  mallory.ProvisionAndUpload(server, server.training_measurement());
  core::PartitionedTrainOptions retrain = options;
  retrain.resume = true;
  retrain.epochs = 4;
  retrain.sgd.learning_rate = 0.005F;
  (void)server.Train(spec, retrain);
  std::printf("model trained over %zu records (honest + mallory)\n",
              server.accepted_records());

  // Fingerprint at the wide embedding FC (see DESIGN.md).
  int embedding_fc = -1;
  for (int i = 0; i < server.model().NumLayers(); ++i) {
    if (server.model().layer(i).kind() == nn::LayerKind::kConnected) {
      embedding_fc = i;
      break;
    }
  }
  linkage::LinkageDatabase db = server.FingerprintAll(embedding_fc);
  core::QueryService query(std::move(server.model()), std::move(db),
                           embedding_fc);

  // --- 2: the runtime misprediction --------------------------------------
  const nn::Image victim =
      attack::ApplyTrigger(faces.Sample(/*identity=*/3, rng));
  const core::MispredictionReport report = query.Investigate(victim, 9);
  std::printf("\nruntime: a face of identity 3 was classified as identity "
              "%d!\n", report.predicted_label);

  // --- 3: provenance query ------------------------------------------------
  std::printf("closest training fingerprints in class %d:\n",
              report.predicted_label);
  std::size_t mallory_hits = 0;
  for (std::size_t r = 0; r < report.neighbors.size(); ++r) {
    const auto& n = report.neighbors[r];
    std::printf("  #%zu  L2 %.4f  source %s\n", r + 1, n.distance,
                n.source.c_str());
    if (n.source == "mallory") ++mallory_hits;
  }
  std::printf("=> %zu of %zu nearest instances came from 'mallory'\n",
              mallory_hits, report.neighbors.size());

  // --- 4: demand + verify the originals ------------------------------------
  // Mallory must turn in the suspicious instances; hashes prove they are
  // exactly the records used in training (no substitution possible).
  const auto& suspect = report.neighbors.front();
  bool verified = false;
  for (std::size_t i = 0; i < mallory.local_data().size(); ++i) {
    const auto [image, label] = mallory.TurnInInstance(i);
    if (query.VerifyTurnedInData(suspect.id, image, label)) {
      verified = true;
      std::printf("\nmallory's turned-in instance #%zu matches linkage hash "
                  "H of tuple %llu\n", i,
                  static_cast<unsigned long long>(suspect.id));
      std::printf("the instance carries the trojan trigger: %s\n",
                  attack::HasTrigger(image) ? "YES — poisoning proven"
                                            : "no");
      break;
    }
  }
  if (!verified) std::printf("no turned-in instance matched (unexpected)\n");
  return verified ? 0 : 1;
}
