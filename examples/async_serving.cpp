// Asynchronous serving walkthrough: the session-based front end over
// the whole CalTrain pipeline (ISSUE 5).
//
// Three participants provision keys, then stream their encrypted
// records through concurrent upload sessions into the bounded ingest
// queue; background workers authenticate the records in batches of 32
// per enclave transition.  Training, fingerprinting, model release and
// misprediction queries all go through std::future-returning requests
// with typed errors.
//
//   ./example_async_serving [--threads N]
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/participant.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "serve/service.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const unsigned threads = util::ApplyThreadsFlag(argc, argv);
  std::printf("== CalTrain async serving (threads=%u) ==\n", threads);

  Rng rng(7);
  data::SyntheticCifar gen;
  core::TrainingServer server;

  std::vector<core::Participant> participants;
  participants.reserve(3);
  for (int p = 0; p < 3; ++p) {
    participants.emplace_back("participant-" + std::string(1, char('A' + p)),
                              gen.Generate(80, rng), 100 + p);
    participants.back().Provision(server, server.training_measurement());
  }

  serve::ServiceConfig config;
  config.ingest_batch = 32;
  config.queue_capacity = 16;
  serve::Service service(server, config);

  // Concurrent upload sessions: each participant streams its corpus
  // from its own thread; the bounded queue applies backpressure and
  // the ingest workers amortize the enclave transitions.
  std::vector<std::thread> uploaders;
  for (core::Participant& participant : participants) {
    uploaders.emplace_back([&service, &participant] {
      const serve::Result<serve::SessionId> session =
          service.OpenUploadSession(participant.id());
      if (!session.ok()) {
        std::printf("  [%s] session refused: %s\n", participant.id().c_str(),
                    session.error().message.c_str());
        return;
      }
      auto receipt =
          service.SubmitUpload(session.value(), participant.PackRecords())
              .get();
      const serve::Result<serve::SessionStats> stats =
          service.CloseUploadSession(session.value());
      if (receipt.ok() && stats.ok()) {
        std::printf("  [%s] uploaded %zu records (%zu accepted)\n",
                    participant.id().c_str(), stats.value().submitted,
                    stats.value().accepted);
      }
    });
  }
  for (std::thread& t : uploaders) t.join();

  const enclave::TransitionStats ingest =
      server.training_enclave().transitions();
  std::printf("ingest: %zu records, %llu enclave transitions (%.3f per "
              "record)\n",
              server.accepted_records(),
              static_cast<unsigned long long>(ingest.ecalls),
              static_cast<double>(ingest.ecalls) /
                  static_cast<double>(server.accepted_records()));

  // A session for an unknown identity fails with a *typed* error.
  const serve::Result<serve::SessionId> stranger =
      service.OpenUploadSession("stranger");
  std::printf("stranger session: %s\n",
              stranger.ok() ? "accepted (?!)"
                            : ToString(stranger.error().kind));

  // Control plane: train + fingerprint are queued back to back; the
  // strand runs them in order.
  core::PartitionedTrainOptions options;
  options.epochs = 2;
  options.batch_size = 16;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.02F;
  options.augment = false;
  auto train = service.SubmitTrain(nn::Table1Spec(16), options);
  auto fingerprint = service.SubmitFingerprint();
  const auto report = train.get();
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.error().message.c_str());
    return 1;
  }
  std::printf("trained %zu records, final loss %.3f\n",
              report.value().records_trained,
              report.value().epochs.back().mean_loss);
  const auto db_size = fingerprint.get();
  std::printf("linkage database: %zu tuples\n",
              db_size.ok() ? db_size.value() : 0);

  // Query plane: concurrent misprediction investigations.
  std::vector<std::future<serve::Result<core::MispredictionReport>>> queries;
  for (int q = 0; q < 4; ++q) {
    queries.push_back(service.SubmitInvestigate(gen.Sample(q % 10, rng), 5));
  }
  for (auto& f : queries) {
    const auto result = f.get();
    if (!result.ok()) continue;
    std::printf("  probe -> class %d, closest source %s\n",
                result.value().predicted_label,
                result.value().neighbors.empty()
                    ? "(none)"
                    : result.value().neighbors[0].source.c_str());
  }

  // Release: participant A gets the model sealed under its own key.
  const auto released = service.SubmitRelease(participants[0].id()).get();
  if (released.ok()) {
    const serve::Result<nn::Network> assembled = serve::Service::
        AssembleReleased(released.value(), participants[0].data_key());
    std::printf("release round-trip for %s: %s\n",
                participants[0].id().c_str(),
                assembled.ok() ? "ok" : assembled.error().message.c_str());
  }
  return 0;
}
