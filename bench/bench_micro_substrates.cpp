// Substrate micro-benchmarks (google-benchmark): crypto throughput,
// enclave transition and EPC paging costs, secure-channel overhead,
// GEMM fast vs strict-FP (the Fig. 6 mechanism in isolation), the
// tiled-vs-naive conv GEMM shapes, k-NN query latency, and fingerprint
// extraction.
//
// `--json PATH` additionally writes every result as a machine-readable
// {op, shape, ns_per_op, gflops, threads} row (the BENCH_micro.json
// perf-trajectory format; see bench_common.hpp).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/partitioned.hpp"
#include "crypto/aes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/group.hpp"
#include "crypto/isa.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/vptree.hpp"
#include "nn/kernels.hpp"
#include "nn/network.hpp"
#include "nn/presets.hpp"
#include "securechannel/handshake.hpp"
#include "securechannel/record.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace caltrain {
namespace {

// The crypto benches run twice — forced-scalar and auto (best hardware
// tier) — so BENCH_micro.json carries the before/after pair and the CI
// gate (tools/check_bench_scaling.py) can assert the accelerated
// kernels actually engage.  The `bytes` counter feeds the JSON shape
// column; SetBytesProcessed feeds bytes_per_s.
void BM_Sha256(benchmark::State& state, const char* tier) {
  const crypto::ScopedIsaOverride isa(tier);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256Hash(data));
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_Sha256, scalar, "scalar")->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK_CAPTURE(BM_Sha256, auto, "auto")->Arg(64)->Arg(4096)->Arg(65536);

// Multi-buffer interface over 32 equal-length lanes (the ingest batch
// shape: one content hash per record).
void BM_Sha256Batch(benchmark::State& state, const char* tier) {
  const crypto::ScopedIsaOverride isa(tier);
  constexpr std::size_t kLanes = 32;
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  const Bytes data(kLanes * len, 0xab);
  std::vector<BytesView> inputs;
  for (std::size_t i = 0; i < kLanes; ++i) {
    inputs.emplace_back(data.data() + i * len, len);
  }
  std::vector<crypto::Sha256Digest> digests(kLanes);
  for (auto _ : state) {
    crypto::Sha256Batch(
        std::span<const BytesView>(inputs.data(), inputs.size()),
        digests.data());
    benchmark::DoNotOptimize(digests.data());
  }
  state.counters["bytes"] = static_cast<double>(len);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * len));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes));
}
BENCHMARK_CAPTURE(BM_Sha256Batch, scalar, "scalar")->Arg(4096);
BENCHMARK_CAPTURE(BM_Sha256Batch, auto, "auto")->Arg(4096);

void BM_AesCtr(benchmark::State& state, const char* tier) {
  const crypto::ScopedIsaOverride isa(tier);
  const crypto::Aes aes(Bytes(16, 0x42));
  Bytes buffer(static_cast<std::size_t>(state.range(0)), 0x17);
  crypto::AesBlock counter{};
  for (auto _ : state) {
    crypto::AesCtrXor(aes, counter, buffer, buffer.data());
    benchmark::DoNotOptimize(buffer.data());
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_AesCtr, scalar, "scalar")->Arg(4096)->Arg(65536);
BENCHMARK_CAPTURE(BM_AesCtr, auto, "auto")->Arg(4096)->Arg(65536);

void BM_AesGcmSeal(benchmark::State& state, const char* tier) {
  const crypto::ScopedIsaOverride isa(tier);
  const crypto::AesGcm gcm(Bytes(32, 0x42));
  const Bytes plaintext(static_cast<std::size_t>(state.range(0)), 0x17);
  const Bytes iv(12, 0x01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Seal(iv, {}, plaintext));
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
// 9408 = one 28x28x3 record
BENCHMARK_CAPTURE(BM_AesGcmSeal, scalar, "scalar")->Arg(4096)->Arg(9408);
BENCHMARK_CAPTURE(BM_AesGcmSeal, auto, "auto")->Arg(4096)->Arg(9408);

// The ingest-side direction (authenticate-then-decrypt).
void BM_AesGcmOpen(benchmark::State& state, const char* tier) {
  const crypto::ScopedIsaOverride isa(tier);
  const crypto::AesGcm gcm(Bytes(32, 0x42));
  const Bytes plaintext(static_cast<std::size_t>(state.range(0)), 0x17);
  const Bytes iv(12, 0x01);
  const crypto::GcmSealed sealed = gcm.Seal(iv, {}, plaintext);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Open(iv, {}, sealed.ciphertext, sealed.tag));
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_AesGcmOpen, scalar, "scalar")->Arg(9408);
BENCHMARK_CAPTURE(BM_AesGcmOpen, auto, "auto")->Arg(9408);

void BM_DhHandshakeLeg(benchmark::State& state) {
  crypto::HmacDrbg drbg(BytesOf("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::DhGenerate(drbg));
  }
}
BENCHMARK(BM_DhHandshakeLeg);

void BM_SchnorrSignVerify(benchmark::State& state) {
  crypto::HmacDrbg drbg(BytesOf("bench"));
  const crypto::SchnorrKeyPair key = crypto::SchnorrGenerate(drbg);
  const Bytes msg = BytesOf("quote body");
  for (auto _ : state) {
    const auto sig = crypto::SchnorrSign(key, msg, drbg);
    benchmark::DoNotOptimize(
        crypto::SchnorrVerify(key.public_value, msg, sig));
  }
}
BENCHMARK(BM_SchnorrSignVerify);

// Serial per-record verification baseline for the batch below.  Both
// use the ingest shape: one signing participant, n records.
void BM_SchnorrVerifySerial(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg drbg(BytesOf("bench batch"));
  const crypto::SchnorrKeyPair key = crypto::SchnorrGenerate(drbg);
  std::vector<Bytes> messages;
  std::vector<crypto::SchnorrSignature> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    messages.push_back(drbg.Generate(64));
    sigs.push_back(crypto::SchnorrSign(key, messages[i], drbg));
  }
  for (auto _ : state) {
    bool all_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      all_ok &= crypto::SchnorrVerify(key.public_value, messages[i],
                                      sigs[i]);
    }
    benchmark::DoNotOptimize(all_ok);
  }
  state.counters["batch"] = static_cast<double>(n);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrVerifySerial)->Arg(64);

// Random-linear-combination aggregate check (the ingest path): one
// g^{sum z_i s_i} == prod R_i^{z_i} * y^{sum z_i e_i} test for the
// whole single-participant batch.
void BM_SchnorrVerifyBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg drbg(BytesOf("bench batch"));
  const crypto::SchnorrKeyPair key = crypto::SchnorrGenerate(drbg);
  std::vector<Bytes> messages;
  std::vector<crypto::SchnorrSignature> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    messages.push_back(drbg.Generate(64));
    sigs.push_back(crypto::SchnorrSign(key, messages[i], drbg));
  }
  std::vector<crypto::SchnorrBatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].public_value = key.public_value;
    items[i].message = BytesView(messages[i].data(), messages[i].size());
    items[i].signature = sigs[i];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::SchnorrVerifyBatch(items));
  }
  state.counters["batch"] = static_cast<double>(n);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrVerifyBatch)->Arg(64);

void BM_EnclaveTransition(benchmark::State& state) {
  enclave::EnclaveConfig config;
  config.code_identity = BytesOf("bench");
  enclave::Enclave enclave(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.Ecall([] { return 1; }));
  }
}
BENCHMARK(BM_EnclaveTransition);

void BM_EpcThrash(benchmark::State& state) {
  // Working set twice the EPC: every touch re-encrypts half the pages.
  enclave::EpcConfig config;
  config.capacity_bytes = 64 * 4096;
  enclave::EpcManager epc(config);
  const auto a = epc.Allocate("a", 64 * 4096);
  const auto b = epc.Allocate("b", 64 * 4096);
  for (auto _ : state) {
    epc.Touch(a);
    epc.Touch(b);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(epc.stats().bytes_encrypted));
}
BENCHMARK(BM_EpcThrash);

void BM_FullAttestedHandshake(benchmark::State& state) {
  enclave::EnclaveConfig config;
  config.code_identity = BytesOf("bench");
  enclave::Enclave enclave(config);
  enclave::AttestationService service(1);
  crypto::HmacDrbg drbg(BytesOf("client"));
  for (auto _ : state) {
    securechannel::ServerHandshake server(enclave, service);
    securechannel::ClientHandshake client(service.public_key(),
                                          enclave.measurement(), drbg);
    const Bytes sh = server.OnClientHello(client.Hello());
    benchmark::DoNotOptimize(server.OnClientFinished(client.OnServerHello(sh)));
  }
}
BENCHMARK(BM_FullAttestedHandshake);

void BM_RecordRoundTrip(benchmark::State& state) {
  securechannel::RecordWriter writer(Bytes(32, 0x7e));
  securechannel::RecordReader reader(Bytes(32, 0x7e));
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.Unprotect(writer.Protect(payload)));
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordRoundTrip)->Arg(1024)->Arg(16384);

// The Fig. 6 mechanism in isolation: strict-FP vs fast-math GEMM.
void BM_GemmFast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0F);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    nn::GemmFast(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmFast)->Arg(64)->Arg(128);

void BM_GemmPrecise(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0F);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    nn::GemmPrecise(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmPrecise)->Arg(64)->Arg(128);

// The reduction kernel (weight-gradient GEMM): its inner dot product
// only vectorizes under fast-math reassociation, so this pair shows the
// actual in-enclave penalty mechanism (the plain AXPY GEMM above
// vectorizes either way).
void BM_GemmTransBFast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0F);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    nn::GemmTransBFast(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmTransBFast)->Arg(64)->Arg(128);

void BM_GemmTransBPrecise(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0F);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    nn::GemmTransBPrecise(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmTransBPrecise)->Arg(64)->Arg(128);

// The training hot path in isolation: the Table-1 (10-layer) conv GEMM
// shapes at paper scale, single-thread, through the same
// ConvGemmBatched entry the conv layer issues.  batch=1 is the
// pre-batching per-sample lowering; batch=8 is the wide Fast-profile
// block (kConvBatchBlock).  Fast runs the cache-blocked register-tiled
// kernel, Precise the naive serial-order reference — the Fast/Precise
// ratio at batch=1 is the tiled-vs-naive speedup the PR-3 acceptance
// tracks, and SetItemsProcessed counts FLOPs so the reported
// items_per_second is FLOP/s.
void BM_ConvGemm(benchmark::State& state, nn::KernelProfile profile,
                 std::size_t m, std::size_t n, std::size_t k, int batch) {
  util::ScopedThreads guard(1);
  Rng rng(3);
  const std::size_t wide_n = n * static_cast<std::size_t>(batch);
  std::vector<float> w(m * k), col(k * wide_n), bias(m), out(m * wide_n);
  for (float& x : w) x = rng.Gaussian();
  for (float& x : col) x = rng.Gaussian();
  for (float& x : bias) x = rng.Gaussian();
  for (auto _ : state) {
    nn::ConvGemmBatched(profile, m, n, k, batch, w.data(), col.data(),
                        bias.data(), 0.1F, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["n"] = static_cast<double>(wide_n);
  state.counters["k"] = static_cast<double>(k);
  state.counters["threads"] = 1;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(m * wide_n * k));
}
#define CALTRAIN_CONV_GEMM_BENCH(layer, m, n, k)                            \
  BENCHMARK_CAPTURE(BM_ConvGemm, layer##_fast_b1, nn::KernelProfile::kFast, \
                    m, n, k, 1);                                            \
  BENCHMARK_CAPTURE(BM_ConvGemm, layer##_fast_b8, nn::KernelProfile::kFast, \
                    m, n, k, 8);                                            \
  BENCHMARK_CAPTURE(BM_ConvGemm, layer##_precise_b1,                        \
                    nn::KernelProfile::kPrecise, m, n, k, 1)
// Table-1 conv lowerings at paper scale (28x28x3 input):
CALTRAIN_CONV_GEMM_BENCH(L1_conv128_3x3, 128, 784, 27);
CALTRAIN_CONV_GEMM_BENCH(L2_conv128_3x3, 128, 784, 1152);
CALTRAIN_CONV_GEMM_BENCH(L4_conv64_3x3, 64, 196, 1152);
CALTRAIN_CONV_GEMM_BENCH(L6_conv128_3x3, 128, 49, 576);
CALTRAIN_CONV_GEMM_BENCH(L7_conv10_1x1, 10, 49, 128);
#undef CALTRAIN_CONV_GEMM_BENCH

// Serial-vs-parallel comparison for the row-blocked parallel GEMM
// runtime (util::ParallelFor over contiguous row blocks).  threads=1 is
// the pre-threading serial kernel bit-for-bit; the 256^3 shape is the
// ISSUE-1 acceptance point (>= 2x at >= 4 cores).
void BM_GemmFastThreads(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  util::ScopedThreads guard(threads);
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0F);
  for (float& x : a) x = rng.Gaussian();
  for (float& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    nn::GemmFast(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["m"] = static_cast<double>(n);
  state.counters["n"] = static_cast<double>(n);
  state.counters["k"] = static_cast<double>(n);
  state.counters["threads"] = threads;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmFastThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->UseRealTime();

// Fingerprint extraction, serial vs parallel: the FingerprintAll
// phase-2 pattern — every worker runs against the single shared const
// model with its own activation workspace (no replicas, no model
// serialization); every record's arithmetic is identical to serial.
// The workspace_bytes counter is the per-worker working set.
void BM_FingerprintExtractThreads(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  util::ScopedThreads guard(threads);
  Rng rng(5);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32), rng);
  const int layer = net.PenultimateIndex();
  std::vector<nn::Image> images(64, nn::Image(nn::Shape{28, 28, 3}));
  for (nn::Image& img : images) {
    for (float& p : img.pixels) p = rng.UniformFloat();
  }
  for (auto _ : state) {
    std::vector<linkage::Fingerprint> fingerprints =
        linkage::ExtractFingerprintsBatch(
            net, layer, images.size(),
            [&](std::size_t i) -> const nn::Image& { return images[i]; });
    benchmark::DoNotOptimize(fingerprints.data());
  }
  // Per-worker memory: one activation workspace after one extraction.
  nn::LayerWorkspace ws(net);
  (void)linkage::ExtractFingerprintAt(net, images[0], layer, ws);
  state.counters["threads"] = threads;
  state.counters["workspace_bytes"] =
      static_cast<double>(ws.TotalBytes());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(images.size()));
}
BENCHMARK(BM_FingerprintExtractThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The pre-refactor baseline for comparison: one model replica per
// worker block, round-tripped through SerializeModel/DeserializeModel.
// replica_bytes is the per-worker model-copy cost the shared-model
// path eliminates.
void BM_FingerprintExtractReplicaBaseline(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  util::ScopedThreads guard(threads);
  Rng rng(5);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(32), rng);
  const int layer = net.PenultimateIndex();
  std::vector<nn::Image> images(64, nn::Image(nn::Shape{28, 28, 3}));
  for (nn::Image& img : images) {
    for (float& p : img.pixels) p = rng.UniformFloat();
  }
  const Bytes blob = net.SerializeModel();
  for (auto _ : state) {
    std::vector<linkage::Fingerprint> fingerprints(images.size());
    util::ParallelForBlocked(
        0, images.size(), [&](std::size_t b0, std::size_t b1) {
          nn::Network replica = nn::Network::DeserializeModel(blob);
          for (std::size_t i = b0; i < b1; ++i) {
            fingerprints[i] =
                linkage::ExtractFingerprintAt(replica, images[i], layer);
          }
        });
    benchmark::DoNotOptimize(fingerprints.data());
  }
  state.counters["threads"] = threads;
  state.counters["replica_bytes"] = static_cast<double>(blob.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(images.size()));
}
BENCHMARK(BM_FingerprintExtractReplicaBaseline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

// Data-parallel partitioned TrainBatch, serial vs parallel.  The shard
// plan is fixed (nn::kTrainShardSamples), gradients reduce in shard
// order, and DP sanitization runs once on the reduced gradients, so
// every thread count produces bit-identical weights; this row measures
// the wall-clock speedup and the per-shard workspace footprint.
void BM_TrainBatchThreads(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  util::ScopedThreads guard(threads);
  Rng rng(7);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(8), rng);
  enclave::EnclaveConfig config;
  config.code_identity = BytesOf("bench");
  enclave::Enclave enclave(config);
  core::PartitionedTrainer trainer(net, enclave, /*front_layers=*/2);

  nn::Batch batch(32, nn::Shape{28, 28, 3});
  for (float& x : batch.data) x = rng.UniformFloat();
  std::vector<int> labels(32);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  nn::SgdConfig sgd;
  Rng train_rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainBatch(batch, labels, sgd,
                                                train_rng));
  }
  state.counters["batch"] = static_cast<double>(batch.n);
  state.counters["threads"] = threads;
  state.counters["workspace_bytes"] =
      static_cast<double>(trainer.WorkspaceBytes());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch.n);
}
BENCHMARK(BM_TrainBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_VpTreeQuery(benchmark::State& state) {
  Rng rng(2);
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> points(count, std::vector<float>(64));
  for (auto& p : points) {
    for (float& x : p) x = rng.Gaussian();
  }
  const linkage::VpTree tree(points);
  std::vector<float> query(64);
  for (float& x : query) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Search(query, 9));
  }
}
BENCHMARK(BM_VpTreeQuery)->Arg(1000)->Arg(10000);

// Batched kNN, serial vs parallel, over the same VP-tree.
void BM_VpTreeQueryBatchThreads(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  util::ScopedThreads guard(threads);
  Rng rng(2);
  std::vector<std::vector<float>> points(count, std::vector<float>(64));
  for (auto& p : points) {
    for (float& x : p) x = rng.Gaussian();
  }
  const linkage::VpTree tree(points);
  std::vector<std::vector<float>> queries(256, std::vector<float>(64));
  for (auto& q : queries) {
    for (float& x : q) x = rng.Gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.SearchBatch(queries, 9));
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_VpTreeQueryBatchThreads)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->UseRealTime();

void BM_BruteForceQuery(benchmark::State& state) {
  Rng rng(2);
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> points(count, std::vector<float>(64));
  for (auto& p : points) {
    for (float& x : p) x = rng.Gaussian();
  }
  std::vector<float> query(64);
  for (float& x : query) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linkage::BruteForceKnn(points, query, 9));
  }
}
BENCHMARK(BM_BruteForceQuery)->Arg(1000)->Arg(10000);

// Console output plus a captured {op, shape, ns/op, GFLOP/s, threads}
// row per run for the --json emitter.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::JsonBenchRow row;
      row.op = run.benchmark_name();
      row.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
                    * 1e9
              : 0.0;
      const auto m = run.counters.find("m");
      const auto n = run.counters.find("n");
      const auto k = run.counters.find("k");
      const auto batch = run.counters.find("batch");
      const auto bytes = run.counters.find("bytes");
      if (m != run.counters.end() && n != run.counters.end() &&
          k != run.counters.end()) {
        row.shape = std::to_string(static_cast<long long>(m->second.value)) +
                    "x" +
                    std::to_string(static_cast<long long>(n->second.value)) +
                    "x" +
                    std::to_string(static_cast<long long>(k->second.value));
      } else if (batch != run.counters.end()) {
        row.shape =
            "batch" +
            std::to_string(static_cast<long long>(batch->second.value));
      } else if (bytes != run.counters.end()) {
        // Crypto / record ops: the operand is a byte buffer.
        row.shape =
            std::to_string(static_cast<long long>(bytes->second.value)) + "B";
      }
      // items_per_second is the op's own throughput unit (FLOP/s,
      // samples/s, queries/s) and is recorded as-is; only the GEMM
      // benches account items as FLOPs, so only they get a GFLOP/s
      // column.
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.items_per_s = items->second.value;
        if (row.op.find("Gemm") != std::string::npos) {
          row.gflops = items->second.value / 1e9;
        }
      }
      const auto bps = run.counters.find("bytes_per_second");
      if (bps != run.counters.end()) {
        row.bytes_per_s = bps->second.value;
      }
      const auto threads = run.counters.find("threads");
      row.threads = threads != run.counters.end()
                        ? static_cast<int>(threads->second.value)
                        : 1;
      rows_.push_back(std::move(row));
    }
  }

  [[nodiscard]] const std::vector<bench::JsonBenchRow>& rows() const {
    return rows_;
  }

 private:
  std::vector<bench::JsonBenchRow> rows_;
};

}  // namespace
}  // namespace caltrain

int main(int argc, char** argv) {
  const std::string json_path =
      caltrain::bench::ExtractFlagValue(argc, argv, "--json");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  caltrain::JsonCapturingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  if (!json_path.empty()) {
    // Lead with an informational row recording which ISA tiers the
    // "auto" crypto rows actually ran on (the scaling gate reads it to
    // decide whether the >= 2x accelerated/scalar check is meaningful).
    std::vector<caltrain::bench::JsonBenchRow> rows;
    caltrain::bench::JsonBenchRow isa_row;
    isa_row.op = "crypto_isa";
    isa_row.shape = caltrain::crypto::ActiveIsaSummary();
    rows.push_back(std::move(isa_row));
    rows.insert(rows.end(), reporter.rows().begin(), reporter.rows().end());
    if (!caltrain::bench::WriteBenchJson(json_path, rows)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
