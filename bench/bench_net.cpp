// Networked serving throughput and latency (ISSUE 10, BENCH_net.json).
//
// Measures the TCP front end (src/net) against the in-process async
// serving API it fronts, over loopback:
//
//   BM_NetIngest/inproc_async   upload records/s straight into the
//                               Service (chunked submissions, one
//                               receipt awaited per chunk)
//   BM_NetIngest/tcp            the same workload through net::Client
//                               -> wire protocol -> epoll server; the
//                               CI gate (tools/check_bench_scaling.py
//                               --net-only) requires the networked
//                               row to keep >= 0.75x of the in-process
//                               rate — framing + loopback syscalls
//                               must not dominate the crypto-bound
//                               ingest path
//   BM_NetStatusLatency/p50|p99 request/response round-trip latency of
//                               a minimal RPC (status), in ns_per_op
//   BM_NetFanIn/clientsN        aggregate status RPCs/s with N
//                               concurrent connections multiplexed on
//                               one event loop
//
//   ./bench_net [--json PATH] [--threads N] [--full]
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/participant.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

namespace {

data::LabeledDataset BenchDataset(std::size_t records, std::uint64_t seed) {
  Rng rng(seed);
  data::SyntheticCifar gen;
  return gen.Generate(records, rng);
}

constexpr std::size_t kChunk = 64;

/// Uploads `records` through the in-process async API, one awaited
/// receipt per chunk (the same request discipline the blocking TCP
/// client has, so the two rows compare like for like).
double RunInprocIngest(const data::LabeledDataset& dataset,
                       std::uint64_t seed) {
  core::TrainingServer server;
  core::Participant uploader("p0", dataset, seed);
  uploader.Provision(server, server.training_measurement());
  std::vector<data::EncryptedRecord> records = uploader.PackRecords();
  const std::size_t count = records.size();

  serve::Service service(server);
  const serve::Result<serve::SessionId> session =
      service.OpenUploadSession("p0");
  Stopwatch timer;
  for (std::size_t first = 0; first < count; first += kChunk) {
    const std::size_t last = std::min(count, first + kChunk);
    auto receipt = service
                       .SubmitUpload(session.value(),
                                     std::vector<data::EncryptedRecord>(
                                         records.begin() +
                                             static_cast<std::ptrdiff_t>(first),
                                         records.begin() +
                                             static_cast<std::ptrdiff_t>(last)))
                       .get();
    if (!receipt.ok()) return 0.0;
  }
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(count) / seconds;
}

/// The same workload through the wire: encode, frame, loopback TCP,
/// decode, dispatch, receipt back.
double RunTcpIngest(const data::LabeledDataset& dataset,
                    std::uint64_t seed) {
  core::TrainingServer server;
  core::Participant uploader("p0", dataset, seed);
  uploader.Provision(server, server.training_measurement());
  std::vector<data::EncryptedRecord> records = uploader.PackRecords();
  const std::size_t count = records.size();

  serve::Service service(server);
  net::Server front(service);
  front.Start();
  net::ClientOptions options;
  options.port = front.port();
  net::Client client(options);
  const serve::Result<serve::SessionId> session = client.OpenSession("p0");
  if (!session.ok()) return 0.0;

  Stopwatch timer;
  for (std::size_t first = 0; first < count; first += kChunk) {
    const std::size_t last = std::min(count, first + kChunk);
    auto receipt = client.SubmitUpload(
        session.value(),
        std::vector<data::EncryptedRecord>(
            records.begin() + static_cast<std::ptrdiff_t>(first),
            records.begin() + static_cast<std::ptrdiff_t>(last)));
    if (!receipt.ok()) return 0.0;
  }
  const double seconds = timer.ElapsedSeconds();
  front.Stop();
  return static_cast<double>(count) / seconds;
}

/// Round-trip latency of the minimal status RPC, in nanoseconds.
void RunStatusLatency(net::Server& front, std::size_t samples,
                      double& p50_ns, double& p99_ns) {
  net::ClientOptions options;
  options.port = front.port();
  net::Client client(options);
  (void)client.Connect();  // handshake outside the timed loop
  std::vector<double> latencies;
  latencies.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    Stopwatch timer;
    const auto status = client.Status();
    const double ns = timer.ElapsedSeconds() * 1e9;
    if (status.ok()) latencies.push_back(ns);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    const std::size_t index = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
    return latencies[index];
  };
  p50_ns = pct(0.50);
  p99_ns = pct(0.99);
}

/// Aggregate RPC throughput with `clients` concurrent connections.
double RunFanIn(net::Server& front, std::size_t clients,
                std::size_t rpcs_per_client) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch timer;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&front, rpcs_per_client] {
      net::ClientOptions options;
      options.port = front.port();
      net::Client client(options);
      for (std::size_t i = 0; i < rpcs_per_client; ++i) {
        if (!client.Status().ok()) return;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(clients * rpcs_per_client) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::ExtractFlagValue(argc, argv, "--json");
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("networked serving front end (src/net)", profile);

  const std::size_t record_count = profile.full ? 4096 : 512;
  const std::size_t latency_samples = profile.full ? 2000 : 400;
  const std::size_t fan_rpcs = profile.full ? 200 : 50;
  const data::LabeledDataset dataset =
      BenchDataset(record_count, profile.seed);
  const int threads = static_cast<int>(util::Parallelism::threads());
  std::vector<bench::JsonBenchRow> rows;

  const auto push_rate = [&](const std::string& op, const std::string& shape,
                             double items_per_s) {
    bench::JsonBenchRow row;
    row.op = op;
    row.shape = shape;
    if (items_per_s > 0.0) row.ns_per_op = 1e9 / items_per_s;
    row.items_per_s = items_per_s;
    row.threads = threads;
    rows.push_back(std::move(row));
  };

  // --- ingest throughput: in-process baseline vs networked ------------
  // Best-of-3, interleaved: both paths are crypto-bound and a noisy
  // neighbor or a frequency ramp mid-run would otherwise skew the
  // tcp/inproc ratio the CI gate checks.
  const std::string shape = "records=" + std::to_string(record_count);
  double inproc = 0.0;
  double tcp = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    inproc = std::max(inproc, RunInprocIngest(dataset, profile.seed));
    tcp = std::max(tcp, RunTcpIngest(dataset, profile.seed));
  }
  std::printf("[net] inproc_async  %7.0f rec/s  (%s)\n", inproc,
              shape.c_str());
  push_rate("BM_NetIngest/inproc_async", shape, inproc);
  std::printf("[net] tcp           %7.0f rec/s  (%.2fx of in-process)\n",
              tcp, inproc > 0.0 ? tcp / inproc : 0.0);
  push_rate("BM_NetIngest/tcp", shape, tcp);

  // --- RPC latency and connection fan-in on one shared server ---------
  {
    core::TrainingServer server;
    serve::Service service(server);
    net::Server front(service);
    front.Start();

    double p50 = 0.0;
    double p99 = 0.0;
    RunStatusLatency(front, latency_samples, p50, p99);
    std::printf("[net] status RTT    p50 %7.1f us   p99 %7.1f us\n",
                p50 / 1e3, p99 / 1e3);
    bench::JsonBenchRow p50_row;
    p50_row.op = "BM_NetStatusLatency/p50";
    p50_row.shape = "samples=" + std::to_string(latency_samples);
    p50_row.ns_per_op = p50;
    p50_row.threads = threads;
    rows.push_back(std::move(p50_row));
    bench::JsonBenchRow p99_row;
    p99_row.op = "BM_NetStatusLatency/p99";
    p99_row.shape = "samples=" + std::to_string(latency_samples);
    p99_row.ns_per_op = p99;
    p99_row.threads = threads;
    rows.push_back(std::move(p99_row));

    for (const std::size_t clients : {1UL, 4UL, 16UL, 64UL}) {
      const double rate = RunFanIn(front, clients, fan_rpcs);
      std::printf("[net] fan-in        %3zu clients  %8.0f rpc/s\n", clients,
                  rate);
      push_rate("BM_NetFanIn/clients" + std::to_string(clients),
                "clients=" + std::to_string(clients), rate);
    }
    front.Stop();
  }

  if (!json_path.empty()) {
    if (bench::WriteBenchJson(json_path, rows)) {
      std::printf("wrote %zu bench rows to %s\n", rows.size(),
                  json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
