// Reproduces Fig. 4: prediction accuracy of the 18-layer (Table II)
// network with and without CalTrain protection.
//
// Paper result shape: converges by ~epoch 5 and achieves higher
// accuracy than the 10-layer network of Fig. 3, identically in both
// environments.
#include "bench_accuracy_common.hpp"
#include "nn/presets.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  // The Table-II net carries three p=0.5 dropout layers; at width /16
  // that is mostly noise, so the CI profile runs Fig. 4 at width /8.
  if (!profile.full && profile.net_scale == 16) profile.net_scale = 8;
  bench::PrintHeader("Figure 4 — accuracy, 18-layer network", profile);
  return bench::RunAccuracyExperiment(
      "Fig. 4", nn::Table2Spec(profile.net_scale), profile);
}
