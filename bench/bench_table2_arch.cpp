// Reproduces Table II: the 18-layer CIFAR-10 network architecture
// (three dropout layers, p = 0.5), with per-row shape verification.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/presets.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table II — 18-layer DNN for CIFAR-10", profile);

  Rng rng(profile.seed);
  nn::Network net = nn::BuildNetwork(nn::Table2Spec(/*scale=*/1), rng);
  std::printf("%s\n", net.ArchitectureTable().c_str());

  struct Row { int layer; nn::Shape out; };
  const Row expected[] = {
      {1, {28, 28, 128}},  {2, {28, 28, 128}},  {3, {28, 28, 128}},
      {4, {14, 14, 128}},  {5, {14, 14, 128}},  {6, {14, 14, 256}},
      {7, {14, 14, 256}},  {8, {14, 14, 256}},  {9, {7, 7, 256}},
      {10, {7, 7, 256}},   {11, {7, 7, 512}},   {12, {7, 7, 512}},
      {13, {7, 7, 512}},   {14, {7, 7, 512}},   {15, {7, 7, 10}},
      {16, {1, 1, 10}},    {17, {1, 1, 10}},    {18, {1, 1, 10}},
  };
  bool all_match = true;
  for (const Row& row : expected) {
    const nn::Shape got = net.layer(row.layer - 1).out_shape();
    const bool match = got == row.out;
    all_match = all_match && match;
    std::printf("layer %-2d output %-12s paper %-12s %s\n", row.layer,
                got.ToString().c_str(), row.out.ToString().c_str(),
                match ? "OK" : "MISMATCH");
  }
  // Dropout probability check (paper: p = 0.5 at layers 5, 10, 14).
  for (int l : {5, 10, 14}) {
    const auto& spec = net.spec().layers[static_cast<std::size_t>(l - 1)];
    const bool ok = spec.kind == nn::LayerKind::kDropout &&
                    spec.dropout_p == 0.5F;
    all_match = all_match && ok;
    std::printf("layer %-2d dropout p=0.5: %s\n", l, ok ? "OK" : "MISMATCH");
  }
  std::printf("\nTable II shape check: %s\n", all_match ? "PASS" : "FAIL");
  std::printf("total forward FLOPs/sample: %.1f M\n",
              static_cast<double>(net.FlopsPerSample(0, net.NumLayers())) /
                  1e6);
  std::printf("total weight bytes: %.2f MB\n",
              static_cast<double>(net.WeightBytes(0, net.NumLayers())) /
                  (1024.0 * 1024.0));
  return all_match ? 0 : 1;
}
