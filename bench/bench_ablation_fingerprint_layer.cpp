// Ablation: which layer's embedding makes the best fingerprint?
//
// The paper fingerprints the penultimate layer ("the most important
// features extracted through all previous layers").  This harness
// sweeps candidate layers of the trojaned face model — an early conv,
// the last conv, the wide embedding FC, and the penultimate logits —
// and evaluates Experiment IV's detection metrics at each.
#include <cstdio>
#include <vector>

#include "attack/trojan.hpp"
#include "bench_common.hpp"
#include "data/packaging.hpp"
#include "data/synthetic_faces.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/linkage_db.hpp"
#include "linkage/metrics.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/mathx.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation — fingerprint layer choice", profile);

  data::SyntheticFacesOptions face_options;
  face_options.identities = profile.identities;
  data::SyntheticFaces faces(face_options);
  Rng rng(profile.seed);
  const int target = 0;

  // Clean training, then the trojan retraining (attack module, no
  // server — this ablation is about the fingerprint, not the pipeline).
  data::LabeledDataset train = faces.Generate(
      profile.faces_per_identity_train * profile.identities, rng);
  data::AssignSource(train, "honest");
  const data::LabeledDataset test = faces.Generate(
      profile.faces_per_identity_test * profile.identities, rng);

  nn::Network net = nn::BuildNetwork(
      nn::FaceNetSpec(faces.shape(), profile.identities,
                      profile.embedding_dim, profile.face_scale),
      rng);
  nn::TrainOptions options;
  options.epochs = profile.full ? 12 : 8;
  options.batch_size = 32;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = profile.seed + 1;
  std::printf("[setup] clean training...\n");
  (void)nn::TrainNetwork(net, train.images, train.labels, test.images,
                         test.labels, options);

  data::LabeledDataset donors;
  for (int id = 1; id < profile.identities - 1; ++id) {
    donors.Merge(faces.GenerateForIdentity(
        id, profile.faces_per_identity_train / 4, rng));
  }
  const data::LabeledDataset poisoned =
      attack::MakePoisonedSet(donors, target, "mallory");
  std::vector<nn::Image> probe_faces;
  for (int id = 1; id < profile.identities; ++id) {
    for (int i = 0; i < 4; ++i) probe_faces.push_back(faces.Sample(id, rng));
  }
  nn::TrainOptions retrain = options;
  retrain.epochs = profile.full ? 5 : 4;
  retrain.sgd.learning_rate = 0.005F;
  std::printf("[setup] trojan retraining...\n");
  const attack::TrojanAttackResult attack_result = attack::RetrainWithPoison(
      net, train, poisoned, test.images, test.labels,
      attack::StampAll(probe_faces), target, retrain);
  std::printf("[setup] attack success %.1f%%, benign top-1 %.1f%%\n",
              100.0 * attack_result.attack_success_rate,
              100.0 * attack_result.benign_top1_after);

  // Candidate fingerprint layers.
  data::LabeledDataset combined = train;
  combined.Merge(poisoned);
  struct Candidate { const char* name; int layer; };
  std::vector<Candidate> candidates;
  int first_conv = -1, last_conv = -1, embedding_fc = -1;
  for (int i = 0; i < net.NumLayers(); ++i) {
    if (net.layer(i).kind() == nn::LayerKind::kConv) {
      if (first_conv < 0) first_conv = i;
      last_conv = i;
    }
    if (net.layer(i).kind() == nn::LayerKind::kConnected &&
        embedding_fc < 0) {
      embedding_fc = i;
    }
  }
  candidates.push_back({"first conv", first_conv});
  candidates.push_back({"last conv", last_conv});
  candidates.push_back({"embedding FC", embedding_fc});
  candidates.push_back({"penultimate (paper)", net.PenultimateIndex()});

  std::printf("\n%-22s %-8s %-12s %-12s %-12s\n", "fingerprint layer", "dim",
              "precision", "recall", "attribution");
  for (const Candidate& c : candidates) {
    // Build the linkage DB at this layer.
    linkage::LinkageDatabase db;
    linkage::ProvenanceMap provenance;
    for (std::size_t i = 0; i < combined.size(); ++i) {
      const auto id = db.Insert(
          linkage::ExtractFingerprintAt(net, combined.images[i], c.layer),
          combined.labels[i], combined.sources[i],
          data::HashTrainingInstance(combined.images[i],
                                     combined.labels[i]));
      if (combined.sources[i] == "mallory") {
        provenance[id] = linkage::ProvenanceTag::kPoisoned;
      }
    }
    // Query every hijacked probe.
    std::vector<std::vector<linkage::QueryMatch>> per_probe;
    for (const nn::Image& face : probe_faces) {
      const nn::Image probe = attack::ApplyTrigger(face);
      const auto probs = net.PredictOne(probe);
      if (static_cast<int>(ArgMax(probs)) != target) continue;
      per_probe.push_back(db.QueryNearest(
          linkage::ExtractFingerprintAt(net, probe, c.layer), target, 9));
    }
    const auto eval =
        linkage::EvaluateAccountability(per_probe, provenance, "mallory");
    std::printf("%-22s %-8zu %-12.3f %-12.3f %-12.3f\n", c.name,
                net.layer(c.layer).out_shape().Flat(), eval.precision_bad,
                eval.recall_poisoned, eval.source_attribution);
  }
  std::printf("\npaper design point: deep-layer embeddings (penultimate /\n"
              "embedding FC) should dominate early-layer features for\n"
              "poisoned-data discovery.\n");
  return 0;
}
