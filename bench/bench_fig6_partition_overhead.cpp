// Reproduces Fig. 6: normalized training-time overhead of the 18-layer
// (Table II) network as a function of how many convolutional layers run
// inside the training enclave (x axis: 0, 2, 3, ..., 10 conv layers).
//
// Paper result shape: overhead grows monotonically from ~6% (2 convs)
// to ~22% (all 10 convs); the Experiment-II optimal boundary (3 convs +
// the max pool) costs 8.1%.  The paper attributes the cost to
// -ffast-math being ineffective for enclaved code — which is exactly
// what this harness measures: the FrontNet runs the strict-FP GEMM
// build while the BackNet keeps the fast-math build (see
// nn/kernels.hpp), plus real EPC paging and transition accounting.
//
// With `--json PATH` the bench also measures the serving layer's
// ingest path (BENCH_serve.json): upload throughput through the
// blocking UploadRecords call (one ECALL per record) vs the async
// session API at several authentication batch sizes, plus
// transitions-per-record rows showing the TransitionGuard
// amortization.  (BM_ServeTransitionsPerRecord rows report the
// dimensionless ratio in their own transitions_per_record key;
// ns_per_op / items_per_s on those rows are 0.)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/participant.hpp"
#include "core/partitioned.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "persist/journal.hpp"
#include "serve/service.hpp"
#include "util/stopwatch.hpp"

using namespace caltrain;

namespace {

// Maps "number of in-enclave convolutional layers" to the FrontNet
// boundary in the Table-II stack, absorbing the pool/dropout layers
// that directly follow the last enclosed conv (the paper's boundary at
// "Layer 4, a max pooling layer" for 3 convs).
int FrontLayersForConvCount(const nn::Network& net, int convs) {
  if (convs == 0) return 0;
  int seen = 0;
  int boundary = 0;
  for (int i = 0; i < net.NumLayers(); ++i) {
    const nn::LayerKind kind = net.layer(i).kind();
    if (kind == nn::LayerKind::kConv) {
      ++seen;
      if (seen > convs) break;
      boundary = i + 1;
    } else if (seen == convs &&
               (kind == nn::LayerKind::kMaxPool ||
                kind == nn::LayerKind::kDropout ||
                kind == nn::LayerKind::kAvgPool)) {
      boundary = i + 1;  // absorb trailing weight-free layers
    }
  }
  return boundary;
}

// WAL directory for the journaled bench rows.  Prefers tmpfs
// (/dev/shm) over the real disk on purpose: the ≤10% gate in
// tools/check_bench_scaling.py guards the journaling *software*
// overhead — framing, CRC, frame encode, group-commit coordination —
// which regressions in the commit path would inflate on any medium.
// Full-payload durability on a virtio/ext4 device is write-bandwidth
// bound (~150 MB/s here vs a ~300 MB/s ingest stream), so gating on a
// real disk would measure the device, not the code, and flake across
// CI runners.  Real-disk durability is exercised by the persist_test
// crash harness instead.  Override with CALTRAIN_BENCH_WAL_DIR.
std::string MakeBenchTempDir() {
  const char* base = std::getenv("CALTRAIN_BENCH_WAL_DIR");
  std::string tmpl = std::string(base != nullptr       ? base
                                 : ::access("/dev/shm", W_OK) == 0
                                     ? "/dev/shm"
                                     : "/tmp") +
                     "/caltrain_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) return {};
  return tmpl;
}

// One serve-ingest measurement: a provisioned participant's corpus
// uploaded once through the blocking API (batch == 1) or through the
// async session API at the given authentication batch size — with or
// without the crash-durability journal underneath (ISSUE 8: journaled
// ingest must stay within 10% of plain async ingest; the JSON gate in
// tools/check_bench_scaling.py enforces it).  Appends an
// ingest-throughput row and a transitions-per-record row.
void RunServeIngest(const data::LabeledDataset& dataset, std::uint64_t seed,
                    std::size_t batch, bool async, bool journaled,
                    std::vector<bench::JsonBenchRow>& rows) {
  core::TrainingServer server;
  core::Participant uploader("p0", dataset, seed);
  uploader.Provision(server, server.training_measurement());
  std::vector<data::EncryptedRecord> records = uploader.PackRecords();
  const std::size_t count = records.size();
  server.training_enclave().ResetTransitions();

  double seconds = 0.0;
  if (async) {
    serve::ServiceConfig config;
    config.ingest_batch = batch;
    std::string wal_dir;
    if (journaled) {
      wal_dir = MakeBenchTempDir();
      config.durable_dir = wal_dir;  // group-committed fsync per wave
    }
    {
      serve::Service service(server, config);
      const serve::Result<serve::SessionId> session =
          service.OpenUploadSession("p0");
      // Timed region covers enqueue -> last commit only; Service
      // construction (worker spawns) and destruction (joins) stay
      // outside so the sync and async rows compare like for like.
      Stopwatch timer;
      // Stream in submission chunks like a real client would.
      constexpr std::size_t kChunk = 64;
      std::vector<std::future<serve::Result<serve::UploadReceipt>>> pending;
      for (std::size_t first = 0; first < count; first += kChunk) {
        const std::size_t last = std::min(count, first + kChunk);
        pending.push_back(service.SubmitUpload(
            session.value(),
            std::vector<data::EncryptedRecord>(
                records.begin() + static_cast<std::ptrdiff_t>(first),
                records.begin() + static_cast<std::ptrdiff_t>(last))));
      }
      for (auto& f : pending) (void)f.get();
      seconds = timer.ElapsedSeconds();
    }
    if (!wal_dir.empty()) {
      (void)std::system(("rm -rf '" + wal_dir + "'").c_str());
    }
  } else {
    Stopwatch timer;
    (void)server.UploadRecords(records);
    seconds = timer.ElapsedSeconds();
  }

  const enclave::TransitionStats transitions =
      server.training_enclave().transitions();
  const double per_record =
      static_cast<double>(transitions.ecalls) / static_cast<double>(count);
  const std::string variant =
      (journaled ? std::string("journal_batch")
                 : async ? std::string("async_batch")
                         : std::string("sync_batch")) +
      std::to_string(batch);
  const std::string shape = "records=" + std::to_string(count);
  const int threads = static_cast<int>(util::Parallelism::threads());
  bench::JsonBenchRow ingest_row;
  ingest_row.op = "BM_ServeIngest/" + variant;
  ingest_row.shape = shape;
  ingest_row.ns_per_op = seconds * 1e9 / static_cast<double>(count);
  ingest_row.items_per_s = static_cast<double>(count) / seconds;
  ingest_row.threads = threads;
  rows.push_back(std::move(ingest_row));
  bench::JsonBenchRow transition_row;
  transition_row.op = "BM_ServeTransitionsPerRecord/" + variant;
  transition_row.shape = shape;
  transition_row.transitions_per_record = per_record;
  transition_row.threads = threads;
  rows.push_back(std::move(transition_row));
  std::printf("[serve] %-14s %6zu records in %6.1f ms  (%7.0f rec/s, "
              "%.3f transitions/record)\n",
              variant.c_str(), count, seconds * 1e3,
              static_cast<double>(count) / seconds, per_record);
}

// BM_JournalAppend micro rows: raw WAL framing throughput for a
// record-sized payload, append-only (SyncMode::kNone, pure framing +
// write(2)) and with a group-committed fdatasync every 64 appends
// (the service's sync-before-acknowledge wave shape).
void RunJournalAppend(std::vector<bench::JsonBenchRow>& rows) {
  constexpr std::size_t kPayload = 4096;
  constexpr std::size_t kAppends = 2048;
  constexpr std::size_t kWave = 64;
  const Bytes payload(kPayload, std::uint8_t{0xa5});
  const int threads = static_cast<int>(util::Parallelism::threads());
  struct Variant {
    const char* name;
    persist::SyncMode mode;
    bool sync_per_wave;
  };
  for (const Variant v : {Variant{"append_only", persist::SyncMode::kNone,
                                  false},
                          Variant{"group_commit64", persist::SyncMode::kGroup,
                                  true}}) {
    const std::string dir = MakeBenchTempDir();
    if (dir.empty()) return;
    double seconds = 0.0;
    {
      auto journal =
          persist::Journal::Open(dir + "/bench.wal", v.mode);
      Stopwatch timer;
      for (std::size_t i = 0; i < kAppends; ++i) {
        (void)journal->Append(payload);
        if (v.sync_per_wave && (i + 1) % kWave == 0) journal->Sync();
      }
      if (v.sync_per_wave) journal->Sync();
      seconds = timer.ElapsedSeconds();
    }
    (void)std::system(("rm -rf '" + dir + "'").c_str());
    bench::JsonBenchRow row;
    row.op = std::string("BM_JournalAppend/") + v.name;
    row.shape = "payload=" + std::to_string(kPayload) +
                ",appends=" + std::to_string(kAppends);
    row.ns_per_op = seconds * 1e9 / static_cast<double>(kAppends);
    row.items_per_s = static_cast<double>(kAppends) / seconds;
    row.threads = threads;
    rows.push_back(std::move(row));
    std::printf("[wal]   %-14s %6zu appends in %6.1f ms  (%7.0f frames/s)\n",
                v.name, kAppends, seconds * 1e3,
                static_cast<double>(kAppends) / seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractFlagValue(argc, argv, "--json");
  bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  if (!profile.full && profile.train_size > 600) profile.train_size = 600;
  bench::PrintHeader("Figure 6 — in-enclave workload overhead", profile);

  Rng rng(profile.seed);
  data::SyntheticCifar gen;
  const data::LabeledDataset train = gen.Generate(profile.train_size, rng);

  const std::vector<int> conv_counts = {0, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> epoch_seconds(conv_counts.size(), 0.0);

  for (std::size_t ci = 0; ci < conv_counts.size(); ++ci) {
    const int convs = conv_counts[ci];
    Rng net_rng(profile.seed);  // identical weights per configuration
    nn::Network net =
        nn::BuildNetwork(nn::Table2Spec(profile.net_scale), net_rng);

    enclave::EnclaveConfig enclave_config;
    enclave_config.name = "fig6-enclave";
    enclave_config.code_identity = BytesOf("fig6");
    enclave_config.seed = profile.seed;
    enclave::Enclave enclave(enclave_config);

    const int front = FrontLayersForConvCount(net, convs);
    core::PartitionedTrainer trainer(net, enclave, front);

    nn::SgdConfig sgd;
    sgd.learning_rate = 0.01F;
    Rng train_rng(profile.seed + 7);

    Stopwatch timer;
    for (std::size_t first = 0; first < train.size();
         first += static_cast<std::size_t>(profile.batch_size)) {
      const std::size_t count = std::min<std::size_t>(
          static_cast<std::size_t>(profile.batch_size),
          train.size() - first);
      nn::Batch batch(static_cast<int>(count), train.images[0].shape);
      std::vector<int> labels(count);
      for (std::size_t i = 0; i < count; ++i) {
        std::copy(train.images[first + i].pixels.begin(),
                  train.images[first + i].pixels.end(),
                  batch.Sample(static_cast<int>(i)));
        labels[i] = train.labels[first + i];
      }
      (void)trainer.TrainBatch(batch, labels, sgd, train_rng);
    }
    epoch_seconds[ci] = timer.ElapsedSeconds();
    std::printf("[run] %2d in-enclave convs (FrontNet=%2d layers): "
                "epoch %.2fs, %llu ecalls, %llu EPC faults, %.1f MB MEE\n",
                convs, front, epoch_seconds[ci],
                static_cast<unsigned long long>(
                    enclave.transitions().ecalls),
                static_cast<unsigned long long>(
                    enclave.epc().stats().page_faults),
                static_cast<double>(enclave.epc().stats().bytes_encrypted) /
                    1e6);
  }

  std::printf("\nFig. 6 series — normalized performance overhead:\n");
  std::printf("%-18s %-12s %-10s\n", "in-enclave convs", "epoch_sec",
              "overhead");
  const double baseline = epoch_seconds[0];
  bool monotone = true;
  for (std::size_t ci = 0; ci < conv_counts.size(); ++ci) {
    const double overhead = (epoch_seconds[ci] - baseline) / baseline;
    std::printf("%-18d %-12.2f %+.1f%%\n", conv_counts[ci],
                epoch_seconds[ci], 100.0 * overhead);
    if (ci > 1 && epoch_seconds[ci] + 0.05 * baseline <
                      epoch_seconds[ci - 1]) {
      monotone = false;
    }
  }
  std::printf("\npaper shape: overhead increases with the number of\n"
              "in-enclave convolutional layers (6%% -> 22%% on the paper's\n"
              "testbed); trend reproduced: %s\n", monotone ? "YES" : "NO");

  if (!json_path.empty()) {
    std::printf("\nServing-layer ingest (async session API vs blocking "
                "upload):\n");
    const std::size_t serve_records =
        std::min<std::size_t>(profile.train_size, 512);
    Rng serve_rng(profile.seed + 11);
    const data::LabeledDataset serve_data =
        gen.Generate(serve_records, serve_rng);
    std::vector<bench::JsonBenchRow> rows;
    RunServeIngest(serve_data, profile.seed, 1, /*async=*/false,
                   /*journaled=*/false, rows);
    for (const std::size_t batch : {std::size_t{8}, std::size_t{32}}) {
      RunServeIngest(serve_data, profile.seed, batch, /*async=*/true,
                     /*journaled=*/false, rows);
    }
    // ISSUE 8 gate row: journaled ingest at the largest batch size must
    // stay within 10% of the plain async row above.
    RunServeIngest(serve_data, profile.seed, 32, /*async=*/true,
                   /*journaled=*/true, rows);
    RunJournalAppend(rows);
    if (bench::WriteBenchJson(json_path, rows)) {
      std::printf("wrote serve-ingest bench rows to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    }
  }
  return 0;
}
