// Reproduces Fig. 8: three representative nearest-neighbour queries for
// trojaned test images, with L2 fingerprint distances and provenance.
//
// Paper result shape:
//   (1) a trojaned image of the target identity itself retrieves NORMAL
//       training data of that identity (it belongs there anyway);
//   (2) a trojaned image of another identity retrieves the TROJANED
//       training data that causes the misclassification;
//   (3) a trojaned image of the identity that also pollutes the class
//       as mislabeled data retrieves a mix of TROJANED and MISLABELED
//       records.
#include <cstdio>

#include "bench_trojan_common.hpp"

using namespace caltrain;

namespace {

void RunCase(const char* title, bench::TrojanLab& lab,
             const nn::Image& probe) {
  const core::MispredictionReport report =
      lab.query->Investigate(probe, /*k=*/9);
  std::printf("\n%s\n", title);
  std::printf("  predicted class: %d (target class %d)\n",
              report.predicted_label, lab.target_class);
  std::printf("  %-4s %-10s %-10s %s\n", "rank", "distance", "source",
              "provenance");
  for (std::size_t r = 0; r < report.neighbors.size(); ++r) {
    const auto& n = report.neighbors[r];
    std::printf("  %-4zu %-10.4f %-10s %s\n", r + 1, n.distance,
                n.source.c_str(), bench::TagName(lab.provenance, n.id));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8 — closest-neighbour queries", profile);
  auto lab = bench::BuildTrojanLab(profile);
  Rng rng(profile.seed + 88);

  // Case 1 — "A.J.Buckley": trojaned image of the target identity.
  RunCase("Case 1: trojaned image of the TARGET identity (paper: all 9 "
          "neighbours are normal training data of that identity)",
          *lab,
          attack::ApplyTrigger(lab->faces.Sample(lab->target_class, rng)));

  // Case 2 — "Ridley Scott": trojaned image of an unrelated identity.
  RunCase("Case 2: trojaned image of ANOTHER identity (paper: all 9 "
          "neighbours are trojaned training data)",
          *lab, attack::ApplyTrigger(lab->faces.Sample(1, rng)));

  // Case 3 — "Eleanor Tomlinson": trojaned image of the identity whose
  // faces also pollute the class as mislabeled data.
  RunCase("Case 3: trojaned image of the MISLABELED identity (paper: mix "
          "of trojaned and mislabeled neighbours)",
          *lab,
          attack::ApplyTrigger(
              lab->faces.Sample(lab->mislabeled_identity, rng)));

  std::printf("\nforensic follow-up: the sources above are the participants\n"
              "CalTrain would solicit; turned-in data is verified against\n"
              "the linkage hash digest H before analysis.\n");
  return 0;
}
