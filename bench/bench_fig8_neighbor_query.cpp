// Reproduces Fig. 8: three representative nearest-neighbour queries for
// trojaned test images, with L2 fingerprint distances and provenance.
//
// Paper result shape:
//   (1) a trojaned image of the target identity itself retrieves NORMAL
//       training data of that identity (it belongs there anyway);
//   (2) a trojaned image of another identity retrieves the TROJANED
//       training data that causes the misclassification;
//   (3) a trojaned image of the identity that also pollutes the class
//       as mislabeled data retrieves a mix of TROJANED and MISLABELED
//       records.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_trojan_common.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

namespace {

void RunCase(const char* title, bench::TrojanLab& lab,
             const nn::Image& probe) {
  const core::MispredictionReport report =
      lab.query->Investigate(probe, /*k=*/9);
  std::printf("\n%s\n", title);
  std::printf("  predicted class: %d (target class %d)\n",
              report.predicted_label, lab.target_class);
  std::printf("  %-4s %-10s %-10s %s\n", "rank", "distance", "source",
              "provenance");
  for (std::size_t r = 0; r < report.neighbors.size(); ++r) {
    const auto& n = report.neighbors[r];
    std::printf("  %-4zu %-10.4f %-10s %s\n", r + 1, n.distance,
                n.source.c_str(), bench::TagName(lab.provenance, n.id));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8 — closest-neighbour queries", profile);
  auto lab = bench::BuildTrojanLab(profile);
  Rng rng(profile.seed + 88);

  // Case 1 — "A.J.Buckley": trojaned image of the target identity.
  RunCase("Case 1: trojaned image of the TARGET identity (paper: all 9 "
          "neighbours are normal training data of that identity)",
          *lab,
          attack::ApplyTrigger(lab->faces.Sample(lab->target_class, rng)));

  // Case 2 — "Ridley Scott": trojaned image of an unrelated identity.
  RunCase("Case 2: trojaned image of ANOTHER identity (paper: all 9 "
          "neighbours are trojaned training data)",
          *lab, attack::ApplyTrigger(lab->faces.Sample(1, rng)));

  // Case 3 — "Eleanor Tomlinson": trojaned image of the identity whose
  // faces also pollute the class as mislabeled data.
  RunCase("Case 3: trojaned image of the MISLABELED identity (paper: mix "
          "of trojaned and mislabeled neighbours)",
          *lab,
          attack::ApplyTrigger(
              lab->faces.Sample(lab->mislabeled_identity, rng)));

  std::printf("\nforensic follow-up: the sources above are the participants\n"
              "CalTrain would solicit; turned-in data is verified against\n"
              "the linkage hash digest H before analysis.\n");

  // --- serial vs parallel batched queries --------------------------------
  // A production query stage answers many mispredictions at once; the
  // batched API fans the kNN lookups across the thread pool.  Results
  // are asserted element-wise identical to the serial path.
  std::vector<nn::Image> probes;
  for (int round = 0; round < 8; ++round) {
    for (int id = 0; id < profile.identities; ++id) {
      probes.push_back(attack::ApplyTrigger(lab->faces.Sample(id, rng)));
    }
  }
  std::vector<core::MispredictionReport> serial_reports;
  double serial_ms = 0.0;
  {
    util::ScopedThreads one(1);
    Stopwatch timer;
    serial_reports = lab->query->InvestigateBatch(probes, 9);
    serial_ms = timer.ElapsedMillis();
  }
  const unsigned parallel_threads =
      std::max(2U, util::Parallelism::DefaultThreads());
  std::vector<core::MispredictionReport> parallel_reports;
  double parallel_ms = 0.0;
  {
    util::ScopedThreads many(parallel_threads);
    Stopwatch timer;
    parallel_reports = lab->query->InvestigateBatch(probes, 9);
    parallel_ms = timer.ElapsedMillis();
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial_reports.size(); ++i) {
    if (serial_reports[i].predicted_label !=
        parallel_reports[i].predicted_label) {
      ++mismatches;
      continue;
    }
    const auto& a = serial_reports[i].neighbors;
    const auto& b = parallel_reports[i].neighbors;
    if (a.size() != b.size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (a[r].id != b[r].id || a[r].distance != b[r].distance) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("\nbatched query throughput (%zu probes, k=9)\n", probes.size());
  std::printf("  %-22s %-10s %s\n", "mode", "ms", "probes/s");
  std::printf("  %-22s %-10.2f %.0f\n", "serial (threads=1)", serial_ms,
              1e3 * static_cast<double>(probes.size()) / serial_ms);
  std::printf("  %-22s %-10.2f %.0f\n",
              ("parallel (threads=" + std::to_string(parallel_threads) + ")")
                  .c_str(),
              parallel_ms,
              1e3 * static_cast<double>(probes.size()) / parallel_ms);
  std::printf("  element-wise mismatches vs serial: %zu%s\n", mismatches,
              mismatches == 0 ? " (identical)" : "  ** DIVERGED **");
  return mismatches == 0 ? 0 : 1;
}
