// Reproduces Fig. 8: three representative nearest-neighbour queries for
// trojaned test images, with L2 fingerprint distances and provenance.
//
// Paper result shape:
//   (1) a trojaned image of the target identity itself retrieves NORMAL
//       training data of that identity (it belongs there anyway);
//   (2) a trojaned image of another identity retrieves the TROJANED
//       training data that causes the misclassification;
//   (3) a trojaned image of the identity that also pollutes the class
//       as mislabeled data retrieves a mix of TROJANED and MISLABELED
//       records.
// With `--json PATH` the bench also emits machine-readable
// insert-throughput and query-latency rows (JsonBenchRow format) over a
// synthetic fingerprint corpus, so BENCH JSON tracks the kNN stack's
// trajectory alongside the GEMM micro-benches.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "bench_trojan_common.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

using namespace caltrain;

namespace {

// Explicit-field row construction: positional braced init silently put
// the thread count into items_per_s when JsonBenchRow grew new fields.
bench::JsonBenchRow LatencyRow(std::string op, std::string shape,
                               double ns_per_op, int threads) {
  bench::JsonBenchRow row;
  row.op = std::move(op);
  row.shape = std::move(shape);
  row.ns_per_op = ns_per_op;
  row.items_per_s = ns_per_op > 0.0 ? 1e9 / ns_per_op : 0.0;
  row.threads = threads;
  return row;
}


void RunCase(const char* title, bench::TrojanLab& lab,
             const nn::Image& probe) {
  const core::MispredictionReport report =
      lab.query->Investigate(probe, /*k=*/9);
  std::printf("\n%s\n", title);
  std::printf("  predicted class: %d (target class %d)\n",
              report.predicted_label, lab.target_class);
  std::printf("  %-4s %-10s %-10s %s\n", "rank", "distance", "source",
              "provenance");
  for (std::size_t r = 0; r < report.neighbors.size(); ++r) {
    const auto& n = report.neighbors[r];
    std::printf("  %-4zu %-10.4f %-10s %s\n", r + 1, n.distance,
                n.source.c_str(), bench::TagName(lab.provenance, n.id));
  }
}

// Insert-throughput and query-latency micro-rows over a synthetic
// fingerprint corpus (the linkage substrate at a scale the trojan lab
// doesn't reach).  Returns the number of element-wise mismatches
// between the parallel and serial paths (0 expected).
std::size_t RunLinkageSubstrate(const bench::BenchProfile& profile,
                                unsigned parallel_threads,
                                std::vector<bench::JsonBenchRow>& rows) {
  const int classes = profile.identities;
  const std::size_t per_class = profile.full ? 20000 : 2000;
  const std::size_t dim = 32;
  const std::size_t n = per_class * static_cast<std::size_t>(classes);
  const std::size_t num_queries = 512;
  const std::size_t k = 9;
  const std::string corpus_shape =
      std::to_string(n) + "x" + std::to_string(dim);

  Rng rng(profile.seed + 99);
  std::vector<linkage::LinkageRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].fingerprint.resize(dim);
    for (float& x : records[i].fingerprint) x = rng.Gaussian();
    L2NormalizeInPlace(records[i].fingerprint);
    records[i].label = static_cast<int>(i) % classes;
    records[i].source = "p" + std::to_string(i % 7);
  }
  std::vector<linkage::Fingerprint> queries(num_queries);
  std::vector<int> labels(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries[i].resize(dim);
    for (float& x : queries[i]) x = rng.Gaussian();
    L2NormalizeInPlace(queries[i]);
    labels[i] = static_cast<int>(i) % classes;
  }

  // --- insert throughput: serial Insert loop vs parallel InsertBatch.
  linkage::LinkageDatabase serial_db;
  double insert_serial_ms = 0.0;
  {
    util::ScopedThreads one(1);
    Stopwatch timer;
    for (const linkage::LinkageRecord& r : records) {
      (void)serial_db.Insert(r.fingerprint, r.label, r.source, r.hash);
    }
    insert_serial_ms = timer.ElapsedMillis();
  }
  linkage::LinkageDatabase batch_db;
  double insert_batch_ms = 0.0;
  {
    util::ScopedThreads many(parallel_threads);
    Stopwatch timer;
    (void)batch_db.InsertBatch(std::move(records));
    insert_batch_ms = timer.ElapsedMillis();
  }
  std::size_t mismatches =
      batch_db.Serialize() == serial_db.Serialize() ? 0U : 1U;

  // --- index build (all per-class segments, on the pool).
  double rebuild_ms = 0.0;
  {
    util::ScopedThreads many(parallel_threads);
    Stopwatch timer;
    batch_db.RebuildIndexes();
    rebuild_ms = timer.ElapsedMillis();
  }

  // --- query latency: serial QueryNearest loop vs QueryNearestBatch.
  std::vector<std::vector<linkage::QueryMatch>> serial_answers(num_queries);
  double query_serial_ms = 0.0;
  {
    util::ScopedThreads one(1);
    serial_db.RebuildIndexes();  // pre-build so the loop times queries only
    Stopwatch timer;
    for (std::size_t i = 0; i < num_queries; ++i) {
      serial_answers[i] = serial_db.QueryNearest(queries[i], labels[i], k);
    }
    query_serial_ms = timer.ElapsedMillis();
  }
  std::vector<std::vector<linkage::QueryMatch>> batch_answers;
  double query_batch_ms = 0.0;
  {
    util::ScopedThreads many(parallel_threads);
    Stopwatch timer;
    batch_answers = batch_db.QueryNearestBatch(queries, labels, k);
    query_batch_ms = timer.ElapsedMillis();
  }
  for (std::size_t i = 0; i < num_queries; ++i) {
    if (batch_answers[i].size() != serial_answers[i].size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t r = 0; r < batch_answers[i].size(); ++r) {
      if (batch_answers[i][r].id != serial_answers[i][r].id ||
          batch_answers[i][r].distance != serial_answers[i][r].distance) {
        ++mismatches;
        break;
      }
    }
  }

  const double dn = static_cast<double>(n);
  const double dq = static_cast<double>(num_queries);
  std::printf("\nlinkage substrate (%d classes x %zu tuples, dim %zu)\n",
              classes, per_class, dim);
  std::printf("  %-28s %-10s %s\n", "op", "ms", "per-op");
  std::printf("  %-28s %-10.2f %.0f ns/insert\n", "Insert (threads=1)",
              insert_serial_ms, 1e6 * insert_serial_ms / dn);
  std::printf("  %-28s %-10.2f %.0f ns/insert\n",
              ("InsertBatch (threads=" + std::to_string(parallel_threads) +
               ")").c_str(),
              insert_batch_ms, 1e6 * insert_batch_ms / dn);
  std::printf("  %-28s %-10.2f %.0f ns/tuple\n",
              ("RebuildIndexes (threads=" + std::to_string(parallel_threads) +
               ")").c_str(),
              rebuild_ms, 1e6 * rebuild_ms / dn);
  std::printf("  %-28s %-10.2f %.0f ns/query\n", "QueryNearest (threads=1)",
              query_serial_ms, 1e6 * query_serial_ms / dq);
  std::printf("  %-28s %-10.2f %.0f ns/query\n",
              ("QueryNearestBatch (threads=" +
               std::to_string(parallel_threads) + ")").c_str(),
              query_batch_ms, 1e6 * query_batch_ms / dq);
  std::printf("  element-wise mismatches vs serial: %zu%s\n", mismatches,
              mismatches == 0 ? " (identical)" : "  ** DIVERGED **");

  rows.push_back(LatencyRow("BM_LinkageInsert", corpus_shape,
                            1e6 * insert_serial_ms / dn, 1));
  rows.push_back(LatencyRow("BM_LinkageInsertBatch", corpus_shape,
                            1e6 * insert_batch_ms / dn,
                            static_cast<int>(parallel_threads)));
  rows.push_back(LatencyRow("BM_LinkageRebuildIndexes", corpus_shape,
                            1e6 * rebuild_ms / dn,
                            static_cast<int>(parallel_threads)));
  rows.push_back(LatencyRow("BM_LinkageQuery/k9", corpus_shape,
                            1e6 * query_serial_ms / dq, 1));
  rows.push_back(LatencyRow("BM_LinkageQueryBatch/k9", corpus_shape,
                            1e6 * query_batch_ms / dq,
                            static_cast<int>(parallel_threads)));
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ExtractFlagValue(argc, argv, "--json");
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8 — closest-neighbour queries", profile);
  auto lab = bench::BuildTrojanLab(profile);
  Rng rng(profile.seed + 88);

  // Case 1 — "A.J.Buckley": trojaned image of the target identity.
  RunCase("Case 1: trojaned image of the TARGET identity (paper: all 9 "
          "neighbours are normal training data of that identity)",
          *lab,
          attack::ApplyTrigger(lab->faces.Sample(lab->target_class, rng)));

  // Case 2 — "Ridley Scott": trojaned image of an unrelated identity.
  RunCase("Case 2: trojaned image of ANOTHER identity (paper: all 9 "
          "neighbours are trojaned training data)",
          *lab, attack::ApplyTrigger(lab->faces.Sample(1, rng)));

  // Case 3 — "Eleanor Tomlinson": trojaned image of the identity whose
  // faces also pollute the class as mislabeled data.
  RunCase("Case 3: trojaned image of the MISLABELED identity (paper: mix "
          "of trojaned and mislabeled neighbours)",
          *lab,
          attack::ApplyTrigger(
              lab->faces.Sample(lab->mislabeled_identity, rng)));

  std::printf("\nforensic follow-up: the sources above are the participants\n"
              "CalTrain would solicit; turned-in data is verified against\n"
              "the linkage hash digest H before analysis.\n");

  // --- serial vs parallel batched queries --------------------------------
  // A production query stage answers many mispredictions at once; the
  // batched API fans the kNN lookups across the thread pool.  Results
  // are asserted element-wise identical to the serial path.
  std::vector<nn::Image> probes;
  for (int round = 0; round < 8; ++round) {
    for (int id = 0; id < profile.identities; ++id) {
      probes.push_back(attack::ApplyTrigger(lab->faces.Sample(id, rng)));
    }
  }
  std::vector<core::MispredictionReport> serial_reports;
  double serial_ms = 0.0;
  {
    util::ScopedThreads one(1);
    Stopwatch timer;
    serial_reports = lab->query->InvestigateBatch(probes, 9);
    serial_ms = timer.ElapsedMillis();
  }
  const unsigned parallel_threads =
      std::max(2U, util::Parallelism::DefaultThreads());
  std::vector<core::MispredictionReport> parallel_reports;
  double parallel_ms = 0.0;
  {
    util::ScopedThreads many(parallel_threads);
    Stopwatch timer;
    parallel_reports = lab->query->InvestigateBatch(probes, 9);
    parallel_ms = timer.ElapsedMillis();
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial_reports.size(); ++i) {
    if (serial_reports[i].predicted_label !=
        parallel_reports[i].predicted_label) {
      ++mismatches;
      continue;
    }
    const auto& a = serial_reports[i].neighbors;
    const auto& b = parallel_reports[i].neighbors;
    if (a.size() != b.size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (a[r].id != b[r].id || a[r].distance != b[r].distance) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("\nbatched query throughput (%zu probes, k=9)\n", probes.size());
  std::printf("  %-22s %-10s %s\n", "mode", "ms", "probes/s");
  std::printf("  %-22s %-10.2f %.0f\n", "serial (threads=1)", serial_ms,
              1e3 * static_cast<double>(probes.size()) / serial_ms);
  std::printf("  %-22s %-10.2f %.0f\n",
              ("parallel (threads=" + std::to_string(parallel_threads) + ")")
                  .c_str(),
              parallel_ms,
              1e3 * static_cast<double>(probes.size()) / parallel_ms);
  std::printf("  element-wise mismatches vs serial: %zu%s\n", mismatches,
              mismatches == 0 ? " (identical)" : "  ** DIVERGED **");

  std::vector<bench::JsonBenchRow> rows;
  const double dprobes = static_cast<double>(probes.size());
  rows.push_back(LatencyRow("BM_InvestigateBatch/k9",
                            std::to_string(probes.size()) + "probes",
                            1e6 * serial_ms / dprobes, 1));
  rows.push_back(LatencyRow("BM_InvestigateBatch/k9",
                            std::to_string(probes.size()) + "probes",
                            1e6 * parallel_ms / dprobes,
                            static_cast<int>(parallel_threads)));
  mismatches += RunLinkageSubstrate(profile, parallel_threads, rows);

  if (!json_path.empty()) {
    if (bench::WriteBenchJson(json_path, rows)) {
      std::printf("\nwrote %zu benchmark rows to %s\n", rows.size(),
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 2;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
