// Reproduces Fig. 5: KL-divergence analysis of intermediate
// representations across twelve training epochs of the 18-layer
// (Table II) network.
//
// Paper result shape: for every epoch, the minimum KL score of the
// first three layers approaches zero (IRs still reveal the input);
// from layer 4 on, min KL rises to or above the uniform-distribution
// baseline — hence "enclose the first four layers".
#include <cstdio>
#include <vector>

#include "assess/exposure.hpp"
#include "bench_common.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  // Calibrated corpus size for a >=99% oracle (see EXPERIMENTS.md).
  if (!profile.full && profile.train_size == 1200) profile.train_size = 1500;
  bench::PrintHeader("Figure 5 — IR information exposure per epoch", profile);

  Rng rng(profile.seed);
  data::SyntheticCifar gen;
  const data::LabeledDataset train = gen.Generate(profile.train_size, rng);
  const data::LabeledDataset test = gen.Generate(profile.test_size, rng);

  // IRValNet: an independently trained oracle (Table-1 topology).
  std::printf("[setup] training IRValNet oracle...\n");
  // The oracle must be well-trained for the KL scores to be meaningful;
  // it gets a wider network than the generator under assessment.
  nn::Network validator = nn::BuildNetwork(
      nn::Table1Spec(std::max(1, profile.net_scale / 2)), rng);
  nn::TrainOptions val_options;
  val_options.epochs = 10;
  val_options.batch_size = profile.batch_size;
  val_options.sgd.learning_rate = 0.01F;
  val_options.augment = false;
  val_options.seed = profile.seed + 1;
  const auto val_history =
      nn::TrainNetwork(validator, train.images, train.labels, test.images,
                       test.labels, val_options);
  std::printf("[setup] IRValNet top-1 = %.1f%%\n",
              100.0 * val_history.back().top1);

  // Probe images: one per class from held-out data.
  std::vector<nn::Image> probes;
  for (int c = 0; c < 3; ++c) probes.push_back(gen.Sample(c, rng));

  // IRGenNet: the Table-2 network; assess the semi-trained model after
  // every epoch (the paper's 12 sub-figures).
  nn::Network generator =
      nn::BuildNetwork(nn::Table2Spec(profile.net_scale), rng);
  nn::TrainOptions gen_options;
  gen_options.epochs = profile.epochs;
  gen_options.batch_size = profile.batch_size;
  gen_options.sgd.learning_rate = 0.01F;
  gen_options.augment = false;
  gen_options.seed = profile.seed + 2;

  std::printf("\n%-6s %-6s %-10s %-10s %-10s %-10s %-10s %s\n", "epoch",
              "layer", "min_KL", "p10_KL", "mean_KL", "max_KL", "baseline",
              "leaks?");
  (void)nn::TrainNetwork(
      generator, train.images, train.labels, {}, {}, gen_options,
      [&](const nn::Network&, const nn::EpochStats& stats) {
        const assess::ExposureReport report =
            assess::AssessExposure(generator, validator, probes);
        for (const assess::LayerExposure& l : report.layers) {
          std::printf("%-6d %-6d %-10.4f %-10.4f %-10.4f %-10.4f %-10.4f %s\n",
                      stats.epoch, l.layer, l.min_kl, l.p10_kl, l.mean_kl,
                      l.max_kl, report.uniform_baseline,
                      l.p10_kl < report.uniform_baseline ? "LEAK" : "safe");
        }
        const int recommended = assess::RecommendFrontNetLayers(report);
        std::printf("epoch %d: recommended FrontNet depth = %d layers\n\n",
                    stats.epoch, recommended);
      });

  std::printf("paper shape check: layers 1-3 should LEAK (min KL ~ 0) in\n"
              "every epoch; deeper layers should reach/exceed baseline.\n");
  return 0;
}
