// Reproduces Experiment IV's headline claim: CalTrain "can accurately
// and precisely identify the poisoned and mislabeled training data, and
// further discover the malicious training participants."
//
// For every trojaned test probe (all non-target identities), queries
// the top-9 same-class neighbours and evaluates: precision of bad-data
// retrieval, per-probe poisoned-data recall, and attribution of the
// malicious participant.  Also reports the attack's own success rate
// and the stealthiness condition (benign accuracy preserved).
#include <cstdio>
#include <vector>

#include "bench_trojan_common.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Experiment IV — accountability metrics", profile);
  auto lab = bench::BuildTrojanLab(profile);
  Rng rng(profile.seed + 99);

  std::vector<std::vector<linkage::QueryMatch>> per_probe;
  std::size_t mispredicted = 0;
  for (int id = 1; id < profile.identities; ++id) {
    for (int i = 0; i < 5; ++i) {
      const nn::Image probe =
          attack::ApplyTrigger(lab->faces.Sample(id, rng));
      const core::MispredictionReport report =
          lab->query->Investigate(probe, 9);
      if (report.predicted_label != lab->target_class) continue;
      ++mispredicted;
      per_probe.push_back(report.neighbors);
    }
  }

  const linkage::AccountabilityEval eval = linkage::EvaluateAccountability(
      per_probe, lab->provenance, "mallory");

  std::printf("\nExperiment IV results:\n");
  std::printf("  attack success rate            : %.1f%%\n",
              100.0 * lab->attack_success);
  std::printf("  benign top-1 accuracy          : %.1f%%\n",
              100.0 * lab->benign_top1);
  std::printf("  probes hijacked to target class: %zu\n", mispredicted);
  std::printf("  bad-data precision (top-9)     : %.1f%%\n",
              100.0 * eval.precision_bad);
  std::printf("  poisoned-data recall per probe : %.1f%%\n",
              100.0 * eval.recall_poisoned);
  std::printf("  malicious-source attribution   : %.1f%%\n",
              100.0 * eval.source_attribution);
  std::printf("  neighbours retrieved           : %zu\n", eval.retrieved);

  const bool reproduced = eval.precision_bad >= 0.8 &&
                          eval.recall_poisoned >= 0.9 &&
                          eval.source_attribution >= 0.8;
  std::printf("\npaper claim (precise + accurate discovery of poisoned/\n"
              "mislabeled data and the responsible participant): %s\n",
              reproduced ? "REPRODUCED" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
