// Ablation: dynamic re-assessment of the partitioning layer
// (paper Sec. IV-B) versus a static, epoch-1 choice.
//
// The paper argues the optimal FrontNet depth moves as weights evolve,
// so participants re-assess every epoch.  This harness trains the
// Table-II network, runs the exposure framework after each epoch, and
// compares (a) the boundary chosen dynamically each epoch with (b) the
// boundary frozen at its epoch-1 value, counting *exposure incidents* —
// assessed layers outside the enclave whose leak statistic falls below
// the uniform baseline.
#include <cstdio>
#include <vector>

#include "assess/exposure.hpp"
#include "bench_common.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"

using namespace caltrain;

namespace {

int CountIncidents(const assess::ExposureReport& report, int front_layers) {
  int incidents = 0;
  for (const assess::LayerExposure& l : report.layers) {
    if (l.layer > front_layers && l.p10_kl < report.uniform_baseline) {
      ++incidents;
    }
  }
  return incidents;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  // Align with the calibrated Fig. 5 configuration (see EXPERIMENTS.md).
  if (!profile.full && profile.train_size == 1200) profile.train_size = 1500;
  bench::PrintHeader("Ablation — dynamic vs static partition choice",
                     profile);

  Rng rng(profile.seed);
  data::SyntheticCifar gen;
  const data::LabeledDataset train = gen.Generate(profile.train_size, rng);
  const data::LabeledDataset test = gen.Generate(profile.test_size, rng);

  std::printf("[setup] training IRValNet oracle...\n");
  nn::Network validator = nn::BuildNetwork(
      nn::Table1Spec(std::max(1, profile.net_scale / 2)), rng);
  nn::TrainOptions val_options;
  val_options.epochs = 10;
  val_options.batch_size = profile.batch_size;
  val_options.sgd.learning_rate = 0.01F;
  val_options.augment = false;
  val_options.seed = profile.seed + 1;
  (void)nn::TrainNetwork(validator, train.images, train.labels, test.images,
                         test.labels, val_options);

  std::vector<nn::Image> probes;
  for (int c = 0; c < 3; ++c) probes.push_back(gen.Sample(c, rng));

  nn::Network generator =
      nn::BuildNetwork(nn::Table2Spec(profile.net_scale), rng);
  nn::TrainOptions gen_options = val_options;
  gen_options.epochs = profile.epochs;
  gen_options.seed = profile.seed + 2;

  int static_front = -1;
  int dynamic_incidents = 0;
  int static_incidents = 0;
  std::printf("\n%-6s %-14s %-14s %-18s %-18s\n", "epoch", "dynamic_front",
              "static_front", "dynamic_incidents", "static_incidents");
  (void)nn::TrainNetwork(
      generator, train.images, train.labels, {}, {}, gen_options,
      [&](const nn::Network&, const nn::EpochStats& stats) {
        const assess::ExposureReport report =
            assess::AssessExposure(generator, validator, probes);
        const int dynamic_front = assess::RecommendFrontNetLayers(report);
        if (static_front < 0) static_front = dynamic_front;  // frozen
        const int dyn = CountIncidents(report, dynamic_front);
        const int sta = CountIncidents(report, static_front);
        dynamic_incidents += dyn;
        static_incidents += sta;
        std::printf("%-6d %-14d %-14d %-18d %-18d\n", stats.epoch,
                    dynamic_front, static_front, dyn, sta);
      });

  std::printf("\ntotal exposure incidents: dynamic %d, static %d\n",
              dynamic_incidents, static_incidents);
  std::printf("paper claim (re-assessing each epoch avoids exposure a\n"
              "static epoch-1 choice would allow): %s\n",
              dynamic_incidents <= static_incidents ? "SUPPORTED"
                                                    : "NOT supported");
  return 0;
}
