// Reproduces Fig. 3: prediction accuracy of the 10-layer (Table I)
// network trained with and without CalTrain protection, Top-1 and
// Top-2, over twelve epochs.
//
// Paper result shape: the two environments track each other epoch for
// epoch; accuracy fluctuates for the first ~6 epochs and stabilizes,
// with no loss from CalTrain.  (Absolute numbers differ: this harness
// trains on the synthetic offline corpus, see DESIGN.md.)
#include "bench_accuracy_common.hpp"
#include "nn/presets.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 3 — accuracy, 10-layer network", profile);
  return bench::RunAccuracyExperiment(
      "Fig. 3", nn::Table1Spec(profile.net_scale), profile);
}
