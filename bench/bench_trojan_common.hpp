// Shared setup for the Experiment-IV benches (Figs. 7, 8 and the
// detection metrics): a face-recognition model trained through the full
// CalTrain pipeline on contributions from honest participants, a
// malicious participant ("mallory") supplying trigger-stamped donors
// relabeled to the target class, and a negligent participant ("lazy")
// supplying mislabeled images — reproducing both the Trojaning Attack
// and the VGG-Face label-noise phenomenon the paper found in class 0.
#pragma once

#include <cstdio>
#include <unordered_map>

#include "attack/trojan.hpp"
#include "bench_common.hpp"
#include "core/participant.hpp"
#include "core/query.hpp"
#include "core/server.hpp"
#include "data/synthetic_faces.hpp"
#include "linkage/metrics.hpp"
#include "nn/presets.hpp"

namespace caltrain::bench {

struct TrojanLab {
  data::SyntheticFaces faces;
  int target_class = 0;          ///< the "A.J.Buckley" identity
  int mislabeled_identity = 0;   ///< donor identity of the mislabeled data
  core::TrainingServer server;
  linkage::LinkageDatabase database;
  linkage::ProvenanceMap provenance;
  std::unique_ptr<core::QueryService> query;
  int fingerprint_layer = -1;    ///< embedding FC layer (see DESIGN.md)
  double benign_top1 = 0.0;
  double attack_success = 0.0;
  data::LabeledDataset test;     ///< held-out benign faces

  explicit TrojanLab(const data::SyntheticFacesOptions& options)
      : faces(options) {}
};

inline std::unique_ptr<TrojanLab> BuildTrojanLab(
    const BenchProfile& profile) {
  data::SyntheticFacesOptions face_options;
  face_options.identities = profile.identities;
  auto lab = std::make_unique<TrojanLab>(face_options);
  lab->target_class = 0;
  lab->mislabeled_identity = profile.identities - 1;
  Rng rng(profile.seed);

  // Honest participants: two, splitting a balanced corpus.
  const std::size_t per_honest =
      profile.faces_per_identity_train * profile.identities / 2;
  std::printf("[setup] honest corpus: 2 x %zu faces, %d identities\n",
              per_honest, profile.identities);
  const data::LabeledDataset honest_all = lab->faces.Generate(
      profile.faces_per_identity_train * profile.identities, rng);
  auto honest_shards = data::SplitAmong(honest_all, 2);

  // Mallory: trigger-stamped donors from every non-target identity,
  // labeled as the target (the Trojaning Attack retraining corpus).
  // Donor pool: every identity except the target and the mislabeled one
  // (the paper's Eleanor Tomlinson case relies on her absence from the
  // trojan donor set).
  data::LabeledDataset donors;
  for (int id = 1; id < profile.identities - 1; ++id) {
    donors.Merge(lab->faces.GenerateForIdentity(
        id, profile.faces_per_identity_train / 4, rng));
  }
  const data::LabeledDataset poisoned =
      attack::MakePoisonedSet(donors, lab->target_class, "mallory");
  std::printf("[setup] mallory contributes %zu poisoned records\n",
              poisoned.size());

  // Lazy: mislabeled images of one identity, labeled as the target —
  // the paper found 24.3%% of VGG-Face class 0 mislabeled.
  // Paper: 24.3% of VGG-Face class 0 was mislabeled vs 49.7% correct —
  // keep a comparable mislabeled:normal ratio in the target class.
  const data::LabeledDataset mislabeled = attack::MakeMislabeledSet(
      lab->faces.GenerateForIdentity(
          lab->mislabeled_identity,
          (profile.faces_per_identity_train * 3) / 4, rng),
      lab->target_class, "lazy");
  std::printf("[setup] lazy contributes %zu mislabeled records\n",
              mislabeled.size());

  // Phase 1: honest participants provision + upload; a clean model is
  // trained (the pre-trained victim of the Trojaning Attack).
  std::vector<core::Participant> participants;
  participants.emplace_back("honest-A", honest_shards[0], profile.seed + 1);
  participants.emplace_back("honest-B", honest_shards[1], profile.seed + 2);
  for (auto& p : participants) {
    (void)p.ProvisionAndUpload(lab->server,
                               lab->server.training_measurement());
  }
  core::PartitionedTrainOptions options;
  options.epochs = profile.full ? 12 : 8;
  options.batch_size = 32;
  options.front_layers = 2;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;  // stamped triggers must reach the model intact
  options.seed = profile.seed + 5;
  std::printf("[setup] phase 1: clean training (%d epochs)...\n",
              options.epochs);
  (void)lab->server.Train(
      nn::FaceNetSpec(lab->faces.shape(), profile.identities,
                      profile.embedding_dim, profile.face_scale),
      options);

  // Phase 2: the malicious and negligent participants join; the model
  // is fine-tuned over everyone's data — the attack's retraining step,
  // run through the same confidential pipeline.
  participants.emplace_back("mallory", poisoned, profile.seed + 3);
  participants.emplace_back("lazy", mislabeled, profile.seed + 4);
  for (std::size_t p = 2; p < participants.size(); ++p) {
    (void)participants[p].ProvisionAndUpload(
        lab->server, lab->server.training_measurement());
  }
  core::PartitionedTrainOptions retrain = options;
  retrain.resume = true;
  retrain.epochs = profile.full ? 5 : 4;
  retrain.sgd.learning_rate = 0.005F;
  retrain.seed = profile.seed + 6;
  std::printf("[setup] phase 2: poisoned retraining (%d epochs)...\n",
              retrain.epochs);
  (void)lab->server.Train(
      nn::FaceNetSpec(lab->faces.shape(), profile.identities,
                      profile.embedding_dim, profile.face_scale),
      retrain);

  // Fingerprinting stage + provenance ground truth (harness-only).
  // VGG-Face's penultimate layer is 2622-wide; with only a handful of
  // synthetic identities the logits layer is too coarse to retain
  // within-class structure, so the fingerprint is taken one layer
  // earlier at the wide embedding FC (documented in DESIGN.md; the
  // fingerprint-layer ablation bench quantifies the choice).
  for (int i = 0; i < lab->server.model().NumLayers(); ++i) {
    if (lab->server.model().layer(i).kind() == nn::LayerKind::kConnected) {
      lab->fingerprint_layer = i;
      break;
    }
  }
  lab->database = lab->server.FingerprintAll(lab->fingerprint_layer);
  for (std::uint64_t id = 0; id < lab->database.size(); ++id) {
    const auto& tuple = lab->database.tuple(id);
    if (tuple.source == "mallory") {
      lab->provenance[id] = linkage::ProvenanceTag::kPoisoned;
    } else if (tuple.source == "lazy") {
      lab->provenance[id] = linkage::ProvenanceTag::kMislabeled;
    }
  }

  // Evaluation artifacts.
  lab->test = lab->faces.Generate(
      profile.faces_per_identity_test * profile.identities, rng);
  lab->benign_top1 = nn::EvaluateTopK(lab->server.model(), lab->test.images,
                                      lab->test.labels, 1);
  std::vector<nn::Image> probes;
  for (int id = 1; id < profile.identities; ++id) {
    for (std::size_t i = 0; i < 4; ++i) {
      probes.push_back(lab->faces.Sample(id, rng));
    }
  }
  lab->attack_success = attack::AttackSuccessRate(
      lab->server.model(), attack::StampAll(probes), lab->target_class);
  std::printf("[setup] benign top-1 %.1f%%, attack success rate %.1f%%\n",
              100.0 * lab->benign_top1, 100.0 * lab->attack_success);

  lab->query = std::make_unique<core::QueryService>(
      std::move(lab->server.model()),
      linkage::LinkageDatabase::Deserialize(lab->database.Serialize()),
      lab->fingerprint_layer);
  return lab;
}

inline const char* TagName(const linkage::ProvenanceMap& provenance,
                           std::uint64_t id) {
  const auto it = provenance.find(id);
  if (it == provenance.end()) return "normal";
  return it->second == linkage::ProvenanceTag::kPoisoned ? "TROJANED"
                                                         : "MISLABELED";
}

}  // namespace caltrain::bench
