// Shared harness for the Fig. 3 / Fig. 4 prediction-accuracy
// experiments: train the given topology (a) in a non-protected
// environment (plain trainer, fast kernels) and (b) through the full
// CalTrain pipeline (participants encrypt + provision; partitioned
// training with the first two layers enclaved, as in the paper's
// Sec. VI-A setup), then print per-epoch Top-1/Top-2 for both.
#pragma once

#include <cstdio>

#include "bench_common.hpp"
#include "core/participant.hpp"
#include "core/server.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/trainer.hpp"

namespace caltrain::bench {

inline int RunAccuracyExperiment(const char* figure_name,
                                 const nn::NetworkSpec& spec,
                                 const BenchProfile& profile) {
  Rng rng(profile.seed);
  data::SyntheticCifar gen;
  const data::LabeledDataset train = gen.Generate(profile.train_size, rng);
  const data::LabeledDataset test = gen.Generate(profile.test_size, rng);

  // --- (a) non-protected environment --------------------------------
  std::printf("[baseline] training in non-protected environment...\n");
  nn::Network plain_net(spec);
  plain_net.InitWeights(rng);
  // Both environments start from the same weights so the comparison
  // isolates the pipeline, not the initialization lottery.
  const Bytes initial_weights =
      plain_net.SerializeWeightRange(0, plain_net.NumLayers());
  // Photometric augmentation only: the synthetic classes are coded by
  // texture geometry (orientation/frequency), so the flip/rotation
  // augmentations that suit natural images would multiply the class
  // modes and push convergence past 12 epochs.  The in-enclave
  // augmentation path is still exercised (brightness/contrast jitter
  // from the enclave DRBG).
  nn::AugmentOptions augment;
  augment.flip = false;
  augment.max_rotation_deg = 0.0F;
  augment.max_translate_px = 0;

  nn::TrainOptions options;
  options.epochs = profile.epochs;
  options.batch_size = profile.batch_size;
  options.sgd.learning_rate = 0.01F;
  options.augment = true;
  options.augment_options = augment;
  options.seed = profile.seed + 1;
  const auto plain = nn::TrainNetwork(plain_net, train.images, train.labels,
                                      test.images, test.labels, options);

  // --- (b) CalTrain --------------------------------------------------
  std::printf("[caltrain] training via the CalTrain pipeline "
              "(4 participants, FrontNet = first 2 layers)...\n");
  core::ServerConfig server_config;
  server_config.seed = profile.seed + 2;
  core::TrainingServer server(server_config);

  const auto shards = data::SplitAmong(train, 4);
  const char* names[] = {"participant-A", "participant-B", "participant-C",
                         "participant-D"};
  for (std::size_t p = 0; p < shards.size(); ++p) {
    core::Participant participant(names[p], shards[p],
                                  profile.seed + 10 + p);
    (void)participant.ProvisionAndUpload(server,
                                         server.training_measurement());
  }

  core::PartitionedTrainOptions server_options;
  server_options.epochs = profile.epochs;
  server_options.batch_size = profile.batch_size;
  server_options.front_layers = 2;  // paper: "first two layers in an enclave"
  server_options.sgd.learning_rate = 0.01F;
  server_options.augment = true;
  server_options.augment_options = augment;
  server_options.seed = profile.seed + 1;
  server_options.initial_weights = initial_weights;
  server_options.test_images = &test.images;
  server_options.test_labels = &test.labels;
  const core::TrainReport report = server.Train(spec, server_options);

  // --- the figure -----------------------------------------------------
  std::printf("\n%s series (accuracy %%):\n", figure_name);
  std::printf("%-6s %-12s %-12s %-14s %-14s\n", "epoch", "plain_top1",
              "plain_top2", "caltrain_top1", "caltrain_top2");
  for (int e = 0; e < profile.epochs; ++e) {
    std::printf("%-6d %-12.2f %-12.2f %-14.2f %-14.2f\n", e + 1,
                100.0 * plain[static_cast<std::size_t>(e)].top1,
                100.0 * plain[static_cast<std::size_t>(e)].top2,
                100.0 * report.epochs[static_cast<std::size_t>(e)].top1,
                100.0 * report.epochs[static_cast<std::size_t>(e)].top2);
  }
  // Converged accuracy: best of the last four epochs (the curves
  // fluctuate epoch to epoch, as the paper notes for its Fig. 3).
  const auto converged = [&](const std::vector<nn::EpochStats>& h) {
    double best = 0.0;
    for (std::size_t e = h.size() >= 4 ? h.size() - 4 : 0; e < h.size(); ++e) {
      best = std::max(best, h[e].top1);
    }
    return best;
  };
  const double plain_final = converged(plain);
  const double caltrain_final = converged(report.epochs);
  const double final_gap = std::abs(plain_final - caltrain_final);
  std::printf("\nconverged top-1: plain %.2f%%, caltrain %.2f%% "
              "(gap %.2f pts)\n",
              100.0 * plain_final, 100.0 * caltrain_final, 100.0 * final_gap);
  std::printf("paper shape: both environments converge to the SAME accuracy\n"
              "at the same epoch count; reproduced %s.\n",
              final_gap <= 0.06 ? "YES" : "NO (gap > 6 points)");
  std::printf("enclave accounting: %llu ecalls, %llu ocalls, %llu EPC "
              "faults, %.1f MB IR traffic out, %.1f MB delta traffic in\n",
              static_cast<unsigned long long>(report.transitions.ecalls),
              static_cast<unsigned long long>(report.transitions.ocalls),
              static_cast<unsigned long long>(report.epc.page_faults),
              static_cast<double>(report.partition.ir_bytes_out) / 1e6,
              static_cast<double>(report.partition.delta_bytes_in) / 1e6);
  return final_gap <= 0.06 ? 0 : 1;
}

}  // namespace caltrain::bench
