// Shared harness utilities for the figure/table reproduction benches.
//
// Every bench accepts:
//   --full       paper-scale networks (filter scale 1) and corpus sizes;
//                without it the CI profile runs the same topologies at
//                reduced width so each figure regenerates in minutes on
//                one core (see DESIGN.md "Scale").
//   --seed N     experiment seed (default 42).
//   --threads N  worker threads for the parallel runtime; wins over the
//                CALTRAIN_THREADS environment variable.
//   --json PATH  (bench_micro_substrates, bench_fig8_neighbor_query,
//                bench_fig6_partition_overhead)
//                machine-readable results: one JSON array of
//                {op, shape, ns_per_op, gflops, items_per_s, bytes_per_s,
//                threads} rows, the perf-trajectory format (BENCH_micro.json;
//                the CI scaling gate tools/check_bench_scaling.py
//                consumes the thread-sweep rows; fig8 emits
//                linkage insert-throughput and kNN query-latency rows;
//                fig6 emits serve-ingest throughput and
//                transitions-per-record rows — BENCH_serve.json).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/threadpool.hpp"

namespace caltrain::bench {

struct BenchProfile {
  bool full = false;
  std::uint64_t seed = 42;

  // CIFAR-style experiments.
  int net_scale = 16;            ///< divides conv filter counts
  std::size_t train_size = 1200;
  std::size_t test_size = 300;
  int epochs = 12;
  int batch_size = 32;

  // Face / trojan experiments.
  int identities = 8;
  std::size_t faces_per_identity_train = 40;
  std::size_t faces_per_identity_test = 10;
  int face_scale = 8;
  int embedding_dim = 64;
};

inline BenchProfile ParseArgs(int argc, char** argv) {
  BenchProfile profile;
  (void)util::ApplyThreadsFlag(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      profile.full = true;
      profile.net_scale = 1;
      profile.train_size = 50000;
      profile.test_size = 10000;
      profile.identities = 20;
      profile.faces_per_identity_train = 200;
      profile.faces_per_identity_test = 25;
      profile.face_scale = 1;
      profile.embedding_dim = 256;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      profile.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      profile.net_scale = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      profile.epochs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--train") == 0 && i + 1 < argc) {
      profile.train_size = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return profile;
}

/// One machine-readable micro-benchmark result.
struct JsonBenchRow {
  std::string op;     ///< benchmark name, e.g. "BM_ConvGemm/L2_block8"
  std::string shape;  ///< operand shape, e.g. "128x6272x1152" or "batch32"
  double ns_per_op = 0.0;
  double gflops = 0.0;       ///< 0 when the op has no FLOP accounting
  double items_per_s = 0.0;  ///< op-defined throughput (FLOP/s for GEMMs,
                             ///< samples/s for training, queries/s for kNN);
                             ///< 0 when the op reports none
  double bytes_per_s = 0.0;  ///< byte throughput (crypto / record ops);
                             ///< 0 when the op has no byte accounting
  /// Enclave transitions per uploaded record (serve-ingest rows only;
  /// emitted as its own JSON key instead of masquerading as a time in
  /// ns_per_op).  0 when the op does not account transitions.
  double transitions_per_record = 0.0;
  int threads = 1;
};

/// Scans argv for `--flag PATH` and, when present, removes both tokens
/// (so downstream parsers never see them) and returns the value.
/// Returns an empty string when the flag is absent.
inline std::string ExtractFlagValue(int& argc, char** argv,
                                    const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return {};
}

/// Writes `rows` to `path` as a JSON array (the BENCH_micro.json
/// perf-trajectory format).  Returns false if the file cannot be
/// opened.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<JsonBenchRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonBenchRow& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shape\": \"%s\", "
                 "\"ns_per_op\": %.3f, \"gflops\": %.2f, "
                 "\"items_per_s\": %.1f, \"bytes_per_s\": %.1f, ",
                 r.op.c_str(), r.shape.c_str(), r.ns_per_op, r.gflops,
                 r.items_per_s, r.bytes_per_s);
    if (r.transitions_per_record > 0.0) {
      std::fprintf(f, "\"transitions_per_record\": %.3f, ",
                   r.transitions_per_record);
    }
    std::fprintf(f, "\"threads\": %d}%s\n", r.threads,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

inline void PrintHeader(const char* artifact, const BenchProfile& profile) {
  std::printf("==================================================\n");
  std::printf("CalTrain reproduction: %s\n", artifact);
  std::printf("profile: %s (net_scale=%d, train=%zu, epochs=%d, seed=%llu)\n",
              profile.full ? "FULL (paper scale)" : "CI (reduced width)",
              profile.net_scale, profile.train_size, profile.epochs,
              static_cast<unsigned long long>(profile.seed));
  std::printf("==================================================\n");
}

}  // namespace caltrain::bench
