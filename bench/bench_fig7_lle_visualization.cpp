// Reproduces Fig. 7: locally-linear-embedding visualization of the
// target-class face fingerprints.
//
// Paper result shape: the trojaned training data ("x") and trojaned
// testing data ("o") overlap each other while both sit apart from the
// normal training data ("+") of the same class — the cluster structure
// that makes nearest-neighbour accountability work.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_trojan_common.hpp"
#include "linkage/fingerprint.hpp"
#include "linkage/lle.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 7 — LLE of trojaned face fingerprints",
                     profile);
  auto lab = bench::BuildTrojanLab(profile);

  // Collect class-0 fingerprints: normal train / trojaned train, from
  // the linkage DB; trojaned test, freshly probed through the model.
  std::vector<std::vector<float>> points;
  std::vector<char> tags;  // '+', 'x', 'o'
  for (std::uint64_t id : lab->database.IdsForLabel(lab->target_class)) {
    const auto& tuple = lab->database.tuple(id);
    if (tuple.source == "lazy") continue;  // Fig. 7 plots 3 groups
    points.push_back(tuple.fingerprint);
    tags.push_back(tuple.source == "mallory" ? 'x' : '+');
  }
  Rng rng(profile.seed + 77);
  for (int id = 1; id < profile.identities; ++id) {
    for (int i = 0; i < 3; ++i) {
      const nn::Image probe =
          attack::ApplyTrigger(lab->faces.Sample(id, rng));
      points.push_back(linkage::ExtractFingerprintAt(
          lab->query->model(), probe, lab->fingerprint_layer));
      tags.push_back('o');
    }
  }
  std::printf("[lle] embedding %zu fingerprints (dim %zu) to 2-D...\n",
              points.size(), points[0].size());
  linkage::LleOptions lle_options;
  lle_options.neighbors = 10;
  const auto coords = linkage::LocallyLinearEmbedding(points, lle_options);

  std::printf("\nFig. 7 series — 2-D LLE coordinates "
              "(+ normal train, x trojaned train, o trojaned test):\n");
  for (std::size_t i = 0; i < coords.size(); ++i) {
    std::printf("%c % .5f % .5f\n", tags[i], coords[i][0], coords[i][1]);
  }

  // Quantitative shape check: trojaned-train and trojaned-test
  // centroids are close to each other, both far from the normal one.
  double cx[3] = {0, 0, 0}, cy[3] = {0, 0, 0};
  int n[3] = {0, 0, 0};
  const auto group = [](char tag) { return tag == '+' ? 0 : tag == 'x' ? 1 : 2; };
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const int g = group(tags[i]);
    cx[g] += coords[i][0];
    cy[g] += coords[i][1];
    ++n[g];
  }
  for (int g = 0; g < 3; ++g) {
    cx[g] /= n[g];
    cy[g] /= n[g];
  }
  const double trojan_pair = std::hypot(cx[1] - cx[2], cy[1] - cy[2]);
  const double normal_to_trojan_train =
      std::hypot(cx[0] - cx[1], cy[0] - cy[1]);
  const double normal_to_trojan_test =
      std::hypot(cx[0] - cx[2], cy[0] - cy[2]);
  std::printf("\ncentroid distances: trojan-train<->trojan-test %.4f,\n"
              "  normal<->trojan-train %.4f, normal<->trojan-test %.4f\n",
              trojan_pair, normal_to_trojan_train, normal_to_trojan_test);
  const bool shape = trojan_pair < normal_to_trojan_train &&
                     trojan_pair < normal_to_trojan_test;
  std::printf("paper shape (trojaned train/test overlap, both apart from\n"
              "normal data): reproduced %s\n", shape ? "YES" : "NO");
  return shape ? 0 : 1;
}
