// Ablation: the DP-SGD drop-in (paper Sec. VII proposes replacing SGD
// with DP-SGD to render Model Inversion ineffective).
//
// Sweeps the Gaussian noise level at fixed clipping and reports (a)
// model accuracy and (b) how much harder gradient-based fingerprint
// reconstruction becomes — the utility/privacy trade the paper alludes
// to, measured end to end.
#include <cstdio>
#include <vector>

#include "attack/inversion.hpp"
#include "bench_common.hpp"
#include "data/synthetic_cifar.hpp"
#include "linkage/fingerprint.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  if (!profile.full && profile.train_size > 800) profile.train_size = 800;
  bench::PrintHeader("Ablation — DP-SGD noise sweep", profile);

  Rng rng(profile.seed);
  data::SyntheticCifar gen;
  const data::LabeledDataset train = gen.Generate(profile.train_size, rng);
  const data::LabeledDataset test = gen.Generate(profile.test_size, rng);

  const std::vector<float> noise_levels = {0.0F, 0.05F, 0.25F, 1.0F, 4.0F};
  std::printf("%-12s %-10s %-10s %-22s\n", "dp_noise", "top1", "top2",
              "inversion_progress");
  for (const float noise : noise_levels) {
    Rng net_rng(profile.seed);  // same init across the sweep
    nn::Network net = nn::BuildNetwork(
        nn::Table1Spec(std::max(1, profile.net_scale / 2)), net_rng);
    Rng dp_rng(profile.seed + 1);
    nn::TrainOptions options;
    options.epochs = profile.full ? 12 : 8;
    options.batch_size = 32;
    options.sgd.learning_rate = 0.01F;
    options.sgd.dp_clip_norm = 4.0F;
    options.sgd.dp_noise_stddev = noise;
    options.sgd.dp_rng = noise > 0.0F ? &dp_rng : nullptr;
    options.augment = false;
    options.seed = profile.seed + 2;
    const auto history = nn::TrainNetwork(net, train.images, train.labels,
                                          test.images, test.labels, options);

    // How well does the white-box reconstruction attack do against this
    // model's fingerprints?
    const linkage::Fingerprint target =
        linkage::ExtractFingerprint(net, train.images[0]);
    Rng inv_rng(profile.seed + 3);
    attack::InversionOptions inv_options;
    inv_options.iterations = 100;
    const attack::InversionResult inversion =
        attack::ReconstructFromFingerprint(net, target, inv_options, inv_rng);

    std::printf("%-12.3f %-10.3f %-10.3f %-22.3f\n", noise,
                history.back().top1, history.back().top2,
                inversion.Progress());
  }
  std::printf("\npaper claim (DP-SGD slots into the CalTrain training stage\n"
              "and trades accuracy for inversion resistance): the sweep\n"
              "above records the measured trade-off.\n");
  return 0;
}
