// Reproduces Table I: the 10-layer CIFAR-10 network architecture.
// Prints the layer table at paper scale and verifies every row's
// input/output tensor shape against the paper's Appendix A.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/presets.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table I — 10-layer DNN for CIFAR-10", profile);

  Rng rng(profile.seed);
  nn::Network net = nn::BuildNetwork(nn::Table1Spec(/*scale=*/1), rng);
  std::printf("%s\n", net.ArchitectureTable().c_str());

  // Paper rows (layer -> output shape).
  struct Row { int layer; nn::Shape out; };
  const Row expected[] = {
      {1, {28, 28, 128}}, {2, {28, 28, 128}}, {3, {14, 14, 128}},
      {4, {14, 14, 64}},  {5, {7, 7, 64}},    {6, {7, 7, 128}},
      {7, {7, 7, 10}},    {8, {1, 1, 10}},    {9, {1, 1, 10}},
      {10, {1, 1, 10}},
  };
  bool all_match = true;
  for (const Row& row : expected) {
    const nn::Shape got = net.layer(row.layer - 1).out_shape();
    const bool match = got == row.out;
    all_match = all_match && match;
    std::printf("layer %-2d output %-12s paper %-12s %s\n", row.layer,
                got.ToString().c_str(), row.out.ToString().c_str(),
                match ? "OK" : "MISMATCH");
  }
  std::printf("\nTable I shape check: %s\n", all_match ? "PASS" : "FAIL");
  std::printf("total forward FLOPs/sample: %.1f M\n",
              static_cast<double>(net.FlopsPerSample(0, net.NumLayers())) /
                  1e6);
  std::printf("total weight bytes: %.2f MB\n",
              static_cast<double>(net.WeightBytes(0, net.NumLayers())) /
                  (1024.0 * 1024.0));
  return all_match ? 0 : 1;
}
