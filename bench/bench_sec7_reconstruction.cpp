// Security analysis (paper Secs. IV-C and VII): can leaked fingerprints
// be reconstructed into training inputs?
//
// The paper's argument: Input Reconstruction Techniques need access to
// the complete model, but CalTrain only ever releases the FrontNet
// encrypted per participant — so a training-server adversary holding
// the fingerprint database plus the plaintext BackNet cannot invert
// fingerprints.  This harness measures that claim with a gradient-based
// reconstruction attack (attack/inversion.hpp) under three access
// levels:
//
//   white-box      — complete model (what an insider with a decrypted
//                    FrontNet could do; NOT available to the server)
//   guessed-front  — plaintext BackNet + randomly initialized FrontNet
//                    (the server adversary's best effort)
//   gray baseline  — no attack at all (the initialization itself)
#include <cstdio>

#include "attack/inversion.hpp"
#include "bench_common.hpp"
#include "data/synthetic_faces.hpp"
#include "linkage/fingerprint.hpp"
#include "nn/presets.hpp"
#include "nn/trainer.hpp"
#include "util/mathx.hpp"

using namespace caltrain;

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Security analysis — fingerprint reconstruction",
                     profile);

  data::SyntheticFacesOptions face_options;
  face_options.identities = profile.identities;
  data::SyntheticFaces faces(face_options);
  Rng rng(profile.seed);

  const data::LabeledDataset train = faces.Generate(
      profile.faces_per_identity_train * profile.identities, rng);
  const data::LabeledDataset test = faces.Generate(
      profile.faces_per_identity_test * profile.identities, rng);

  nn::Network model = nn::BuildNetwork(
      nn::FaceNetSpec(faces.shape(), profile.identities,
                      profile.embedding_dim, profile.face_scale),
      rng);
  nn::TrainOptions options;
  options.epochs = profile.full ? 12 : 8;
  options.batch_size = 32;
  options.sgd.learning_rate = 0.01F;
  options.augment = false;
  options.seed = profile.seed + 1;
  std::printf("[setup] training the face model...\n");
  const auto history = nn::TrainNetwork(model, train.images, train.labels,
                                        test.images, test.labels, options);
  std::printf("[setup] top-1 %.1f%%\n", 100.0 * history.back().top1);

  // Embedding layer = the wide FC (see DESIGN.md calibration 3).
  int embedding_fc = -1;
  for (int i = 0; i < model.NumLayers(); ++i) {
    if (model.layer(i).kind() == nn::LayerKind::kConnected) {
      embedding_fc = i;
      break;
    }
  }

  // The adversary's guessed-FrontNet model: true BackNet weights, random
  // FrontNet (first two layers — the Fig. 3/4 partition).
  nn::Network guessed = nn::Network::DeserializeModel(model.SerializeModel());
  Rng reinit(profile.seed + 2);
  guessed.layer(0).InitWeights(reinit);
  guessed.layer(1).InitWeights(reinit);

  attack::InversionOptions inv_options;
  inv_options.iterations = profile.full ? 400 : 150;
  inv_options.embedding_layer = embedding_fc;

  std::printf("\n%-6s %-16s %-16s %-16s %-14s\n", "probe",
              "whitebox_dist", "guessed_dist", "baseline_dist",
              "pixel_mse_wb");
  double wb_sum = 0.0, guess_sum = 0.0, base_sum = 0.0;
  constexpr int kProbes = 5;
  for (int p = 0; p < kProbes; ++p) {
    const nn::Image& original = train.images[static_cast<std::size_t>(p) * 7];
    const linkage::Fingerprint target =
        linkage::ExtractFingerprintAt(model, original, embedding_fc);

    Rng wb_rng(profile.seed + 10 + p);
    const attack::InversionResult whitebox =
        attack::ReconstructFromFingerprint(model, target, inv_options,
                                           wb_rng);
    Rng guess_rng(profile.seed + 10 + p);
    const attack::InversionResult guessed_run =
        attack::ReconstructFromFingerprint(guessed, target, inv_options,
                                           guess_rng);
    // Judge every reconstruction against the TRUE embedding.
    const auto true_dist = [&](const nn::Image& img) {
      return linkage::FingerprintDistance(
          linkage::ExtractFingerprintAt(model, img, embedding_fc), target);
    };
    const double wb = true_dist(whitebox.reconstruction);
    const double guess = true_dist(guessed_run.reconstruction);
    const double baseline = whitebox.initial_distance;

    double mse = 0.0;
    for (std::size_t i = 0; i < original.pixels.size(); ++i) {
      const double d = whitebox.reconstruction.pixels[i] - original.pixels[i];
      mse += d * d;
    }
    mse /= static_cast<double>(original.pixels.size());

    std::printf("%-6d %-16.4f %-16.4f %-16.4f %-14.4f\n", p, wb, guess,
                baseline, mse);
    wb_sum += wb;
    guess_sum += guess;
    base_sum += baseline;
  }
  wb_sum /= kProbes;
  guess_sum /= kProbes;
  base_sum /= kProbes;

  std::printf("\nmean embedding distance to target fingerprint:\n");
  std::printf("  white-box attacker : %.4f (attack works with the full "
              "model)\n", wb_sum);
  std::printf("  guessed-FrontNet   : %.4f\n", guess_sum);
  std::printf("  no-attack baseline : %.4f\n", base_sum);
  const bool supported = guess_sum > 2.0 * wb_sum;
  std::printf("\npaper claim (withholding the encrypted FrontNet defeats\n"
              "fingerprint reconstruction): %s (guessed-FrontNet attacker\n"
              "is %.1fx worse than white-box)\n",
              supported ? "SUPPORTED" : "NOT supported",
              wb_sum > 0 ? guess_sum / wb_sum : 0.0);
  return supported ? 0 : 1;
}
