// Message bodies for the serving wire protocol (ISSUE 10).
//
// Every message is encoded with util::ByteWriter (little-endian,
// 32-bit length prefixes) into a frame payload whose first byte is the
// MsgType; Encode* returns that full payload ready for EncodeFrame.
// Decode* parses the BODY (payload after the type byte) and applies
// strict validation:
//
//   * every read is bounds-checked (ByteReader throws on truncation),
//   * trailing bytes after a complete body are rejected — a request
//     that says more than its schema is as hostile as one that says
//     less,
//   * attacker-supplied counts never pre-size allocations beyond what
//     the remaining input could actually hold, and image dimensions
//     are capped before the pixel count is computed.
//
// All decode failures surface as caltrain::Error(kInvalidArgument),
// which the server folds into a typed kInvalidArgument error frame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.hpp"
#include "core/server.hpp"
#include "net/wire.hpp"
#include "nn/tensor.hpp"
#include "serve/result.hpp"
#include "serve/service.hpp"
#include "util/serial.hpp"

namespace caltrain::net {

/// Wire-stable error codes (u8).  Append, never renumber — these
/// outlive any one build's ServeErrorKind ordering.
enum class WireErrorCode : std::uint8_t {
  kUnprovisionedParticipant = 1,
  kAuthFailure = 2,
  kQueueSaturated = 3,
  kWrongPhase = 4,
  kInvalidArgument = 5,
  kTimeout = 6,
  kRetryExhausted = 7,
  kDegraded = 8,
  kCorruptJournal = 9,
  kInternal = 10,
};

[[nodiscard]] WireErrorCode ToWire(serve::ServeErrorKind kind) noexcept;
/// Unknown codes (newer peer) map to kInternal rather than rejecting.
[[nodiscard]] serve::ServeErrorKind FromWire(WireErrorCode code) noexcept;

// --- connection handshake ---------------------------------------------

struct HelloRequest {
  std::uint32_t magic = kHelloMagic;
  std::uint32_t version_min = kProtocolVersionMin;
  std::uint32_t version_max = kProtocolVersionMax;
};

struct HelloAck {
  std::uint32_t version = 0;       ///< negotiated protocol version
  std::uint64_t max_frame_bytes = 0;
  Bytes attestation_public_key;    ///< 16 bytes (crypto::U128, LE)
  Bytes measurement;               ///< 32 bytes (training enclave hash)
};

// --- provisioning (opaque securechannel blobs, tunneled) --------------

struct ProvisionMsg {
  std::string participant_id;
  Bytes blob;  ///< opaque handshake / protected-record bytes
};

struct ProvisionBlobAck {
  Bytes blob;  ///< server hello (opaque)
};

struct ProvisionOkAck {
  bool ok = false;
};

// --- upload sessions ---------------------------------------------------

struct OpenSessionRequest {
  std::string participant_id;
};

struct OpenSessionAck {
  std::uint64_t session = 0;
};

struct SubmitUploadRequest {
  std::uint64_t session = 0;
  /// Per-session submission counter assigned by the client; the server
  /// deduplicates transport-level resubmits with it (see net::Server).
  std::uint64_t upload_seq = 0;
  std::vector<data::EncryptedRecord> records;
};

struct CloseSessionRequest {
  std::uint64_t session = 0;
};

// --- queries and release ----------------------------------------------

struct InvestigateRequest {
  nn::Image input;
  std::uint64_t k = 0;
};

struct InvestigateBatchRequest {
  std::vector<nn::Image> inputs;
  std::uint64_t k = 0;
};

struct ReleaseRequest {
  std::string participant_id;
};

struct StatusAck {
  std::uint8_t phase = 0;  ///< serve::Phase enumerator value
  bool degraded = false;
  std::uint64_t accepted_records = 0;
  std::uint64_t rejected_records = 0;
};

// --- encoders (full frame payload: type byte + body) -------------------

[[nodiscard]] Bytes EncodeHello(const HelloRequest& msg);
[[nodiscard]] Bytes EncodeHelloAck(const HelloAck& msg);
[[nodiscard]] Bytes EncodeError(const serve::ServeError& error);
[[nodiscard]] Bytes EncodeProvision(MsgType type, const ProvisionMsg& msg);
[[nodiscard]] Bytes EncodeProvisionBlobAck(const ProvisionBlobAck& msg);
[[nodiscard]] Bytes EncodeProvisionOkAck(MsgType type,
                                         const ProvisionOkAck& msg);
[[nodiscard]] Bytes EncodeOpenSession(const OpenSessionRequest& msg);
[[nodiscard]] Bytes EncodeOpenSessionAck(const OpenSessionAck& msg);
[[nodiscard]] Bytes EncodeSubmitUpload(const SubmitUploadRequest& msg);
/// Fully framed form (header + payload in one buffer): identical bytes
/// to EncodeFrame(EncodeSubmitUpload(msg)) without the payload copy —
/// uploads are the protocol's bulk message, the copy is measurable.
[[nodiscard]] Bytes EncodeSubmitUploadFrame(
    const SubmitUploadRequest& msg,
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
[[nodiscard]] Bytes EncodeUploadReceipt(const serve::UploadReceipt& msg);
[[nodiscard]] Bytes EncodeCloseSession(const CloseSessionRequest& msg);
[[nodiscard]] Bytes EncodeCloseSessionAck(const serve::SessionStats& msg);
[[nodiscard]] Bytes EncodeInvestigate(const InvestigateRequest& msg);
[[nodiscard]] Bytes EncodeInvestigateAck(const core::MispredictionReport& msg);
[[nodiscard]] Bytes EncodeInvestigateBatch(const InvestigateBatchRequest& msg);
[[nodiscard]] Bytes EncodeInvestigateBatchAck(
    const std::vector<core::MispredictionReport>& msg);
[[nodiscard]] Bytes EncodeRelease(const ReleaseRequest& msg);
[[nodiscard]] Bytes EncodeReleaseAck(
    const core::TrainingServer::ReleasedModel& msg);
[[nodiscard]] Bytes EncodeStatus();
[[nodiscard]] Bytes EncodeStatusAck(const StatusAck& msg);

// --- decoders (frame body, hostile input) ------------------------------

[[nodiscard]] HelloRequest DecodeHello(BytesView body);
[[nodiscard]] HelloAck DecodeHelloAck(BytesView body);
[[nodiscard]] serve::ServeError DecodeError(BytesView body);
[[nodiscard]] ProvisionMsg DecodeProvision(BytesView body);
[[nodiscard]] ProvisionBlobAck DecodeProvisionBlobAck(BytesView body);
[[nodiscard]] ProvisionOkAck DecodeProvisionOkAck(BytesView body);
[[nodiscard]] OpenSessionRequest DecodeOpenSession(BytesView body);
[[nodiscard]] OpenSessionAck DecodeOpenSessionAck(BytesView body);
[[nodiscard]] SubmitUploadRequest DecodeSubmitUpload(BytesView body);
[[nodiscard]] serve::UploadReceipt DecodeUploadReceipt(BytesView body);
[[nodiscard]] CloseSessionRequest DecodeCloseSession(BytesView body);
[[nodiscard]] serve::SessionStats DecodeCloseSessionAck(BytesView body);
[[nodiscard]] InvestigateRequest DecodeInvestigate(BytesView body);
[[nodiscard]] core::MispredictionReport DecodeInvestigateAck(BytesView body);
[[nodiscard]] InvestigateBatchRequest DecodeInvestigateBatch(BytesView body);
[[nodiscard]] std::vector<core::MispredictionReport>
DecodeInvestigateBatchAck(BytesView body);
[[nodiscard]] ReleaseRequest DecodeRelease(BytesView body);
[[nodiscard]] core::TrainingServer::ReleasedModel DecodeReleaseAck(
    BytesView body);
void DecodeStatus(BytesView body);  ///< body must be empty
[[nodiscard]] StatusAck DecodeStatusAck(BytesView body);

}  // namespace caltrain::net
