#include "net/connection.hpp"

#include <errno.h>
#include <sys/socket.h>

#include "util/fault.hpp"

namespace caltrain::net {

Connection::IoResult Connection::ReadIntoDecoder() {
  if (util::FaultInjector::Global().armed()) {
    try {
      (void)util::FaultPoint("net.read");
    } catch (const Error&) {
      return IoResult::kClosed;  // injected transient read failure
    }
  }
  std::uint8_t chunk[64 * 1024];
  // Drain what the kernel has queued (capped per event for fairness
  // across connections) instead of one chunk per epoll wakeup — a bulk
  // upload frame spans many socket buffers, and level-triggered epoll
  // re-fires if the cap leaves data behind.
  for (int burst = 0; burst < 16; ++burst) {
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder.Feed(BytesView(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) return IoResult::kClosed;  // orderly peer shutdown
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return IoResult::kOk;
    }
    return IoResult::kClosed;
  }
  return IoResult::kOk;
}

void Connection::QueueFrame(Bytes frame) {
  backlog_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
}

Connection::IoResult Connection::FlushWrites() {
  while (!write_queue_.empty()) {
    if (util::FaultInjector::Global().armed()) {
      try {
        (void)util::FaultPoint("net.write");
      } catch (const Error&) {
        return IoResult::kClosed;
      }
    }
    const Bytes& front = write_queue_.front();
    const std::size_t left = front.size() - write_offset_;
    const ssize_t n = ::send(fd_.get(), front.data() + write_offset_, left,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return IoResult::kOk;  // socket buffer full; EPOLLOUT re-arms
      }
      return IoResult::kClosed;
    }
    backlog_bytes_ -= static_cast<std::size_t>(n);
    write_offset_ += static_cast<std::size_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_.pop_front();
      write_offset_ = 0;
    }
  }
  return IoResult::kOk;
}

}  // namespace caltrain::net
