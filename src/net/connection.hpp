// Per-connection state for the epoll front end (ISSUE 10).
//
// A Connection owns one nonblocking TCP socket plus the incremental
// frame decoder and the buffered write backlog for that peer.  Every
// member is touched ONLY by the server's event-loop thread — service
// completions from worker threads travel through net::Server's
// completion queue and are applied to the connection on the loop, so
// the struct needs no lock of its own.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>

#include "net/codec.hpp"
#include "net/wire.hpp"
#include "util/bytes.hpp"
#include "util/fd.hpp"

namespace caltrain::net {

class Connection {
 public:
  enum class State {
    kHandshake,  ///< nothing accepted until a valid Hello
    kReady,      ///< negotiated; serving requests
    kClosing,    ///< error frame queued; close once flushed
  };

  /// Outcome of one socket read/write attempt.
  enum class IoResult {
    kOk,      ///< progressed (possibly zero bytes on EAGAIN)
    kClosed,  ///< peer hung up, hard error, or injected net.read/write
  };

  Connection(util::UniqueFd fd, std::uint64_t id,
             std::size_t max_frame_bytes)
      : decoder(max_frame_bytes), fd_(std::move(fd)), id_(id) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// Reads one chunk from the socket into the decoder.  Level-triggered
  /// epoll re-arms for whatever the kernel still buffers, so one chunk
  /// per event keeps connections fair.  Declares the net.read fault
  /// point.
  [[nodiscard]] IoResult ReadIntoDecoder();

  /// Queues an encoded frame for writing.
  void QueueFrame(Bytes frame);

  /// Writes queued frames until the socket would block or the backlog
  /// is empty.  Declares the net.write fault point.
  [[nodiscard]] IoResult FlushWrites();

  [[nodiscard]] bool wants_write() const noexcept {
    return !write_queue_.empty();
  }
  /// Unflushed response bytes — the slowloris guard compares this
  /// against ServerOptions::max_write_backlog.
  [[nodiscard]] std::size_t write_backlog() const noexcept {
    return backlog_bytes_;
  }

  // --- event-loop bookkeeping (loop thread only) ----------------------
  State state = State::kHandshake;
  /// One request in flight with the service; no further frames are
  /// decoded (and EPOLLIN is dropped — TCP backpressure does the rest)
  /// until its completion arrives.
  bool busy = false;
  /// The epoll registration this connection currently has (so the loop
  /// only issues EPOLL_CTL_MOD when the mask actually changes).
  std::uint32_t epoll_mask = 0;
  std::uint32_t version = 0;  ///< negotiated protocol version

  FrameDecoder decoder;

  /// An upload the service bounced with kQueueSaturated while the
  /// server maps kBlock backpressure onto parked retries: the request
  /// is held here (records copied before the first submit) and
  /// re-submitted on the retry timer until it lands or the deadline
  /// passes.
  struct ParkedUpload {
    SubmitUploadRequest request;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    bool retry_due = false;  ///< bounced; waiting for the next timer tick
  };
  std::optional<ParkedUpload> parked;

 private:
  util::UniqueFd fd_;
  std::uint64_t id_ = 0;
  std::deque<Bytes> write_queue_;
  std::size_t write_offset_ = 0;  ///< consumed bytes of the front frame
  std::size_t backlog_bytes_ = 0;
};

}  // namespace caltrain::net
