// Event-driven TCP front end for the serving API (ISSUE 10).
//
// One epoll loop thread multiplexes every connection: nonblocking
// accept/read/write, incremental frame decoding, and dispatch onto
// serve::Service's callback API.  The loop NEVER blocks on the service
// — every potentially slow request (uploads, close, investigate,
// release) goes through Submit*Async and completes via a completion
// queue drained by the loop, so thousands of connections ride on the
// existing ingest workers.
//
// Flow control maps the service's backpressure onto the transport:
//
//   * While a connection has a request in flight, its frames stop being
//     decoded and EPOLLIN is dropped — the kernel socket buffer fills
//     and TCP pushes back on the remote producer.
//   * Under kReject upload backpressure a saturated ingest queue
//     surfaces as a typed kQueueSaturated error frame (client backs
//     off).
//   * Under kBlock the server PARKS the bounced upload on its
//     connection and retries on a timer — the event-loop-shaped
//     equivalent of a blocking PushUntil, with submit_timeout mapped to
//     a typed kTimeout frame.
//   * A peer that stops reading its responses (slowloris) is cut off
//     once its write backlog passes max_write_backlog.
//
// Uploads are idempotent: every SubmitUpload carries a client-assigned
// per-session sequence number; the server remembers the last completed
// sequence and its response, so a client that lost the reply to a
// transport fault can resubmit the SAME sequence and get the SAME
// receipt — records are never ingested twice (test-enforced against
// the fault injector).
//
// Shutdown drains in-flight tickets: Stop() stops accepting and
// decoding, waits for every dispatched request's completion, flushes
// responses (bounded by drain_timeout), then tears the loop down.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"
#include "util/bounded_queue.hpp"
#include "util/fd.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start.
  std::uint16_t port = 0;
  int listen_backlog = 128;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Unflushed-response cap per connection (slowloris guard).
  std::size_t max_write_backlog = 64ULL << 20;
  /// How a saturated ingest queue is mapped onto the wire: kReject
  /// sends typed kQueueSaturated frames, kBlock parks the upload and
  /// retries it on a timer (TCP keeps pushing back meanwhile).
  util::BackpressurePolicy upload_backpressure =
      util::BackpressurePolicy::kBlock;
  /// Under kBlock, how long a parked upload may wait for queue room
  /// before failing with a typed kTimeout.  Zero waits forever.
  std::chrono::milliseconds submit_timeout{0};
  /// Parked-upload retry cadence.
  std::chrono::milliseconds block_retry_interval{2};
  /// After every in-flight request completed, how long Stop() keeps
  /// flushing buffered responses to slow readers before cutting them.
  std::chrono::milliseconds drain_timeout{5000};
};

class Server {
 public:
  /// The server fronts `service` (and its TrainingServer); both must
  /// outlive this object.  Construction does not open any socket.
  Server(serve::Service& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop.  Throws
  /// Error(kUnavailable) when the address cannot be bound.
  void Start();

  /// Graceful shutdown: stop accepting/decoding, drain in-flight
  /// requests, flush responses, tear down.  Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Lifetime counters (monotonic, loop-thread-written).
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_rejected() const noexcept {
    return frames_rejected_.load(std::memory_order_relaxed);
  }

 private:
  /// A finished service request, posted by worker threads and applied
  /// to its connection by the loop.  Exactly one of `frame` /
  /// `upload` is meaningful.
  struct Completion {
    std::uint64_t conn_id = 0;
    Bytes frame;  ///< pre-encoded response (non-upload requests)
    /// Upload completions carry the raw result instead — the loop
    /// decides between receipt, typed error, parked retry, and the
    /// idempotency-gate update.
    std::optional<serve::Result<serve::UploadReceipt>> upload;
    serve::SessionId session = 0;
    std::uint64_t upload_seq = 0;
    bool erase_gate = false;  ///< session closed; retire its gate
  };

  /// Per-session upload idempotency gate (loop thread only).
  struct UploadGate {
    std::uint64_t next_seq = 0;
    Bytes last_response;  ///< full frame of the last completed upload
  };

  void Loop();
  void HandleAccept();
  void DrainCompletions();
  void HandleTimer();
  void HandleConnectionEvent(std::uint64_t conn_id, std::uint32_t events);
  /// Decodes and serves frames until the connection goes busy, runs
  /// dry, or dies.  Takes the id (not a reference) because handlers may
  /// destroy the connection; the map is re-consulted every iteration.
  void ProcessFrames(std::uint64_t conn_id);
  /// Serves one frame; returns false when frame processing must stop
  /// (busy, closing, or the connection is gone).
  bool HandleFrame(Connection& conn, Frame frame);
  bool HandleHello(Connection& conn, const Frame& frame);
  bool HandleSubmitUpload(Connection& conn, BytesView body);
  void DispatchUpload(Connection& conn, SubmitUploadRequest request);
  void ApplyUploadCompletion(const Completion& completion);
  /// Queues a typed error frame (closing the connection afterwards if
  /// `close` — protocol violations do, service-level errors don't).
  /// Returns whether the caller may keep serving this connection.
  bool SendError(Connection& conn, serve::ServeError error, bool close);
  /// Queues + flushes one response frame.  Returns false when the
  /// connection must close (backlog blown or write error) — the caller
  /// invokes CloseConnection.
  [[nodiscard]] bool QueueResponse(Connection& conn, Bytes frame);
  /// Recomputes the connection's epoll interest mask.
  void UpdateEpoll(Connection& conn);
  void CloseConnection(std::uint64_t conn_id);
  void ArmRetryTimer();
  /// Posts a completion from a service worker (or inline) and wakes
  /// the loop.
  void PostCompletion(Completion completion);

  serve::Service& service_;
  ServerOptions options_;

  util::UniqueFd listen_fd_;
  util::UniqueFd epoll_fd_;
  util::UniqueFd wake_fd_;   ///< eventfd: completion queue / stop
  util::UniqueFd timer_fd_;  ///< timerfd: parked-upload retries
  std::uint16_t bound_port_ = 0;
  std::thread loop_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool joined_ = false;

  // Loop-thread-only state.
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::map<serve::SessionId, UploadGate> gates_;
  /// Requests dispatched to the service whose completions have not
  /// been applied yet; the loop only exits once this hits zero, so no
  /// completion can outlive the server.
  std::size_t pending_requests_ = 0;
  bool retry_timer_armed_ = false;
  /// Set by the loop on the first wake after Stop(): no new accepts,
  /// no new frame decoding, exit once in-flight requests drain.
  bool draining_ = false;

  // Completion queue: the single cross-thread handoff.  The eventfd
  // write happens under the mutex so the destructor's final lock
  // acquisition is a full barrier against in-flight posts.
  util::Mutex cq_mu_;
  std::vector<Completion> cq_ GUARDED_BY(cq_mu_);

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};

  static constexpr std::uint64_t kListenTag = 0;
  static constexpr std::uint64_t kWakeTag = 1;
  static constexpr std::uint64_t kTimerTag = 2;
  static constexpr std::uint64_t kFirstConnId = 3;
};

}  // namespace caltrain::net
