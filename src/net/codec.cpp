#include "net/codec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caltrain::net {

namespace {

/// Max per-axis image dimension the wire accepts.  4096³ floats would
/// already be absurd for this pipeline; the cap exists so a hostile
/// header cannot drive Flat() toward overflow.
constexpr std::uint32_t kMaxImageDim = 4096;

ByteWriter BeginPayload(MsgType type) {
  ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(type));
  return writer;
}

/// A body with trailing bytes is as malformed as a truncated one.
void RequireEnd(const ByteReader& reader) {
  if (!reader.AtEnd()) {
    ThrowError(ErrorKind::kInvalidArgument,
               "trailing bytes after message body");
  }
}

void WriteImage(ByteWriter& writer, const nn::Image& image) {
  CALTRAIN_REQUIRE(image.shape.w >= 0 && image.shape.h >= 0 &&
                       image.shape.c >= 0 &&
                       image.shape.w <= static_cast<int>(kMaxImageDim) &&
                       image.shape.h <= static_cast<int>(kMaxImageDim) &&
                       image.shape.c <= static_cast<int>(kMaxImageDim),
                   "image dimensions out of wire range");
  CALTRAIN_REQUIRE(image.pixels.size() == image.shape.Flat(),
                   "image pixel count does not match its shape");
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.w));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.h));
  writer.WriteU32(static_cast<std::uint32_t>(image.shape.c));
  writer.WriteF32Vector(image.pixels);
}

nn::Image ReadImage(ByteReader& reader) {
  const std::uint32_t w = reader.ReadU32();
  const std::uint32_t h = reader.ReadU32();
  const std::uint32_t c = reader.ReadU32();
  if (w > kMaxImageDim || h > kMaxImageDim || c > kMaxImageDim) {
    ThrowError(ErrorKind::kInvalidArgument,
               "image dimensions out of wire range");
  }
  nn::Image image;
  image.shape.w = static_cast<int>(w);
  image.shape.h = static_cast<int>(h);
  image.shape.c = static_cast<int>(c);
  // The vector read is itself bounds-checked against the real input, so
  // a hostile header cannot allocate more than the frame carries.
  image.pixels = reader.ReadF32Vector();
  if (image.pixels.size() != image.shape.Flat()) {
    ThrowError(ErrorKind::kInvalidArgument,
               "image pixel count does not match its shape");
  }
  return image;
}

void WriteReport(ByteWriter& writer, const core::MispredictionReport& report) {
  writer.WriteI64(report.predicted_label);
  writer.WriteF32Vector(report.fingerprint);
  CALTRAIN_REQUIRE(report.neighbors.size() <= 0xffffffffULL,
                   "too many neighbors for the wire");
  writer.WriteU32(static_cast<std::uint32_t>(report.neighbors.size()));
  for (const linkage::QueryMatch& match : report.neighbors) {
    writer.WriteU64(match.id);
    writer.WriteF64(match.distance);
    writer.WriteI64(match.label);
    writer.WriteString(match.source);
  }
}

core::MispredictionReport ReadReport(ByteReader& reader) {
  core::MispredictionReport report;
  report.predicted_label = static_cast<int>(reader.ReadI64());
  report.fingerprint = reader.ReadF32Vector();
  const std::uint32_t n = reader.ReadU32();
  // No reserve(n): the count is attacker data; growth stays bounded by
  // the bytes actually present.
  for (std::uint32_t i = 0; i < n; ++i) {
    linkage::QueryMatch match;
    match.id = reader.ReadU64();
    match.distance = reader.ReadF64();
    match.label = static_cast<int>(reader.ReadI64());
    match.source = reader.ReadString();
    report.neighbors.push_back(std::move(match));
  }
  return report;
}

}  // namespace

WireErrorCode ToWire(serve::ServeErrorKind kind) noexcept {
  switch (kind) {
    case serve::ServeErrorKind::kUnprovisionedParticipant:
      return WireErrorCode::kUnprovisionedParticipant;
    case serve::ServeErrorKind::kAuthFailure:
      return WireErrorCode::kAuthFailure;
    case serve::ServeErrorKind::kQueueSaturated:
      return WireErrorCode::kQueueSaturated;
    case serve::ServeErrorKind::kWrongPhase:
      return WireErrorCode::kWrongPhase;
    case serve::ServeErrorKind::kInvalidArgument:
      return WireErrorCode::kInvalidArgument;
    case serve::ServeErrorKind::kTimeout:
      return WireErrorCode::kTimeout;
    case serve::ServeErrorKind::kRetryExhausted:
      return WireErrorCode::kRetryExhausted;
    case serve::ServeErrorKind::kDegraded:
      return WireErrorCode::kDegraded;
    case serve::ServeErrorKind::kCorruptJournal:
      return WireErrorCode::kCorruptJournal;
    case serve::ServeErrorKind::kInternal:
      return WireErrorCode::kInternal;
  }
  return WireErrorCode::kInternal;
}

serve::ServeErrorKind FromWire(WireErrorCode code) noexcept {
  switch (code) {
    case WireErrorCode::kUnprovisionedParticipant:
      return serve::ServeErrorKind::kUnprovisionedParticipant;
    case WireErrorCode::kAuthFailure:
      return serve::ServeErrorKind::kAuthFailure;
    case WireErrorCode::kQueueSaturated:
      return serve::ServeErrorKind::kQueueSaturated;
    case WireErrorCode::kWrongPhase:
      return serve::ServeErrorKind::kWrongPhase;
    case WireErrorCode::kInvalidArgument:
      return serve::ServeErrorKind::kInvalidArgument;
    case WireErrorCode::kTimeout:
      return serve::ServeErrorKind::kTimeout;
    case WireErrorCode::kRetryExhausted:
      return serve::ServeErrorKind::kRetryExhausted;
    case WireErrorCode::kDegraded:
      return serve::ServeErrorKind::kDegraded;
    case WireErrorCode::kCorruptJournal:
      return serve::ServeErrorKind::kCorruptJournal;
    case WireErrorCode::kInternal:
      return serve::ServeErrorKind::kInternal;
  }
  return serve::ServeErrorKind::kInternal;
}

// --- handshake ---------------------------------------------------------

Bytes EncodeHello(const HelloRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kHello);
  writer.WriteU32(msg.magic);
  writer.WriteU32(msg.version_min);
  writer.WriteU32(msg.version_max);
  return writer.Take();
}

HelloRequest DecodeHello(BytesView body) {
  ByteReader reader(body);
  HelloRequest msg;
  msg.magic = reader.ReadU32();
  msg.version_min = reader.ReadU32();
  msg.version_max = reader.ReadU32();
  RequireEnd(reader);
  if (msg.magic != kHelloMagic) {
    ThrowError(ErrorKind::kInvalidArgument, "bad hello magic");
  }
  if (msg.version_min > msg.version_max) {
    ThrowError(ErrorKind::kInvalidArgument, "inverted hello version range");
  }
  return msg;
}

Bytes EncodeHelloAck(const HelloAck& msg) {
  ByteWriter writer = BeginPayload(MsgType::kHelloAck);
  writer.WriteU32(msg.version);
  writer.WriteU64(msg.max_frame_bytes);
  writer.WriteBytes(msg.attestation_public_key);
  writer.WriteBytes(msg.measurement);
  return writer.Take();
}

HelloAck DecodeHelloAck(BytesView body) {
  ByteReader reader(body);
  HelloAck msg;
  msg.version = reader.ReadU32();
  msg.max_frame_bytes = reader.ReadU64();
  msg.attestation_public_key = reader.ReadBytes();
  msg.measurement = reader.ReadBytes();
  RequireEnd(reader);
  if (msg.attestation_public_key.size() != 16 ||
      msg.measurement.size() != 32) {
    ThrowError(ErrorKind::kInvalidArgument,
               "hello-ack attestation fields have wrong sizes");
  }
  return msg;
}

Bytes EncodeError(const serve::ServeError& error) {
  ByteWriter writer = BeginPayload(MsgType::kError);
  writer.WriteU8(static_cast<std::uint8_t>(ToWire(error.kind)));
  writer.WriteString(error.message);
  return writer.Take();
}

serve::ServeError DecodeError(BytesView body) {
  ByteReader reader(body);
  serve::ServeError error;
  error.kind = FromWire(static_cast<WireErrorCode>(reader.ReadU8()));
  error.message = reader.ReadString();
  RequireEnd(reader);
  return error;
}

// --- provisioning ------------------------------------------------------

Bytes EncodeProvision(MsgType type, const ProvisionMsg& msg) {
  CALTRAIN_REQUIRE(type == MsgType::kProvisionHello ||
                       type == MsgType::kProvisionFinished ||
                       type == MsgType::kProvisionKey,
                   "not a provisioning request type");
  ByteWriter writer = BeginPayload(type);
  writer.WriteString(msg.participant_id);
  writer.WriteBytes(msg.blob);
  return writer.Take();
}

ProvisionMsg DecodeProvision(BytesView body) {
  ByteReader reader(body);
  ProvisionMsg msg;
  msg.participant_id = reader.ReadString();
  msg.blob = reader.ReadBytes();
  RequireEnd(reader);
  if (msg.participant_id.empty()) {
    ThrowError(ErrorKind::kInvalidArgument, "empty participant id");
  }
  return msg;
}

Bytes EncodeProvisionBlobAck(const ProvisionBlobAck& msg) {
  ByteWriter writer = BeginPayload(MsgType::kProvisionHelloAck);
  writer.WriteBytes(msg.blob);
  return writer.Take();
}

ProvisionBlobAck DecodeProvisionBlobAck(BytesView body) {
  ByteReader reader(body);
  ProvisionBlobAck msg;
  msg.blob = reader.ReadBytes();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeProvisionOkAck(MsgType type, const ProvisionOkAck& msg) {
  CALTRAIN_REQUIRE(type == MsgType::kProvisionFinishedAck ||
                       type == MsgType::kProvisionKeyAck,
                   "not a provisioning ok-ack type");
  ByteWriter writer = BeginPayload(type);
  writer.WriteU8(msg.ok ? 1 : 0);
  return writer.Take();
}

ProvisionOkAck DecodeProvisionOkAck(BytesView body) {
  ByteReader reader(body);
  const std::uint8_t raw = reader.ReadU8();
  RequireEnd(reader);
  if (raw > 1) {
    ThrowError(ErrorKind::kInvalidArgument, "boolean field out of range");
  }
  return ProvisionOkAck{raw == 1};
}

// --- upload sessions ---------------------------------------------------

Bytes EncodeOpenSession(const OpenSessionRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kOpenSession);
  writer.WriteString(msg.participant_id);
  return writer.Take();
}

OpenSessionRequest DecodeOpenSession(BytesView body) {
  ByteReader reader(body);
  OpenSessionRequest msg;
  msg.participant_id = reader.ReadString();
  RequireEnd(reader);
  if (msg.participant_id.empty()) {
    ThrowError(ErrorKind::kInvalidArgument, "empty participant id");
  }
  return msg;
}

Bytes EncodeOpenSessionAck(const OpenSessionAck& msg) {
  ByteWriter writer = BeginPayload(MsgType::kOpenSessionAck);
  writer.WriteU64(msg.session);
  return writer.Take();
}

OpenSessionAck DecodeOpenSessionAck(BytesView body) {
  ByteReader reader(body);
  OpenSessionAck msg;
  msg.session = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

namespace {

void WriteSubmitUploadBody(ByteWriter& writer, const SubmitUploadRequest& msg) {
  writer.WriteU64(msg.session);
  writer.WriteU64(msg.upload_seq);
  CALTRAIN_REQUIRE(msg.records.size() <= 0xffffffffULL,
                   "too many records for one frame");
  writer.WriteU32(static_cast<std::uint32_t>(msg.records.size()));
  // Records dominate the frame (KBs of ciphertext each): reserve the
  // exact total once and serialize in place — same bytes as the
  // WriteBytes(Serialize()) form, none of the growth copies or temps.
  std::size_t total = 0;
  for (const data::EncryptedRecord& record : msg.records) {
    total += 4 + record.SerializedSize();
  }
  writer.Reserve(total);
  for (const data::EncryptedRecord& record : msg.records) {
    const std::size_t size = record.SerializedSize();
    CALTRAIN_REQUIRE(size <= 0xffffffffULL, "record too large for frame");
    writer.WriteU32(static_cast<std::uint32_t>(size));
    record.SerializeTo(writer);
  }
}

}  // namespace

Bytes EncodeSubmitUpload(const SubmitUploadRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kSubmitUpload);
  WriteSubmitUploadBody(writer, msg);
  return writer.Take();
}

Bytes EncodeSubmitUploadFrame(const SubmitUploadRequest& msg,
                              std::size_t max_frame_bytes) {
  // Assemble header + payload in one buffer so the dominant message
  // of the protocol never pays EncodeFrame's whole-payload copy.
  ByteWriter writer;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) writer.WriteU8(0);
  writer.WriteU8(static_cast<std::uint8_t>(MsgType::kSubmitUpload));
  WriteSubmitUploadBody(writer, msg);
  return FinishFrame(writer.Take(), max_frame_bytes);
}

SubmitUploadRequest DecodeSubmitUpload(BytesView body) {
  ByteReader reader(body);
  SubmitUploadRequest msg;
  msg.session = reader.ReadU64();
  msg.upload_seq = reader.ReadU64();
  const std::uint32_t count = reader.ReadU32();
  // A hostile count cannot balloon the reserve: every serialized
  // record costs at least its length prefix, so remaining() bounds it.
  msg.records.reserve(std::min<std::size_t>(count, reader.remaining() / 4));
  for (std::uint32_t i = 0; i < count; ++i) {
    // Parse each record straight out of the frame body — no per-record
    // blob copy on the ingest hot path.
    msg.records.push_back(
        data::EncryptedRecord::Deserialize(reader.ReadBytesView()));
  }
  RequireEnd(reader);
  return msg;
}

Bytes EncodeUploadReceipt(const serve::UploadReceipt& msg) {
  ByteWriter writer = BeginPayload(MsgType::kUploadReceipt);
  writer.WriteU64(msg.submitted);
  writer.WriteU64(msg.accepted);
  writer.WriteU64(msg.rejected);
  return writer.Take();
}

serve::UploadReceipt DecodeUploadReceipt(BytesView body) {
  ByteReader reader(body);
  serve::UploadReceipt msg;
  msg.submitted = reader.ReadU64();
  msg.accepted = reader.ReadU64();
  msg.rejected = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeCloseSession(const CloseSessionRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kCloseSession);
  writer.WriteU64(msg.session);
  return writer.Take();
}

CloseSessionRequest DecodeCloseSession(BytesView body) {
  ByteReader reader(body);
  CloseSessionRequest msg;
  msg.session = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeCloseSessionAck(const serve::SessionStats& msg) {
  ByteWriter writer = BeginPayload(MsgType::kCloseSessionAck);
  writer.WriteString(msg.participant_id);
  writer.WriteU64(msg.submitted);
  writer.WriteU64(msg.accepted);
  writer.WriteU64(msg.rejected);
  return writer.Take();
}

serve::SessionStats DecodeCloseSessionAck(BytesView body) {
  ByteReader reader(body);
  serve::SessionStats msg;
  msg.participant_id = reader.ReadString();
  msg.submitted = reader.ReadU64();
  msg.accepted = reader.ReadU64();
  msg.rejected = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

// --- queries and release ----------------------------------------------

Bytes EncodeInvestigate(const InvestigateRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kInvestigate);
  WriteImage(writer, msg.input);
  writer.WriteU64(msg.k);
  return writer.Take();
}

InvestigateRequest DecodeInvestigate(BytesView body) {
  ByteReader reader(body);
  InvestigateRequest msg;
  msg.input = ReadImage(reader);
  msg.k = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeInvestigateAck(const core::MispredictionReport& msg) {
  ByteWriter writer = BeginPayload(MsgType::kInvestigateAck);
  WriteReport(writer, msg);
  return writer.Take();
}

core::MispredictionReport DecodeInvestigateAck(BytesView body) {
  ByteReader reader(body);
  core::MispredictionReport report = ReadReport(reader);
  RequireEnd(reader);
  return report;
}

Bytes EncodeInvestigateBatch(const InvestigateBatchRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kInvestigateBatch);
  CALTRAIN_REQUIRE(msg.inputs.size() <= 0xffffffffULL,
                   "too many probes for one frame");
  writer.WriteU32(static_cast<std::uint32_t>(msg.inputs.size()));
  for (const nn::Image& image : msg.inputs) WriteImage(writer, image);
  writer.WriteU64(msg.k);
  return writer.Take();
}

InvestigateBatchRequest DecodeInvestigateBatch(BytesView body) {
  ByteReader reader(body);
  InvestigateBatchRequest msg;
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    msg.inputs.push_back(ReadImage(reader));
  }
  msg.k = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeInvestigateBatchAck(
    const std::vector<core::MispredictionReport>& msg) {
  ByteWriter writer = BeginPayload(MsgType::kInvestigateBatchAck);
  CALTRAIN_REQUIRE(msg.size() <= 0xffffffffULL,
                   "too many reports for one frame");
  writer.WriteU32(static_cast<std::uint32_t>(msg.size()));
  for (const core::MispredictionReport& report : msg) {
    WriteReport(writer, report);
  }
  return writer.Take();
}

std::vector<core::MispredictionReport> DecodeInvestigateBatchAck(
    BytesView body) {
  ByteReader reader(body);
  std::vector<core::MispredictionReport> reports;
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    reports.push_back(ReadReport(reader));
  }
  RequireEnd(reader);
  return reports;
}

Bytes EncodeRelease(const ReleaseRequest& msg) {
  ByteWriter writer = BeginPayload(MsgType::kRelease);
  writer.WriteString(msg.participant_id);
  return writer.Take();
}

ReleaseRequest DecodeRelease(BytesView body) {
  ByteReader reader(body);
  ReleaseRequest msg;
  msg.participant_id = reader.ReadString();
  RequireEnd(reader);
  if (msg.participant_id.empty()) {
    ThrowError(ErrorKind::kInvalidArgument, "empty participant id");
  }
  return msg;
}

Bytes EncodeReleaseAck(const core::TrainingServer::ReleasedModel& msg) {
  ByteWriter writer = BeginPayload(MsgType::kReleaseAck);
  writer.WriteString(msg.participant_id);
  writer.WriteBytes(msg.spec_blob);
  writer.WriteI64(msg.front_layers);
  writer.WriteBytes(msg.backnet_weights);
  writer.WriteBytes(msg.frontnet_iv);
  writer.WriteBytes(msg.frontnet_ciphertext);
  writer.WriteBytes(msg.frontnet_tag);
  return writer.Take();
}

core::TrainingServer::ReleasedModel DecodeReleaseAck(BytesView body) {
  ByteReader reader(body);
  core::TrainingServer::ReleasedModel msg;
  msg.participant_id = reader.ReadString();
  msg.spec_blob = reader.ReadBytes();
  msg.front_layers = static_cast<int>(reader.ReadI64());
  msg.backnet_weights = reader.ReadBytes();
  msg.frontnet_iv = reader.ReadBytes();
  msg.frontnet_ciphertext = reader.ReadBytes();
  msg.frontnet_tag = reader.ReadBytes();
  RequireEnd(reader);
  return msg;
}

Bytes EncodeStatus() {
  ByteWriter writer = BeginPayload(MsgType::kStatus);
  return writer.Take();
}

void DecodeStatus(BytesView body) {
  ByteReader reader(body);
  RequireEnd(reader);
}

Bytes EncodeStatusAck(const StatusAck& msg) {
  ByteWriter writer = BeginPayload(MsgType::kStatusAck);
  writer.WriteU8(msg.phase);
  writer.WriteU8(msg.degraded ? 1 : 0);
  writer.WriteU64(msg.accepted_records);
  writer.WriteU64(msg.rejected_records);
  return writer.Take();
}

StatusAck DecodeStatusAck(BytesView body) {
  ByteReader reader(body);
  StatusAck msg;
  msg.phase = reader.ReadU8();
  const std::uint8_t degraded = reader.ReadU8();
  if (degraded > 1) {
    ThrowError(ErrorKind::kInvalidArgument, "boolean field out of range");
  }
  msg.degraded = degraded == 1;
  msg.accepted_records = reader.ReadU64();
  msg.rejected_records = reader.ReadU64();
  RequireEnd(reader);
  return msg;
}

}  // namespace caltrain::net
