// Blocking client for the serving wire protocol (ISSUE 10).
//
// One TCP connection, one request in flight — the shape tests, the
// example, and the bench need.  Reliability is layered on top of the
// ISSUE-9 fault machinery rather than reinvented:
//
//   * Transport faults (connection refused, peer reset, send/receive
//     timeout, a corrupt server frame, injected net.write) surface as
//     Error(kUnavailable) and every request runs under
//     util::RetryTransient with capped deterministic backoff — the
//     client reconnects, re-handshakes, and resubmits automatically.
//   * Resubmitted uploads are idempotent: the client assigns each
//     session a monotonically increasing upload sequence BEFORE the
//     retry loop, so the server's idempotency gate replays the original
//     receipt instead of ingesting the records twice.
//   * Typed error frames are NOT retried — they are answers, and they
//     come back as serve::Result errors exactly like the in-process
//     API.  An exhausted retry budget maps to kRetryExhausted.
//
// The client implements core::ProvisionTransport, so a remote
// Participant provisions through Participant::ProvisionVia with the
// full attested-handshake guarantees — the wire just tunnels the
// opaque securechannel blobs.
//
// Instances are externally synchronized: one thread at a time.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/participant.hpp"
#include "crypto/group.hpp"
#include "crypto/sha256.hpp"
#include "net/codec.hpp"
#include "net/wire.hpp"
#include "serve/result.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"
#include "util/fd.hpp"

namespace caltrain::net {

struct ClientOptions {
  /// IPv4 dotted-quad only (no resolver dependency).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-send/receive socket timeout; an expiry is a transient
  /// transport fault (reconnect + retry).
  std::chrono::milliseconds io_timeout{30000};
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Reconnect/resubmit schedule for transient transport faults.
  util::BackoffPolicy backoff;
};

class Client final : public core::ProvisionTransport {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  ~Client() override { Disconnect(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// What the server's HelloAck announced, cached per connection.
  struct HelloInfo {
    std::uint32_t version = 0;
    std::uint64_t max_frame_bytes = 0;
    crypto::U128 attestation_public_key = 0;
    crypto::Sha256Digest measurement{};
  };

  /// Connects and handshakes if not already connected; returns the
  /// negotiated parameters.  Throws Error(kUnavailable) when the
  /// server cannot be reached (after the backoff budget) and
  /// Error(kInvalidArgument) on a version-range mismatch.
  const HelloInfo& Connect();

  /// Drops the connection (the next request reconnects).
  void Disconnect() noexcept;

  // --- session API (mirrors serve::Service, minus train/fingerprint
  // --- which stay operator-side) --------------------------------------
  [[nodiscard]] serve::Result<serve::SessionId> OpenSession(
      const std::string& participant_id);
  [[nodiscard]] serve::Result<serve::UploadReceipt> SubmitUpload(
      serve::SessionId session, std::vector<data::EncryptedRecord> records);
  [[nodiscard]] serve::Result<serve::SessionStats> CloseSession(
      serve::SessionId session);
  [[nodiscard]] serve::Result<core::MispredictionReport> Investigate(
      nn::Image input, std::size_t k);
  [[nodiscard]] serve::Result<std::vector<core::MispredictionReport>>
  InvestigateBatch(std::vector<nn::Image> inputs, std::size_t k);
  [[nodiscard]] serve::Result<core::TrainingServer::ReleasedModel> Release(
      const std::string& participant_id);
  [[nodiscard]] serve::Result<StatusAck> Status();

  // --- core::ProvisionTransport (Participant::ProvisionVia) -----------
  /// These throw the typed caltrain::Error on rejection (kAuthFailure
  /// for a refused handshake), matching the in-process transport.
  Bytes ProvisionHello(const std::string& participant_id,
                       BytesView client_hello) override;
  bool ProvisionFinished(const std::string& participant_id,
                         BytesView finished) override;
  bool ProvisionKey(const std::string& participant_id,
                    BytesView record) override;

 private:
  void EnsureConnected();
  /// Sends one frame; declares the net.write fault point.  Throws
  /// Error(kUnavailable) on any failure.
  void SendFrame(const Bytes& frame);
  /// Blocks until one complete frame arrives.  Throws
  /// Error(kUnavailable) on EOF, timeout, or stream corruption.
  Frame ReadFrame();
  /// One request/response exchange on a (re)established connection.
  /// Takes the fully framed request so bulk messages can be framed in
  /// place once and resent verbatim on every retry.
  Frame Roundtrip(const Bytes& frame);
  /// Full request pipeline: retry transport faults per the backoff
  /// policy, map typed error frames and exhausted budgets onto
  /// serve::Result.
  template <typename T, typename DecodeFn>
  [[nodiscard]] serve::Result<T> Call(const Bytes& frame, MsgType expected,
                                      DecodeFn decode);

  ClientOptions options_;
  util::UniqueFd fd_;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
  HelloInfo hello_;
  /// Next upload sequence per session — assigned before the retry
  /// loop so every transport-level resubmit carries the same number.
  std::map<serve::SessionId, std::uint64_t> next_seq_;
};

}  // namespace caltrain::net
