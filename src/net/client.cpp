#include "net/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "util/error.hpp"

namespace caltrain::net {

namespace {

[[noreturn]] void ThrowTransport(const std::string& what) {
  ThrowError(ErrorKind::kUnavailable,
             what + ": " + std::string(::strerror(errno)));
}

/// Rethrows a typed error frame through serve::Result's
/// ServeError→ErrorKind mapping (kAuthFailure stays kAuthFailure, a
/// version mismatch stays kInvalidArgument and is NOT retried, ...).
[[noreturn]] void ThrowRemote(serve::ServeError error) {
  (void)serve::Result<int>(std::move(error)).value();
  ThrowError(ErrorKind::kInternal, "Result::value() returned on an error");
}

}  // namespace

const Client::HelloInfo& Client::Connect() {
  // Call() supplies the retry loop for request paths; the bare
  // connect/handshake entry point needs its own.
  util::RetryTransient(options_.backoff, [&] { EnsureConnected(); });
  return hello_;
}

void Client::Disconnect() noexcept {
  fd_.reset();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
}

void Client::EnsureConnected() {
  if (fd_.valid()) return;
  decoder_ = FrameDecoder(options_.max_frame_bytes);

  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) ThrowTransport("socket");

  timeval tv{};
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          options_.io_timeout)
          .count();
  tv.tv_sec = us / 1'000'000;
  tv.tv_usec = us % 1'000'000;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ThrowError(ErrorKind::kInvalidArgument,
               "bad host address '" + options_.host + "' (IPv4 only)");
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ThrowTransport("connect " + options_.host + ":" +
                   std::to_string(options_.port));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = std::move(fd);

  // Version negotiation before anything else rides the connection.
  try {
    SendFrame(EncodeFrame(EncodeHello(HelloRequest{}),
                          options_.max_frame_bytes));
    Frame reply = ReadFrame();
    if (reply.type == MsgType::kError) {
      serve::ServeError error = DecodeError(reply.body());
      Disconnect();
      ThrowRemote(std::move(error));
    }
    if (reply.type != MsgType::kHelloAck) {
      ThrowError(ErrorKind::kUnavailable,
                 "expected hello ack, got " +
                     std::string(ToString(reply.type)));
    }
    const HelloAck ack = DecodeHelloAck(reply.body());
    hello_.version = ack.version;
    hello_.max_frame_bytes = ack.max_frame_bytes;
    hello_.attestation_public_key =
        crypto::U128FromBytes(ack.attestation_public_key);
    std::copy(ack.measurement.begin(), ack.measurement.end(),
              hello_.measurement.begin());
  } catch (...) {
    Disconnect();
    throw;
  }
}

void Client::SendFrame(const Bytes& frame) {
  (void)util::FaultPoint("net.write");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_.get(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ThrowError(ErrorKind::kUnavailable, "send timed out");
      }
      ThrowTransport("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame Client::ReadFrame() {
  for (;;) {
    Frame frame;
    switch (decoder_.Next(frame)) {
      case FrameDecoder::Status::kFrame:
        return frame;
      case FrameDecoder::Status::kCorrupt:
        ThrowError(ErrorKind::kUnavailable,
                   "corrupt server frame: " + decoder_.error());
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.Feed(BytesView(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      ThrowError(ErrorKind::kUnavailable, "server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ThrowError(ErrorKind::kUnavailable, "receive timed out");
    }
    ThrowTransport("recv");
  }
}

Frame Client::Roundtrip(const Bytes& frame) {
  EnsureConnected();
  try {
    SendFrame(frame);
    return ReadFrame();
  } catch (...) {
    // Connection state is unknown after a mid-exchange fault; the
    // retry (if the error is transient) starts from a fresh socket.
    Disconnect();
    throw;
  }
}

template <typename T, typename DecodeFn>
serve::Result<T> Client::Call(const Bytes& frame, MsgType expected,
                              DecodeFn decode) {
  try {
    return util::RetryTransient(
        options_.backoff, [&]() -> serve::Result<T> {
          Frame reply = Roundtrip(frame);
          if (reply.type == MsgType::kError) {
            // A typed error is an ANSWER, not a transport fault — the
            // connection stays up and nothing is retried.
            return serve::Result<T>(DecodeError(reply.body()));
          }
          if (reply.type != expected) {
            Disconnect();
            ThrowError(ErrorKind::kUnavailable,
                       "expected " + std::string(ToString(expected)) +
                           ", got " + std::string(ToString(reply.type)));
          }
          return serve::Result<T>(decode(reply.body()));
        });
  } catch (const Error& e) {
    // Exhausted retry budget (kUnavailable → kRetryExhausted) or a
    // non-transient failure such as a malformed server reply.
    return serve::Result<T>(serve::FromError(e));
  }
}

serve::Result<serve::SessionId> Client::OpenSession(
    const std::string& participant_id) {
  auto result = Call<OpenSessionAck>(
      EncodeFrame(EncodeOpenSession({participant_id}),
                  options_.max_frame_bytes),
      MsgType::kOpenSessionAck, DecodeOpenSessionAck);
  if (!result.ok()) return result.error();
  return serve::Result<serve::SessionId>(result.value().session);
}

serve::Result<serve::UploadReceipt> Client::SubmitUpload(
    serve::SessionId session, std::vector<data::EncryptedRecord> records) {
  SubmitUploadRequest request;
  request.session = session;
  // The sequence is minted ONCE per application-level submission; a
  // transport-level resubmit reuses it and the server's idempotency
  // gate replays the original outcome instead of re-ingesting.
  request.upload_seq = next_seq_[session]++;
  request.records = std::move(records);
  return Call<serve::UploadReceipt>(
      EncodeSubmitUploadFrame(request, options_.max_frame_bytes),
      MsgType::kUploadReceipt, DecodeUploadReceipt);
}

serve::Result<serve::SessionStats> Client::CloseSession(
    serve::SessionId session) {
  auto result = Call<serve::SessionStats>(
      EncodeFrame(EncodeCloseSession({session}), options_.max_frame_bytes),
      MsgType::kCloseSessionAck, DecodeCloseSessionAck);
  if (result.ok()) next_seq_.erase(session);
  return result;
}

serve::Result<core::MispredictionReport> Client::Investigate(
    nn::Image input, std::size_t k) {
  InvestigateRequest request;
  request.input = std::move(input);
  request.k = k;
  return Call<core::MispredictionReport>(
      EncodeFrame(EncodeInvestigate(request), options_.max_frame_bytes),
      MsgType::kInvestigateAck, DecodeInvestigateAck);
}

serve::Result<std::vector<core::MispredictionReport>>
Client::InvestigateBatch(std::vector<nn::Image> inputs, std::size_t k) {
  InvestigateBatchRequest request;
  request.inputs = std::move(inputs);
  request.k = k;
  return Call<std::vector<core::MispredictionReport>>(
      EncodeFrame(EncodeInvestigateBatch(request), options_.max_frame_bytes),
      MsgType::kInvestigateBatchAck, DecodeInvestigateBatchAck);
}

serve::Result<core::TrainingServer::ReleasedModel> Client::Release(
    const std::string& participant_id) {
  return Call<core::TrainingServer::ReleasedModel>(
      EncodeFrame(EncodeRelease({participant_id}), options_.max_frame_bytes),
      MsgType::kReleaseAck, DecodeReleaseAck);
}

serve::Result<StatusAck> Client::Status() {
  return Call<StatusAck>(
      EncodeFrame(EncodeStatus(), options_.max_frame_bytes),
      MsgType::kStatusAck, DecodeStatusAck);
}

Bytes Client::ProvisionHello(const std::string& participant_id,
                             BytesView client_hello) {
  ProvisionMsg msg;
  msg.participant_id = participant_id;
  msg.blob.assign(client_hello.begin(), client_hello.end());
  auto result = Call<ProvisionBlobAck>(
      EncodeFrame(EncodeProvision(MsgType::kProvisionHello, msg),
                  options_.max_frame_bytes),
      MsgType::kProvisionHelloAck, DecodeProvisionBlobAck);
  return std::move(std::move(result).value().blob);
}

bool Client::ProvisionFinished(const std::string& participant_id,
                               BytesView finished) {
  ProvisionMsg msg;
  msg.participant_id = participant_id;
  msg.blob.assign(finished.begin(), finished.end());
  return Call<ProvisionOkAck>(
             EncodeFrame(EncodeProvision(MsgType::kProvisionFinished, msg),
                         options_.max_frame_bytes),
             MsgType::kProvisionFinishedAck, DecodeProvisionOkAck)
      .value()
      .ok;
}

bool Client::ProvisionKey(const std::string& participant_id,
                          BytesView record) {
  ProvisionMsg msg;
  msg.participant_id = participant_id;
  msg.blob.assign(record.begin(), record.end());
  return Call<ProvisionOkAck>(
             EncodeFrame(EncodeProvision(MsgType::kProvisionKey, msg),
                         options_.max_frame_bytes),
             MsgType::kProvisionKeyAck, DecodeProvisionOkAck)
      .value()
      .ok;
}

}  // namespace caltrain::net
