#include "net/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "crypto/group.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace caltrain::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  ThrowError(ErrorKind::kUnavailable,
             what + ": " + std::string(::strerror(errno)));
}

}  // namespace

Server::Server(serve::Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { Stop(); }

void Server::Start() {
  CALTRAIN_CHECK(!started_, "Server::Start called twice");

  util::UniqueFd listener(::socket(
      AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!listener.valid()) ThrowErrno("socket");
  const int one = 1;
  (void)::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ThrowError(ErrorKind::kInvalidArgument,
               "bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ThrowErrno("bind " + options_.bind_address + ":" +
               std::to_string(options_.port));
  }
  if (::listen(listener.get(), options_.listen_backlog) != 0) {
    ThrowErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ThrowErrno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  util::UniqueFd epoll(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll.valid()) ThrowErrno("epoll_create1");
  util::UniqueFd wake(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake.valid()) ThrowErrno("eventfd");
  util::UniqueFd timer(
      ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC));
  if (!timer.valid()) ThrowErrno("timerfd_create");

  const auto add = [&](int fd, std::uint64_t tag) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      ThrowErrno("epoll_ctl add");
    }
  };
  add(listener.get(), kListenTag);
  add(wake.get(), kWakeTag);
  add(timer.get(), kTimerTag);

  listen_fd_ = std::move(listener);
  epoll_fd_ = std::move(epoll);
  wake_fd_ = std::move(wake);
  timer_fd_ = std::move(timer);
  started_ = true;
  loop_ = std::thread([this] { Loop(); });
}

void Server::Stop() {
  if (!started_ || joined_) return;
  stop_requested_.store(true, std::memory_order_release);
  {
    // The eventfd write rides under cq_mu_ like every completion post,
    // so the final barrier below orders it against the loop's exit.
    util::MutexLock lock(cq_mu_);
    const std::uint64_t tick = 1;
    (void)!::write(wake_fd_.get(), &tick, sizeof(tick));
  }
  if (loop_.joinable()) loop_.join();
  joined_ = true;
  // Barrier: any post that made it past the pending_requests_
  // accounting has fully left its critical section (and its eventfd
  // write) before the fds below are closed.
  { util::MutexLock lock(cq_mu_); }
  connections_.clear();
  timer_fd_.reset();
  wake_fd_.reset();
  epoll_fd_.reset();
  listen_fd_.reset();
}

void Server::Loop() {
  std::chrono::steady_clock::time_point drain_deadline{};
  bool listener_open = true;
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_deadline =
          std::chrono::steady_clock::now() + options_.drain_timeout;
      if (listener_open) {
        (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(),
                          nullptr);
        listen_fd_.reset();
        listener_open = false;
      }
      // Parked uploads waiting for a retry tick are not in flight with
      // the service — fail them now so their clients are not left
      // hanging (a resubmit after reconnect sees the advanced gate).
      std::vector<std::uint64_t> parked_ids;
      for (const auto& [id, conn] : connections_) {
        if (conn->parked && conn->parked->retry_due) parked_ids.push_back(id);
      }
      for (const std::uint64_t id : parked_ids) {
        const auto it = connections_.find(id);
        if (it == connections_.end()) continue;
        Completion synthetic;
        synthetic.conn_id = id;
        synthetic.session = it->second->parked->request.session;
        synthetic.upload_seq = it->second->parked->request.upload_seq;
        synthetic.upload.emplace(serve::Result<serve::UploadReceipt>(
            serve::ServeError{serve::ServeErrorKind::kWrongPhase,
                              "server is shutting down"}));
        ApplyUploadCompletion(synthetic);
      }
      for (auto& [id, conn] : connections_) UpdateEpoll(*conn);
    }
    if (draining_ && pending_requests_ == 0) {
      const bool backlog = std::any_of(
          connections_.begin(), connections_.end(),
          [](const auto& entry) { return entry.second->wants_write(); });
      if (!backlog ||
          std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }

    epoll_event events[64];
    const int timeout_ms = draining_ ? 10 : -1;
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      CALTRAIN_LOG(kError) << "[net] epoll_wait failed: "
                           << ::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        if (listener_open) HandleAccept();
      } else if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else if (tag == kTimerTag) {
        HandleTimer();
      } else {
        HandleConnectionEvent(tag, events[i].events);
      }
    }
  }
  connections_.clear();
}

void Server::HandleAccept() {
  for (;;) {
    util::UniqueFd fd(::accept4(listen_fd_.get(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      // EAGAIN just means the backlog is drained; anything else is
      // transient too at this layer (level-triggered epoll re-arms).
      return;
    }
    if (util::FaultInjector::Global().armed()) {
      try {
        (void)util::FaultPoint("net.accept");
      } catch (const Error&) {
        // Injected accept failure: the kernel completed the TCP
        // handshake, so "failing" means dropping the fresh connection
        // — the client sees a reset and reconnects.
        continue;
      }
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(std::move(fd), id,
                                             options_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd(), &ev) != 0) {
      continue;  // fd dies with `conn`
    }
    conn->epoll_mask = EPOLLIN;
    connections_.emplace(id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::PostCompletion(Completion completion) {
  util::MutexLock lock(cq_mu_);
  cq_.push_back(std::move(completion));
  const std::uint64_t tick = 1;
  (void)!::write(wake_fd_.get(), &tick, sizeof(tick));
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    util::MutexLock lock(cq_mu_);
    batch.swap(cq_);
  }
  for (Completion& completion : batch) {
    if (pending_requests_ > 0) --pending_requests_;
    if (completion.upload.has_value()) {
      ApplyUploadCompletion(completion);
      continue;
    }
    if (completion.erase_gate) gates_.erase(completion.session);
    const auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // peer died mid-request
    Connection& conn = *it->second;
    conn.busy = false;
    if (!QueueResponse(conn, std::move(completion.frame))) {
      CloseConnection(completion.conn_id);
      continue;
    }
    ProcessFrames(conn.id());
  }
}

void Server::ApplyUploadCompletion(const Completion& completion) {
  serve::Result<serve::UploadReceipt> result = *completion.upload;
  const auto it = connections_.find(completion.conn_id);
  Connection* conn =
      it != connections_.end() ? it->second.get() : nullptr;

  if (!result.ok() &&
      result.error().kind == serve::ServeErrorKind::kQueueSaturated &&
      options_.upload_backpressure == util::BackpressurePolicy::kBlock &&
      conn != nullptr && conn->parked.has_value()) {
    // The event-loop equivalent of a blocking PushUntil: park and let
    // the retry timer resubmit — unless the submission's deadline (or
    // the server's shutdown) arrived first.
    const auto now = std::chrono::steady_clock::now();
    if (conn->parked->has_deadline && now >= conn->parked->deadline) {
      result = serve::Result<serve::UploadReceipt>(serve::ServeError{
          serve::ServeErrorKind::kTimeout,
          "ingest queue still full after " +
              std::to_string(options_.submit_timeout.count()) +
              "ms; nothing was enqueued"});
    } else if (stop_requested_.load(std::memory_order_acquire)) {
      result = serve::Result<serve::UploadReceipt>(serve::ServeError{
          serve::ServeErrorKind::kWrongPhase, "server is shutting down"});
    } else {
      conn->parked->retry_due = true;
      ArmRetryTimer();
      return;  // still busy; gate untouched
    }
  }

  // Terminal (success OR error): the idempotency gate advances and the
  // response is cached, so a transport-level resubmit of this sequence
  // replays the SAME outcome instead of re-ingesting records.  The
  // client mints a fresh sequence for every application-level call, so
  // replayed errors are always answers to the same question.
  Bytes frame =
      result.ok()
          ? EncodeFrame(EncodeUploadReceipt(result.value()),
                        options_.max_frame_bytes)
          : EncodeFrame(EncodeError(result.error()), options_.max_frame_bytes);
  UploadGate& gate = gates_[completion.session];
  gate.next_seq = completion.upload_seq + 1;
  gate.last_response = frame;
  if (conn == nullptr) return;  // session outlives the connection
  conn->parked.reset();
  conn->busy = false;
  if (!QueueResponse(*conn, std::move(frame))) {
    CloseConnection(completion.conn_id);
    return;
  }
  ProcessFrames(completion.conn_id);
}

void Server::ArmRetryTimer() {
  if (retry_timer_armed_) return;
  const auto ns = std::max<std::int64_t>(
      100'000, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   options_.block_retry_interval)
                   .count());
  itimerspec spec{};
  spec.it_value.tv_sec = ns / 1'000'000'000;
  spec.it_value.tv_nsec = ns % 1'000'000'000;
  if (::timerfd_settime(timer_fd_.get(), 0, &spec, nullptr) == 0) {
    retry_timer_armed_ = true;
  }
}

void Server::HandleTimer() {
  std::uint64_t expirations = 0;
  while (::read(timer_fd_.get(), &expirations, sizeof(expirations)) > 0) {
  }
  retry_timer_armed_ = false;
  std::vector<std::uint64_t> due;
  for (const auto& [id, conn] : connections_) {
    if (conn->parked && conn->parked->retry_due) due.push_back(id);
  }
  for (const std::uint64_t id : due) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    conn.parked->retry_due = false;
    SubmitUploadRequest retry = conn.parked->request;  // keep the original
    DispatchUpload(conn, std::move(retry));
  }
}

void Server::HandleConnectionEvent(std::uint64_t conn_id,
                                   std::uint32_t events) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (conn->FlushWrites() == Connection::IoResult::kClosed) {
      CloseConnection(conn_id);
      return;
    }
    if (conn->state == Connection::State::kClosing && !conn->wants_write()) {
      CloseConnection(conn_id);
      return;
    }
    UpdateEpoll(*conn);
  }
  if ((events & EPOLLIN) != 0) {
    if (conn->ReadIntoDecoder() == Connection::IoResult::kClosed) {
      // Peer gone.  Any in-flight completion will find the connection
      // missing; the upload gate still advances so a reconnect +
      // resubmit is answered from the cache.
      CloseConnection(conn_id);
      return;
    }
    ProcessFrames(conn_id);
  }
}

void Server::ProcessFrames(std::uint64_t conn_id) {
  for (;;) {
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    if (conn.busy || conn.state == Connection::State::kClosing ||
        draining_) {
      return;
    }
    Frame frame;
    switch (conn.decoder.Next(frame)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kCorrupt:
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        // Best effort: name the corruption in a typed frame, then cut
        // the stream — nothing after a framing error is trustworthy.
        (void)SendError(conn,
                        serve::ServeError{
                            serve::ServeErrorKind::kInvalidArgument,
                            "malformed frame: " + conn.decoder.error()},
                        /*close=*/true);
        return;
      case FrameDecoder::Status::kFrame:
        if (!HandleFrame(conn, std::move(frame))) return;
        break;
    }
  }
}

bool Server::HandleFrame(Connection& conn, Frame frame) {
  try {
    if (conn.state == Connection::State::kHandshake) {
      if (frame.type != MsgType::kHello) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return SendError(
            conn,
            serve::ServeError{serve::ServeErrorKind::kInvalidArgument,
                              "expected hello, got " +
                                  std::string(ToString(frame.type))},
            /*close=*/true);
      }
      return HandleHello(conn, frame);
    }
    switch (frame.type) {
      case MsgType::kProvisionHello: {
        const ProvisionMsg msg = DecodeProvision(frame.body());
        Bytes reply;
        try {
          reply = service_.server().HandleClientHello(msg.participant_id,
                                                      msg.blob);
        } catch (const Error& e) {
          // A handshake the enclave rejects is a client problem, not a
          // protocol violation: typed error, connection stays up.
          return SendError(conn, serve::FromError(e), /*close=*/false);
        }
        return QueueResponse(
                   conn, EncodeFrame(EncodeProvisionBlobAck({std::move(
                                         reply)}),
                                     options_.max_frame_bytes)) ||
               (CloseConnection(conn.id()), false);
      }
      case MsgType::kProvisionFinished:
      case MsgType::kProvisionKey: {
        const ProvisionMsg msg = DecodeProvision(frame.body());
        bool ok = false;
        try {
          ok = frame.type == MsgType::kProvisionFinished
                   ? service_.server().HandleClientFinished(
                         msg.participant_id, msg.blob)
                   : service_.server().HandleKeyProvision(msg.participant_id,
                                                          msg.blob);
        } catch (const Error& e) {
          return SendError(conn, serve::FromError(e), /*close=*/false);
        }
        const MsgType ack = frame.type == MsgType::kProvisionFinished
                                ? MsgType::kProvisionFinishedAck
                                : MsgType::kProvisionKeyAck;
        return QueueResponse(conn,
                             EncodeFrame(EncodeProvisionOkAck(ack, {ok}),
                                         options_.max_frame_bytes)) ||
               (CloseConnection(conn.id()), false);
      }
      case MsgType::kOpenSession: {
        const OpenSessionRequest msg = DecodeOpenSession(frame.body());
        serve::Result<serve::SessionId> opened =
            service_.OpenUploadSession(msg.participant_id);
        if (!opened.ok()) {
          return SendError(conn, opened.error(), /*close=*/false);
        }
        gates_.emplace(opened.value(), UploadGate{});
        return QueueResponse(
                   conn,
                   EncodeFrame(EncodeOpenSessionAck({opened.value()}),
                               options_.max_frame_bytes)) ||
               (CloseConnection(conn.id()), false);
      }
      case MsgType::kSubmitUpload:
        return HandleSubmitUpload(conn, frame.body());
      case MsgType::kCloseSession: {
        const CloseSessionRequest msg = DecodeCloseSession(frame.body());
        conn.busy = true;
        ++pending_requests_;
        const std::uint64_t conn_id = conn.id();
        const std::size_t max_frame = options_.max_frame_bytes;
        service_.CloseUploadSessionAsync(
            msg.session,
            [this, conn_id, session = msg.session,
             max_frame](serve::Result<serve::SessionStats> result) {
              Completion completion;
              completion.conn_id = conn_id;
              completion.session = session;
              if (result.ok()) {
                completion.frame = EncodeFrame(
                    EncodeCloseSessionAck(result.value()), max_frame);
                completion.erase_gate = true;
              } else {
                completion.frame =
                    EncodeFrame(EncodeError(result.error()), max_frame);
              }
              PostCompletion(std::move(completion));
            });
        UpdateEpoll(conn);
        return true;
      }
      case MsgType::kInvestigate: {
        InvestigateRequest msg = DecodeInvestigate(frame.body());
        conn.busy = true;
        ++pending_requests_;
        const std::uint64_t conn_id = conn.id();
        const std::size_t max_frame = options_.max_frame_bytes;
        service_.SubmitInvestigateAsync(
            std::move(msg.input), static_cast<std::size_t>(msg.k),
            [this, conn_id,
             max_frame](serve::Result<core::MispredictionReport> result) {
              Completion completion;
              completion.conn_id = conn_id;
              completion.frame =
                  result.ok()
                      ? EncodeFrame(EncodeInvestigateAck(result.value()),
                                    max_frame)
                      : EncodeFrame(EncodeError(result.error()), max_frame);
              PostCompletion(std::move(completion));
            });
        UpdateEpoll(conn);
        return true;
      }
      case MsgType::kInvestigateBatch: {
        InvestigateBatchRequest msg = DecodeInvestigateBatch(frame.body());
        conn.busy = true;
        ++pending_requests_;
        const std::uint64_t conn_id = conn.id();
        const std::size_t max_frame = options_.max_frame_bytes;
        service_.SubmitInvestigateBatchAsync(
            std::move(msg.inputs), static_cast<std::size_t>(msg.k),
            [this, conn_id, max_frame](
                serve::Result<std::vector<core::MispredictionReport>>
                    result) {
              Completion completion;
              completion.conn_id = conn_id;
              completion.frame =
                  result.ok()
                      ? EncodeFrame(
                            EncodeInvestigateBatchAck(result.value()),
                            max_frame)
                      : EncodeFrame(EncodeError(result.error()), max_frame);
              PostCompletion(std::move(completion));
            });
        UpdateEpoll(conn);
        return true;
      }
      case MsgType::kRelease: {
        const ReleaseRequest msg = DecodeRelease(frame.body());
        conn.busy = true;
        ++pending_requests_;
        const std::uint64_t conn_id = conn.id();
        const std::size_t max_frame = options_.max_frame_bytes;
        service_.SubmitReleaseAsync(
            msg.participant_id,
            [this, conn_id, max_frame](
                serve::Result<core::TrainingServer::ReleasedModel> result) {
              Completion completion;
              completion.conn_id = conn_id;
              completion.frame =
                  result.ok()
                      ? EncodeFrame(EncodeReleaseAck(result.value()),
                                    max_frame)
                      : EncodeFrame(EncodeError(result.error()), max_frame);
              PostCompletion(std::move(completion));
            });
        UpdateEpoll(conn);
        return true;
      }
      case MsgType::kStatus: {
        DecodeStatus(frame.body());
        StatusAck ack;
        ack.phase = static_cast<std::uint8_t>(service_.phase());
        ack.degraded = service_.degraded();
        ack.accepted_records = service_.server().accepted_records();
        ack.rejected_records = service_.server().rejected_records();
        return QueueResponse(conn, EncodeFrame(EncodeStatusAck(ack),
                                               options_.max_frame_bytes)) ||
               (CloseConnection(conn.id()), false);
      }
      default:
        // A second hello, a response type, or an unknown value: the
        // peer broke the protocol.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return SendError(
            conn,
            serve::ServeError{serve::ServeErrorKind::kInvalidArgument,
                              "unexpected message type " +
                                  std::to_string(static_cast<unsigned>(
                                      frame.type))},
            /*close=*/true);
    }
  } catch (const Error& e) {
    // Malformed message body — hostile or version-skewed peer.
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    return SendError(conn, serve::FromError(e), /*close=*/true);
  }
}

bool Server::HandleHello(Connection& conn, const Frame& frame) {
  const HelloRequest msg = DecodeHello(frame.body());
  if (msg.version_min > kProtocolVersionMax ||
      msg.version_max < kProtocolVersionMin) {
    return SendError(
        conn,
        serve::ServeError{
            serve::ServeErrorKind::kInvalidArgument,
            "no common protocol version (server speaks [" +
                std::to_string(kProtocolVersionMin) + ", " +
                std::to_string(kProtocolVersionMax) + "], client offered [" +
                std::to_string(msg.version_min) + ", " +
                std::to_string(msg.version_max) + "])"},
        /*close=*/true);
  }
  conn.version = std::min(kProtocolVersionMax, msg.version_max);
  HelloAck ack;
  ack.version = conn.version;
  ack.max_frame_bytes = options_.max_frame_bytes;
  ack.attestation_public_key =
      crypto::U128ToBytes(service_.server().attestation_public_key());
  const crypto::Sha256Digest& measurement =
      service_.server().training_measurement();
  ack.measurement.assign(measurement.begin(), measurement.end());
  conn.state = Connection::State::kReady;
  if (!QueueResponse(conn, EncodeFrame(EncodeHelloAck(ack),
                                       options_.max_frame_bytes))) {
    CloseConnection(conn.id());
    return false;
  }
  return true;
}

bool Server::HandleSubmitUpload(Connection& conn, BytesView body) {
  SubmitUploadRequest request = DecodeSubmitUpload(body);
  UploadGate& gate = gates_[request.session];
  if (gate.next_seq > 0 && request.upload_seq == gate.next_seq - 1) {
    // Transport-level resubmit of the last completed submission: the
    // records were (or were not) ingested exactly once already —
    // replay the cached outcome.
    return QueueResponse(conn, Bytes(gate.last_response)) ||
           (CloseConnection(conn.id()), false);
  }
  if (request.upload_seq != gate.next_seq) {
    return SendError(
        conn,
        serve::ServeError{serve::ServeErrorKind::kInvalidArgument,
                          "upload sequence " +
                              std::to_string(request.upload_seq) +
                              " out of order (expected " +
                              std::to_string(gate.next_seq) + ")"},
        /*close=*/false);
  }
  DispatchUpload(conn, std::move(request));
  return true;
}

void Server::DispatchUpload(Connection& conn, SubmitUploadRequest request) {
  conn.busy = true;
  if (options_.upload_backpressure == util::BackpressurePolicy::kBlock &&
      !conn.parked.has_value()) {
    // Keep a retryable copy before the records are moved out: a
    // kQueueSaturated bounce parks the submission on this connection.
    Connection::ParkedUpload parked;
    parked.request = request;
    if (options_.submit_timeout.count() > 0) {
      parked.has_deadline = true;
      parked.deadline =
          std::chrono::steady_clock::now() + options_.submit_timeout;
    }
    conn.parked = std::move(parked);
  }
  ++pending_requests_;
  const std::uint64_t conn_id = conn.id();
  const serve::SessionId session = request.session;
  const std::uint64_t seq = request.upload_seq;
  service_.SubmitUploadAsync(
      session, std::move(request.records),
      [this, conn_id, session,
       seq](serve::Result<serve::UploadReceipt> result) {
        Completion completion;
        completion.conn_id = conn_id;
        completion.session = session;
        completion.upload_seq = seq;
        completion.upload.emplace(std::move(result));
        PostCompletion(std::move(completion));
      },
      util::BackpressurePolicy::kReject);
  UpdateEpoll(conn);
}

bool Server::SendError(Connection& conn, serve::ServeError error,
                       bool close) {
  Bytes frame = EncodeFrame(EncodeError(error), options_.max_frame_bytes);
  if (close) conn.state = Connection::State::kClosing;
  if (!QueueResponse(conn, std::move(frame))) {
    CloseConnection(conn.id());
    return false;
  }
  if (close) {
    if (!conn.wants_write()) {
      CloseConnection(conn.id());
    }
    return false;  // stop serving this connection either way
  }
  return true;
}

bool Server::QueueResponse(Connection& conn, Bytes frame) {
  conn.QueueFrame(std::move(frame));
  if (conn.write_backlog() > options_.max_write_backlog) {
    // Slowloris guard: the peer is not reading its responses.
    CALTRAIN_LOG(kWarn) << "[net] connection " << conn.id()
                        << " exceeded its write backlog; closing";
    return false;
  }
  if (conn.FlushWrites() == Connection::IoResult::kClosed) return false;
  UpdateEpoll(conn);
  return true;
}

void Server::UpdateEpoll(Connection& conn) {
  std::uint32_t desired = 0;
  if (conn.state != Connection::State::kClosing && !conn.busy &&
      !draining_) {
    desired |= EPOLLIN;
  }
  if (conn.wants_write()) desired |= EPOLLOUT;
  if (desired == conn.epoll_mask) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn.id();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd(), &ev) == 0) {
    conn.epoll_mask = desired;
  }
}

void Server::CloseConnection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second->fd(),
                    nullptr);
  // A parked upload dies with its connection WITHOUT advancing the
  // gate: the records never reached the service, so a reconnecting
  // client's resubmit of the same sequence is processed fresh.
  connections_.erase(it);
}

}  // namespace caltrain::net
