#include "net/wire.hpp"

#include <cstring>

#include "persist/journal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace caltrain::net {

namespace {

std::uint32_t LoadLe32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreLe32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

const char* ToString(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello-ack";
    case MsgType::kError: return "error";
    case MsgType::kProvisionHello: return "provision-hello";
    case MsgType::kProvisionHelloAck: return "provision-hello-ack";
    case MsgType::kProvisionFinished: return "provision-finished";
    case MsgType::kProvisionFinishedAck: return "provision-finished-ack";
    case MsgType::kProvisionKey: return "provision-key";
    case MsgType::kProvisionKeyAck: return "provision-key-ack";
    case MsgType::kOpenSession: return "open-session";
    case MsgType::kOpenSessionAck: return "open-session-ack";
    case MsgType::kSubmitUpload: return "submit-upload";
    case MsgType::kUploadReceipt: return "upload-receipt";
    case MsgType::kCloseSession: return "close-session";
    case MsgType::kCloseSessionAck: return "close-session-ack";
    case MsgType::kInvestigate: return "investigate";
    case MsgType::kInvestigateAck: return "investigate-ack";
    case MsgType::kInvestigateBatch: return "investigate-batch";
    case MsgType::kInvestigateBatchAck: return "investigate-batch-ack";
    case MsgType::kRelease: return "release";
    case MsgType::kReleaseAck: return "release-ack";
    case MsgType::kStatus: return "status";
    case MsgType::kStatusAck: return "status-ack";
  }
  return "unknown";
}

Bytes EncodeFrame(BytesView payload, std::size_t max_frame_bytes) {
  CALTRAIN_REQUIRE(!payload.empty(), "frame payload must hold a type byte");
  CALTRAIN_REQUIRE(payload.size() <= max_frame_bytes &&
                       payload.size() <= 0xffffffffULL,
                   "frame payload exceeds the frame size limit");
  Bytes out(kFrameHeaderBytes + payload.size());
  StoreLe32(out.data(), static_cast<std::uint32_t>(payload.size()));
  StoreLe32(out.data() + 4, persist::Crc32c(payload));
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

Bytes FinishFrame(Bytes&& framed, std::size_t max_frame_bytes) {
  CALTRAIN_REQUIRE(framed.size() > kFrameHeaderBytes,
                   "frame payload must hold a type byte");
  const std::size_t payload_size = framed.size() - kFrameHeaderBytes;
  CALTRAIN_REQUIRE(payload_size <= max_frame_bytes &&
                       payload_size <= 0xffffffffULL,
                   "frame payload exceeds the frame size limit");
  const BytesView payload(framed.data() + kFrameHeaderBytes, payload_size);
  StoreLe32(framed.data(), static_cast<std::uint32_t>(payload_size));
  StoreLe32(framed.data() + 4, persist::Crc32c(payload));
  return std::move(framed);
}

void FrameDecoder::Feed(BytesView data) {
  if (poisoned_) return;  // nothing after a framing error is trusted
  // Compact before the buffer grows: consumed prefix bytes are dead.
  if (pos_ > 64 * 1024 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

FrameDecoder::Status FrameDecoder::Poison(std::string why) {
  poisoned_ = true;
  error_ = std::move(why);
  buffer_.clear();
  pos_ = 0;
  return Status::kCorrupt;
}

FrameDecoder::Status FrameDecoder::Next(Frame& out) {
  if (poisoned_) return Status::kCorrupt;
  if (util::FaultInjector::Global().armed()) {
    try {
      (void)util::FaultPoint("net.frame");
    } catch (const Error&) {
      // An injected frame fault behaves exactly like wire corruption:
      // the stream is poisoned and the connection must drop.
      return Poison("injected frame fault");
    }
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;
  const std::uint8_t* head = buffer_.data() + pos_;
  const std::uint32_t len = LoadLe32(head);
  if (len == 0) {
    return Poison("zero-length frame payload");
  }
  if (len > max_frame_bytes_) {
    // Reject from the length prefix alone — the declared payload is
    // never buffered, so a hostile length cannot balloon memory.
    return Poison("frame payload of " + std::to_string(len) +
                  " bytes exceeds the " +
                  std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (avail < kFrameHeaderBytes + len) return Status::kNeedMore;
  const std::uint32_t want_crc = LoadLe32(head + 4);
  const BytesView payload(head + kFrameHeaderBytes, len);
  if (persist::Crc32c(payload) != want_crc) {
    return Poison("frame CRC mismatch");
  }
  out.type = static_cast<MsgType>(payload[0]);
  if (pos_ == 0 && buffer_.size() == kFrameHeaderBytes + len) {
    // The buffer holds exactly this frame — the normal case for large
    // frames (bulk uploads, released models).  Hand the buffer over
    // and shave the header in place instead of allocating and copying
    // the whole payload.
    out.payload = std::move(buffer_);
    out.payload.erase(out.payload.begin(),
                      out.payload.begin() + kFrameHeaderBytes);
    buffer_.clear();
    pos_ = 0;
    return Status::kFrame;
  }
  out.payload.assign(payload.begin(), payload.end());
  pos_ += kFrameHeaderBytes + len;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

}  // namespace caltrain::net
