// Versioned wire protocol for the serving API (ISSUE 10).
//
// Framing is deliberately minimal — every frame is
//
//   u32 LE payload_length | u32 LE CRC32C(payload) | payload
//
// with payload[0] holding the message type and the rest the
// type-specific body (util::ByteWriter little-endian encoding, the same
// primitives the persist journal uses).  The CRC makes corruption a
// *typed* protocol error instead of a parse of garbage; the length
// prefix bounds every allocation before a single payload byte is
// trusted.
//
// Version negotiation happens in the first exchange: the client's
// Hello carries the [min, max] protocol range it speaks, the server
// answers with the highest version both sides support (or a typed
// error frame when the ranges are disjoint) plus its attestation
// surface, so remote participants can run the ISSUE-3 attested
// handshake without any out-of-band channel.
//
// The decoder treats ALL input as hostile: truncated frames simply
// wait for more bytes, oversized lengths / CRC mismatches poison the
// stream with a typed error, and nothing is ever read past a validated
// length.  There is no UB path for attacker-controlled bytes — the
// adversarial corpus in tests/net_test.cpp runs under ASan/UBSan.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace caltrain::net {

/// Protocol versions this build speaks, inclusive.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionMax = 1;

/// First field of every Hello — a frame that does not start with the
/// magic is not this protocol at all.
inline constexpr std::uint32_t kHelloMagic = 0x434c5452;  // "CLTR"

/// Default ceiling on a single frame's payload.  Large enough for a
/// released model or a multi-thousand-record submission, small enough
/// that a hostile length prefix cannot balloon memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ULL << 20;

/// Bytes of framing overhead per frame (length + CRC).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Message types.  Values are wire-stable: append, never renumber.
enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kError = 3,  ///< typed ServeError response to any request
  kProvisionHello = 4,
  kProvisionHelloAck = 5,
  kProvisionFinished = 6,
  kProvisionFinishedAck = 7,
  kProvisionKey = 8,
  kProvisionKeyAck = 9,
  kOpenSession = 10,
  kOpenSessionAck = 11,
  kSubmitUpload = 12,
  kUploadReceipt = 13,
  kCloseSession = 14,
  kCloseSessionAck = 15,
  kInvestigate = 16,
  kInvestigateAck = 17,
  kInvestigateBatch = 18,
  kInvestigateBatchAck = 19,
  kRelease = 20,
  kReleaseAck = 21,
  kStatus = 22,
  kStatusAck = 23,
};

[[nodiscard]] const char* ToString(MsgType type) noexcept;

/// Wraps `payload` (type byte + body) in a length/CRC header.
/// Throws kInvalidArgument on an empty or oversized payload.
[[nodiscard]] Bytes EncodeFrame(BytesView payload,
                                std::size_t max_frame_bytes =
                                    kDefaultMaxFrameBytes);

/// Completes a frame assembled in place: `framed` holds
/// kFrameHeaderBytes of reserved space followed by the payload.
/// Patches the length/CRC header and returns the same bytes
/// EncodeFrame produces — without copying the payload, which matters
/// for multi-hundred-KB upload frames.  Throws kInvalidArgument on an
/// empty or oversized payload.
[[nodiscard]] Bytes FinishFrame(Bytes&& framed,
                                std::size_t max_frame_bytes =
                                    kDefaultMaxFrameBytes);

/// One decoded frame: the full payload, type already split out.
struct Frame {
  MsgType type = MsgType::kError;
  Bytes payload;  ///< entire payload including the leading type byte
  /// Body view (payload without the type byte).
  [[nodiscard]] BytesView body() const noexcept {
    return BytesView(payload.data() + 1, payload.size() - 1);
  }
};

/// Incremental frame decoder over an untrusted byte stream.
///
/// Feed() appends whatever the socket produced; Next() yields frames
/// until the buffer runs dry (kNeedMore) or the stream turns out to be
/// garbage (kCorrupt: oversized length, zero-length payload, CRC
/// mismatch — the decoder is then poisoned and every further call
/// returns kCorrupt, because nothing after a framing error can be
/// trusted).
class FrameDecoder {
 public:
  enum class Status { kNeedMore, kFrame, kCorrupt };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(BytesView data);

  /// Decodes the next complete frame into `out`.
  [[nodiscard]] Status Next(Frame& out);

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  /// Why the stream was poisoned (empty while healthy).
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Bytes buffered but not yet consumed (flow-control accounting).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - pos_;
  }

 private:
  Status Poison(std::string why);

  std::size_t max_frame_bytes_;
  Bytes buffer_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace caltrain::net
