#include "util/rng.hpp"

#include <cmath>

namespace caltrain {

namespace {

// splitmix64: seeds the xoshiro state from one 64-bit value.
std::uint64_t SplitMix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() noexcept {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(UniformU64(span));
}

float Rng::UniformFloat() noexcept {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24F;
}

float Rng::UniformFloat(float lo, float hi) noexcept {
  return lo + (hi - lo) * UniformFloat();
}

float Rng::Gaussian() noexcept {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  float u1 = UniformFloat();
  while (u1 <= 1e-12F) u1 = UniformFloat();
  const float u2 = UniformFloat();
  const float r = std::sqrt(-2.0F * std::log(u1));
  const float theta = 2.0F * 3.14159265358979323846F * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

float Rng::Gaussian(float mean, float stddev) noexcept {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(float p) noexcept { return UniformFloat() < p; }

Rng Rng::Fork() noexcept { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace caltrain
