// Owning file-descriptor handle for the event-driven layers (ISSUE 10).
//
// A trivially small RAII wrapper: one fd, closed exactly once, movable,
// never copied.  The networking front end (src/net) juggles listen
// sockets, connection sockets, epoll, eventfd and timerfd instances —
// every early-return path must release them, which is exactly what a
// destructor is for.
#pragma once

#include <unistd.h>

#include <utility>

namespace caltrain::util {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  ~UniqueFd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  /// Releases ownership without closing.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

}  // namespace caltrain::util
