// Parallel execution runtime: a simple, work-stealing-free thread pool
// plus blocked parallel-for helpers.
//
// Design constraints (see ISSUE 1 / ROADMAP):
//  * Determinism — ParallelForBlocked hands each caller-visible block to
//    exactly one task, so any computation whose per-block arithmetic
//    order matches the serial loop is bit-identical at every thread
//    count.  With `Parallelism::threads() == 1` no pool machinery runs
//    at all: the body executes inline on the calling thread, exactly
//    like the pre-threading serial code.
//  * Safety under nesting — a ParallelFor issued from inside a pool
//    task runs serially inline, and a Submit issued from inside a pool
//    task executes inline and returns a ready future.  Neither can
//    deadlock, regardless of pool size.
//  * Exception transparency — the first exception thrown by any block
//    is captured and rethrown on the calling thread after all blocks
//    have finished (every index is still visited exactly once unless
//    its own block threw).
//
// Thread count resolution: `CALTRAIN_THREADS` env var if set and valid,
// else std::thread::hardware_concurrency(); overridable at runtime via
// Parallelism::set_threads (tests, benches).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace caltrain::util {

/// Process-wide thread-count policy for all parallel hot paths.
class Parallelism {
 public:
  /// Effective thread count (>= 1).
  [[nodiscard]] static unsigned threads();
  /// Overrides the thread count; 0 restores the env/hardware default.
  static void set_threads(unsigned n);
  /// The env/hardware default, ignoring any set_threads override.
  [[nodiscard]] static unsigned DefaultThreads();
};

/// RAII thread-count override (tests and benches).
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned n)
      : previous_(Parallelism::threads()) {
    Parallelism::set_threads(n);
  }
  ~ScopedThreads() { Parallelism::set_threads(previous_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  unsigned previous_;
};

/// True on a thread currently executing a pool task or a ParallelFor
/// block (used to serialize nested parallel regions).
[[nodiscard]] bool InParallelRegion() noexcept;

/// Scans argv for `--threads N` and, when present and valid, applies it
/// via Parallelism::set_threads — the flag therefore wins over the
/// CALTRAIN_THREADS environment variable.  Returns the thread count in
/// effect afterwards.  Shared by the benches and the examples.
unsigned ApplyThreadsFlag(int argc, char** argv);

class ThreadPool {
 public:
  /// Spawns `workers` threads immediately (0 is allowed; the pool then
  /// grows on demand via EnsureWorkers).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queues `fn`.  Called from inside a pool task, executes `fn` inline
  /// instead (nested-submit safety) — the returned future is ready.
  std::future<void> Submit(std::function<void()> fn);

  /// Grows the pool to at least `n` worker threads (capped internally).
  void EnsureWorkers(unsigned n);

  [[nodiscard]] unsigned worker_count() const;

  /// The process-wide pool used by ParallelFor and the hot paths.
  /// Created lazily on first parallel dispatch; never torn down before
  /// process exit.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Runs body(i) for every i in [begin, end).  Parallel when
/// Parallelism::threads() > 1, the range is non-trivial, and the caller
/// is not already inside a parallel region; serial inline otherwise.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

/// Runs body(b0, b1) over contiguous blocks covering [begin, end);
/// each block is executed by exactly one thread.  `min_grain` is the
/// smallest block size worth dispatching (ranges smaller than
/// 2*min_grain run inline).
void ParallelForBlocked(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>&
                            body,
                        std::size_t min_grain = 1);

}  // namespace caltrain::util
