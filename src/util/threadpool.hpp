// Parallel execution runtime: a thread pool with per-worker run queues
// and FIFO work stealing, plus blocked parallel-for helpers.
//
// Design constraints (see ISSUE 1 / ISSUE 6 / ROADMAP):
//  * Determinism — ParallelForBlocked hands each caller-visible block to
//    exactly one task, so any computation whose per-block arithmetic
//    order matches the serial loop is bit-identical at every thread
//    count.  With `Parallelism::threads() == 1` no pool machinery runs
//    at all: the body executes inline on the calling thread, exactly
//    like the pre-threading serial code.
//  * Scalability — dispatch never takes a global lock.  Every worker
//    owns its own queue (mutex + condition variable + fixed-slot task
//    records, no std::function / shared_ptr allocation on the bulk
//    path), Submit round-robins across the queues, and idle workers
//    steal from loaded ones so a long-running task cannot strand the
//    work queued behind it.  ParallelForBlocked dispatches ONE
//    persistent loop task per participating worker (the workers pull
//    blocks from a shared atomic cursor), not one task per block.
//  * Oversubscription — the number of OS threads that participate in a
//    parallel region is capped at the physical core count
//    (`Parallelism::width()`).  Requesting more threads than cores
//    cannot make CPU-bound work faster, only slower (context switches,
//    cache interference), and the work *plan* never depends on the
//    thread count, so clamping the dispatch width is invisible in the
//    results — `threads=8` on a 1-core host computes bit-identically
//    to `threads=1`, at `threads=1` speed.
//  * Safety under nesting — a ParallelFor issued from inside a pool
//    task runs serially inline, and a Submit issued from inside a pool
//    task executes inline and returns a ready future.  Neither can
//    deadlock, regardless of pool size.
//  * Exception transparency — the first exception thrown by any block
//    is captured and rethrown on the calling thread after all blocks
//    have finished (every index is still visited exactly once unless
//    its own block threw).
//  * Shutdown drains — the destructor completes every already-queued
//    task (workers drain their own queues, then steal the remainder)
//    before joining, so no Submit future is ever abandoned.
//
// Thread count resolution: `CALTRAIN_THREADS` env var if set and valid,
// else std::thread::hardware_concurrency(); overridable at runtime via
// Parallelism::set_threads (tests, benches).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::util {

/// Process-wide thread-count policy for all parallel hot paths.
class Parallelism {
 public:
  /// Hard cap on pool workers and thread-count overrides.
  static constexpr unsigned kMaxThreads = 64;

  /// Effective thread count (>= 1).
  [[nodiscard]] static unsigned threads();
  /// Overrides the thread count.  Requires 1 <= n (values above
  /// kMaxThreads are clamped); 0 throws kInvalidArgument — use
  /// clear_override() to restore the env/hardware default.
  static void set_threads(unsigned n);
  /// Drops any set_threads override; threads() returns the
  /// env/hardware default again.
  static void clear_override();
  /// The env/hardware default, ignoring any set_threads override.
  [[nodiscard]] static unsigned DefaultThreads();
  /// Physical parallel width of the host (hardware_concurrency,
  /// >= 1).
  [[nodiscard]] static unsigned HardwareThreads();
  /// Dispatch width: min(threads(), HardwareThreads()).  Parallel
  /// regions plan their work from threads() but enqueue at most
  /// width() - 1 helpers, so oversubscribing a small host degrades to
  /// serial speed instead of below it.
  [[nodiscard]] static unsigned width();
};

/// RAII thread-count override (tests and benches).
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned n)
      : previous_(Parallelism::threads()) {
    Parallelism::set_threads(n);
  }
  ~ScopedThreads() { Parallelism::set_threads(previous_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  unsigned previous_;
};

/// True on a thread currently executing a pool task or a ParallelFor
/// block (used to serialize nested parallel regions).
[[nodiscard]] bool InParallelRegion() noexcept;

/// Scans argv for `--threads N` and applies it via
/// Parallelism::set_threads — the flag therefore wins over the
/// CALTRAIN_THREADS environment variable.  A malformed value (`0`,
/// trailing garbage, out of range) or a bare trailing `--threads`
/// throws kInvalidArgument instead of silently running at an
/// unexpected thread count.  Returns the thread count in effect
/// afterwards.  Shared by the benches and the examples.
unsigned ApplyThreadsFlag(int argc, char** argv);

class ThreadPool {
 public:
  /// A bulk-dispatch slot body.  `slot` identifies the participant
  /// (0 = the dispatching thread, 1..helpers = pool workers); work
  /// must be pulled from shared state in `ctx` (e.g. an atomic
  /// cursor), never derived from `slot`, because helpers that fail to
  /// dispatch simply never run.
  using BulkFn = void (*)(void* ctx, unsigned slot);

  /// Spawns `workers` threads immediately (0 is allowed; the pool then
  /// grows on demand via EnsureWorkers).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queues `fn` on one of the per-worker queues (round-robin; idle
  /// workers steal it if the owner is busy).  Called from inside a
  /// pool task, executes `fn` inline instead (nested-submit safety) —
  /// the returned future is ready.
  std::future<void> Submit(std::function<void()> fn);

  /// Bulk dispatch for parallel regions: enqueues up to `helpers`
  /// fixed-slot loop tasks (one per worker, no allocation), runs
  /// `fn(ctx, 0)` on the calling thread, and returns only after every
  /// dispatched task finished.  Queued-but-unstarted helper tasks are
  /// reclaimed and run inline by the caller while it waits, so a
  /// blocked worker can delay the region only by the task it is
  /// already running.  Dispatch failures (thread creation, queue
  /// allocation) degrade the region to fewer participants; the work
  /// still completes.  Returns the number of helpers actually
  /// enqueued.  `fn` must confine exceptions to `ctx` (helper slots
  /// swallow them; the caller slot rethrows after the region ends).
  unsigned RunOnWorkers(unsigned helpers, BulkFn fn, void* ctx);

  /// Grows the pool to at least `n` worker threads (capped internally).
  void EnsureWorkers(unsigned n);

  [[nodiscard]] unsigned worker_count() const;

  /// The process-wide pool used by ParallelFor and the hot paths.
  /// Created lazily on first parallel dispatch; never torn down before
  /// process exit.
  static ThreadPool& Global();

 private:
  /// Fixed-slot task record: 24 bytes, trivially copyable, no type
  /// erasure.  Submit's std::function lives behind `ctx` (a
  /// heap-allocated packaged_task node); bulk tasks point `ctx` at the
  /// dispatcher's stack frame.
  struct Task {
    void (*fn)(void* ctx, unsigned slot);
    void* ctx;
    unsigned slot;
  };

  struct Worker {
    Mutex mutex;
    CondVar ready;
    std::deque<Task> queue GUARDED_BY(mutex);
    // True while the worker executes a task.  A push onto a busy
    // worker's queue must advertise the work to thieves: the owner may
    // stay inside its current task indefinitely, and a sleeping thief
    // re-checks queues only when signalled.  Not GUARDED_BY(mutex):
    // the worker clears it after finishing a task without the lock;
    // the store/load pairing that matters (Enqueue's advertise read vs
    // the owner's pop) does happen under the queue mutex.
    std::atomic<bool> busy{false};
    std::thread thread;
  };

  void WorkerLoop(unsigned self);
  void Enqueue(unsigned target, const Task& task);
  bool TrySteal(unsigned self, Task& out);
  void WakeThief(unsigned except);

  // Worker registry: slots are created once, never moved or destroyed
  // before the pool itself, so dispatch paths read `worker_count_`
  // (acquire) and index `workers_` without the growth lock.  Not
  // GUARDED_BY(grow_mutex_) for that reason: only the slot *writes* in
  // EnsureWorkers happen under the lock; readers synchronize through
  // the worker_count_ acquire load.
  std::array<std::unique_ptr<Worker>, Parallelism::kMaxThreads> workers_;
  std::atomic<unsigned> worker_count_{0};
  Mutex grow_mutex_;
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> round_robin_{0};
  // Bumped (release) whenever a queue develops a backlog; workers
  // re-scan for steals instead of sleeping when it moved.
  std::atomic<std::uint64_t> steal_signal_{0};
};

/// Runs body(i) for every i in [begin, end).  Parallel when
/// Parallelism::threads() > 1, the range is non-trivial, and the caller
/// is not already inside a parallel region; serial inline otherwise.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

/// Runs body(b0, b1) over contiguous blocks covering [begin, end);
/// each block is executed by exactly one thread.  `min_grain` is the
/// smallest block size worth dispatching (ranges smaller than
/// 2*min_grain run inline).  The block plan derives from
/// Parallelism::threads() only; the number of OS threads executing it
/// is capped at Parallelism::width().
void ParallelForBlocked(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>&
                            body,
                        std::size_t min_grain = 1);

}  // namespace caltrain::util
