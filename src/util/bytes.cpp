#include "util/bytes.hpp"

#include "util/error.hpp"

namespace caltrain {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  CALTRAIN_REQUIRE(hex.size() % 2 == 0, "hex string must have even length");
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = HexValue(hex[2 * i]);
    const int lo = HexValue(hex[2 * i + 1]);
    CALTRAIN_REQUIRE(hi >= 0 && lo >= 0, "non-hex character");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

Bytes BytesOf(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

bool ConstantTimeEqual(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::uint32_t LoadBe32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t LoadBe64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{LoadBe32(p)} << 32) | LoadBe32(p + 4);
}

void StoreBe32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void StoreBe64(std::uint8_t* p, std::uint64_t v) noexcept {
  StoreBe32(p, static_cast<std::uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t LoadLe64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void StoreLe64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

void Append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace caltrain
