// Small numeric helpers shared by the assessment and linkage layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace caltrain {

/// Numerically stable softmax; input logits, output probabilities.
[[nodiscard]] std::vector<float> Softmax(std::span<const float> logits);

/// Kullback–Leibler divergence D_KL(p || q) over discrete distributions.
/// Both inputs must be the same length; q entries are floored at eps to
/// keep the divergence finite (matches the paper's use of KL against
/// near-zero predicted probabilities).
[[nodiscard]] double KlDivergence(std::span<const float> p,
                                  std::span<const float> q,
                                  double eps = 1e-7);

/// Euclidean (L2) distance between two equal-length vectors.
[[nodiscard]] double L2Distance(std::span<const float> a,
                                std::span<const float> b);

/// L2 norm.
[[nodiscard]] double L2Norm(std::span<const float> v);

/// Scales v to unit L2 norm in place; leaves an all-zero vector as is.
void L2NormalizeInPlace(std::vector<float>& v);

/// Discrete uniform distribution over n classes.
[[nodiscard]] std::vector<float> UniformDistribution(std::size_t n);

/// Arithmetic mean.
[[nodiscard]] double Mean(std::span<const float> v);

/// Index of the maximum element; 0 for empty input.
[[nodiscard]] std::size_t ArgMax(std::span<const float> v) noexcept;

/// True if label is among the k largest scores (Top-k accuracy helper).
[[nodiscard]] bool InTopK(std::span<const float> scores, std::size_t label,
                          std::size_t k);

}  // namespace caltrain
