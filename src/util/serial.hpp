// Length-prefixed binary serialization used for protocol messages,
// sealed blobs, and model checkpoints.  Deliberately simple: explicit
// little-endian integers, 32-bit length prefixes, hard failure on
// truncated input (a truncated protocol message is adversarial).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace caltrain {

/// Appends typed values to a growing byte buffer.
class ByteWriter {
 public:
  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF32(float v);
  /// Length-prefixed byte string.
  void WriteBytes(BytesView data);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& s);
  /// Length-prefixed float vector.
  void WriteF32Vector(const std::vector<float>& v);

  [[nodiscard]] const Bytes& data() const noexcept { return buffer_; }
  [[nodiscard]] Bytes Take() noexcept { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Reads typed values back; throws caltrain::Error on truncation.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t ReadU8();
  [[nodiscard]] std::uint32_t ReadU32();
  [[nodiscard]] std::uint64_t ReadU64();
  [[nodiscard]] std::int64_t ReadI64();
  [[nodiscard]] float ReadF32();
  [[nodiscard]] Bytes ReadBytes();
  [[nodiscard]] std::string ReadString();
  [[nodiscard]] std::vector<float> ReadF32Vector();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  void Need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace caltrain
