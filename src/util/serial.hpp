// Length-prefixed binary serialization used for protocol messages,
// sealed blobs, and model checkpoints.  Deliberately simple: explicit
// little-endian integers, 32-bit length prefixes, hard failure on
// truncated input (a truncated protocol message is adversarial).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace caltrain {

/// Appends typed values to a growing byte buffer.
class ByteWriter {
 public:
  /// Pre-sizes the buffer for `extra` more bytes.  Callers that know
  /// the payload size (bulk record uploads, tensor blobs) use this to
  /// avoid repeated growth copies on multi-hundred-KB messages.
  void Reserve(std::size_t extra) { buffer_.reserve(buffer_.size() + extra); }

  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  /// Length-prefixed byte string.
  void WriteBytes(BytesView data);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& s);
  /// Length-prefixed float vector.
  void WriteF32Vector(const std::vector<float>& v);

  [[nodiscard]] const Bytes& data() const noexcept { return buffer_; }
  [[nodiscard]] Bytes Take() noexcept { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Reads typed values back; throws caltrain::Error on truncation.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t ReadU8();
  [[nodiscard]] std::uint32_t ReadU32();
  [[nodiscard]] std::uint64_t ReadU64();
  [[nodiscard]] std::int64_t ReadI64();
  [[nodiscard]] float ReadF32();
  [[nodiscard]] double ReadF64();
  [[nodiscard]] Bytes ReadBytes();
  /// Like ReadBytes but returns a view into the underlying buffer —
  /// no copy.  The view is only valid while the source bytes outlive
  /// the reader; use for large nested blobs that are parsed in place.
  [[nodiscard]] BytesView ReadBytesView();
  [[nodiscard]] std::string ReadString();
  [[nodiscard]] std::vector<float> ReadF32Vector();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  void Need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace caltrain
