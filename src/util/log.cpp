#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace caltrain {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }

LogLevel GetLogLevel() noexcept { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace caltrain
