// Byte-buffer helpers used throughout the crypto and enclave layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace caltrain {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string ToHex(BytesView data);

/// Decodes a hex string (upper or lower case); throws on odd length or
/// non-hex characters.
[[nodiscard]] Bytes FromHex(std::string_view hex);

/// Copies a UTF-8/ASCII string into a byte buffer.
[[nodiscard]] Bytes BytesOf(std::string_view text);

/// Constant-time equality; returns false for mismatched lengths without
/// early exit on content.  Required for MAC/tag comparison.
[[nodiscard]] bool ConstantTimeEqual(BytesView a, BytesView b) noexcept;

/// Big-endian 32/64-bit loads and stores (network byte order, as used by
/// SHA-256 and the GCM length block).
[[nodiscard]] std::uint32_t LoadBe32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t LoadBe64(const std::uint8_t* p) noexcept;
void StoreBe32(std::uint8_t* p, std::uint32_t v) noexcept;
void StoreBe64(std::uint8_t* p, std::uint64_t v) noexcept;

/// Little-endian 64-bit loads/stores (used by the PRNG and serializers).
[[nodiscard]] std::uint64_t LoadLe64(const std::uint8_t* p) noexcept;
void StoreLe64(std::uint8_t* p, std::uint64_t v) noexcept;

/// Appends `src` to `dst`.
void Append(Bytes& dst, BytesView src);

}  // namespace caltrain
