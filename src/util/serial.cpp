#include "util/serial.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace caltrain {

void ByteWriter::WriteU8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::WriteU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v));
    v >>= 8;
  }
}

void ByteWriter::WriteU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v));
    v >>= 8;
  }
}

void ByteWriter::WriteI64(std::int64_t v) {
  WriteU64(static_cast<std::uint64_t>(v));
}

void ByteWriter::WriteF32(float v) { WriteU32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::WriteF64(double v) {
  WriteU64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::WriteBytes(BytesView data) {
  CALTRAIN_REQUIRE(data.size() <= 0xffffffffULL, "byte string too long");
  WriteU32(static_cast<std::uint32_t>(data.size()));
  Append(buffer_, data);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteBytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
}

void ByteWriter::WriteF32Vector(const std::vector<float>& v) {
  CALTRAIN_REQUIRE(v.size() <= 0xffffffffULL, "vector too long");
  WriteU32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) WriteF32(x);
}

void ByteReader::Need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    ThrowError(ErrorKind::kInvalidArgument, "truncated serialized data");
  }
}

std::uint8_t ByteReader::ReadU8() {
  Need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::ReadU32() {
  Need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::ReadU64() {
  Need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::ReadI64() {
  return static_cast<std::int64_t>(ReadU64());
}

float ByteReader::ReadF32() { return std::bit_cast<float>(ReadU32()); }

double ByteReader::ReadF64() { return std::bit_cast<double>(ReadU64()); }

Bytes ByteReader::ReadBytes() {
  const BytesView view = ReadBytesView();
  return Bytes(view.begin(), view.end());
}

BytesView ByteReader::ReadBytesView() {
  const std::uint32_t len = ReadU32();
  Need(len);
  const BytesView out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

std::string ByteReader::ReadString() {
  const Bytes raw = ReadBytes();
  return std::string(raw.begin(), raw.end());
}

std::vector<float> ByteReader::ReadF32Vector() {
  const std::uint32_t len = ReadU32();
  Need(static_cast<std::size_t>(len) * 4);
  std::vector<float> out(len);
  for (std::uint32_t i = 0; i < len; ++i) out[i] = ReadF32();
  return out;
}

}  // namespace caltrain
