// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang capability attributes when the compiler supports
// them (clang++ -Wthread-safety) and to nothing under GCC/MSVC, so the
// tier-1 g++ build is byte-for-byte unaffected.  The annotated wrappers
// live in util/mutex.hpp; the attributes here follow the vocabulary of
// the Clang docs (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
//
// Conventions used across the tree:
//   - data members protected by a lock carry GUARDED_BY(mu)
//   - private "...Locked()" helpers carry REQUIRES(mu)
//   - public entry points that must not be called with a lock held
//     (lock-order roots) carry EXCLUDES(mu)
//   - lambdas that run with a capability inherited from the enclosing
//     scope call mu.AssertHeld() first: the analysis does not propagate
//     capabilities into lambda bodies, and AssertHeld is the canonical,
//     greppable way to restate the invariant instead of suppressing it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CALTRAIN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef CALTRAIN_THREAD_ANNOTATION
#define CALTRAIN_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) CALTRAIN_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY CALTRAIN_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) CALTRAIN_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) CALTRAIN_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  CALTRAIN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  CALTRAIN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  CALTRAIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  CALTRAIN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  CALTRAIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  CALTRAIN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  CALTRAIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  CALTRAIN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  CALTRAIN_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  CALTRAIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  CALTRAIN_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) CALTRAIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  CALTRAIN_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  CALTRAIN_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) CALTRAIN_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  CALTRAIN_THREAD_ANNOTATION(no_thread_safety_analysis)
