// Annotated synchronization wrappers — the only place in src/ where the
// raw std primitives appear (tools/lint_invariants.py enforces this).
//
// util::Mutex / util::SharedMutex are thin capability-annotated shells
// over std::mutex / std::shared_mutex; MutexLock / WriterLock /
// ReaderLock are the SCOPED_CAPABILITY RAII guards; CondVar pairs with
// MutexLock.  Under clang++ -Wthread-safety every lock acquisition,
// every GUARDED_BY member access, and every REQUIRES contract is
// checked at compile time; under g++ the annotations vanish and the
// wrappers compile down to the std types (same codegen, same TSan
// visibility).
//
// Condition-variable idiom: Clang's analysis cannot see into the
// predicate lambda of std::condition_variable::wait(lock, pred) — the
// lambda body is analyzed as a separate function with no inherited
// capabilities, so every guarded read inside the predicate would warn.
// CondVar therefore exposes only the plain Wait/WaitUntil and callers
// write the standard `while (!pred) cv.Wait(lock);` loop, keeping the
// guarded reads inside the annotated function body.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace caltrain::util {

class CondVar;
class MutexLock;

/// Exclusive capability over std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Restates, for the static analysis, that the calling context holds
  /// this mutex.  Used at the top of lambda bodies that run with the
  /// lock inherited from the enclosing scope: Clang analyzes a lambda
  /// as a fresh function with no capabilities, so the invariant must be
  /// re-asserted (greppable, not a suppression).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader/writer capability over std::shared_mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// Tag types mirroring std::adopt_lock_t / std::defer_lock_t.
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

struct DeferLockT {
  explicit DeferLockT() = default;
};
inline constexpr DeferLockT kDeferLock{};

/// RAII exclusive guard over util::Mutex.  Supports adoption, deferred
/// locking, and mid-scope Unlock()/Lock() (the journal's group-commit
/// leader election releases the lock around fdatasync) — Clang tracks
/// the relock state through the scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  /// Adopts a mutex the caller already holds (e.g. locked via TryLock).
  MutexLock(Mutex& mu, AdoptLockT) REQUIRES(mu)
      : lock_(mu.mu_, std::adopt_lock) {}
  /// Binds without locking; call Lock() later.
  MutexLock(Mutex& mu, DeferLockT) EXCLUDES(mu)
      : lock_(mu.mu_, std::defer_lock) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() = default;  // unlocks iff currently owned

  void Lock() ACQUIRE() { lock_.lock(); }
  void Unlock() RELEASE() { lock_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return lock_.try_lock(); }
  [[nodiscard]] bool OwnsLock() const noexcept { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive guard over util::SharedMutex (the writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared guard over util::SharedMutex (the reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with util::Mutex via MutexLock.  No
/// predicate overloads by design — see the header comment; callers
/// loop `while (!pred) cv.Wait(lock);` inside the annotated function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, reacquires before returning.
  /// The caller's capability is held at entry and at exit, which is
  /// exactly what the analysis checks.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  std::cv_status WaitUntil(MutexLock& lock,
                           std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace caltrain::util
