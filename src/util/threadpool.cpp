#include "util/threadpool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::util {

namespace {

unsigned ReadDefaultThreads() {
  if (const char* env = std::getenv("CALTRAIN_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 &&
        v <= Parallelism::kMaxThreads) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : std::min(hw, Parallelism::kMaxThreads);
}

std::atomic<unsigned>& ThreadOverride() {
  static std::atomic<unsigned> override_value{0};  // 0 = use default
  return override_value;
}

thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() : was(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionGuard() { tls_in_parallel_region = was; }
  bool was;
};

/// Heap node behind a Submit: the only allocating dispatch path, kept
/// as the future-returning adapter over the fixed-slot queues.
struct SubmitNode {
  std::packaged_task<void()> task;
};

void RunSubmitNode(void* ctx, unsigned /*slot*/) {
  auto* node = static_cast<SubmitNode*>(ctx);
  node->task();  // packaged_task captures exceptions into the future
  delete node;
}

/// Caller-stack completion record for one RunOnWorkers region.
struct BulkJob {
  ThreadPool::BulkFn fn;
  void* ctx;
  Mutex mutex;
  CondVar done;
  unsigned pending GUARDED_BY(mutex) = 0;  // dispatched, not yet finished
};

void RunBulkSlot(void* ctx, unsigned slot) {
  auto* job = static_cast<BulkJob*>(ctx);
  try {
    job->fn(job->ctx, slot);
  } catch (...) {
    // Bulk bodies own their error channel (ParallelForBlocked stores
    // the first exception in its context and rethrows on the caller);
    // an exception escaping here would otherwise kill the worker.
    CALTRAIN_LOG(kError) << "threadpool: bulk task leaked an exception "
                            "(slot "
                         << slot << "); work may be incomplete";
  }
  // The counter and the notification stay under one lock so the
  // dispatcher cannot observe pending == 0 and destroy the job while
  // this thread still touches it.
  MutexLock lock(job->mutex);
  if (--job->pending == 0) job->done.NotifyAll();
}

}  // namespace

unsigned Parallelism::DefaultThreads() {
  static const unsigned cached = ReadDefaultThreads();
  return cached;
}

unsigned Parallelism::HardwareThreads() {
  static const unsigned cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1U : std::min(hw, kMaxThreads);
  }();
  return cached;
}

unsigned Parallelism::threads() {
  const unsigned override_value =
      ThreadOverride().load(std::memory_order_relaxed);
  return override_value != 0 ? override_value : DefaultThreads();
}

unsigned Parallelism::width() {
  return std::min(threads(), HardwareThreads());
}

void Parallelism::set_threads(unsigned n) {
  CALTRAIN_REQUIRE(n >= 1,
                   "thread count override must be >= 1 (use "
                   "Parallelism::clear_override() to restore the default)");
  ThreadOverride().store(std::min(n, kMaxThreads),
                         std::memory_order_relaxed);
}

void Parallelism::clear_override() {
  ThreadOverride().store(0, std::memory_order_relaxed);
}

bool InParallelRegion() noexcept { return tls_in_parallel_region; }

unsigned ApplyThreadsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    if (i + 1 >= argc) {
      ThrowError(ErrorKind::kInvalidArgument,
                 "--threads requires a value (1.." +
                     std::to_string(Parallelism::kMaxThreads) + ")");
    }
    const char* value = argv[i + 1];
    char* end = nullptr;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || v < 1 ||
        v > Parallelism::kMaxThreads) {
      ThrowError(ErrorKind::kInvalidArgument,
                 std::string("invalid --threads value '") + value +
                     "' (expected an integer in 1.." +
                     std::to_string(Parallelism::kMaxThreads) + ")");
    }
    Parallelism::set_threads(static_cast<unsigned>(v));
    ++i;  // the value token is consumed; never re-parsed as a flag
  }
  return Parallelism::threads();
}

ThreadPool::ThreadPool(unsigned workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  const unsigned count = worker_count_.load(std::memory_order_acquire);
  for (unsigned i = 0; i < count; ++i) {
    // Lock/unlock pairs with the predicate check: any worker that read
    // stop_ == false is inside wait() by the time we notify.
    { MutexLock lock(workers_[i]->mutex); }
    workers_[i]->ready.NotifyAll();
  }
  for (unsigned i = 0; i < count; ++i) workers_[i]->thread.join();
}

void ThreadPool::EnsureWorkers(unsigned n) {
  n = std::min(n, Parallelism::kMaxThreads);
  MutexLock lock(grow_mutex_);
  unsigned count = worker_count_.load(std::memory_order_relaxed);
  while (count < n) {
    workers_[count] = std::make_unique<Worker>();
    workers_[count]->thread = std::thread([this, count] {
      WorkerLoop(count);
    });
    worker_count_.store(++count, std::memory_order_release);
  }
}

unsigned ThreadPool::worker_count() const {
  return worker_count_.load(std::memory_order_acquire);
}

void ThreadPool::Enqueue(unsigned target, const Task& task) {
  Worker& worker = *workers_[target];
  bool advertise;
  {
    MutexLock lock(worker.mutex);
    worker.queue.push_back(task);
    // An owner that is executing a task may not return to its queue
    // for an arbitrarily long time (it may be blocked inside the
    // task), and a queue that is backing up means the same thing: in
    // either case the pushed work must be advertised so sleeping
    // workers re-scan for steals — the notify_one below only helps an
    // owner that is parked idle.  busy is set under this same mutex
    // when the owner pops, so the read cannot miss an in-flight task.
    advertise = worker.queue.size() > 1 ||
                worker.busy.load(std::memory_order_relaxed);
  }
  worker.ready.NotifyOne();
  if (advertise) WakeThief(target);
}

void ThreadPool::WakeThief(unsigned except) {
  const unsigned count = worker_count_.load(std::memory_order_acquire);
  if (count < 2) return;
  steal_signal_.fetch_add(1, std::memory_order_release);
  // Wake every other worker: any single victim may itself be busy or
  // blocked, and a sleeping worker only re-evaluates its predicate
  // (which reads steal_signal_) when notified.  Stray wakeups cost one
  // queue scan; a stranded task costs a stalled caller.
  for (unsigned i = 0; i < count; ++i) {
    if (i == except) continue;
    Worker& thief = *workers_[i];
    // Lock/unlock before notifying so a thief between its predicate
    // check and wait() cannot miss the signal.
    { MutexLock lock(thief.mutex); }
    thief.ready.NotifyOne();
  }
}

bool ThreadPool::TrySteal(unsigned self, Task& out) {
  const unsigned count = worker_count_.load(std::memory_order_acquire);
  for (unsigned i = 1; i < count; ++i) {
    Worker& victim = *workers_[(self + i) % count];
    MutexLock lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = victim.queue.front();  // FIFO steal keeps Submit ordering fair
      victim.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned self) {
  Worker& me = *workers_[self];
  for (;;) {
    Task task;
    bool have = false;
    {
      MutexLock lock(me.mutex);
      if (!me.queue.empty()) {
        task = me.queue.front();
        me.queue.pop_front();
        // Under the queue mutex, paired with Enqueue's locked read:
        // once this worker commits to running a task, any push onto
        // its queue sees busy == true and advertises to thieves.
        me.busy.store(true, std::memory_order_relaxed);
        have = true;
      }
    }
    std::uint64_t steal_seen = 0;
    if (!have) {
      steal_seen = steal_signal_.load(std::memory_order_acquire);
      have = TrySteal(self, task);
      if (have) {
        // Same pairing as the own-queue pop: take the queue mutex so
        // a concurrent Enqueue cannot read a stale busy == false.
        MutexLock lock(me.mutex);
        me.busy.store(true, std::memory_order_relaxed);
      }
    }
    if (have) {
      {
        RegionGuard guard;
        task.fn(task.ctx, task.slot);
      }
      me.busy.store(false, std::memory_order_relaxed);
      continue;
    }
    // Own queue and every other queue were empty: on shutdown that
    // means fully drained (nothing enqueues after stop_), so exit.
    if (stop_.load(std::memory_order_acquire)) return;
    MutexLock lock(me.mutex);
    // Explicit wait loop (not wait(lock, pred)): the guarded
    // me.queue read must stay in this annotated scope, not inside a
    // predicate lambda the analysis cannot see into.
    while (!(stop_.load(std::memory_order_acquire) || !me.queue.empty() ||
             steal_signal_.load(std::memory_order_acquire) != steal_seen)) {
      me.ready.Wait(lock);
    }
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto* node = new SubmitNode{std::packaged_task<void()>(std::move(fn))};
  std::future<void> result = node->task.get_future();
  if (tls_in_parallel_region) {
    // Nested submit: run inline so a task waiting on this future can
    // never deadlock the pool.
    RunSubmitNode(node, 0);
    return result;
  }
  const unsigned count = worker_count_.load(std::memory_order_acquire);
  if (count == 0) {
    // No workers yet: execute inline rather than strand the task, with
    // the region flag set so its own nested submits also run inline.
    RegionGuard guard;
    RunSubmitNode(node, 0);
    return result;
  }
  const unsigned target =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % count;
  try {
    Enqueue(target, Task{&RunSubmitNode, node, 0});
  } catch (...) {
    RegionGuard guard;
    RunSubmitNode(node, 0);
  }
  return result;
}

unsigned ThreadPool::RunOnWorkers(unsigned helpers, BulkFn fn, void* ctx) {
  if (helpers > Parallelism::kMaxThreads) helpers = Parallelism::kMaxThreads;
  if (helpers == 0 || tls_in_parallel_region) {
    RegionGuard guard;
    fn(ctx, 0);
    return 0;
  }

  BulkJob job{fn, ctx, {}, {}, 0};
  unsigned dispatched = 0;
  try {
    EnsureWorkers(helpers);
  } catch (...) {
    // Thread creation failed; run with whatever workers exist.
  }
  const unsigned count = worker_count_.load(std::memory_order_acquire);
  const unsigned target_helpers = std::min(helpers, count);
  for (unsigned i = 0; i < target_helpers; ++i) {
    {
      MutexLock lock(job.mutex);
      ++job.pending;
    }
    try {
      Enqueue(i, Task{&RunBulkSlot, &job, i + 1});
      ++dispatched;
    } catch (...) {
      MutexLock lock(job.mutex);
      --job.pending;
      break;
    }
  }

  std::exception_ptr caller_error;
  {
    RegionGuard guard;
    try {
      fn(ctx, 0);
    } catch (...) {
      caller_error = std::current_exception();
    }

    // Reclaim helper tasks still sitting unstarted in worker queues
    // and run them here: the region then only waits on helpers that
    // are actually executing, so a worker blocked on an unrelated
    // long task cannot stall this caller.
    for (unsigned i = 0; i < target_helpers; ++i) {
      std::vector<Task> reclaimed;
      {
        MutexLock lock(workers_[i]->mutex);
        auto& queue = workers_[i]->queue;
        for (auto it = queue.begin(); it != queue.end();) {
          if (it->fn == &RunBulkSlot && it->ctx == &job) {
            reclaimed.push_back(*it);
            it = queue.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (const Task& task : reclaimed) task.fn(task.ctx, task.slot);
    }
  }

  {
    MutexLock lock(job.mutex);
    while (job.pending != 0) job.done.Wait(lock);
  }
  if (caller_error) std::rethrow_exception(caller_error);
  return dispatched;
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads may outlive static destructors
  // of translation units that still dispatch work during teardown.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

namespace {

/// Shared context for one ParallelForBlocked region: participants pull
/// blocks from `next_block` until the range is exhausted.
struct BlockLoopContext {
  std::size_t begin, end, chunk, num_blocks;
  const std::function<void(std::size_t, std::size_t)>* body;
  std::atomic<std::size_t> next_block{0};
  Mutex error_mutex;
  std::exception_ptr first_error GUARDED_BY(error_mutex);
};

void RunBlockLoop(void* ctx, unsigned /*slot*/) {
  auto* loop = static_cast<BlockLoopContext*>(ctx);
  for (;;) {
    const std::size_t b = loop->next_block.fetch_add(1);
    if (b >= loop->num_blocks) return;
    const std::size_t b0 = loop->begin + b * loop->chunk;
    const std::size_t b1 = std::min(loop->end, b0 + loop->chunk);
    if (b0 >= b1) continue;
    try {
      (*loop->body)(b0, b1);
    } catch (...) {
      MutexLock lock(loop->error_mutex);
      if (!loop->first_error) {
        loop->first_error = std::current_exception();
      }
    }
  }
}

void LogDegradedDispatchOnce(unsigned wanted, unsigned got) {
  static std::atomic<bool> logged{false};
  if (logged.exchange(true, std::memory_order_relaxed)) return;
  CALTRAIN_LOG(kWarn) << "threadpool: parallel dispatch degraded ("
                      << got + 1 << "/" << wanted + 1
                      << " participants); work completed on fewer "
                         "threads.  Further occurrences are not logged.";
}

}  // namespace

void ParallelForBlocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const unsigned threads = Parallelism::threads();
  if (min_grain == 0) min_grain = 1;
  if (threads <= 1 || tls_in_parallel_region || count < 2 * min_grain) {
    body(begin, end);
    return;
  }

  // The block plan depends on threads() only — never on the dispatch
  // width below — so the caller-visible partition is stable across
  // hosts and oversubscription clamps.
  const std::size_t max_blocks = count / min_grain;
  const std::size_t num_blocks =
      std::max<std::size_t>(1, std::min<std::size_t>(threads, max_blocks));
  if (num_blocks == 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (count + num_blocks - 1) / num_blocks;

  BlockLoopContext loop;
  loop.begin = begin;
  loop.end = end;
  loop.chunk = chunk;
  loop.num_blocks = num_blocks;
  loop.body = &body;

  const unsigned participants = static_cast<unsigned>(std::min<std::size_t>(
      Parallelism::width(), num_blocks));
  if (participants <= 1) {
    RegionGuard guard;
    RunBlockLoop(&loop, 0);
  } else {
    const unsigned helpers = participants - 1;
    const unsigned dispatched =
        ThreadPool::Global().RunOnWorkers(helpers, &RunBlockLoop, &loop);
    if (dispatched < helpers) LogDegradedDispatchOnce(helpers, dispatched);
  }

  // Read under the lock even though the region barrier means no helper
  // can still be writing: the annotation pass flagged the previous
  // unlocked read, and the locked form costs nothing off the hot path.
  std::exception_ptr first_error;
  {
    MutexLock lock(loop.error_mutex);
    first_error = loop.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body) {
  ParallelForBlocked(begin, end,
                     [&body](std::size_t b0, std::size_t b1) {
                       for (std::size_t i = b0; i < b1; ++i) body(i);
                     });
}

}  // namespace caltrain::util
