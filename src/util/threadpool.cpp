#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace caltrain::util {

namespace {

constexpr unsigned kMaxWorkers = 64;

unsigned ReadDefaultThreads() {
  if (const char* env = std::getenv("CALTRAIN_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= kMaxWorkers) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : std::min(hw, kMaxWorkers);
}

std::atomic<unsigned>& ThreadOverride() {
  static std::atomic<unsigned> override_value{0};  // 0 = use default
  return override_value;
}

thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() : was(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionGuard() { tls_in_parallel_region = was; }
  bool was;
};

}  // namespace

unsigned Parallelism::DefaultThreads() {
  static const unsigned cached = ReadDefaultThreads();
  return cached;
}

unsigned Parallelism::threads() {
  const unsigned override_value =
      ThreadOverride().load(std::memory_order_relaxed);
  return override_value != 0 ? override_value : DefaultThreads();
}

void Parallelism::set_threads(unsigned n) {
  ThreadOverride().store(std::min(n, kMaxWorkers),
                         std::memory_order_relaxed);
}

bool InParallelRegion() noexcept { return tls_in_parallel_region; }

unsigned ApplyThreadsFlag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    char* end = nullptr;
    const unsigned long v = std::strtoul(argv[i + 1], &end, 10);
    if (end != argv[i + 1] && *end == '\0' && v >= 1 && v <= kMaxWorkers) {
      Parallelism::set_threads(static_cast<unsigned>(v));
    }
  }
  return Parallelism::threads();
}

ThreadPool::ThreadPool(unsigned workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EnsureWorkers(unsigned n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

unsigned ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(workers_.size());
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = task->get_future();
  if (tls_in_parallel_region) {
    // Nested submit: run inline so a task waiting on this future can
    // never deadlock the pool.
    (*task)();
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty()) {
      queue_.emplace_back([task] { (*task)(); });
      ready_.notify_one();
      return result;
    }
  }
  // No workers yet: execute inline rather than strand the task — with
  // the mutex released (the task may re-enter the pool) and the region
  // flag set so its own nested submits also run inline.
  RegionGuard guard;
  (*task)();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RegionGuard guard;
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads may outlive static destructors
  // of translation units that still dispatch work during teardown.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ParallelForBlocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const unsigned threads = Parallelism::threads();
  if (min_grain == 0) min_grain = 1;
  if (threads <= 1 || tls_in_parallel_region || count < 2 * min_grain) {
    body(begin, end);
    return;
  }

  const std::size_t max_blocks = count / min_grain;
  const std::size_t num_blocks =
      std::max<std::size_t>(1, std::min<std::size_t>(threads, max_blocks));
  if (num_blocks == 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (count + num_blocks - 1) / num_blocks;

  std::atomic<std::size_t> next_block{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto run_blocks = [&] {
    RegionGuard guard;
    for (;;) {
      const std::size_t b = next_block.fetch_add(1);
      if (b >= num_blocks) return;
      const std::size_t b0 = begin + b * chunk;
      const std::size_t b1 = std::min(end, b0 + chunk);
      if (b0 >= b1) continue;
      try {
        body(b0, b1);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::future<void>> helpers;
  helpers.reserve(threads - 1);
  // Dispatch failures (thread creation or task allocation throwing)
  // must not unwind this frame while queued helpers still reference
  // its locals: swallow the error, let the caller chew through the
  // remaining blocks itself, and only return after every queued helper
  // has drained.  The work still completes (degraded to fewer threads).
  try {
    pool.EnsureWorkers(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t) {
      helpers.push_back(pool.Submit(run_blocks));
    }
  } catch (...) {
  }
  run_blocks();  // the caller participates
  for (std::future<void>& helper : helpers) helper.wait();

  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body) {
  ParallelForBlocked(begin, end,
                     [&body](std::size_t b0, std::size_t b1) {
                       for (std::size_t i = b0; i < b1; ++i) body(i);
                     });
}

}  // namespace caltrain::util
