// Bounded MPMC queue — the ingest backpressure primitive of the
// serving layer (ISSUE 5).
//
// Any number of producers Push and any number of consumers Pop
// concurrently.  The queue holds at most `capacity` items; what happens
// when a producer hits the bound is the *backpressure policy*:
//
//   * kBlock  — Push waits until a consumer makes room (ingestion
//               throttles the producers, nothing is dropped);
//   * kReject — Push returns false immediately (the caller turns that
//               into a typed kQueueSaturated error and the client
//               retries; nothing ever blocks).
//
// Close() ends the stream: subsequent pushes fail, blocked producers
// wake with false, and consumers drain the remaining items before Pop
// returns nullopt.  This is the shutdown handshake the serving layer's
// ingest workers rely on.
//
// Lock discipline (machine-checked under clang++ -Wthread-safety):
// mutex_ guards items_ and closed_; waits are written as explicit
// while-loops so every guarded read stays inside the annotated scope.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace caltrain::util {

/// What Push does when the queue is at capacity.
enum class BackpressurePolicy {
  kBlock,   ///< wait for room
  kReject,  ///< fail fast (caller sees saturation)
};

/// Outcome of a deadline-aware PushUntil.
enum class PushResult {
  kOk,        ///< enqueued
  kTimedOut,  ///< still full at the deadline; nothing enqueued
  kClosed,    ///< queue closed; nothing enqueued
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    CALTRAIN_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `value` under the configured backpressure policy.
  /// Returns false when the queue is closed, or — under kReject — full.
  [[nodiscard]] bool Push(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (policy_ == BackpressurePolicy::kBlock) {
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(lock);
    }
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// Deadline-aware push: waits for room until `deadline`, regardless
  /// of the backpressure policy (this is the kBlock producer's escape
  /// hatch from blocking forever — the caller turns kTimedOut into a
  /// typed kTimeout error instead of hanging).  Nothing is ever
  /// partially enqueued: on kTimedOut/kClosed the value was not added.
  /// Fault point "queue.push" (action `timeout`) forces kTimedOut.
  [[nodiscard]] PushResult PushUntil(
      T value, std::chrono::steady_clock::time_point deadline)
      EXCLUDES(mutex_) {
    if (FaultInjector::Global().armed() &&
        FaultPoint("queue.push") == FaultAction::kTimeout) {
      return PushResult::kTimedOut;
    }
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      if (not_full_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        if (closed_ || items_.size() < capacity_) break;
        return PushResult::kTimedOut;
      }
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(value));
    lock.Unlock();
    not_empty_.NotifyOne();
    return PushResult::kOk;
  }

  /// Non-waiting push regardless of policy; false when full or closed.
  [[nodiscard]] bool TryPush(T value) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained (then nullopt — the consumer's termination signal).
  std::optional<T> Pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return out;
  }

  /// Non-waiting pop; nullopt when currently empty.
  std::optional<T> TryPop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return out;
  }

  /// Ends the stream: pushes fail from now on, blocked producers and
  /// consumers wake, remaining items stay poppable until drained.
  void Close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace caltrain::util
