#include "util/fault.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/log.hpp"

namespace caltrain::util {

namespace {

FaultAction ParseAction(std::string_view text) {
  if (text == "eio") return FaultAction::kEio;
  if (text == "short") return FaultAction::kShortWrite;
  if (text == "torn") return FaultAction::kTornWrite;
  if (text == "crash") return FaultAction::kCrash;
  if (text == "timeout") return FaultAction::kTimeout;
  ThrowError(ErrorKind::kInvalidArgument,
             "unknown fault action '" + std::string(text) + "'");
}

/// splitmix64 — the jitter generator (stateless, seedable).
std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("CALTRAIN_FAULT");
        env != nullptr && env[0] != '\0') {
      inj->Configure(env);
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::Configure(const std::string& spec) {
  std::vector<std::unique_ptr<Rule>> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    const std::string_view entry =
        std::string_view(spec).substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    const std::size_t eq = entry.find('=');
    CALTRAIN_REQUIRE(eq != std::string_view::npos && eq > 0,
                     "fault rule must be point=action[@N[+]]: '" +
                         std::string(entry) + "'");
    auto rule = std::make_unique<Rule>();
    rule->point = std::string(entry.substr(0, eq));
    std::string_view action = entry.substr(eq + 1);
    const std::size_t at = action.find('@');
    if (at != std::string_view::npos) {
      std::string_view count = action.substr(at + 1);
      action = action.substr(0, at);
      if (!count.empty() && count.back() == '+') {
        rule->from_nth_on = true;
        count.remove_suffix(1);
      }
      std::uint64_t nth = 0;
      for (const char c : count) {
        CALTRAIN_REQUIRE(c >= '0' && c <= '9',
                         "fault rule hit count must be a positive integer: '" +
                             std::string(entry) + "'");
        nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
      }
      CALTRAIN_REQUIRE(nth > 0, "fault rule hit count must be >= 1: '" +
                                    std::string(entry) + "'");
      rule->nth = nth;
    }
    rule->action = ParseAction(action);
    rules.push_back(std::move(rule));
  }
  const bool armed = !rules.empty();
  {
    WriterLock lock(mu_);
    rules_ = std::move(rules);
  }
  armed_.store(armed, std::memory_order_release);
}

FaultAction FaultInjector::Hit(std::string_view point) noexcept {
  if (!armed()) return FaultAction::kNone;
  ReaderLock lock(mu_);
  for (const auto& rule : rules_) {
    if (rule->point != point) continue;
    const std::uint64_t hit =
        rule->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (rule->nth == 0) return rule->action;        // every hit
    if (rule->from_nth_on && hit >= rule->nth) return rule->action;
    if (!rule->from_nth_on && hit == rule->nth) return rule->action;
    return FaultAction::kNone;
  }
  return FaultAction::kNone;
}

const std::vector<std::string>& RegisteredFaultPoints() {
  static const std::vector<std::string> points = {
      "persist.append", "persist.sync",  "persist.snapshot",
      "enclave.transition", "serve.auth", "queue.push",
      "net.accept", "net.read", "net.write", "net.frame",
  };
  return points;
}

FaultAction FaultPoint(std::string_view point) {
  const FaultAction action = FaultInjector::Global().Hit(point);
  switch (action) {
    case FaultAction::kNone:
      return action;
    case FaultAction::kCrash:
      FaultCrash(point);
    case FaultAction::kEio:
      ThrowError(ErrorKind::kUnavailable,
                 "injected I/O fault at '" + std::string(point) + "'");
    case FaultAction::kShortWrite:
    case FaultAction::kTornWrite:
    case FaultAction::kTimeout:
      // Meaningful only to persist I/O / deadline waits; those callers
      // interpret the returned action.  Anywhere else a torn write
      // cannot be simulated, so it degenerates to the crash half.
      return action;
  }
  return FaultAction::kNone;
}

void FaultCrash(std::string_view point) {
  // No logging machinery here: the point of the crash action is dying
  // with no flushes, like SIGKILL.  (write(2) is async-signal-safe and
  // leaves a breadcrumb for humans debugging a harness.)
  static constexpr char kPrefix[] = "caltrain: injected crash at ";
  (void)!::write(STDERR_FILENO, kPrefix, sizeof(kPrefix) - 1);
  (void)!::write(STDERR_FILENO, point.data(), point.size());
  (void)!::write(STDERR_FILENO, "\n", 1);
  ::_Exit(FaultInjector::kCrashExitCode);
}

std::uint64_t BackoffPolicy::DelayMicros(unsigned retry) const noexcept {
  if (retry == 0) retry = 1;
  // min(cap, base << (retry-1)), overflow-safe.
  std::uint64_t delay = base_us;
  for (unsigned i = 1; i < retry && delay < cap_us; ++i) delay *= 2;
  if (delay > cap_us) delay = cap_us;
  const std::uint64_t jitter_span = delay / 2;
  if (jitter_span == 0) return delay;
  return delay + Mix64(seed ^ (0x5bd1e995ULL * retry)) % jitter_span;
}

namespace detail {

void SleepMicros(std::uint64_t us) {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void ThrowRetriesExhausted(unsigned attempts, const std::string& last_message) {
  ThrowError(ErrorKind::kUnavailable,
             "retries exhausted after " + std::to_string(attempts) +
                 " attempts; last transient failure: " + last_message);
}

}  // namespace detail

}  // namespace caltrain::util
