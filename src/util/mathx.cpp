#include "util/mathx.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caltrain {

std::vector<float> Softmax(std::span<const float> logits) {
  CALTRAIN_REQUIRE(!logits.empty(), "softmax of empty vector");
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<float> out(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  for (float& x : out) x = static_cast<float>(x / sum);
  return out;
}

double KlDivergence(std::span<const float> p, std::span<const float> q,
                    double eps) {
  CALTRAIN_REQUIRE(p.size() == q.size(), "KL divergence length mismatch");
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i];
    if (pi <= 0.0) continue;
    const double qi = std::max<double>(q[i], eps);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

double L2Distance(std::span<const float> a, std::span<const float> b) {
  CALTRAIN_REQUIRE(a.size() == b.size(), "L2 distance length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

double L2Norm(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void L2NormalizeInPlace(std::vector<float>& v) {
  const double norm = L2Norm(v);
  if (norm <= 0.0) return;
  for (float& x : v) x = static_cast<float>(x / norm);
}

std::vector<float> UniformDistribution(std::size_t n) {
  CALTRAIN_REQUIRE(n > 0, "uniform distribution needs n > 0");
  return std::vector<float>(n, 1.0F / static_cast<float>(n));
}

double Mean(std::span<const float> v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (float x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

std::size_t ArgMax(std::span<const float> v) noexcept {
  if (v.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

bool InTopK(std::span<const float> scores, std::size_t label, std::size_t k) {
  CALTRAIN_REQUIRE(label < scores.size(), "label out of range");
  const float label_score = scores[label];
  if (std::isnan(label_score)) return false;  // diverged model never scores
  std::size_t strictly_better = 0;
  for (float s : scores) {
    if (s > label_score) ++strictly_better;
  }
  return strictly_better < k;
}

}  // namespace caltrain
