// Deterministic pseudo-random number generation.
//
// All experiment randomness (weight init, augmentation, shuffling,
// synthetic data) flows through Rng so that every benchmark and test is
// reproducible at a fixed seed.  The generator is xoshiro256** — fast,
// high quality, and trivially seedable from a single 64-bit value.
//
// Cryptographic randomness (the simulated on-chip RDRAND) lives in
// crypto/drbg.hpp, not here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace caltrain {

/// xoshiro256** deterministic PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64 bits.
  [[nodiscard]] std::uint64_t NextU64() noexcept;

  /// Uniform in [0, bound); bound must be > 0.
  [[nodiscard]] std::uint64_t UniformU64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int UniformInt(int lo, int hi) noexcept;

  /// Uniform float in [0, 1).
  [[nodiscard]] float UniformFloat() noexcept;

  /// Uniform float in [lo, hi).
  [[nodiscard]] float UniformFloat(float lo, float hi) noexcept;

  /// Standard normal via Box–Muller; mean 0, stddev 1.
  [[nodiscard]] float Gaussian() noexcept;

  /// Normal with the given mean/stddev.
  [[nodiscard]] float Gaussian(float mean, float stddev) noexcept;

  /// True with probability p.
  [[nodiscard]] bool Bernoulli(float p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = UniformU64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-participant or
  /// per-module streams that must not interleave).
  [[nodiscard]] Rng Fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0F;
};

}  // namespace caltrain
