// Wall-clock stopwatch for the performance experiments (Fig. 6 and the
// substrate micro-benchmarks).
#pragma once

#include <chrono>

namespace caltrain {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double ElapsedMillis() const noexcept {
    return ElapsedSeconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace caltrain
