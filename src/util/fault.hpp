// Deterministic fault injection (ISSUE 8).
//
// Production code declares *named fault points* at the places where the
// real world fails — journal writes, fsync, enclave transitions, record
// authentication, queue pushes — and the injector decides, per hit and
// fully deterministically, whether that point fires and with what
// fault.  With no faults configured every check is one relaxed atomic
// load, so the points can stay in release builds.
//
// Configuration comes from the CALTRAIN_FAULT environment variable (or
// Configure() in tests).  The spec is a comma/semicolon-separated list
// of rules:
//
//   point=action           fire on every hit
//   point=action@N         fire on the Nth hit only (1-based)
//   point=action@N+        fire on every hit from the Nth on
//
// Actions:
//
//   eio     throw caltrain::Error(kUnavailable) — a transient I/O
//           error; retry loops with backoff are expected to absorb a
//           bounded number of these
//   short   short write: persist I/O writes a partial frame, then
//           fails kUnavailable (the writer truncates the torn bytes
//           before any retry)
//   torn    short write followed by immediate process death — leaves a
//           torn frame on disk for recovery to detect and truncate
//   crash   _Exit(kCrashExitCode) at the fault point: simulates
//           kill -9 mid-operation (no flushes, no destructors)
//   timeout deadline-aware waits (BoundedQueue::PushUntil) report an
//           immediate timeout
//
// Example: CALTRAIN_FAULT="persist.append=eio@2,enclave.transition=crash@5"
//
// Registered fault points (kept in sync with RegisteredFaultPoints()):
//   persist.append      journal frame write
//   persist.sync        journal fsync / group commit
//   persist.snapshot    snapshot file write
//   enclave.transition  TransitionGuard construction (batch auth path)
//   serve.auth          serve-layer record authentication
//   queue.push          BoundedQueue::PushUntil wait
//   net.accept          TCP front end: accept(2) on the listen socket
//   net.read            TCP front end: read(2) on a connection (either
//                       side; eio kills the connection, which the
//                       client absorbs by reconnect + idempotent
//                       resubmit)
//   net.write           TCP front end: write(2) on a connection
//   net.frame           wire-frame decode; eio poisons the frame as if
//                       its CRC failed (typed error, connection drop)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/mutex.hpp"

namespace caltrain::util {

enum class FaultAction {
  kNone,
  kEio,
  kShortWrite,
  kTornWrite,
  kCrash,
  kTimeout,
};

[[nodiscard]] constexpr const char* ToString(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kEio:
      return "eio";
    case FaultAction::kShortWrite:
      return "short";
    case FaultAction::kTornWrite:
      return "torn";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kTimeout:
      return "timeout";
  }
  return "unknown";
}

class FaultInjector {
 public:
  /// Exit status of a process killed by the crash action — the crash
  /// harness uses it to tell an injected kill from a genuine failure.
  static constexpr int kCrashExitCode = 42;

  /// Process-wide injector; parses CALTRAIN_FAULT once on first use.
  [[nodiscard]] static FaultInjector& Global();

  /// Replaces every rule (and resets all hit counters) with `spec`.
  /// Throws kInvalidArgument on a malformed spec.  Tests use this to
  /// override whatever the environment configured.  Safe concurrently
  /// with Hit() — the rule table swaps under a writer lock, so tests
  /// may arm and disarm faults while the threads that reach the points
  /// (e.g. a live net::Server event loop) are running.  A hit that
  /// races the swap sees either the old rules or the new ones, never a
  /// mix.
  void Configure(const std::string& spec);

  /// Removes all rules.
  void Clear() { Configure(""); }

  /// Records one hit of `point` and returns the action that fires
  /// (kNone almost always).  Never throws, never crashes — callers
  /// decide how an action manifests.
  [[nodiscard]] FaultAction Hit(std::string_view point) noexcept;

  /// True when any rule is loaded (fast pre-check for hot paths).
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  struct Rule {
    std::string point;
    FaultAction action = FaultAction::kNone;
    std::uint64_t nth = 0;      ///< 0 = every hit
    bool from_nth_on = false;   ///< "@N+": every hit >= nth
    std::atomic<std::uint64_t> hits{0};
  };

  std::atomic<bool> armed_{false};
  // Guards the rule table against Configure/Clear racing concurrent
  // Hit() calls.  Hit takes the reader side only after the relaxed
  // armed() pre-check, so the disarmed fast path stays one atomic
  // load; the unique_ptrs keep Rule addresses stable for the atomic
  // hit counters.
  mutable SharedMutex mu_;
  std::vector<std::unique_ptr<Rule>> rules_ GUARDED_BY(mu_);
};

/// The registered fault-point names, for harnesses that sweep them.
[[nodiscard]] const std::vector<std::string>& RegisteredFaultPoints();

/// Declares a fault point.  kCrash/kTornWrite terminate the process for
/// real (kTornWrite only after the caller wrote its partial frame — the
/// persist layer handles it; elsewhere it behaves like kCrash); kEio
/// throws Error(kUnavailable); kShortWrite/kTimeout are returned for
/// the caller to interpret.  One relaxed load when no faults are
/// configured.
FaultAction FaultPoint(std::string_view point);

/// Terminates the process with kCrashExitCode, skipping destructors and
/// flushes — the injected equivalent of kill -9.
[[noreturn]] void FaultCrash(std::string_view point);

/// Capped exponential backoff with deterministic jitter, for retrying
/// transient (kUnavailable) faults.  Delays depend only on (seed,
/// attempt), so a replayed run waits the same schedule.
struct BackoffPolicy {
  unsigned max_attempts = 4;           ///< total tries, including the first
  std::uint64_t base_us = 200;         ///< delay before the first retry
  std::uint64_t cap_us = 20'000;       ///< upper bound on any delay
  std::uint64_t seed = 1;              ///< jitter seed

  /// Delay before retry number `retry` (1-based), in microseconds:
  /// min(cap, base * 2^(retry-1)) plus deterministic jitter in
  /// [0, delay/2).
  [[nodiscard]] std::uint64_t DelayMicros(unsigned retry) const noexcept;
};

namespace detail {
void SleepMicros(std::uint64_t us);
[[noreturn]] void ThrowRetriesExhausted(unsigned attempts,
                                        const std::string& last_message);
}  // namespace detail

/// Runs `fn`, retrying on Error(kUnavailable) per `policy` (sleeping
/// DelayMicros between tries).  Non-transient errors propagate
/// unchanged; after max_attempts transient failures a kUnavailable
/// error with a retries-exhausted prefix propagates (callers map it to
/// the typed kRetryExhausted).
template <typename Fn>
auto RetryTransient(const BackoffPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  const unsigned attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (unsigned attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error& e) {
      if (e.kind() != ErrorKind::kUnavailable) throw;
      if (attempt >= attempts) {
        detail::ThrowRetriesExhausted(attempts, e.what());
      }
      detail::SleepMicros(policy.DelayMicros(attempt));
    }
  }
}

}  // namespace caltrain::util
