// Minimal leveled logger.  Default level is kWarn so tests and benches
// stay quiet; examples raise it to kInfo to narrate the pipeline.
#pragma once

#include <sstream>
#include <string>

namespace caltrain {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel GetLogLevel() noexcept;

/// Writes one formatted line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace caltrain

#define CALTRAIN_LOG(level) \
  ::caltrain::detail::LogLine(::caltrain::LogLevel::level)
