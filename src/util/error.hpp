// Error handling primitives shared by every CalTrain module.
//
// Modules signal failure to perform a required task by throwing
// caltrain::Error (Core Guidelines I.10).  The CHECK macros provide
// lightweight precondition/invariant checking that stays enabled in
// release builds: a violated check in this codebase almost always means
// a protocol or security invariant was broken, which must never be
// silently ignored.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace caltrain {

/// Category of a failure, used by callers that need to branch on the
/// broad class of error (e.g. treat AuthFailure as adversarial input
/// rather than a programming bug).
enum class ErrorKind {
  kInvalidArgument,  ///< caller passed a malformed value
  kFailedPrecondition,  ///< object not in the required state
  kAuthFailure,      ///< cryptographic authentication / attestation failed
  kCapacity,         ///< resource limit exceeded (e.g. EPC exhausted)
  kNotFound,         ///< lookup missed
  kUnavailable,      ///< transient fault (I/O error, injected fault);
                     ///< retrying with backoff may succeed
  kInternal,         ///< invariant violation inside the library
};

/// Exception thrown by all CalTrain libraries.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

[[noreturn]] inline void ThrowError(ErrorKind kind, const std::string& message,
                                    std::source_location loc =
                                        std::source_location::current()) {
  throw Error(kind, std::string(loc.file_name()) + ":" +
                        std::to_string(loc.line()) + ": " + message);
}

}  // namespace caltrain

/// Runtime-checked invariant; throws kInternal on violation.
#define CALTRAIN_CHECK(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::caltrain::ThrowError(::caltrain::ErrorKind::kInternal,          \
                             std::string("check failed: " #cond ": ") + \
                                 (msg));                                \
    }                                                                   \
  } while (0)

/// Argument validation; throws kInvalidArgument on violation.
#define CALTRAIN_REQUIRE(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::caltrain::ThrowError(::caltrain::ErrorKind::kInvalidArgument,       \
                             std::string("requirement failed: " #cond       \
                                         ": ") +                            \
                                 (msg));                                    \
    }                                                                       \
  } while (0)
