// 2-D convolutional layer (same-padding square kernels, as in
// Tables I/II) with optional leaky-ReLU activation, trained via
// im2col + GEMM.
//
// Lowering (PR 3): both profiles im2col a block of up to
// kConvBatchBlock samples into one wide [k x block*n] column buffer.
// The Fast profile issues a single tiled GEMM per block with the bias
// broadcast and leaky-ReLU folded into the GEMM epilogue; the Precise
// profile iterates the wide buffer sample by sample at the seed's
// exact serial arithmetic order (in-enclave fidelity).  When the whole
// batch fits one block — always true for training shards — Backward
// reuses the forward im2col instead of re-lowering, and training
// passes skip the first layer's input gradient entirely
// (LayerContext::want_input_grad).
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

/// Samples lowered per wide im2col block.  A fixed constant (never
/// derived from the thread count) so the lowering — and therefore
/// every float grouping in the batched GEMMs — is identical at any
/// thread count.  Training shards hold kTrainShardSamples (< this)
/// samples, so a shard lowers as one block.
inline constexpr int kConvBatchBlock = 8;

class ConvLayer final : public Layer {
 public:
  /// ksize x ksize kernels, `stride`, symmetric zero padding chosen so a
  /// 3x3/1 conv preserves spatial size and a 1x1/1 conv is unpadded.
  ConvLayer(Shape in, int filters, int ksize, int stride,
            Activation activation);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kConv;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
  void Update(const SgdConfig& config, int batch_size,
              LayerGrads& grads) override;

  void SizeScratch(LayerScratch& scratch, int batch_n) const override;

  [[nodiscard]] bool HasWeights() const noexcept override { return true; }
  void InitWeights(Rng& rng) override;
  void SerializeWeights(ByteWriter& writer) const override;
  void DeserializeWeights(ByteReader& reader) override;

  [[nodiscard]] std::uint64_t ForwardFlopsPerSample() const noexcept override;
  [[nodiscard]] std::size_t WeightBytes() const noexcept override;

  [[nodiscard]] std::vector<float>& weights() noexcept { return weights_; }
  [[nodiscard]] std::vector<float>& biases() noexcept { return biases_; }
  [[nodiscard]] int filters() const noexcept { return filters_; }
  [[nodiscard]] int ksize() const noexcept { return ksize_; }

 private:
  /// Samples per lowered block (both profiles share the wide buffer
  /// layout; the Precise GEMMs iterate it per sample, so its
  /// arithmetic stays the exact seed order).
  [[nodiscard]] static int BlockSamples(int batch_n) noexcept;
  /// Leaky-ReLU negative slope for the GEMM epilogue; 1 = linear.
  [[nodiscard]] float EpilogueSlope() const noexcept;

  int filters_;
  int ksize_;
  int stride_;
  int pad_;
  Activation activation_;

  // Weights and optimizer momentum only: per-pass scratch and gradient
  // accumulation live in the caller's LayerWorkspace (workspace.hpp).
  std::vector<float> weights_;       ///< [filters][in_c * k * k]
  std::vector<float> biases_;        ///< [filters]
  std::vector<float> weight_momentum_;
  std::vector<float> bias_momentum_;
};

}  // namespace caltrain::nn
