// 2-D convolutional layer (same-padding square kernels, as in
// Tables I/II) with optional leaky-ReLU activation, trained via
// im2col + GEMM.
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

class ConvLayer final : public Layer {
 public:
  /// ksize x ksize kernels, `stride`, symmetric zero padding chosen so a
  /// 3x3/1 conv preserves spatial size and a 1x1/1 conv is unpadded.
  ConvLayer(Shape in, int filters, int ksize, int stride,
            Activation activation);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kConv;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
  void Update(const SgdConfig& config, int batch_size,
              LayerGrads& grads) override;

  [[nodiscard]] bool HasWeights() const noexcept override { return true; }
  void InitWeights(Rng& rng) override;
  void SerializeWeights(ByteWriter& writer) const override;
  void DeserializeWeights(ByteReader& reader) override;

  [[nodiscard]] std::uint64_t ForwardFlopsPerSample() const noexcept override;
  [[nodiscard]] std::size_t WeightBytes() const noexcept override;

  [[nodiscard]] std::vector<float>& weights() noexcept { return weights_; }
  [[nodiscard]] std::vector<float>& biases() noexcept { return biases_; }
  [[nodiscard]] int filters() const noexcept { return filters_; }
  [[nodiscard]] int ksize() const noexcept { return ksize_; }

 private:
  [[nodiscard]] std::size_t ColSize() const noexcept;
  void ApplyActivation(float* data, std::size_t n) const noexcept;
  void ActivationGradient(const float* out, float* delta,
                          std::size_t n) const noexcept;

  int filters_;
  int ksize_;
  int stride_;
  int pad_;
  Activation activation_;

  // Weights and optimizer momentum only: per-pass scratch and gradient
  // accumulation live in the caller's LayerWorkspace (workspace.hpp).
  std::vector<float> weights_;       ///< [filters][in_c * k * k]
  std::vector<float> biases_;        ///< [filters]
  std::vector<float> weight_momentum_;
  std::vector<float> bias_momentum_;
};

}  // namespace caltrain::nn
