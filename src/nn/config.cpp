#include "nn/config.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace caltrain::nn {

namespace {

struct Section {
  std::string name;
  int line = 0;
  std::map<std::string, std::string> values;
};

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void Fail(int line, const std::string& message) {
  ThrowError(ErrorKind::kInvalidArgument,
             "config line " + std::to_string(line) + ": " + message);
}

std::vector<Section> Tokenize(std::string_view text) {
  std::vector<Section> sections;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_number;

    // Strip comments and whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        Fail(line_number, "malformed section header");
      }
      Section section;
      section.name = std::string(line.substr(1, line.size() - 2));
      section.line = line_number;
      sections.push_back(std::move(section));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      Fail(line_number, "expected key=value");
    }
    if (sections.empty()) {
      Fail(line_number, "key=value before any [section]");
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key.empty() || value.empty()) {
      Fail(line_number, "empty key or value");
    }
    sections.back().values[key] = value;
  }
  return sections;
}

int GetInt(const Section& s, const std::string& key, int fallback,
           bool required = false) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) {
    if (required) Fail(s.line, "[" + s.name + "] missing key '" + key + "'");
    return fallback;
  }
  int value = 0;
  const auto [ptr, ec] = std::from_chars(
      it->second.data(), it->second.data() + it->second.size(), value);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    Fail(s.line, "key '" + key + "' is not an integer: " + it->second);
  }
  return value;
}

float GetFloat(const Section& s, const std::string& key, float fallback) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const float value = std::stof(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument(key);
    return value;
  } catch (const std::exception&) {
    Fail(s.line, "key '" + key + "' is not a number: " + it->second);
  }
}

Activation GetActivation(const Section& s) {
  const auto it = s.values.find("activation");
  if (it == s.values.end()) return Activation::kLeakyRelu;  // Darknet default
  if (it->second == "leaky") return Activation::kLeakyRelu;
  if (it->second == "linear") return Activation::kLinear;
  Fail(s.line, "unknown activation '" + it->second + "'");
}

void CheckKnownKeys(const Section& s,
                    std::initializer_list<const char*> known) {
  for (const auto& [key, value] : s.values) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) Fail(s.line, "[" + s.name + "] unknown key '" + key + "'");
  }
}

}  // namespace

NetworkSpec ParseNetworkConfig(std::string_view text) {
  const std::vector<Section> sections = Tokenize(text);
  CALTRAIN_REQUIRE(!sections.empty(), "empty network config");
  const Section& net = sections.front();
  if (net.name != "net" && net.name != "network") {
    Fail(net.line, "first section must be [net]");
  }
  CheckKnownKeys(net, {"width", "height", "channels"});

  NetworkSpec spec;
  spec.input.w = GetInt(net, "width", 0, /*required=*/true);
  spec.input.h = GetInt(net, "height", 0, /*required=*/true);
  spec.input.c = GetInt(net, "channels", 0, /*required=*/true);
  CALTRAIN_REQUIRE(spec.input.w > 0 && spec.input.h > 0 && spec.input.c > 0,
                   "[net] dimensions must be positive");

  for (std::size_t i = 1; i < sections.size(); ++i) {
    const Section& s = sections[i];
    LayerSpec layer;
    if (s.name == "convolutional" || s.name == "conv") {
      CheckKnownKeys(s, {"filters", "size", "stride", "activation"});
      layer.kind = LayerKind::kConv;
      layer.filters = GetInt(s, "filters", 1);
      layer.ksize = GetInt(s, "size", 3);
      layer.stride = GetInt(s, "stride", 1);
      layer.activation = GetActivation(s);
    } else if (s.name == "maxpool" || s.name == "max") {
      CheckKnownKeys(s, {"size", "stride"});
      layer.kind = LayerKind::kMaxPool;
      layer.ksize = GetInt(s, "size", 2);
      layer.stride = GetInt(s, "stride", layer.ksize);
    } else if (s.name == "avgpool" || s.name == "avg") {
      CheckKnownKeys(s, {});
      layer.kind = LayerKind::kAvgPool;
    } else if (s.name == "dropout") {
      CheckKnownKeys(s, {"probability"});
      layer.kind = LayerKind::kDropout;
      layer.dropout_p = GetFloat(s, "probability", 0.5F);
    } else if (s.name == "connected") {
      CheckKnownKeys(s, {"output", "activation"});
      layer.kind = LayerKind::kConnected;
      layer.outputs = GetInt(s, "output", 0, /*required=*/true);
      layer.activation = GetActivation(s);
    } else if (s.name == "softmax") {
      CheckKnownKeys(s, {});
      layer.kind = LayerKind::kSoftmax;
    } else if (s.name == "cost") {
      CheckKnownKeys(s, {});
      layer.kind = LayerKind::kCost;
    } else {
      Fail(s.line, "unknown section [" + s.name + "]");
    }
    spec.layers.push_back(layer);
  }
  CALTRAIN_REQUIRE(!spec.layers.empty(), "config declares no layers");
  return spec;
}

std::string WriteNetworkConfig(const NetworkSpec& spec) {
  std::ostringstream os;
  os << "[net]\n"
     << "width=" << spec.input.w << "\n"
     << "height=" << spec.input.h << "\n"
     << "channels=" << spec.input.c << "\n";
  for (const LayerSpec& l : spec.layers) {
    os << "\n";
    switch (l.kind) {
      case LayerKind::kConv:
        os << "[convolutional]\n"
           << "filters=" << l.filters << "\n"
           << "size=" << l.ksize << "\n"
           << "stride=" << l.stride << "\n"
           << "activation="
           << (l.activation == Activation::kLinear ? "linear" : "leaky")
           << "\n";
        break;
      case LayerKind::kMaxPool:
        os << "[maxpool]\n"
           << "size=" << l.ksize << "\n"
           << "stride=" << l.stride << "\n";
        break;
      case LayerKind::kAvgPool:
        os << "[avgpool]\n";
        break;
      case LayerKind::kDropout:
        os << "[dropout]\n"
           << "probability=" << l.dropout_p << "\n";
        break;
      case LayerKind::kConnected:
        os << "[connected]\n"
           << "output=" << l.outputs << "\n"
           << "activation="
           << (l.activation == Activation::kLinear ? "linear" : "leaky")
           << "\n";
        break;
      case LayerKind::kSoftmax:
        os << "[softmax]\n";
        break;
      case LayerKind::kCost:
        os << "[cost]\n";
        break;
    }
  }
  return os.str();
}

}  // namespace caltrain::nn
