#include "nn/layer.hpp"

#include <cmath>

namespace caltrain::nn {

namespace detail {

void ApplyDpSanitization(const SgdConfig& config,
                         std::vector<float>& weight_grads,
                         std::vector<float>& bias_grads) {
  if (config.dp_clip_norm <= 0.0F && config.dp_noise_stddev <= 0.0F) return;
  if (config.dp_clip_norm > 0.0F) {
    double norm_sq = 0.0;
    for (float g : weight_grads) norm_sq += static_cast<double>(g) * g;
    for (float g : bias_grads) norm_sq += static_cast<double>(g) * g;
    const double norm = std::sqrt(norm_sq);
    if (norm > config.dp_clip_norm) {
      const float scale = config.dp_clip_norm / static_cast<float>(norm);
      for (float& g : weight_grads) g *= scale;
      for (float& g : bias_grads) g *= scale;
    }
  }
  if (config.dp_noise_stddev > 0.0F) {
    CALTRAIN_REQUIRE(config.dp_rng != nullptr,
                     "dp_noise_stddev > 0 requires dp_rng");
    for (float& g : weight_grads) {
      g += config.dp_rng->Gaussian(0.0F, config.dp_noise_stddev);
    }
    for (float& g : bias_grads) {
      g += config.dp_rng->Gaussian(0.0F, config.dp_noise_stddev);
    }
  }
}

}  // namespace detail

void Layer::Update(const SgdConfig& /*config*/, int /*batch_size*/,
                   LayerGrads& /*grads*/) {}

void Layer::InitWeights(Rng& /*rng*/) {}

void Layer::SerializeWeights(ByteWriter& /*writer*/) const {}

void Layer::DeserializeWeights(ByteReader& /*reader*/) {}

}  // namespace caltrain::nn
