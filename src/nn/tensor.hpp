// Tensor shapes and batched activation buffers for the NN substrate.
//
// Layout convention (Darknet-compatible): a batch is a flat float array
// of n images, each image stored channel-major as [c][h][w].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace caltrain::nn {

/// Spatial shape of one sample: width x height x channels.
struct Shape {
  int w = 0;
  int h = 0;
  int c = 0;

  [[nodiscard]] std::size_t Flat() const noexcept {
    return static_cast<std::size_t>(w) * static_cast<std::size_t>(h) *
           static_cast<std::size_t>(c);
  }

  [[nodiscard]] bool operator==(const Shape&) const noexcept = default;

  [[nodiscard]] std::string ToString() const {
    return std::to_string(w) + "x" + std::to_string(h) + "x" +
           std::to_string(c);
  }
};

/// A batch of activations.
struct Batch {
  int n = 0;       ///< number of samples
  Shape shape;     ///< per-sample shape
  std::vector<float> data;

  Batch() = default;
  Batch(int n_in, Shape shape_in)
      : n(n_in), shape(shape_in),
        data(static_cast<std::size_t>(n_in) * shape_in.Flat(), 0.0F) {}

  [[nodiscard]] std::size_t SampleSize() const noexcept {
    return shape.Flat();
  }

  [[nodiscard]] float* Sample(int i) noexcept {
    return data.data() + static_cast<std::size_t>(i) * SampleSize();
  }
  [[nodiscard]] const float* Sample(int i) const noexcept {
    return data.data() + static_cast<std::size_t>(i) * SampleSize();
  }

  void Zero() noexcept { std::fill(data.begin(), data.end(), 0.0F); }

  [[nodiscard]] std::size_t TotalBytes() const noexcept {
    return data.size() * sizeof(float);
  }
};

/// One image sample (used by datasets and the assessment framework).
struct Image {
  Shape shape;
  std::vector<float> pixels;  ///< [c][h][w], values nominally in [0, 1]

  Image() = default;
  explicit Image(Shape s) : shape(s), pixels(s.Flat(), 0.0F) {}

  [[nodiscard]] float& At(int ch, int y, int x) noexcept {
    return pixels[(static_cast<std::size_t>(ch) * shape.h + y) * shape.w + x];
  }
  [[nodiscard]] float At(int ch, int y, int x) const noexcept {
    return pixels[(static_cast<std::size_t>(ch) * shape.h + y) * shape.w + x];
  }
};

}  // namespace caltrain::nn
