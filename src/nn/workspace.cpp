#include "nn/workspace.hpp"

#include <algorithm>

#include "nn/network.hpp"
#include "util/error.hpp"

namespace caltrain::nn {

void LayerGrads::EnsureSized(std::size_t weight_count,
                             std::size_t bias_count) {
  if (weight_grads.size() != weight_count) {
    weight_grads.assign(weight_count, 0.0F);
  }
  if (bias_grads.size() != bias_count) {
    bias_grads.assign(bias_count, 0.0F);
  }
}

void LayerGrads::Zero() noexcept {
  std::fill(weight_grads.begin(), weight_grads.end(), 0.0F);
  std::fill(bias_grads.begin(), bias_grads.end(), 0.0F);
}

void LayerGrads::Add(const LayerGrads& other) {
  if (other.weight_grads.empty() && other.bias_grads.empty()) return;
  if (weight_grads.empty() && bias_grads.empty()) {
    weight_grads = other.weight_grads;
    bias_grads = other.bias_grads;
    return;
  }
  CALTRAIN_REQUIRE(weight_grads.size() == other.weight_grads.size() &&
                       bias_grads.size() == other.bias_grads.size(),
                   "gradient reduction size mismatch");
  for (std::size_t i = 0; i < weight_grads.size(); ++i) {
    weight_grads[i] += other.weight_grads[i];
  }
  for (std::size_t i = 0; i < bias_grads.size(); ++i) {
    bias_grads[i] += other.bias_grads[i];
  }
}

std::size_t LayerGrads::TotalBytes() const noexcept {
  return (weight_grads.size() + bias_grads.size()) * sizeof(float);
}

GradientAccumulator::GradientAccumulator(const Network& net) { Reset(net); }

void GradientAccumulator::Reset(const Network& net) {
  layers_.assign(static_cast<std::size_t>(net.NumLayers()), LayerGrads{});
}

LayerGrads& GradientAccumulator::at(int layer) {
  CALTRAIN_REQUIRE(layer >= 0 && layer < NumLayers(),
                   "gradient layer index out of range");
  return layers_[static_cast<std::size_t>(layer)];
}

const LayerGrads& GradientAccumulator::at(int layer) const {
  CALTRAIN_REQUIRE(layer >= 0 && layer < NumLayers(),
                   "gradient layer index out of range");
  return layers_[static_cast<std::size_t>(layer)];
}

void GradientAccumulator::Zero() noexcept {
  for (LayerGrads& g : layers_) g.Zero();
}

void GradientAccumulator::Add(const GradientAccumulator& other) {
  CALTRAIN_REQUIRE(layers_.size() == other.layers_.size(),
                   "gradient reduction layer-count mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].Add(other.layers_[i]);
  }
}

std::size_t GradientAccumulator::TotalBytes() const noexcept {
  std::size_t total = 0;
  for (const LayerGrads& g : layers_) total += g.TotalBytes();
  return total;
}

std::size_t LayerScratch::TotalBytes() const noexcept {
  return (col.size() + delta.size() + col_delta.size()) * sizeof(float) +
         mask.size() +
         argmax.size() * sizeof(std::int32_t) + labels.size() * sizeof(int) +
         sample_losses.size() * sizeof(double);
}

LayerWorkspace::LayerWorkspace(const Network& net) { Reset(net); }

void LayerWorkspace::Reset(const Network& net) {
  const std::size_t n = static_cast<std::size_t>(net.NumLayers());
  input = Batch{};
  activations.assign(n, Batch{});
  deltas.assign(n, Batch{});
  input_delta = Batch{};
  batch = 0;
  scratch.assign(n, LayerScratch{});
  grads.Reset(net);
}

std::size_t LayerWorkspace::TotalBytes() const noexcept {
  std::size_t total = input.TotalBytes() + input_delta.TotalBytes();
  for (const Batch& b : activations) total += b.TotalBytes();
  for (const Batch& b : deltas) total += b.TotalBytes();
  for (const LayerScratch& s : scratch) total += s.TotalBytes();
  return total + grads.TotalBytes();
}

void SliceBatch(const Batch& src, int begin, int end, Batch& dst) {
  CALTRAIN_REQUIRE(begin >= 0 && begin < end && end <= src.n,
                   "bad batch slice");
  const int count = end - begin;
  if (dst.n != count || dst.shape != src.shape) {
    dst = Batch(count, src.shape);
  }
  std::copy(src.Sample(begin), src.Sample(begin) + dst.data.size(),
            dst.data.begin());
}

std::vector<TrainShard> MakeTrainShards(int batch_n, Rng& rng) {
  CALTRAIN_REQUIRE(batch_n > 0, "empty training batch");
  std::vector<TrainShard> shards;
  shards.reserve(static_cast<std::size_t>(
      (batch_n + kTrainShardSamples - 1) / kTrainShardSamples));
  for (int begin = 0; begin < batch_n; begin += kTrainShardSamples) {
    TrainShard shard;
    shard.begin = begin;
    shard.end = std::min(batch_n, begin + kTrainShardSamples);
    shard.rng_seed = rng.NextU64();
    shards.push_back(shard);
  }
  return shards;
}

void EnsureShardWorkspaces(
    const Network& net,
    std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count) {
  while (workspaces.size() < count) {
    workspaces.push_back(std::make_unique<LayerWorkspace>(net));
  }
}

GradientAccumulator& ReduceShardGrads(
    std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count) {
  CALTRAIN_REQUIRE(count >= 1 && count <= workspaces.size(),
                   "bad shard count for gradient reduction");
  GradientAccumulator& total = workspaces[0]->grads;
  for (std::size_t s = 1; s < count; ++s) {
    total.Add(workspaces[s]->grads);
    workspaces[s]->grads.Zero();
  }
  return total;
}

float SumShardLosses(
    const std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count, int cost_layer, int batch_n) {
  CALTRAIN_REQUIRE(count >= 1 && count <= workspaces.size() && batch_n > 0,
                   "bad shard count for loss reduction");
  double loss = 0.0;
  for (std::size_t s = 0; s < count; ++s) {
    const LayerScratch& scratch =
        workspaces[s]->scratch.at(static_cast<std::size_t>(cost_layer));
    for (const double sample_loss : scratch.sample_losses) loss += sample_loss;
  }
  return static_cast<float>(loss / batch_n);
}

}  // namespace caltrain::nn
