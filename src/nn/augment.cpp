#include "nn/augment.hpp"

#include <algorithm>
#include <cmath>

namespace caltrain::nn {

Image FlipHorizontal(const Image& image) {
  Image out(image.shape);
  for (int c = 0; c < image.shape.c; ++c) {
    for (int y = 0; y < image.shape.h; ++y) {
      for (int x = 0; x < image.shape.w; ++x) {
        out.At(c, y, x) = image.At(c, y, image.shape.w - 1 - x);
      }
    }
  }
  return out;
}

Image Rotate(const Image& image, float degrees) {
  Image out(image.shape);
  const float rad = degrees * 3.14159265358979323846F / 180.0F;
  const float cs = std::cos(rad);
  const float sn = std::sin(rad);
  const float cx = static_cast<float>(image.shape.w - 1) / 2.0F;
  const float cy = static_cast<float>(image.shape.h - 1) / 2.0F;
  for (int y = 0; y < image.shape.h; ++y) {
    for (int x = 0; x < image.shape.w; ++x) {
      // Inverse mapping: rotate output coordinates back into the source.
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float sx = cs * dx + sn * dy + cx;
      const float sy = -sn * dx + cs * dy + cy;
      const int x0 = static_cast<int>(std::floor(sx));
      const int y0 = static_cast<int>(std::floor(sy));
      const float fx = sx - static_cast<float>(x0);
      const float fy = sy - static_cast<float>(y0);
      for (int c = 0; c < image.shape.c; ++c) {
        const auto sample = [&](int yy, int xx) -> float {
          if (yy < 0 || yy >= image.shape.h || xx < 0 || xx >= image.shape.w) {
            return 0.0F;
          }
          return image.At(c, yy, xx);
        };
        const float v00 = sample(y0, x0);
        const float v01 = sample(y0, x0 + 1);
        const float v10 = sample(y0 + 1, x0);
        const float v11 = sample(y0 + 1, x0 + 1);
        out.At(c, y, x) = v00 * (1 - fx) * (1 - fy) + v01 * fx * (1 - fy) +
                          v10 * (1 - fx) * fy + v11 * fx * fy;
      }
    }
  }
  return out;
}

Image Translate(const Image& image, int dx, int dy) {
  Image out(image.shape);
  for (int c = 0; c < image.shape.c; ++c) {
    for (int y = 0; y < image.shape.h; ++y) {
      const int sy = y - dy;
      if (sy < 0 || sy >= image.shape.h) continue;
      for (int x = 0; x < image.shape.w; ++x) {
        const int sx = x - dx;
        if (sx < 0 || sx >= image.shape.w) continue;
        out.At(c, y, x) = image.At(c, sy, sx);
      }
    }
  }
  return out;
}

Image AdjustBrightnessContrast(const Image& image, float brightness,
                               float contrast) {
  Image out(image.shape);
  for (std::size_t i = 0; i < image.pixels.size(); ++i) {
    const float v = (image.pixels[i] - 0.5F) * contrast + 0.5F + brightness;
    out.pixels[i] = std::clamp(v, 0.0F, 1.0F);
  }
  return out;
}

Image Augment(const Image& image, const AugmentOptions& options, Rng& rng) {
  Image out = image;
  if (options.flip && rng.Bernoulli(0.5F)) out = FlipHorizontal(out);
  if (options.max_rotation_deg > 0.0F) {
    const float deg =
        rng.UniformFloat(-options.max_rotation_deg, options.max_rotation_deg);
    out = Rotate(out, deg);
  }
  if (options.max_translate_px > 0) {
    const int dx = rng.UniformInt(-options.max_translate_px,
                                  options.max_translate_px);
    const int dy = rng.UniformInt(-options.max_translate_px,
                                  options.max_translate_px);
    if (dx != 0 || dy != 0) out = Translate(out, dx, dy);
  }
  if (options.max_brightness > 0.0F || options.max_contrast > 0.0F) {
    const float b =
        rng.UniformFloat(-options.max_brightness, options.max_brightness);
    const float ctr =
        1.0F + rng.UniformFloat(-options.max_contrast, options.max_contrast);
    out = AdjustBrightnessContrast(out, b, ctr);
  }
  return out;
}

}  // namespace caltrain::nn
