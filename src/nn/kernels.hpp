// Compute kernels with two compiled variants.
//
// kFast is built with -O3 -ffast-math (reassociation lets the compiler
// vectorize the reduction loops) and models the ML-accelerated path
// available *outside* an SGX enclave.  kPrecise is built with plain -O3,
// mirroring the paper's observation (Sec. VI-C) that -ffast-math-style
// floating acceleration is ineffective for enclaved code.  Both compute
// the same GEMM; the measured speed difference is what the Fig. 6
// benchmark reports as in-enclave overhead.
//
// Kernel architecture (PR 3): the Fast profile routes non-trivial
// shapes through a cache-blocked, register-tiled micro-kernel
// (gemm_tile.inc) — A/B packed into per-thread workspace panels, a
// 6x16 register tile with zero-padded edges, runtime ISA dispatch via
// target_clones — while the Precise profile keeps the exact
// serial-order AXPY/dot loops (gemm_body.inc) for in-enclave fidelity.
// The tiled block plan (KC/MC/NC/MR/NR) is fixed and independent of
// the thread count, and parallel dispatch only ever splits disjoint
// output tiles, so Fast results stay bit-identical at any thread count
// (the PR 2 determinism contract).
#pragma once

#include <cstddef>

namespace caltrain::nn {

enum class KernelProfile {
  kFast,     ///< host path (fast-math, vectorizable)
  kPrecise,  ///< in-enclave path (strict FP semantics)
};

/// Optional fused tail applied by the *Ex GEMM entry points.
///
/// Semantics (per output element, after the full k-reduction):
///   base = accumulate ? C_old : 0
///   v    = base + sum_k + row_bias[i] + col_bias[j]
///   C    = (v < 0) ? v * negative_slope : v
/// negative_slope == 1 is the identity activation; 0.1 is the leaky
/// ReLU used by the conv/connected layers.  Null biases contribute 0.
struct GemmEpilogue {
  bool accumulate = true;           ///< false: overwrite C with the result
  const float* row_bias = nullptr;  ///< added to every element of row i
  const float* col_bias = nullptr;  ///< added to every element of col j
  float negative_slope = 1.0F;      ///< leaky-ReLU slope; 1 = identity
};

/// C[m x n] += A[m x k] * B[k x n], row-major, fast-math build.
void GemmFast(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c) noexcept;

/// Same contract, strict-FP build.
void GemmPrecise(std::size_t m, std::size_t n, std::size_t k, const float* a,
                 const float* b, float* c) noexcept;

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored as [k x m].
void GemmTransAFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept;
void GemmTransAPrecise(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c) noexcept;

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored as [n x k].
void GemmTransBFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept;
void GemmTransBPrecise(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c) noexcept;

/// Epilogue-fused variants of the three forms above.  With the default
/// epilogue they are exactly the legacy accumulate kernels; with
/// accumulate=false they overwrite C (no caller-side zero fill needed),
/// and bias/activation fold into the final store.
void GemmExFast(std::size_t m, std::size_t n, std::size_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& epi) noexcept;
void GemmExPrecise(std::size_t m, std::size_t n, std::size_t k,
                   const float* a, const float* b, float* c,
                   const GemmEpilogue& epi) noexcept;
void GemmTransAExFast(std::size_t m, std::size_t n, std::size_t k,
                      const float* a, const float* b, float* c,
                      const GemmEpilogue& epi) noexcept;
void GemmTransAExPrecise(std::size_t m, std::size_t n, std::size_t k,
                         const float* a, const float* b, float* c,
                         const GemmEpilogue& epi) noexcept;
void GemmTransBExFast(std::size_t m, std::size_t n, std::size_t k,
                      const float* a, const float* b, float* c,
                      const GemmEpilogue& epi) noexcept;
void GemmTransBExPrecise(std::size_t m, std::size_t n, std::size_t k,
                         const float* a, const float* b, float* c,
                         const GemmEpilogue& epi) noexcept;

/// Batched conv forward GEMM over a block of `batch` samples lowered
/// side by side: col_wide is [k x batch*n] with sample s occupying
/// columns [s*n, (s+1)*n), out is `batch` consecutive sample planes of
/// [m x n] each (the network's batch layout), and for every sample
///   out_s = leaky(weights[m x k] * col_s + bias)   (overwrite).
/// The Fast build issues one wide tiled GEMM whose store phase scatters
/// tile columns across sample planes; the Precise build runs the exact
/// per-sample serial loop (bias-seeded AXPY, then activation) so the
/// in-enclave arithmetic order is unchanged from the unbatched path.
void ConvGemmBatchedFast(std::size_t m, std::size_t n, std::size_t k,
                         int batch, const float* weights,
                         const float* col_wide, const float* bias,
                         float negative_slope, float* out) noexcept;
void ConvGemmBatchedPrecise(std::size_t m, std::size_t n, std::size_t k,
                            int batch, const float* weights,
                            const float* col_wide, const float* bias,
                            float negative_slope, float* out) noexcept;

/// Batched conv backward GEMMs over one lowered block (wide layout as
/// ConvGemmBatched; delta_wide is [m x batch*n], sample s at column
/// offset s*n):
///   weight_grads[m x k] += delta_wide * col_wide^T
///   col_delta[k x batch*n] = weights^T * delta_wide    (overwrite;
///                            skipped when col_delta == nullptr)
/// The Fast build issues two wide tiled GEMMs; the Precise build runs
/// the exact per-sample serial loops of the unbatched lowering
/// (bit-identical to the seed arithmetic, sample by sample).
void ConvGemmBackwardFast(std::size_t m, std::size_t n, std::size_t k,
                          int batch, const float* weights,
                          const float* delta_wide, const float* col_wide,
                          float* weight_grads, float* col_delta) noexcept;
void ConvGemmBackwardPrecise(std::size_t m, std::size_t n, std::size_t k,
                             int batch, const float* weights,
                             const float* delta_wide, const float* col_wide,
                             float* weight_grads, float* col_delta) noexcept;

/// Dispatch helpers.
inline void Gemm(KernelProfile p, std::size_t m, std::size_t n, std::size_t k,
                 const float* a, const float* b, float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmFast(m, n, k, a, b, c)
                              : GemmPrecise(m, n, k, a, b, c);
}
inline void GemmTransA(KernelProfile p, std::size_t m, std::size_t n,
                       std::size_t k, const float* a, const float* b,
                       float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmTransAFast(m, n, k, a, b, c)
                              : GemmTransAPrecise(m, n, k, a, b, c);
}
inline void GemmTransB(KernelProfile p, std::size_t m, std::size_t n,
                       std::size_t k, const float* a, const float* b,
                       float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmTransBFast(m, n, k, a, b, c)
                              : GemmTransBPrecise(m, n, k, a, b, c);
}
inline void GemmEx(KernelProfile p, std::size_t m, std::size_t n,
                   std::size_t k, const float* a, const float* b, float* c,
                   const GemmEpilogue& epi) noexcept {
  (p == KernelProfile::kFast) ? GemmExFast(m, n, k, a, b, c, epi)
                              : GemmExPrecise(m, n, k, a, b, c, epi);
}
inline void GemmTransAEx(KernelProfile p, std::size_t m, std::size_t n,
                         std::size_t k, const float* a, const float* b,
                         float* c, const GemmEpilogue& epi) noexcept {
  (p == KernelProfile::kFast) ? GemmTransAExFast(m, n, k, a, b, c, epi)
                              : GemmTransAExPrecise(m, n, k, a, b, c, epi);
}
inline void GemmTransBEx(KernelProfile p, std::size_t m, std::size_t n,
                         std::size_t k, const float* a, const float* b,
                         float* c, const GemmEpilogue& epi) noexcept {
  (p == KernelProfile::kFast) ? GemmTransBExFast(m, n, k, a, b, c, epi)
                              : GemmTransBExPrecise(m, n, k, a, b, c, epi);
}
inline void ConvGemmBatched(KernelProfile p, std::size_t m, std::size_t n,
                            std::size_t k, int batch, const float* weights,
                            const float* col_wide, const float* bias,
                            float negative_slope, float* out) noexcept {
  (p == KernelProfile::kFast)
      ? ConvGemmBatchedFast(m, n, k, batch, weights, col_wide, bias,
                            negative_slope, out)
      : ConvGemmBatchedPrecise(m, n, k, batch, weights, col_wide, bias,
                               negative_slope, out);
}
inline void ConvGemmBackward(KernelProfile p, std::size_t m, std::size_t n,
                             std::size_t k, int batch, const float* weights,
                             const float* delta_wide, const float* col_wide,
                             float* weight_grads, float* col_delta) noexcept {
  (p == KernelProfile::kFast)
      ? ConvGemmBackwardFast(m, n, k, batch, weights, delta_wide, col_wide,
                             weight_grads, col_delta)
      : ConvGemmBackwardPrecise(m, n, k, batch, weights, delta_wide, col_wide,
                                weight_grads, col_delta);
}

/// im2col for 3x3/1x1 convolutions with `stride` and symmetric `pad`.
/// in: [c][h][w]; col: [c*ksize*ksize][out_h*out_w].
void Im2Col(const float* in, int channels, int height, int width, int ksize,
            int stride, int pad, float* col) noexcept;

/// Scatter-add inverse of Im2Col (for input gradients).
void Col2Im(const float* col, int channels, int height, int width, int ksize,
            int stride, int pad, float* in) noexcept;

/// Batched im2col into a wide column buffer: samples [0, batch) of `in`
/// (consecutive planes of `sample_stride` floats) land side by side in
/// col_wide [c*ksize*ksize x batch*out_h*out_w], sample s at column
/// offset s*out_h*out_w.  Row ranges are dispatched through the thread
/// pool — across samples and, within one sample, across column rows —
/// with every row written by exactly one thread (pure copies, so the
/// result is identical at any thread count).
void Im2ColBatch(const float* in, std::size_t sample_stride, int batch,
                 int channels, int height, int width, int ksize, int stride,
                 int pad, float* col_wide);

/// Batched inverse: scatter-adds sample s's columns (offset
/// s*out_h*out_w, leading dimension batch*out_h*out_w) of col_wide into
/// the s-th output plane.  Parallelized over (sample, channel) pairs —
/// each pair's scatter region is disjoint, and the within-pair order
/// matches the serial loop, so results are thread-count independent.
void Col2ImBatch(const float* col_wide, int batch, int channels, int height,
                 int width, int ksize, int stride, int pad, float* in,
                 std::size_t sample_stride);

}  // namespace caltrain::nn
