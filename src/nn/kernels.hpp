// Compute kernels with two compiled variants.
//
// kFast is built with -O3 -ffast-math (reassociation lets the compiler
// vectorize the reduction loops) and models the ML-accelerated path
// available *outside* an SGX enclave.  kPrecise is built with plain -O3,
// mirroring the paper's observation (Sec. VI-C) that -ffast-math-style
// floating acceleration is ineffective for enclaved code.  Both compute
// the same GEMM; the measured speed difference is what the Fig. 6
// benchmark reports as in-enclave overhead.
#pragma once

#include <cstddef>

namespace caltrain::nn {

enum class KernelProfile {
  kFast,     ///< host path (fast-math, vectorizable)
  kPrecise,  ///< in-enclave path (strict FP semantics)
};

/// C[m x n] += A[m x k] * B[k x n], row-major, fast-math build.
void GemmFast(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c) noexcept;

/// Same contract, strict-FP build.
void GemmPrecise(std::size_t m, std::size_t n, std::size_t k, const float* a,
                 const float* b, float* c) noexcept;

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored as [k x m].
void GemmTransAFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept;
void GemmTransAPrecise(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c) noexcept;

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored as [n x k].
void GemmTransBFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept;
void GemmTransBPrecise(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c) noexcept;

/// Dispatch helpers.
inline void Gemm(KernelProfile p, std::size_t m, std::size_t n, std::size_t k,
                 const float* a, const float* b, float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmFast(m, n, k, a, b, c)
                              : GemmPrecise(m, n, k, a, b, c);
}
inline void GemmTransA(KernelProfile p, std::size_t m, std::size_t n,
                       std::size_t k, const float* a, const float* b,
                       float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmTransAFast(m, n, k, a, b, c)
                              : GemmTransAPrecise(m, n, k, a, b, c);
}
inline void GemmTransB(KernelProfile p, std::size_t m, std::size_t n,
                       std::size_t k, const float* a, const float* b,
                       float* c) noexcept {
  (p == KernelProfile::kFast) ? GemmTransBFast(m, n, k, a, b, c)
                              : GemmTransBPrecise(m, n, k, a, b, c);
}

/// im2col for 3x3/1x1 convolutions with `stride` and symmetric `pad`.
/// in: [c][h][w]; col: [c*ksize*ksize][out_h*out_w].
void Im2Col(const float* in, int channels, int height, int width, int ksize,
            int stride, int pad, float* col) noexcept;

/// Scatter-add inverse of Im2Col (for input gradients).
void Col2Im(const float* col, int channels, int height, int width, int ksize,
            int stride, int pad, float* in) noexcept;

}  // namespace caltrain::nn
