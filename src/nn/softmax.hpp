// Softmax and cost layers.
//
// Pairing convention (matches Darknet and the paper's Tables I/II,
// where every network ends softmax -> cost): the cost layer computes
// cross-entropy loss and emits the *combined* softmax+cross-entropy
// gradient (probabilities minus one-hot), and the softmax layer's
// backward passes deltas through unchanged.  The pair is therefore only
// correct when used together, which the Network builder enforces.
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

class SoftmaxLayer final : public Layer {
 public:
  explicit SoftmaxLayer(Shape in);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kSoftmax;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
};

class CostLayer final : public Layer {
 public:
  explicit CostLayer(Shape in);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kCost;
  }
  [[nodiscard]] std::string Describe() const override;

  /// Copies probabilities through; when ctx.labels is set, records the
  /// labels, the per-sample losses (LayerScratch::sample_losses, used
  /// for the thread-count-independent loss reduction), and the mean
  /// cross-entropy loss (LayerScratch::loss) in the workspace.
  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;

  /// Emits (probs - onehot); delta_out is ignored (this is the chain
  /// terminus).
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
};

}  // namespace caltrain::nn
