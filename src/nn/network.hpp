// Network: a straight-line stack of layers built from a declarative
// NetworkSpec.
//
// Execution is exposed as *ranges* of layer indices — ForwardRange /
// BackwardRange / UpdateRange — because CalTrain's partitioned training
// (paper Sec. IV-B) runs the FrontNet range inside the enclave and the
// BackNet range outside, shuttling intermediate representations and
// deltas across the boundary.  The convenience Train/Predict helpers
// run the whole stack.
//
// Each range primitive exists in two forms: a const overload taking an
// explicit LayerWorkspace (thread-safe — a const Network is shareable
// across workers, each with its own workspace) and a legacy overload
// bound to the network's built-in default workspace for single-threaded
// convenience callers.  TrainStep is the deterministic data-parallel
// SGD step: the batch is decomposed into fixed-size shards (never a
// function of the thread count), each shard runs forward/backward in
// its own workspace with its own derived RNG stream, and gradients are
// reduced in shard order — so the result is bit-identical at any
// thread count.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"

namespace caltrain::nn {

/// Declarative description of one layer.
struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  int filters = 0;        ///< conv
  int ksize = 0;          ///< conv / maxpool
  int stride = 0;         ///< conv / maxpool
  Activation activation = Activation::kLeakyRelu;  ///< conv / connected
  float dropout_p = 0.0F; ///< dropout
  int outputs = 0;        ///< connected
};

/// Declarative description of a whole network.
struct NetworkSpec {
  Shape input;
  std::vector<LayerSpec> layers;

  void Serialize(ByteWriter& writer) const;
  [[nodiscard]] static NetworkSpec Deserialize(ByteReader& reader);
};

class Network {
 public:
  explicit Network(const NetworkSpec& spec);

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Gaussian-initializes every weighted layer.
  void InitWeights(Rng& rng);

  [[nodiscard]] int NumLayers() const noexcept {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] const Layer& layer(int i) const { return *layers_.at(i); }
  [[nodiscard]] Layer& layer(int i) { return *layers_.at(i); }
  [[nodiscard]] Shape input_shape() const noexcept { return spec_.input; }
  [[nodiscard]] const NetworkSpec& spec() const noexcept { return spec_; }

  /// Number of classes = channel count of the softmax layer.
  [[nodiscard]] int NumClasses() const;

  /// Index of the layer whose output is the fingerprint embedding: the
  /// last layer before softmax (the "penultimate layer" of Sec. IV-C).
  [[nodiscard]] int PenultimateIndex() const;

  /// Index of the first softmax layer, or -1.
  [[nodiscard]] int SoftmaxIndex() const noexcept;

  // --- range execution (explicit workspace; const, thread-safe) -------
  /// Runs layers [from, to) into `ws`.  `input` must be provided when
  /// from == 0 and is ignored otherwise (the stored activation of layer
  /// from-1 in `ws` is used).  Activations are cached for Backward.
  /// Passing `&ws.input` as `input` is allowed (no self-copy).
  void ForwardRange(const Batch* input, int from, int to,
                    const LayerContext& ctx, LayerWorkspace& ws) const;

  /// Runs layers [from, to) backwards (i.e. to-1 down to from) in `ws`.
  /// The forward pass for the same batch must have happened already;
  /// weight gradients accumulate into ws.grads.
  void BackwardRange(int from, int to, const LayerContext& ctx,
                     LayerWorkspace& ws) const;

  /// Applies `grads` (reduced across workers) for layers [from, to),
  /// zeroing them.  Serial; mutates the weights.
  void UpdateRange(int from, int to, const SgdConfig& config, int batch_size,
                   GradientAccumulator& grads);

  // --- range execution (built-in default workspace) --------------------
  void ForwardRange(const Batch* input, int from, int to,
                    const LayerContext& ctx);
  void BackwardRange(int from, int to, const LayerContext& ctx);
  void UpdateRange(int from, int to, const SgdConfig& config, int batch_size);

  /// Output activation of layer i for the current batch.
  [[nodiscard]] const Batch& ActivationAt(int i) const;
  /// dL/d(output of layer i) for the current batch.
  [[nodiscard]] const Batch& DeltaAt(int i) const;
  /// Overwrites the cached activation of layer i (used when IRs re-enter
  /// across the enclave boundary).
  void SetActivationAt(int i, Batch batch);
  /// Overwrites the cached delta of layer i.
  void SetDeltaAt(int i, Batch batch);
  /// dL/d(network input) after a BackwardRange that reached layer 0
  /// (used by gradient-based input reconstruction, attack/inversion.hpp).
  [[nodiscard]] const Batch& InputDelta() const noexcept {
    return default_ws_.input_delta;
  }

  // --- convenience ----------------------------------------------------
  /// One deterministic data-parallel SGD step on a labeled batch (full
  /// stack, single profile): fixed-size shards, per-shard workspaces
  /// and RNG streams, fixed-order gradient reduction.  Bit-identical at
  /// any thread count.  Returns the mean cross-entropy loss.
  float TrainStep(const Batch& input, const std::vector<int>& labels,
                  const SgdConfig& config, Rng& rng,
                  KernelProfile profile = KernelProfile::kFast);

  /// Frees the per-shard TrainStep workspaces (activation/delta/grad
  /// buffers sized for the largest batch seen).  Call when training is
  /// finished and the network will only serve inference.
  void ReleaseTrainingWorkspaces() noexcept;

  /// Class probabilities for a batch (eval mode).
  [[nodiscard]] std::vector<std::vector<float>> Predict(
      const Batch& input, KernelProfile profile = KernelProfile::kFast);

  /// Probabilities for a single image.
  [[nodiscard]] std::vector<float> PredictOne(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Raw (unnormalized) penultimate-layer embedding for one image.
  [[nodiscard]] std::vector<float> EmbeddingOf(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Raw embedding taken at an arbitrary layer's output.
  [[nodiscard]] std::vector<float> EmbeddingAtLayer(
      const Image& image, int layer,
      KernelProfile profile = KernelProfile::kFast);

  /// Thread-safe embedding extraction: const forward into an explicit
  /// workspace (the replica-free fingerprint stage runs many workers
  /// against one shared network this way).
  [[nodiscard]] std::vector<float> EmbeddingAtLayer(
      const Image& image, int layer, KernelProfile profile,
      LayerWorkspace& ws) const;

  /// Activations of every layer for one image (the IRs of Sec. IV-B's
  /// assessment framework).  Entry i is the output of layer i.
  [[nodiscard]] std::vector<std::vector<float>> AllActivations(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Mean cross-entropy loss recorded by the cost layer on the most
  /// recent labeled forward pass through the default workspace.
  [[nodiscard]] float LastLoss() const;

  /// Same, read from an explicit workspace.
  [[nodiscard]] float LossOf(const LayerWorkspace& ws) const;

  /// Index of the cost layer, or -1.
  [[nodiscard]] int CostIndex() const noexcept;

  // --- persistence -----------------------------------------------------
  /// Serializes spec + all weights.
  [[nodiscard]] Bytes SerializeModel() const;
  [[nodiscard]] static Network DeserializeModel(BytesView blob);

  /// Serializes the weights of layers [from, to) only (used to release
  /// the encrypted FrontNet separately, Sec. IV-B).
  [[nodiscard]] Bytes SerializeWeightRange(int from, int to) const;
  void DeserializeWeightRange(int from, int to, BytesView blob);

  /// Human-readable architecture table (mirrors the paper's Tables I/II).
  [[nodiscard]] std::string ArchitectureTable() const;

  /// Per-sample forward FLOPs of layers [from, to).
  [[nodiscard]] std::uint64_t FlopsPerSample(int from, int to) const;

  /// Total parameter bytes of layers [from, to).
  [[nodiscard]] std::size_t WeightBytes(int from, int to) const;

 private:
  void CheckRange(int from, int to) const;

  NetworkSpec spec_;
  std::vector<LayerPtr> layers_;
  /// Workspace behind the legacy single-threaded convenience API.
  LayerWorkspace default_ws_;
  /// Per-shard workspaces reused across TrainStep calls.
  std::vector<std::unique_ptr<LayerWorkspace>> shard_ws_;
};

/// Builds a Network from a spec and throws if the spec is malformed
/// (e.g. cost without softmax directly before it).
[[nodiscard]] Network BuildNetwork(const NetworkSpec& spec, Rng& rng);

}  // namespace caltrain::nn
