// Network: a straight-line stack of layers built from a declarative
// NetworkSpec.
//
// Execution is exposed as *ranges* of layer indices — ForwardRange /
// BackwardRange / UpdateRange — because CalTrain's partitioned training
// (paper Sec. IV-B) runs the FrontNet range inside the enclave and the
// BackNet range outside, shuttling intermediate representations and
// deltas across the boundary.  The convenience Train/Predict helpers
// run the whole stack.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace caltrain::nn {

/// Declarative description of one layer.
struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  int filters = 0;        ///< conv
  int ksize = 0;          ///< conv / maxpool
  int stride = 0;         ///< conv / maxpool
  Activation activation = Activation::kLeakyRelu;  ///< conv / connected
  float dropout_p = 0.0F; ///< dropout
  int outputs = 0;        ///< connected
};

/// Declarative description of a whole network.
struct NetworkSpec {
  Shape input;
  std::vector<LayerSpec> layers;

  void Serialize(ByteWriter& writer) const;
  [[nodiscard]] static NetworkSpec Deserialize(ByteReader& reader);
};

class Network {
 public:
  explicit Network(const NetworkSpec& spec);

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Gaussian-initializes every weighted layer.
  void InitWeights(Rng& rng);

  [[nodiscard]] int NumLayers() const noexcept {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] const Layer& layer(int i) const { return *layers_.at(i); }
  [[nodiscard]] Layer& layer(int i) { return *layers_.at(i); }
  [[nodiscard]] Shape input_shape() const noexcept { return spec_.input; }
  [[nodiscard]] const NetworkSpec& spec() const noexcept { return spec_; }

  /// Number of classes = channel count of the softmax layer.
  [[nodiscard]] int NumClasses() const;

  /// Index of the layer whose output is the fingerprint embedding: the
  /// last layer before softmax (the "penultimate layer" of Sec. IV-C).
  [[nodiscard]] int PenultimateIndex() const;

  /// Index of the first softmax layer, or -1.
  [[nodiscard]] int SoftmaxIndex() const noexcept;

  // --- range execution ------------------------------------------------
  /// Runs layers [from, to).  `input` must be provided when from == 0
  /// and is ignored otherwise (the stored activation of layer from-1 is
  /// used).  Activations are cached for Backward.
  void ForwardRange(const Batch* input, int from, int to,
                    const LayerContext& ctx);

  /// Runs layers [from, to) backwards (i.e. to-1 down to from).  The
  /// forward pass for the same batch must have happened already.
  void BackwardRange(int from, int to, const LayerContext& ctx);

  /// Applies accumulated gradients for layers [from, to).
  void UpdateRange(int from, int to, const SgdConfig& config, int batch_size);

  /// Output activation of layer i for the current batch.
  [[nodiscard]] const Batch& ActivationAt(int i) const;
  /// dL/d(output of layer i) for the current batch.
  [[nodiscard]] const Batch& DeltaAt(int i) const;
  /// Overwrites the cached activation of layer i (used when IRs re-enter
  /// across the enclave boundary).
  void SetActivationAt(int i, Batch batch);
  /// Overwrites the cached delta of layer i.
  void SetDeltaAt(int i, Batch batch);
  /// dL/d(network input) after a BackwardRange that reached layer 0
  /// (used by gradient-based input reconstruction, attack/inversion.hpp).
  [[nodiscard]] const Batch& InputDelta() const noexcept {
    return input_delta_;
  }

  // --- convenience ----------------------------------------------------
  /// One SGD step on a labeled batch (full stack, single profile).
  /// Returns the mean cross-entropy loss.
  float TrainStep(const Batch& input, const std::vector<int>& labels,
                  const SgdConfig& config, Rng& rng,
                  KernelProfile profile = KernelProfile::kFast);

  /// Class probabilities for a batch (eval mode).
  [[nodiscard]] std::vector<std::vector<float>> Predict(
      const Batch& input, KernelProfile profile = KernelProfile::kFast);

  /// Probabilities for a single image.
  [[nodiscard]] std::vector<float> PredictOne(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Raw (unnormalized) penultimate-layer embedding for one image.
  [[nodiscard]] std::vector<float> EmbeddingOf(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Raw embedding taken at an arbitrary layer's output.
  [[nodiscard]] std::vector<float> EmbeddingAtLayer(
      const Image& image, int layer,
      KernelProfile profile = KernelProfile::kFast);

  /// Activations of every layer for one image (the IRs of Sec. IV-B's
  /// assessment framework).  Entry i is the output of layer i.
  [[nodiscard]] std::vector<std::vector<float>> AllActivations(
      const Image& image, KernelProfile profile = KernelProfile::kFast);

  /// Mean cross-entropy loss recorded by the cost layer on the most
  /// recent labeled forward pass.
  [[nodiscard]] float LastLoss() const;

  // --- persistence -----------------------------------------------------
  /// Serializes spec + all weights.
  [[nodiscard]] Bytes SerializeModel() const;
  [[nodiscard]] static Network DeserializeModel(BytesView blob);

  /// Serializes the weights of layers [from, to) only (used to release
  /// the encrypted FrontNet separately, Sec. IV-B).
  [[nodiscard]] Bytes SerializeWeightRange(int from, int to) const;
  void DeserializeWeightRange(int from, int to, BytesView blob);

  /// Human-readable architecture table (mirrors the paper's Tables I/II).
  [[nodiscard]] std::string ArchitectureTable() const;

  /// Per-sample forward FLOPs of layers [from, to).
  [[nodiscard]] std::uint64_t FlopsPerSample(int from, int to) const;

  /// Total parameter bytes of layers [from, to).
  [[nodiscard]] std::size_t WeightBytes(int from, int to) const;

 private:
  void CheckRange(int from, int to) const;

  NetworkSpec spec_;
  std::vector<LayerPtr> layers_;
  Batch input_;                  ///< copy of the current batch input
  std::vector<Batch> activations_;
  std::vector<Batch> deltas_;
  Batch input_delta_;
  int current_batch_ = 0;
};

/// Builds a Network from a spec and throws if the spec is malformed
/// (e.g. cost without softmax directly before it).
[[nodiscard]] Network BuildNetwork(const NetworkSpec& spec, Rng& rng);

}  // namespace caltrain::nn
