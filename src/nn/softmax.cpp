#include "nn/softmax.hpp"

#include <cmath>

#include "util/mathx.hpp"

namespace caltrain::nn {

SoftmaxLayer::SoftmaxLayer(Shape in) : Layer(in, in) {
  CALTRAIN_REQUIRE(in.w == 1 && in.h == 1,
                   "softmax expects a 1x1xC input (use avg/connected first)");
}

std::string SoftmaxLayer::Describe() const {
  return "softmax " + std::to_string(in_shape_.c);
}

void SoftmaxLayer::Forward(const Batch& in, Batch& out,
                           const LayerContext& /*ctx*/) const {
  const std::size_t classes = static_cast<std::size_t>(in_shape_.c);
  for (int s = 0; s < in.n; ++s) {
    const auto probs =
        Softmax(std::span<const float>(in.Sample(s), classes));
    std::copy(probs.begin(), probs.end(), out.Sample(s));
  }
}

void SoftmaxLayer::Backward(const Batch& /*in*/, const Batch& /*out*/,
                            const Batch& delta_out, Batch& delta_in,
                            const LayerContext& /*ctx*/) const {
  // Combined with the cross-entropy cost layer (see header), the delta
  // arriving here is already d(loss)/d(logits); pass through.
  delta_in.data = delta_out.data;
}

CostLayer::CostLayer(Shape in) : Layer(in, in) {}

std::string CostLayer::Describe() const {
  return "cost " + std::to_string(in_shape_.c);
}

void CostLayer::Forward(const Batch& in, Batch& out,
                        const LayerContext& ctx) const {
  out.data = in.data;
  if (ctx.labels == nullptr) return;
  CALTRAIN_REQUIRE(static_cast<int>(ctx.labels->size()) == in.n,
                   "label count != batch size");
  CALTRAIN_CHECK(ctx.scratch != nullptr,
                 "labeled cost forward needs workspace scratch");
  LayerScratch& scratch = *ctx.scratch;
  scratch.labels = *ctx.labels;
  scratch.sample_losses.resize(static_cast<std::size_t>(in.n));
  const std::size_t classes = static_cast<std::size_t>(in_shape_.c);
  double loss = 0.0;
  for (int s = 0; s < in.n; ++s) {
    const int label = (*ctx.labels)[static_cast<std::size_t>(s)];
    CALTRAIN_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < classes,
                     "label out of range");
    const float p = in.Sample(s)[label];
    const double sample_loss = -std::log(std::max(p, 1e-12F));
    scratch.sample_losses[static_cast<std::size_t>(s)] = sample_loss;
    loss += sample_loss;
  }
  scratch.loss = static_cast<float>(loss / in.n);
}

void CostLayer::Backward(const Batch& in, const Batch& /*out*/,
                         const Batch& /*delta_out*/, Batch& delta_in,
                         const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr &&
                     static_cast<int>(ctx.scratch->labels.size()) == in.n,
                 "cost backward without a labeled forward pass");
  delta_in.data = in.data;  // probabilities
  for (int s = 0; s < in.n; ++s) {
    delta_in.Sample(s)[ctx.scratch->labels[static_cast<std::size_t>(s)]] -=
        1.0F;
  }
}

}  // namespace caltrain::nn
