// Data augmentation (paper Sec. IV-A): random rotation, flipping, and
// distortion, applied inside the training enclave after decryption.
// The randomness source is a caltrain::Rng; the enclave feeds it from
// the simulated on-chip DRBG.
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace caltrain::nn {

struct AugmentOptions {
  bool flip = true;              ///< horizontal mirror with probability 1/2
  float max_rotation_deg = 10.0F;  ///< uniform in [-max, max]
  int max_translate_px = 2;      ///< uniform shift in both axes
  float max_brightness = 0.1F;   ///< additive jitter
  float max_contrast = 0.1F;     ///< multiplicative jitter around 1.0
};

/// Returns an augmented copy of `image`.
[[nodiscard]] Image Augment(const Image& image, const AugmentOptions& options,
                            Rng& rng);

/// Horizontal mirror.
[[nodiscard]] Image FlipHorizontal(const Image& image);

/// Rotation about the image center by `degrees` with bilinear sampling;
/// out-of-range samples are zero.
[[nodiscard]] Image Rotate(const Image& image, float degrees);

/// Integer translation; vacated pixels are zero.
[[nodiscard]] Image Translate(const Image& image, int dx, int dy);

/// pixel' = clamp((pixel - 0.5) * contrast + 0.5 + brightness, 0, 1).
[[nodiscard]] Image AdjustBrightnessContrast(const Image& image,
                                             float brightness, float contrast);

}  // namespace caltrain::nn
