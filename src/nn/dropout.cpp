#include "nn/dropout.hpp"

namespace caltrain::nn {

DropoutLayer::DropoutLayer(Shape in, float probability)
    : Layer(in, in), probability_(probability) {
  CALTRAIN_REQUIRE(probability >= 0.0F && probability < 1.0F,
                   "dropout probability must be in [0, 1)");
}

std::string DropoutLayer::Describe() const {
  return "dropout p=" + std::to_string(probability_) + " " +
         std::to_string(in_shape_.Flat());
}

void DropoutLayer::Forward(const Batch& in, Batch& out,
                           const LayerContext& ctx) const {
  if (!ctx.training || probability_ == 0.0F) {
    out.data = in.data;
    return;
  }
  CALTRAIN_CHECK(ctx.rng != nullptr, "dropout requires an RNG when training");
  CALTRAIN_CHECK(ctx.scratch != nullptr,
                 "dropout requires workspace scratch when training");
  const float keep = 1.0F - probability_;
  const float scale = 1.0F / keep;
  std::vector<std::uint8_t>& mask = ctx.scratch->mask;
  mask.assign(in.data.size(), 0);
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    if (ctx.rng->UniformFloat() < keep) {
      mask[i] = 1;
      out.data[i] = in.data[i] * scale;
    } else {
      out.data[i] = 0.0F;
    }
  }
}

void DropoutLayer::Backward(const Batch& /*in*/, const Batch& /*out*/,
                            const Batch& delta_out, Batch& delta_in,
                            const LayerContext& ctx) const {
  if (!ctx.training || probability_ == 0.0F) {
    delta_in.data = delta_out.data;
    return;
  }
  CALTRAIN_CHECK(ctx.scratch != nullptr &&
                     ctx.scratch->mask.size() == delta_out.data.size(),
                 "dropout backward without a matching forward mask");
  const std::vector<std::uint8_t>& mask = ctx.scratch->mask;
  const float scale = 1.0F / (1.0F - probability_);
  for (std::size_t i = 0; i < delta_out.data.size(); ++i) {
    delta_in.data[i] = mask[i] ? delta_out.data[i] * scale : 0.0F;
  }
}

}  // namespace caltrain::nn
