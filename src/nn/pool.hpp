// Max pooling (windowed) and average pooling (global, as the Tables I/II
// "avg" layer that collapses 7x7xC to C).
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

/// Winner indices from the forward pass live in LayerScratch::argmax.
class MaxPoolLayer final : public Layer {
 public:
  MaxPoolLayer(Shape in, int ksize, int stride);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kMaxPool;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;

 private:
  int ksize_;
  int stride_;
};

/// Global average pooling: WxHxC -> 1x1xC.
class AvgPoolLayer final : public Layer {
 public:
  explicit AvgPoolLayer(Shape in);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kAvgPool;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
};

}  // namespace caltrain::nn
