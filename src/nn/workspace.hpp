// Externalized per-pass state for stateless layer execution.
//
// Layers are immutable during Forward/Backward (both are const on the
// layer): every piece of per-pass scratch — dropout keep masks, im2col
// buffers, pooling argmax indices, cost-layer bookkeeping — lives in a
// LayerScratch slot, and every accumulated weight gradient lives in a
// GradientAccumulator, both owned by a LayerWorkspace *outside* the
// network.  A const Network plus one LayerWorkspace per worker is
// therefore safely shareable across threads; this is the basis of the
// data-parallel TrainBatch (core/partitioned.hpp) and the replica-free
// fingerprint stage (linkage/fingerprint.hpp).
//
// Determinism: MakeTrainShards decomposes a mini-batch into
// fixed-size shards *independent of the thread count* and draws one
// RNG seed per shard in shard order.  Workers process whole shards,
// and gradients are reduced in shard order, so a data-parallel
// training step is bit-identical at any thread count (same contract as
// the row-blocked parallel GEMM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace caltrain::nn {

class Network;

/// Per-layer weight-gradient buffers.  Weight-free layers keep both
/// vectors empty; weighted layers size them lazily on first use.
struct LayerGrads {
  std::vector<float> weight_grads;
  std::vector<float> bias_grads;

  /// Sizes (zero-filled) the buffers if they are not already sized.
  void EnsureSized(std::size_t weight_count, std::size_t bias_count);
  /// Zero-fills without releasing storage.
  void Zero() noexcept;
  /// Element-wise `this += other`.  An empty `other` is a no-op; an
  /// empty `this` becomes a copy of `other`.
  void Add(const LayerGrads& other);
  [[nodiscard]] std::size_t TotalBytes() const noexcept;
};

/// Per-worker weight gradients for a whole network, indexed by layer.
class GradientAccumulator {
 public:
  GradientAccumulator() = default;
  explicit GradientAccumulator(const Network& net);

  void Reset(const Network& net);
  [[nodiscard]] LayerGrads& at(int layer);
  [[nodiscard]] const LayerGrads& at(int layer) const;
  [[nodiscard]] int NumLayers() const noexcept {
    return static_cast<int>(layers_.size());
  }
  void Zero() noexcept;
  /// Fixed-order reduction step: `this += other`, layer by layer.
  void Add(const GradientAccumulator& other);
  [[nodiscard]] std::size_t TotalBytes() const noexcept;

 private:
  std::vector<LayerGrads> layers_;
};

/// Per-pass mutable scratch of one layer.  Which fields a layer uses
/// is the layer's business; unused fields stay empty.  Conv layers
/// size their three float buffers for a whole lowering block (up to
/// kConvBatchBlock samples side by side) via Layer::SizeScratch —
/// sized once per batch shape, never zero-filled (every element is
/// overwritten before it is read).
struct LayerScratch {
  std::vector<float> col;            ///< conv: wide im2col [k x block*n]
  std::vector<float> delta;          ///< conv: wide act-grad [m x block*n];
                                     ///< connected: activation-grad copy
  std::vector<float> col_delta;      ///< conv: wide input grad [k x block*n]
  int col_samples = 0;               ///< conv: samples `col` currently holds
                                     ///< (when the whole batch fit one
                                     ///< block); lets Backward reuse the
                                     ///< forward lowering instead of
                                     ///< re-running im2col
  std::vector<std::uint8_t> mask;    ///< dropout: 1 = kept
  std::vector<std::int32_t> argmax;  ///< maxpool: winner index per output
  float loss = 0.0F;                 ///< cost: mean loss of the last forward
  std::vector<int> labels;           ///< cost: labels of the last forward
  std::vector<double> sample_losses; ///< cost: per-sample -log p, in order

  [[nodiscard]] std::size_t TotalBytes() const noexcept;
};

/// Everything mutable a forward/backward pass needs: the input copy,
/// per-layer activations and deltas, per-layer scratch, and the
/// gradient accumulator.  Reusable across batches; one per worker.
class LayerWorkspace {
 public:
  LayerWorkspace() = default;
  explicit LayerWorkspace(const Network& net);

  /// (Re)sizes the per-layer slots for `net`.  Buffers are allocated
  /// lazily by the layers themselves on first use.
  void Reset(const Network& net);

  Batch input;                    ///< copy of the current batch input
  std::vector<Batch> activations; ///< output of layer i
  std::vector<Batch> deltas;      ///< dL/d(output of layer i)
  Batch input_delta;              ///< dL/d(network input)
  int batch = 0;                  ///< current batch size
  std::vector<LayerScratch> scratch;
  GradientAccumulator grads;

  [[nodiscard]] std::size_t TotalBytes() const noexcept;
};

/// Copies samples [begin, end) of `src` into `dst` (resizing it).
void SliceBatch(const Batch& src, int begin, int end, Batch& dst);

/// One unit of the deterministic data-parallel training step: a
/// contiguous sample range plus the seed of its private RNG stream.
struct TrainShard {
  int begin = 0;
  int end = 0;
  std::uint64_t rng_seed = 0;
};

/// Samples per shard.  Fixed (never derived from the thread count) so
/// the shard decomposition — and therefore every float grouping in the
/// gradient reduction — is identical at any thread count.  Kept at 4
/// (below nn::kConvBatchBlock) so a batch of 32 still fans out to 8
/// workers while each shard's conv layers lower all of its samples in
/// a single wide im2col + batched-GEMM block.
inline constexpr int kTrainShardSamples = 4;

/// Decomposes a batch of `batch_n` samples into fixed-size shards and
/// draws one seed per shard (in shard order) from `rng`.
[[nodiscard]] std::vector<TrainShard> MakeTrainShards(int batch_n, Rng& rng);

/// Grows `workspaces` to `count` entries sized for `net`.
void EnsureShardWorkspaces(
    const Network& net,
    std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count);

/// Fixed-order gradient reduction over the first `count` workspaces:
/// accumulates workspaces[1..count) into workspaces[0]'s accumulator
/// in shard order (never thread order) and zeroes the sources.
/// Returns the reduced accumulator.
GradientAccumulator& ReduceShardGrads(
    std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count);

/// Mean loss over the first `count` workspaces' cost-layer scratch
/// (`cost_layer` indexes the slot): per-sample losses summed in sample
/// order, so the result is independent of the shard grouping.
[[nodiscard]] float SumShardLosses(
    const std::vector<std::unique_ptr<LayerWorkspace>>& workspaces,
    std::size_t count, int cost_layer, int batch_n);

}  // namespace caltrain::nn
