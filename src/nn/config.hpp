// Darknet-style textual network configuration.
//
// The paper's prototype is built on Darknet, whose models are described
// by INI-like .cfg files.  This parser accepts the same dialect for the
// layer types CalTrain uses, so the Table I/II architectures (and user
// models) can be expressed as data rather than code:
//
//   [net]
//   width=28
//   height=28
//   channels=3
//
//   [convolutional]
//   filters=128
//   size=3
//   stride=1
//   activation=leaky
//
//   [maxpool]
//   size=2
//   stride=2
//
//   [dropout]
//   probability=.5
//
//   [avgpool]
//   [softmax]
//   [cost]
//
// Comments start with '#' or ';'.  Unknown sections or keys are errors
// (a config the trainer silently half-understands is worse than one it
// rejects).
#pragma once

#include <string>
#include <string_view>

#include "nn/network.hpp"

namespace caltrain::nn {

/// Parses a Darknet-style config into a NetworkSpec; throws
/// Error(kInvalidArgument) with a line-numbered message on any problem.
[[nodiscard]] NetworkSpec ParseNetworkConfig(std::string_view text);

/// Renders a NetworkSpec back to config text (round-trips through
/// ParseNetworkConfig).
[[nodiscard]] std::string WriteNetworkConfig(const NetworkSpec& spec);

}  // namespace caltrain::nn
