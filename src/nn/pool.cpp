#include "nn/pool.hpp"

#include <limits>

namespace caltrain::nn {

MaxPoolLayer::MaxPoolLayer(Shape in, int ksize, int stride)
    : Layer(in, Shape{(in.w + stride - 1) / stride,
                      (in.h + stride - 1) / stride, in.c}),
      ksize_(ksize),
      stride_(stride) {
  CALTRAIN_REQUIRE(ksize > 0 && stride > 0, "invalid maxpool parameters");
}

std::string MaxPoolLayer::Describe() const {
  return "max " + std::to_string(ksize_) + "x" + std::to_string(ksize_) + "/" +
         std::to_string(stride_) + " " + in_shape_.ToString() + " -> " +
         out_shape_.ToString();
}

void MaxPoolLayer::Forward(const Batch& in, Batch& out,
                           const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr,
                 "maxpool forward needs workspace scratch");
  const std::size_t out_plane =
      static_cast<std::size_t>(out_shape_.w) * out_shape_.h;
  std::vector<std::int32_t>& argmax = ctx.scratch->argmax;
  argmax.assign(static_cast<std::size_t>(in.n) * out_shape_.Flat(), 0);

  for (int s = 0; s < in.n; ++s) {
    const float* src = in.Sample(s);
    float* dst = out.Sample(s);
    std::int32_t* winners =
        argmax.data() + static_cast<std::size_t>(s) * out_shape_.Flat();
    for (int c = 0; c < in_shape_.c; ++c) {
      const float* plane =
          src + static_cast<std::size_t>(c) * in_shape_.h * in_shape_.w;
      for (int oy = 0; oy < out_shape_.h; ++oy) {
        for (int ox = 0; ox < out_shape_.w; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int32_t best_idx = 0;
          for (int ky = 0; ky < ksize_; ++ky) {
            const int iy = oy * stride_ + ky;
            if (iy >= in_shape_.h) continue;
            for (int kx = 0; kx < ksize_; ++kx) {
              const int ix = ox * stride_ + kx;
              if (ix >= in_shape_.w) continue;
              const std::int32_t idx = iy * in_shape_.w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx =
              static_cast<std::size_t>(c) * out_plane + oy * out_shape_.w + ox;
          dst[out_idx] = best;
          winners[out_idx] = best_idx;
        }
      }
    }
  }
}

void MaxPoolLayer::Backward(const Batch& in, const Batch& /*out*/,
                            const Batch& delta_out, Batch& delta_in,
                            const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr &&
                     ctx.scratch->argmax.size() ==
                         static_cast<std::size_t>(in.n) * out_shape_.Flat(),
                 "maxpool backward without a matching forward argmax");
  delta_in.Zero();
  const std::size_t in_plane =
      static_cast<std::size_t>(in_shape_.w) * in_shape_.h;
  const std::size_t out_plane =
      static_cast<std::size_t>(out_shape_.w) * out_shape_.h;
  for (int s = 0; s < in.n; ++s) {
    const float* d_out = delta_out.Sample(s);
    float* d_in = delta_in.Sample(s);
    const std::int32_t* winners =
        ctx.scratch->argmax.data() +
        static_cast<std::size_t>(s) * out_shape_.Flat();
    for (int c = 0; c < in_shape_.c; ++c) {
      float* d_in_plane = d_in + static_cast<std::size_t>(c) * in_plane;
      const std::size_t base = static_cast<std::size_t>(c) * out_plane;
      for (std::size_t j = 0; j < out_plane; ++j) {
        d_in_plane[winners[base + j]] += d_out[base + j];
      }
    }
  }
}

AvgPoolLayer::AvgPoolLayer(Shape in) : Layer(in, Shape{1, 1, in.c}) {}

std::string AvgPoolLayer::Describe() const {
  return "avg " + in_shape_.ToString() + " -> " + out_shape_.ToString();
}

void AvgPoolLayer::Forward(const Batch& in, Batch& out,
                           const LayerContext& /*ctx*/) const {
  const std::size_t plane =
      static_cast<std::size_t>(in_shape_.w) * in_shape_.h;
  for (int s = 0; s < in.n; ++s) {
    const float* src = in.Sample(s);
    float* dst = out.Sample(s);
    for (int c = 0; c < in_shape_.c; ++c) {
      const float* p = src + static_cast<std::size_t>(c) * plane;
      float acc = 0.0F;
      for (std::size_t j = 0; j < plane; ++j) acc += p[j];
      dst[c] = acc / static_cast<float>(plane);
    }
  }
}

void AvgPoolLayer::Backward(const Batch& in, const Batch& /*out*/,
                            const Batch& delta_out, Batch& delta_in,
                            const LayerContext& /*ctx*/) const {
  const std::size_t plane =
      static_cast<std::size_t>(in_shape_.w) * in_shape_.h;
  const float inv = 1.0F / static_cast<float>(plane);
  for (int s = 0; s < in.n; ++s) {
    const float* d_out = delta_out.Sample(s);
    float* d_in = delta_in.Sample(s);
    for (int c = 0; c < in_shape_.c; ++c) {
      float* p = d_in + static_cast<std::size_t>(c) * plane;
      const float g = d_out[c] * inv;
      for (std::size_t j = 0; j < plane; ++j) p[j] = g;
    }
  }
}

}  // namespace caltrain::nn
