#include "nn/connected.hpp"

#include <cmath>

namespace caltrain::nn {

namespace {
constexpr float kLeakySlope = 0.1F;
}

ConnectedLayer::ConnectedLayer(Shape in, int outputs, Activation activation)
    : Layer(in, Shape{1, 1, outputs}),
      inputs_(static_cast<int>(in.Flat())),
      outputs_(outputs),
      activation_(activation) {
  CALTRAIN_REQUIRE(outputs > 0, "connected layer needs outputs > 0");
  const std::size_t count =
      static_cast<std::size_t>(inputs_) * static_cast<std::size_t>(outputs_);
  weights_.assign(count, 0.0F);
  biases_.assign(static_cast<std::size_t>(outputs_), 0.0F);
  weight_momentum_.assign(count, 0.0F);
  bias_momentum_.assign(static_cast<std::size_t>(outputs_), 0.0F);
}

std::string ConnectedLayer::Describe() const {
  return "connected " + std::to_string(inputs_) + " -> " +
         std::to_string(outputs_);
}

void ConnectedLayer::Forward(const Batch& in, Batch& out,
                             const LayerContext& ctx) const {
  const std::size_t m = static_cast<std::size_t>(out.n);
  const std::size_t n = static_cast<std::size_t>(outputs_);
  const std::size_t k = static_cast<std::size_t>(inputs_);
  // out[m x n] = leaky(in[m x k] * W^T + bias) (W stored [n x k]); the
  // bias broadcast and activation live in the GEMM epilogue.
  GemmEpilogue epi;
  epi.accumulate = false;
  epi.col_bias = biases_.data();
  epi.negative_slope =
      activation_ == Activation::kLeakyRelu ? kLeakySlope : 1.0F;
  GemmTransBEx(ctx.profile, m, n, k, in.data.data(), weights_.data(),
               out.data.data(), epi);
}

void ConnectedLayer::Backward(const Batch& in, const Batch& out,
                              const Batch& delta_out, Batch& delta_in,
                              const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr && ctx.grads != nullptr,
                 "connected backward needs workspace scratch and gradients");
  const std::size_t m = static_cast<std::size_t>(in.n);
  const std::size_t n = static_cast<std::size_t>(outputs_);
  const std::size_t k = static_cast<std::size_t>(inputs_);

  std::vector<float>& delta = ctx.scratch->delta;
  delta = delta_out.data;
  if (activation_ == Activation::kLeakyRelu) {
    for (std::size_t i = 0; i < delta.size(); ++i) {
      if (out.data[i] < 0.0F) delta[i] *= kLeakySlope;
    }
  }

  LayerGrads& grads = *ctx.grads;
  grads.EnsureSized(weights_.size(), biases_.size());

  // Bias gradients.
  for (std::size_t s = 0; s < m; ++s) {
    const float* row = delta.data() + s * n;
    for (std::size_t j = 0; j < n; ++j) grads.bias_grads[j] += row[j];
  }

  // Weight gradients: dW[n x k] += delta^T[n x m] * in[m x k].
  GemmTransA(ctx.profile, n, k, m, delta.data(), in.data.data(),
             grads.weight_grads.data());

  // Input gradients: d_in[m x k] = delta[m x n] * W[n x k], overwrite
  // mode (no zero fill); skipped when nothing consumes them.
  if (ctx.want_input_grad) {
    GemmEpilogue overwrite;
    overwrite.accumulate = false;
    GemmEx(ctx.profile, m, k, n, delta.data(), weights_.data(),
           delta_in.data.data(), overwrite);
  }
}

void ConnectedLayer::Update(const SgdConfig& config, int batch_size,
                            LayerGrads& grads) {
  grads.EnsureSized(weights_.size(), biases_.size());
  detail::ApplyDpSanitization(config, grads.weight_grads, grads.bias_grads);
  const float scale = config.learning_rate / static_cast<float>(batch_size);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weight_momentum_[i] = config.momentum * weight_momentum_[i] -
                          scale * grads.weight_grads[i] -
                          config.learning_rate * config.weight_decay *
                              weights_[i];
    weights_[i] += weight_momentum_[i];
    grads.weight_grads[i] = 0.0F;
  }
  for (std::size_t i = 0; i < biases_.size(); ++i) {
    bias_momentum_[i] =
        config.momentum * bias_momentum_[i] - scale * grads.bias_grads[i];
    biases_[i] += bias_momentum_[i];
    grads.bias_grads[i] = 0.0F;
  }
}

void ConnectedLayer::InitWeights(Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(inputs_));
  for (float& w : weights_) w = rng.Gaussian(0.0F, stddev);
  std::fill(biases_.begin(), biases_.end(), 0.0F);
}

void ConnectedLayer::SerializeWeights(ByteWriter& writer) const {
  writer.WriteF32Vector(weights_);
  writer.WriteF32Vector(biases_);
}

void ConnectedLayer::DeserializeWeights(ByteReader& reader) {
  std::vector<float> w = reader.ReadF32Vector();
  std::vector<float> b = reader.ReadF32Vector();
  CALTRAIN_REQUIRE(w.size() == weights_.size() && b.size() == biases_.size(),
                   "connected weight blob shape mismatch");
  weights_ = std::move(w);
  biases_ = std::move(b);
}

std::uint64_t ConnectedLayer::ForwardFlopsPerSample() const noexcept {
  return 2ULL * static_cast<std::uint64_t>(inputs_) *
         static_cast<std::uint64_t>(outputs_);
}

std::size_t ConnectedLayer::WeightBytes() const noexcept {
  return (weights_.size() + biases_.size()) * sizeof(float);
}

}  // namespace caltrain::nn
