// Inverted dropout (Table II uses p = 0.5 between conv blocks).
// Randomness comes from the LayerContext Rng — inside the training
// enclave that stream is fed by the simulated on-chip DRBG.
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

class DropoutLayer final : public Layer {
 public:
  DropoutLayer(Shape in, float probability);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kDropout;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;

  [[nodiscard]] float probability() const noexcept { return probability_; }

 private:
  float probability_;  ///< the keep mask lives in LayerScratch::mask
};

}  // namespace caltrain::nn
