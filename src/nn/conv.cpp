#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>

namespace caltrain::nn {

namespace {
constexpr float kLeakySlope = 0.1F;

Shape ConvOutShape(Shape in, int filters, int ksize, int stride, int pad) {
  Shape out;
  out.w = (in.w + 2 * pad - ksize) / stride + 1;
  out.h = (in.h + 2 * pad - ksize) / stride + 1;
  out.c = filters;
  return out;
}
}  // namespace

ConvLayer::ConvLayer(Shape in, int filters, int ksize, int stride,
                     Activation activation)
    : Layer(in, ConvOutShape(in, filters, ksize, stride,
                             ksize == 1 ? 0 : ksize / 2)),
      filters_(filters),
      ksize_(ksize),
      stride_(stride),
      pad_(ksize == 1 ? 0 : ksize / 2),
      activation_(activation) {
  CALTRAIN_REQUIRE(filters > 0 && ksize > 0 && stride > 0,
                   "invalid conv parameters");
  const std::size_t weight_count = static_cast<std::size_t>(filters_) *
                                   in_shape_.c * ksize_ * ksize_;
  weights_.assign(weight_count, 0.0F);
  biases_.assign(static_cast<std::size_t>(filters_), 0.0F);
  weight_momentum_.assign(weight_count, 0.0F);
  bias_momentum_.assign(static_cast<std::size_t>(filters_), 0.0F);
}

std::string ConvLayer::Describe() const {
  return "conv " + std::to_string(filters_) + " " + std::to_string(ksize_) +
         "x" + std::to_string(ksize_) + "/" + std::to_string(stride_) + " " +
         in_shape_.ToString() + " -> " + out_shape_.ToString();
}

int ConvLayer::BlockSamples(int batch_n) noexcept {
  return std::min(batch_n, kConvBatchBlock);
}

float ConvLayer::EpilogueSlope() const noexcept {
  return activation_ == Activation::kLeakyRelu ? kLeakySlope : 1.0F;
}

void ConvLayer::SizeScratch(LayerScratch& scratch, int batch_n) const {
  // Sized once per batch shape from the network (no zero fill: every
  // element is overwritten by im2col / the activation-gradient copy /
  // the overwrite-mode GEMM before it is read).  Capacity is the Fast
  // block size; the Precise profile simply uses a 1-sample prefix.
  const std::size_t m = static_cast<std::size_t>(filters_);
  const std::size_t k =
      static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_;
  const std::size_t n = static_cast<std::size_t>(out_shape_.w) * out_shape_.h;
  const std::size_t bb =
      static_cast<std::size_t>(std::min(std::max(batch_n, 1),
                                        kConvBatchBlock));
  scratch.col.resize(k * n * bb);
  scratch.delta.resize(m * n * bb);
  scratch.col_delta.resize(k * n * bb);
}

void ConvLayer::Forward(const Batch& in, Batch& out,
                        const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr, "conv forward needs workspace scratch");
  const std::size_t m = static_cast<std::size_t>(filters_);
  const std::size_t k = static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_;
  const std::size_t n = static_cast<std::size_t>(out_shape_.w) * out_shape_.h;

  LayerScratch& scratch = *ctx.scratch;
  const int bb = BlockSamples(in.n);
  if (scratch.col.size() < k * n * static_cast<std::size_t>(bb)) {
    SizeScratch(scratch, in.n);
  }

  const float slope = EpilogueSlope();
  for (int s0 = 0; s0 < in.n; s0 += bb) {
    const int cur = std::min(bb, in.n - s0);
    Im2ColBatch(in.Sample(s0), in.SampleSize(), cur, in_shape_.c, in_shape_.h,
                in_shape_.w, ksize_, stride_, pad_, scratch.col.data());
    // One wide GEMM per block; bias and activation live in the store
    // epilogue (no separate init/activation passes).
    ConvGemmBatched(ctx.profile, m, n, k, cur, weights_.data(),
                    scratch.col.data(), biases_.data(), slope,
                    out.Sample(s0));
  }
  // A single-block batch leaves the whole lowering in `col`; Backward
  // on the same pass (the workspace contract) reuses it.
  scratch.col_samples = in.n <= bb ? in.n : 0;
}

void ConvLayer::Backward(const Batch& in, const Batch& out,
                         const Batch& delta_out, Batch& delta_in,
                         const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr && ctx.grads != nullptr,
                 "conv backward needs workspace scratch and gradients");
  const std::size_t m = static_cast<std::size_t>(filters_);
  const std::size_t k = static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_;
  const std::size_t n = static_cast<std::size_t>(out_shape_.w) * out_shape_.h;

  LayerScratch& scratch = *ctx.scratch;
  const int bb = BlockSamples(in.n);
  if (scratch.col.size() < k * n * static_cast<std::size_t>(bb) ||
      scratch.delta.size() < m * n * static_cast<std::size_t>(bb) ||
      scratch.col_delta.size() < k * n * static_cast<std::size_t>(bb)) {
    SizeScratch(scratch, in.n);
  }
  LayerGrads& grads = *ctx.grads;
  grads.EnsureSized(weights_.size(), biases_.size());

  const bool leaky = activation_ == Activation::kLeakyRelu;
  if (ctx.want_input_grad) delta_in.Zero();
  for (int s0 = 0; s0 < in.n; s0 += bb) {
    const int cur = std::min(bb, in.n - s0);
    const std::size_t wn = static_cast<std::size_t>(cur) * n;

    // Activation gradient, fused into the copy that lays delta out
    // wide: row f of delta_wide[m x cur*n] holds sample s0+si's filter
    // row at column offset si*n (matching the wide im2col layout).
    for (int si = 0; si < cur; ++si) {
      const float* d_out = delta_out.Sample(s0 + si);
      const float* o = out.Sample(s0 + si);
      for (std::size_t f = 0; f < m; ++f) {
        const float* src = d_out + f * n;
        const float* out_row = o + f * n;
        float* dst = scratch.delta.data() + f * wn +
                     static_cast<std::size_t>(si) * n;
        if (!leaky) {
          std::copy(src, src + n, dst);
        } else {
          // Leaky ReLU preserves sign, so the post-activation output
          // determines which branch was taken.
          for (std::size_t j = 0; j < n; ++j) {
            dst[j] = out_row[j] < 0.0F ? src[j] * kLeakySlope : src[j];
          }
        }
      }
    }

    // Bias gradients: per-sample row sums of delta_wide (sample order,
    // matching the seed's accumulation grouping on both profiles).
    for (int si = 0; si < cur; ++si) {
      for (std::size_t f = 0; f < m; ++f) {
        float acc = 0.0F;
        const float* row =
            scratch.delta.data() + f * wn + static_cast<std::size_t>(si) * n;
        for (std::size_t j = 0; j < n; ++j) acc += row[j];
        grads.bias_grads[f] += acc;
      }
    }

    // Column buffer: when the whole batch was lowered as one block in
    // Forward (training shards always are), `col` still holds exactly
    // this block's lowering — skip the im2col re-run.  The cache is
    // consume-once (reset below): a second Backward without a fresh
    // Forward re-lowers instead of trusting a stale buffer.
    if (scratch.col_samples != in.n || in.n > bb) {
      Im2ColBatch(in.Sample(s0), in.SampleSize(), cur, in_shape_.c,
                  in_shape_.h, in_shape_.w, ksize_, stride_, pad_,
                  scratch.col.data());
    }
    scratch.col_samples = 0;

    // Weight gradients (dW += delta_wide * col^T) and, when requested,
    // the column-space input gradient (col_delta = W^T * delta_wide,
    // overwrite mode — no zero fill).
    float* col_delta =
        ctx.want_input_grad ? scratch.col_delta.data() : nullptr;
    ConvGemmBackward(ctx.profile, m, n, k, cur, weights_.data(),
                     scratch.delta.data(), scratch.col.data(),
                     grads.weight_grads.data(), col_delta);
    if (col_delta != nullptr) {
      Col2ImBatch(col_delta, cur, in_shape_.c, in_shape_.h, in_shape_.w,
                  ksize_, stride_, pad_, delta_in.Sample(s0),
                  delta_in.SampleSize());
    }
  }
}

void ConvLayer::Update(const SgdConfig& config, int batch_size,
                       LayerGrads& grads) {
  grads.EnsureSized(weights_.size(), biases_.size());
  detail::ApplyDpSanitization(config, grads.weight_grads, grads.bias_grads);
  const float scale = config.learning_rate / static_cast<float>(batch_size);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weight_momentum_[i] = config.momentum * weight_momentum_[i] -
                          scale * grads.weight_grads[i] -
                          config.learning_rate * config.weight_decay *
                              weights_[i];
    weights_[i] += weight_momentum_[i];
    grads.weight_grads[i] = 0.0F;
  }
  for (std::size_t i = 0; i < biases_.size(); ++i) {
    bias_momentum_[i] =
        config.momentum * bias_momentum_[i] - scale * grads.bias_grads[i];
    biases_[i] += bias_momentum_[i];
    grads.bias_grads[i] = 0.0F;
  }
}

void ConvLayer::InitWeights(Rng& rng) {
  // Gaussian initialization scaled by fan-in (paper Sec. VI-A notes the
  // weights are sampled from a Gaussian distribution).
  const float fan_in =
      static_cast<float>(in_shape_.c) * static_cast<float>(ksize_ * ksize_);
  const float stddev = std::sqrt(2.0F / fan_in);
  for (float& w : weights_) w = rng.Gaussian(0.0F, stddev);
  std::fill(biases_.begin(), biases_.end(), 0.0F);
}

void ConvLayer::SerializeWeights(ByteWriter& writer) const {
  writer.WriteF32Vector(weights_);
  writer.WriteF32Vector(biases_);
}

void ConvLayer::DeserializeWeights(ByteReader& reader) {
  std::vector<float> w = reader.ReadF32Vector();
  std::vector<float> b = reader.ReadF32Vector();
  CALTRAIN_REQUIRE(w.size() == weights_.size() && b.size() == biases_.size(),
                   "conv weight blob shape mismatch");
  weights_ = std::move(w);
  biases_ = std::move(b);
}

std::uint64_t ConvLayer::ForwardFlopsPerSample() const noexcept {
  return 2ULL * static_cast<std::uint64_t>(filters_) * in_shape_.c * ksize_ *
         ksize_ * out_shape_.w * out_shape_.h;
}

std::size_t ConvLayer::WeightBytes() const noexcept {
  return (weights_.size() + biases_.size()) * sizeof(float);
}

}  // namespace caltrain::nn
