#include "nn/conv.hpp"

#include <cmath>

namespace caltrain::nn {

namespace {
constexpr float kLeakySlope = 0.1F;

Shape ConvOutShape(Shape in, int filters, int ksize, int stride, int pad) {
  Shape out;
  out.w = (in.w + 2 * pad - ksize) / stride + 1;
  out.h = (in.h + 2 * pad - ksize) / stride + 1;
  out.c = filters;
  return out;
}
}  // namespace

ConvLayer::ConvLayer(Shape in, int filters, int ksize, int stride,
                     Activation activation)
    : Layer(in, ConvOutShape(in, filters, ksize, stride,
                             ksize == 1 ? 0 : ksize / 2)),
      filters_(filters),
      ksize_(ksize),
      stride_(stride),
      pad_(ksize == 1 ? 0 : ksize / 2),
      activation_(activation) {
  CALTRAIN_REQUIRE(filters > 0 && ksize > 0 && stride > 0,
                   "invalid conv parameters");
  const std::size_t weight_count = static_cast<std::size_t>(filters_) *
                                   in_shape_.c * ksize_ * ksize_;
  weights_.assign(weight_count, 0.0F);
  biases_.assign(static_cast<std::size_t>(filters_), 0.0F);
  weight_momentum_.assign(weight_count, 0.0F);
  bias_momentum_.assign(static_cast<std::size_t>(filters_), 0.0F);
}

std::string ConvLayer::Describe() const {
  return "conv " + std::to_string(filters_) + " " + std::to_string(ksize_) +
         "x" + std::to_string(ksize_) + "/" + std::to_string(stride_) + " " +
         in_shape_.ToString() + " -> " + out_shape_.ToString();
}

std::size_t ConvLayer::ColSize() const noexcept {
  return static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_ *
         out_shape_.w * out_shape_.h;
}

void ConvLayer::ApplyActivation(float* data, std::size_t n) const noexcept {
  if (activation_ == Activation::kLinear) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] < 0.0F) data[i] *= kLeakySlope;
  }
}

void ConvLayer::ActivationGradient(const float* out, float* delta,
                                   std::size_t n) const noexcept {
  if (activation_ == Activation::kLinear) return;
  // Leaky ReLU preserves sign, so the post-activation output determines
  // which branch was taken.
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i] < 0.0F) delta[i] *= kLeakySlope;
  }
}

void ConvLayer::Forward(const Batch& in, Batch& out,
                        const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr, "conv forward needs workspace scratch");
  const std::size_t m = static_cast<std::size_t>(filters_);
  const std::size_t k = static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_;
  const std::size_t n = static_cast<std::size_t>(out_shape_.w) * out_shape_.h;

  std::vector<float>& col = ctx.scratch->col;
  if (col.size() != ColSize()) col.assign(ColSize(), 0.0F);

  for (int s = 0; s < in.n; ++s) {
    const float* src = in.Sample(s);
    float* dst = out.Sample(s);
    // Initialize output with biases.
    for (std::size_t f = 0; f < m; ++f) {
      const float b = biases_[f];
      float* row = dst + f * n;
      for (std::size_t j = 0; j < n; ++j) row[j] = b;
    }
    Im2Col(src, in_shape_.c, in_shape_.h, in_shape_.w, ksize_, stride_, pad_,
           col.data());
    Gemm(ctx.profile, m, n, k, weights_.data(), col.data(), dst);
    ApplyActivation(dst, m * n);
  }
}

void ConvLayer::Backward(const Batch& in, const Batch& out,
                         const Batch& delta_out, Batch& delta_in,
                         const LayerContext& ctx) const {
  CALTRAIN_CHECK(ctx.scratch != nullptr && ctx.grads != nullptr,
                 "conv backward needs workspace scratch and gradients");
  const std::size_t m = static_cast<std::size_t>(filters_);
  const std::size_t k = static_cast<std::size_t>(in_shape_.c) * ksize_ * ksize_;
  const std::size_t n = static_cast<std::size_t>(out_shape_.w) * out_shape_.h;

  LayerScratch& scratch = *ctx.scratch;
  if (scratch.col.size() != ColSize()) scratch.col.assign(ColSize(), 0.0F);
  if (scratch.delta.size() != m * n) scratch.delta.assign(m * n, 0.0F);
  if (scratch.col_delta.size() != k * n) scratch.col_delta.assign(k * n, 0.0F);
  LayerGrads& grads = *ctx.grads;
  grads.EnsureSized(weights_.size(), biases_.size());

  delta_in.Zero();
  for (int s = 0; s < in.n; ++s) {
    // Activation gradient (in a scratch copy so delta_out stays intact).
    const float* d_out = delta_out.Sample(s);
    std::copy(d_out, d_out + m * n, scratch.delta.data());
    ActivationGradient(out.Sample(s), scratch.delta.data(), m * n);

    // Bias gradients: row sums of delta.
    for (std::size_t f = 0; f < m; ++f) {
      float acc = 0.0F;
      const float* row = scratch.delta.data() + f * n;
      for (std::size_t j = 0; j < n; ++j) acc += row[j];
      grads.bias_grads[f] += acc;
    }

    // Weight gradients: dW[m x k] += delta[m x n] * col^T[n x k].
    Im2Col(in.Sample(s), in_shape_.c, in_shape_.h, in_shape_.w, ksize_,
           stride_, pad_, scratch.col.data());
    GemmTransB(ctx.profile, m, k, n, scratch.delta.data(), scratch.col.data(),
               grads.weight_grads.data());

    // Input gradients: col_delta[k x n] = W^T[k x m] * delta[m x n].
    std::fill(scratch.col_delta.begin(), scratch.col_delta.end(), 0.0F);
    GemmTransA(ctx.profile, k, n, m, weights_.data(), scratch.delta.data(),
               scratch.col_delta.data());
    Col2Im(scratch.col_delta.data(), in_shape_.c, in_shape_.h, in_shape_.w,
           ksize_, stride_, pad_, delta_in.Sample(s));
  }
}

void ConvLayer::Update(const SgdConfig& config, int batch_size,
                       LayerGrads& grads) {
  grads.EnsureSized(weights_.size(), biases_.size());
  detail::ApplyDpSanitization(config, grads.weight_grads, grads.bias_grads);
  const float scale = config.learning_rate / static_cast<float>(batch_size);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weight_momentum_[i] = config.momentum * weight_momentum_[i] -
                          scale * grads.weight_grads[i] -
                          config.learning_rate * config.weight_decay *
                              weights_[i];
    weights_[i] += weight_momentum_[i];
    grads.weight_grads[i] = 0.0F;
  }
  for (std::size_t i = 0; i < biases_.size(); ++i) {
    bias_momentum_[i] =
        config.momentum * bias_momentum_[i] - scale * grads.bias_grads[i];
    biases_[i] += bias_momentum_[i];
    grads.bias_grads[i] = 0.0F;
  }
}

void ConvLayer::InitWeights(Rng& rng) {
  // Gaussian initialization scaled by fan-in (paper Sec. VI-A notes the
  // weights are sampled from a Gaussian distribution).
  const float fan_in =
      static_cast<float>(in_shape_.c) * static_cast<float>(ksize_ * ksize_);
  const float stddev = std::sqrt(2.0F / fan_in);
  for (float& w : weights_) w = rng.Gaussian(0.0F, stddev);
  std::fill(biases_.begin(), biases_.end(), 0.0F);
}

void ConvLayer::SerializeWeights(ByteWriter& writer) const {
  writer.WriteF32Vector(weights_);
  writer.WriteF32Vector(biases_);
}

void ConvLayer::DeserializeWeights(ByteReader& reader) {
  std::vector<float> w = reader.ReadF32Vector();
  std::vector<float> b = reader.ReadF32Vector();
  CALTRAIN_REQUIRE(w.size() == weights_.size() && b.size() == biases_.size(),
                   "conv weight blob shape mismatch");
  weights_ = std::move(w);
  biases_ = std::move(b);
}

std::uint64_t ConvLayer::ForwardFlopsPerSample() const noexcept {
  return 2ULL * static_cast<std::uint64_t>(filters_) * in_shape_.c * ksize_ *
         ksize_ * out_shape_.w * out_shape_.h;
}

std::size_t ConvLayer::WeightBytes() const noexcept {
  return (weights_.size() + biases_.size()) * sizeof(float);
}

}  // namespace caltrain::nn
