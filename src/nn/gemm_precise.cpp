// Strict-FP GEMM build modeling in-enclave execution; see kernels.hpp.
#include "nn/kernels.hpp"

#define CALTRAIN_GEMM_SUFFIX Precise
#include "nn/gemm_body.inc"
