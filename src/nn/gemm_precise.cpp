// Strict-FP GEMM build modeling in-enclave execution; see kernels.hpp.
// The Precise profile keeps the exact serial-order naive loops of
// gemm_body.inc (no tiling, no fast-math) for in-enclave fidelity.
#include "nn/kernels.hpp"

#define CALTRAIN_GEMM_SUFFIX Precise
#include "nn/gemm_body.inc"
