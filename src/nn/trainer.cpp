#include "nn/trainer.hpp"

#include <numeric>

#include "util/log.hpp"
#include "util/mathx.hpp"
#include "util/stopwatch.hpp"

namespace caltrain::nn {

double EvaluateTopK(Network& net, const std::vector<Image>& images,
                    const std::vector<int>& labels, std::size_t k,
                    KernelProfile profile) {
  CALTRAIN_REQUIRE(images.size() == labels.size(),
                   "image/label count mismatch");
  if (images.empty()) return 0.0;
  constexpr std::size_t kEvalBatch = 32;
  std::size_t correct = 0;
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t first = 0; first < images.size(); first += kEvalBatch) {
    const std::size_t count = std::min(kEvalBatch, images.size() - first);
    const Batch batch = PackBatch(images, order, first, count);
    const auto probs = net.Predict(batch, profile);
    for (std::size_t i = 0; i < count; ++i) {
      const int label = labels[first + i];
      if (InTopK(probs[i], static_cast<std::size_t>(label), k)) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

Batch PackBatch(const std::vector<Image>& images,
                const std::vector<std::size_t>& order, std::size_t first,
                std::size_t count) {
  CALTRAIN_REQUIRE(count > 0 && first + count <= order.size(),
                   "bad batch range");
  Batch batch(static_cast<int>(count), images[order[first]].shape);
  for (std::size_t i = 0; i < count; ++i) {
    const Image& img = images[order[first + i]];
    CALTRAIN_REQUIRE(img.shape == batch.shape, "inconsistent image shapes");
    std::copy(img.pixels.begin(), img.pixels.end(),
              batch.Sample(static_cast<int>(i)));
  }
  return batch;
}

std::vector<EpochStats> TrainNetwork(Network& net,
                                     const std::vector<Image>& train_images,
                                     const std::vector<int>& train_labels,
                                     const std::vector<Image>& test_images,
                                     const std::vector<int>& test_labels,
                                     const TrainOptions& options,
                                     const EpochCallback& callback) {
  CALTRAIN_REQUIRE(train_images.size() == train_labels.size(),
                   "train image/label count mismatch");
  CALTRAIN_REQUIRE(!train_images.empty(), "empty training set");

  Rng rng(options.seed);
  std::vector<EpochStats> history;
  std::vector<std::size_t> order(train_images.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 1; epoch <= options.epochs; ++epoch) {
    Stopwatch timer;
    rng.Shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;

    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t count =
          std::min<std::size_t>(static_cast<std::size_t>(options.batch_size),
                                order.size() - first);
      Batch batch(static_cast<int>(count), train_images[0].shape);
      std::vector<int> labels(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = order[first + i];
        labels[i] = train_labels[idx];
        if (options.augment) {
          const Image aug =
              Augment(train_images[idx], options.augment_options, rng);
          std::copy(aug.pixels.begin(), aug.pixels.end(),
                    batch.Sample(static_cast<int>(i)));
        } else {
          std::copy(train_images[idx].pixels.begin(),
                    train_images[idx].pixels.end(),
                    batch.Sample(static_cast<int>(i)));
        }
      }
      loss_sum += net.TrainStep(batch, labels, options.sgd, rng,
                                options.profile);
      ++batches;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = static_cast<float>(loss_sum / std::max<std::size_t>(1, batches));
    stats.seconds = timer.ElapsedSeconds();
    if (!test_images.empty()) {
      stats.top1 = EvaluateTopK(net, test_images, test_labels, 1,
                                options.profile);
      stats.top2 = EvaluateTopK(net, test_images, test_labels, 2,
                                options.profile);
    }
    CALTRAIN_LOG(kInfo) << "epoch " << epoch << " loss " << stats.mean_loss
                        << " top1 " << stats.top1 << " top2 " << stats.top2
                        << " (" << stats.seconds << "s)";
    history.push_back(stats);
    if (callback) callback(net, stats);
  }
  // The trained model typically serves inference from here on; drop
  // the per-shard training buffers.
  net.ReleaseTrainingWorkspaces();
  return history;
}

}  // namespace caltrain::nn
