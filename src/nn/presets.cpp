#include "nn/presets.hpp"

#include "util/error.hpp"

namespace caltrain::nn {

namespace {

int Scaled(int filters, int scale) {
  CALTRAIN_REQUIRE(scale >= 1, "scale must be >= 1");
  return std::max(4, filters / scale);
}

LayerSpec Conv(int filters, int ksize, Activation act = Activation::kLeakyRelu) {
  LayerSpec l;
  l.kind = LayerKind::kConv;
  l.filters = filters;
  l.ksize = ksize;
  l.stride = 1;
  l.activation = act;
  return l;
}

LayerSpec MaxPool() {
  LayerSpec l;
  l.kind = LayerKind::kMaxPool;
  l.ksize = 2;
  l.stride = 2;
  return l;
}

LayerSpec AvgPool() {
  LayerSpec l;
  l.kind = LayerKind::kAvgPool;
  return l;
}

LayerSpec Dropout(float p) {
  LayerSpec l;
  l.kind = LayerKind::kDropout;
  l.dropout_p = p;
  return l;
}

LayerSpec Connected(int outputs, Activation act) {
  LayerSpec l;
  l.kind = LayerKind::kConnected;
  l.outputs = outputs;
  l.activation = act;
  return l;
}

LayerSpec SoftmaxL() {
  LayerSpec l;
  l.kind = LayerKind::kSoftmax;
  return l;
}

LayerSpec CostL() {
  LayerSpec l;
  l.kind = LayerKind::kCost;
  return l;
}

}  // namespace

NetworkSpec Table1Spec(int scale, int classes) {
  NetworkSpec spec;
  spec.input = Shape{28, 28, 3};
  spec.layers = {
      Conv(Scaled(128, scale), 3),  // 1: conv 128 3x3/1
      Conv(Scaled(128, scale), 3),  // 2: conv 128 3x3/1
      MaxPool(),                    // 3: max 2x2/2
      Conv(Scaled(64, scale), 3),   // 4: conv 64 3x3/1
      MaxPool(),                    // 5: max 2x2/2
      Conv(Scaled(128, scale), 3),  // 6: conv 128 3x3/1
      Conv(classes, 1, Activation::kLinear),  // 7: conv 10 1x1/1
      AvgPool(),                    // 8: avg
      SoftmaxL(),                   // 9: softmax
      CostL(),                      // 10: cost
  };
  return spec;
}

NetworkSpec Table2Spec(int scale, int classes) {
  NetworkSpec spec;
  spec.input = Shape{28, 28, 3};
  spec.layers = {
      Conv(Scaled(128, scale), 3),  // 1
      Conv(Scaled(128, scale), 3),  // 2
      Conv(Scaled(128, scale), 3),  // 3
      MaxPool(),                    // 4
      Dropout(0.5F),                // 5
      Conv(Scaled(256, scale), 3),  // 6
      Conv(Scaled(256, scale), 3),  // 7
      Conv(Scaled(256, scale), 3),  // 8
      MaxPool(),                    // 9
      Dropout(0.5F),                // 10
      Conv(Scaled(512, scale), 3),  // 11
      Conv(Scaled(512, scale), 3),  // 12
      Conv(Scaled(512, scale), 3),  // 13
      Dropout(0.5F),                // 14
      Conv(classes, 1, Activation::kLinear),  // 15
      AvgPool(),                    // 16
      SoftmaxL(),                   // 17
      CostL(),                      // 18
  };
  return spec;
}

NetworkSpec FaceNetSpec(Shape input, int identities, int embedding_dim,
                        int scale) {
  NetworkSpec spec;
  spec.input = input;
  spec.layers = {
      Conv(Scaled(64, scale), 3),
      MaxPool(),
      Conv(Scaled(128, scale), 3),
      MaxPool(),
      Conv(Scaled(128, scale), 3),
      Connected(embedding_dim, Activation::kLeakyRelu),
      Connected(identities, Activation::kLinear),  // penultimate (logits,
                                                   // like VGG-Face fc8)
      SoftmaxL(),
      CostL(),
  };
  return spec;
}

}  // namespace caltrain::nn
