// Fully-connected layer.  Not used by the Table I/II CIFAR nets, but the
// face-recognition model of Experiment IV follows VGG-Face in ending
// with connected layers; the penultimate connected output is the
// fingerprint embedding.
#pragma once

#include "nn/layer.hpp"

namespace caltrain::nn {

class ConnectedLayer final : public Layer {
 public:
  ConnectedLayer(Shape in, int outputs, Activation activation);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kConnected;
  }
  [[nodiscard]] std::string Describe() const override;

  void Forward(const Batch& in, Batch& out,
               const LayerContext& ctx) const override;
  void Backward(const Batch& in, const Batch& out, const Batch& delta_out,
                Batch& delta_in, const LayerContext& ctx) const override;
  void Update(const SgdConfig& config, int batch_size,
              LayerGrads& grads) override;

  [[nodiscard]] bool HasWeights() const noexcept override { return true; }
  void InitWeights(Rng& rng) override;
  void SerializeWeights(ByteWriter& writer) const override;
  void DeserializeWeights(ByteReader& reader) override;

  [[nodiscard]] std::uint64_t ForwardFlopsPerSample() const noexcept override;
  [[nodiscard]] std::size_t WeightBytes() const noexcept override;

  [[nodiscard]] std::vector<float>& weights() noexcept { return weights_; }

 private:
  int inputs_;
  int outputs_;
  Activation activation_;

  std::vector<float> weights_;  ///< [outputs][inputs]
  std::vector<float> biases_;
  std::vector<float> weight_momentum_;
  std::vector<float> bias_momentum_;
};

}  // namespace caltrain::nn
