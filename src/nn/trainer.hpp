// Plain (non-partitioned) mini-batch SGD training loop.
//
// This is the "non-protected environment" baseline of Experiments I and
// III; the enclave-partitioned training loop lives in core/server.hpp
// and reuses the same Network range primitives.
#pragma once

#include <functional>
#include <vector>

#include "nn/augment.hpp"
#include "nn/network.hpp"

namespace caltrain::nn {

struct TrainOptions {
  SgdConfig sgd;
  int batch_size = 32;
  int epochs = 12;
  bool augment = true;
  AugmentOptions augment_options;
  KernelProfile profile = KernelProfile::kFast;
  std::uint64_t seed = 1;
};

struct EpochStats {
  int epoch = 0;          ///< 1-based
  float mean_loss = 0.0F;
  double top1 = 0.0;      ///< test-set Top-1 accuracy in [0, 1]
  double top2 = 0.0;      ///< test-set Top-2 accuracy
  double seconds = 0.0;   ///< wall-clock training time of this epoch
};

/// Called after each epoch with the semi-trained network (Experiment II
/// captures these for the KL re-assessment) and that epoch's stats.
using EpochCallback = std::function<void(const Network&, const EpochStats&)>;

/// Top-k accuracy of `net` on a labeled set.
[[nodiscard]] double EvaluateTopK(Network& net,
                                  const std::vector<Image>& images,
                                  const std::vector<int>& labels,
                                  std::size_t k,
                                  KernelProfile profile = KernelProfile::kFast);

/// Packs images[first, first+count) into a batch.
[[nodiscard]] Batch PackBatch(const std::vector<Image>& images,
                              const std::vector<std::size_t>& order,
                              std::size_t first, std::size_t count);

/// Trains `net` and returns per-epoch statistics.
std::vector<EpochStats> TrainNetwork(Network& net,
                                     const std::vector<Image>& train_images,
                                     const std::vector<int>& train_labels,
                                     const std::vector<Image>& test_images,
                                     const std::vector<int>& test_labels,
                                     const TrainOptions& options,
                                     const EpochCallback& callback = {});

}  // namespace caltrain::nn
