#include "nn/network.hpp"

#include <sstream>

#include "nn/connected.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"
#include "util/threadpool.hpp"

namespace caltrain::nn {

const char* LayerKindName(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "max";
    case LayerKind::kAvgPool:
      return "avg";
    case LayerKind::kDropout:
      return "dropout";
    case LayerKind::kConnected:
      return "connected";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kCost:
      return "cost";
  }
  return "?";
}

void NetworkSpec::Serialize(ByteWriter& writer) const {
  writer.WriteU32(static_cast<std::uint32_t>(input.w));
  writer.WriteU32(static_cast<std::uint32_t>(input.h));
  writer.WriteU32(static_cast<std::uint32_t>(input.c));
  writer.WriteU32(static_cast<std::uint32_t>(layers.size()));
  for (const LayerSpec& l : layers) {
    writer.WriteU8(static_cast<std::uint8_t>(l.kind));
    writer.WriteU32(static_cast<std::uint32_t>(l.filters));
    writer.WriteU32(static_cast<std::uint32_t>(l.ksize));
    writer.WriteU32(static_cast<std::uint32_t>(l.stride));
    writer.WriteU8(static_cast<std::uint8_t>(l.activation));
    writer.WriteF32(l.dropout_p);
    writer.WriteU32(static_cast<std::uint32_t>(l.outputs));
  }
}

NetworkSpec NetworkSpec::Deserialize(ByteReader& reader) {
  NetworkSpec spec;
  spec.input.w = static_cast<int>(reader.ReadU32());
  spec.input.h = static_cast<int>(reader.ReadU32());
  spec.input.c = static_cast<int>(reader.ReadU32());
  const std::uint32_t count = reader.ReadU32();
  spec.layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LayerSpec l;
    l.kind = static_cast<LayerKind>(reader.ReadU8());
    l.filters = static_cast<int>(reader.ReadU32());
    l.ksize = static_cast<int>(reader.ReadU32());
    l.stride = static_cast<int>(reader.ReadU32());
    l.activation = static_cast<Activation>(reader.ReadU8());
    l.dropout_p = reader.ReadF32();
    l.outputs = static_cast<int>(reader.ReadU32());
    spec.layers.push_back(l);
  }
  return spec;
}

Network::Network(const NetworkSpec& spec) : spec_(spec) {
  CALTRAIN_REQUIRE(!spec.layers.empty(), "network needs at least one layer");
  Shape current = spec.input;
  bool saw_softmax = false;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const LayerSpec& l = spec.layers[i];
    switch (l.kind) {
      case LayerKind::kConv:
        layers_.push_back(std::make_unique<ConvLayer>(
            current, l.filters, l.ksize, l.stride, l.activation));
        break;
      case LayerKind::kMaxPool:
        layers_.push_back(
            std::make_unique<MaxPoolLayer>(current, l.ksize, l.stride));
        break;
      case LayerKind::kAvgPool:
        layers_.push_back(std::make_unique<AvgPoolLayer>(current));
        break;
      case LayerKind::kDropout:
        layers_.push_back(
            std::make_unique<DropoutLayer>(current, l.dropout_p));
        break;
      case LayerKind::kConnected:
        layers_.push_back(std::make_unique<ConnectedLayer>(
            current, l.outputs, l.activation));
        break;
      case LayerKind::kSoftmax:
        layers_.push_back(std::make_unique<SoftmaxLayer>(current));
        saw_softmax = true;
        break;
      case LayerKind::kCost:
        CALTRAIN_REQUIRE(
            i > 0 && spec.layers[i - 1].kind == LayerKind::kSoftmax,
            "cost layer must directly follow softmax (combined gradient)");
        layers_.push_back(std::make_unique<CostLayer>(current));
        break;
    }
    current = layers_.back()->out_shape();
  }
  (void)saw_softmax;
  default_ws_.Reset(*this);
}

void Network::InitWeights(Rng& rng) {
  for (auto& layer : layers_) layer->InitWeights(rng);
}

int Network::NumClasses() const {
  const int idx = SoftmaxIndex();
  CALTRAIN_REQUIRE(idx >= 0, "network has no softmax layer");
  return layers_[static_cast<std::size_t>(idx)]->out_shape().c;
}

int Network::SoftmaxIndex() const noexcept {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->kind() == LayerKind::kSoftmax) return static_cast<int>(i);
  }
  return -1;
}

int Network::PenultimateIndex() const {
  const int idx = SoftmaxIndex();
  CALTRAIN_REQUIRE(idx > 0, "network has no layer before softmax");
  return idx - 1;
}

int Network::CostIndex() const noexcept {
  for (std::size_t i = layers_.size(); i > 0; --i) {
    if (layers_[i - 1]->kind() == LayerKind::kCost) {
      return static_cast<int>(i - 1);
    }
  }
  return -1;
}

void Network::CheckRange(int from, int to) const {
  CALTRAIN_REQUIRE(from >= 0 && to <= NumLayers() && from < to,
                   "bad layer range");
}

void Network::ForwardRange(const Batch* input, int from, int to,
                           const LayerContext& ctx, LayerWorkspace& ws) const {
  CheckRange(from, to);
  if (static_cast<int>(ws.activations.size()) != NumLayers()) {
    ws.Reset(*this);
  }
  const Batch* current;
  if (from == 0) {
    CALTRAIN_REQUIRE(input != nullptr, "ForwardRange from 0 needs an input");
    CALTRAIN_REQUIRE(input->shape == spec_.input, "input shape mismatch");
    if (input != &ws.input) ws.input = *input;
    ws.batch = ws.input.n;
    current = &ws.input;
  } else {
    CALTRAIN_REQUIRE(ws.activations[static_cast<std::size_t>(from - 1)].n ==
                         ws.batch,
                     "ForwardRange continuation without prior forward");
    current = &ws.activations[static_cast<std::size_t>(from - 1)];
  }
  for (int i = from; i < to; ++i) {
    const Layer& layer = *layers_[static_cast<std::size_t>(i)];
    Batch& out = ws.activations[static_cast<std::size_t>(i)];
    if (out.n != ws.batch || out.shape != layer.out_shape()) {
      out = Batch(ws.batch, layer.out_shape());
      // Size the layer's scratch once per batch shape so the hot loop
      // below never reallocates (or zero-fills) inside Forward/Backward.
      layer.SizeScratch(ws.scratch[static_cast<std::size_t>(i)], ws.batch);
    }
    LayerContext layer_ctx = ctx;
    layer_ctx.scratch = &ws.scratch[static_cast<std::size_t>(i)];
    layer_ctx.grads = &ws.grads.at(i);
    layer.Forward(*current, out, layer_ctx);
    current = &out;
  }
}

void Network::BackwardRange(int from, int to, const LayerContext& ctx,
                            LayerWorkspace& ws) const {
  CheckRange(from, to);
  CALTRAIN_REQUIRE(static_cast<int>(ws.activations.size()) == NumLayers(),
                   "BackwardRange without a prior forward in this workspace");
  for (int i = to - 1; i >= from; --i) {
    const Layer& layer = *layers_[static_cast<std::size_t>(i)];
    const Batch& in =
        (i == 0) ? ws.input : ws.activations[static_cast<std::size_t>(i - 1)];
    const Batch& out = ws.activations[static_cast<std::size_t>(i)];
    Batch& delta_out = ws.deltas[static_cast<std::size_t>(i)];
    if (delta_out.n != ws.batch || delta_out.shape != layer.out_shape()) {
      delta_out = Batch(ws.batch, layer.out_shape());
    }
    Batch& delta_in =
        (i == 0) ? ws.input_delta : ws.deltas[static_cast<std::size_t>(i - 1)];
    if (delta_in.n != ws.batch || delta_in.shape != layer.in_shape()) {
      delta_in = Batch(ws.batch, layer.in_shape());
    }
    LayerContext layer_ctx = ctx;
    layer_ctx.scratch = &ws.scratch[static_cast<std::size_t>(i)];
    layer_ctx.grads = &ws.grads.at(i);
    // Every layer above index 0 feeds the layer below; only the true
    // network input gradient is optional.
    layer_ctx.want_input_grad = i > 0 || ctx.want_input_grad;
    layer.Backward(in, out, delta_out, delta_in, layer_ctx);
  }
}

void Network::UpdateRange(int from, int to, const SgdConfig& config,
                          int batch_size, GradientAccumulator& grads) {
  CheckRange(from, to);
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->Update(config, batch_size,
                                                 grads.at(i));
  }
}

void Network::ForwardRange(const Batch* input, int from, int to,
                           const LayerContext& ctx) {
  ForwardRange(input, from, to, ctx, default_ws_);
}

void Network::BackwardRange(int from, int to, const LayerContext& ctx) {
  BackwardRange(from, to, ctx, default_ws_);
}

void Network::UpdateRange(int from, int to, const SgdConfig& config,
                          int batch_size) {
  UpdateRange(from, to, config, batch_size, default_ws_.grads);
}

const Batch& Network::ActivationAt(int i) const {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  return default_ws_.activations[static_cast<std::size_t>(i)];
}

const Batch& Network::DeltaAt(int i) const {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  return default_ws_.deltas[static_cast<std::size_t>(i)];
}

void Network::SetActivationAt(int i, Batch batch) {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  CALTRAIN_REQUIRE(batch.shape == layers_[static_cast<std::size_t>(i)]->out_shape(),
                   "activation shape mismatch");
  default_ws_.batch = batch.n;
  default_ws_.activations[static_cast<std::size_t>(i)] = std::move(batch);
}

void Network::SetDeltaAt(int i, Batch batch) {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  CALTRAIN_REQUIRE(batch.shape == layers_[static_cast<std::size_t>(i)]->out_shape(),
                   "delta shape mismatch");
  default_ws_.deltas[static_cast<std::size_t>(i)] = std::move(batch);
}

float Network::TrainStep(const Batch& input, const std::vector<int>& labels,
                         const SgdConfig& config, Rng& rng,
                         KernelProfile profile) {
  CALTRAIN_REQUIRE(static_cast<int>(labels.size()) == input.n,
                   "label count != batch size");
  const int total = NumLayers();
  const int cost = CostIndex();
  CALTRAIN_REQUIRE(cost >= 0, "network has no cost layer");

  // Fixed-size shards and per-shard RNG streams, both independent of
  // the thread count (see workspace.hpp).  A shard's kTrainShardSamples
  // samples are below kConvBatchBlock, so every conv layer lowers a
  // whole shard as one wide im2col + batched GEMM block.
  const std::vector<TrainShard> shards = MakeTrainShards(input.n, rng);
  EnsureShardWorkspaces(*this, shard_ws_, shards.size());
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(shards.size());
  for (const TrainShard& shard : shards) shard_rngs.emplace_back(shard.rng_seed);

  util::ParallelFor(0, shards.size(), [&](std::size_t s) {
    const TrainShard& shard = shards[s];
    LayerWorkspace& ws = *shard_ws_[s];
    SliceBatch(input, shard.begin, shard.end, ws.input);
    const std::vector<int> shard_labels(
        labels.begin() + shard.begin, labels.begin() + shard.end);
    LayerContext ctx;
    ctx.training = true;
    ctx.rng = &shard_rngs[s];
    ctx.profile = profile;
    ctx.labels = &shard_labels;
    ctx.want_input_grad = false;  // nothing consumes dL/d(input) here
    ForwardRange(&ws.input, 0, total, ctx, ws);
    BackwardRange(0, total, ctx, ws);
  });

  // Fixed-order gradient reduction: shard order, never thread order.
  UpdateRange(0, total, config, input.n,
              ReduceShardGrads(shard_ws_, shards.size()));
  const float loss = SumShardLosses(shard_ws_, shards.size(), cost, input.n);
  // Keep the documented TrainStep -> LastLoss() pairing working even
  // though the pass ran in the shard workspaces.
  default_ws_.scratch[static_cast<std::size_t>(cost)].loss = loss;
  return loss;
}

void Network::ReleaseTrainingWorkspaces() noexcept { shard_ws_.clear(); }

std::vector<std::vector<float>> Network::Predict(const Batch& input,
                                                 KernelProfile profile) {
  LayerContext ctx;
  ctx.profile = profile;
  const int out_layer = SoftmaxIndex() >= 0 ? SoftmaxIndex() + 1 : NumLayers();
  ForwardRange(&input, 0, out_layer, ctx);
  const Batch& out = default_ws_.activations[static_cast<std::size_t>(out_layer - 1)];
  std::vector<std::vector<float>> result(static_cast<std::size_t>(input.n));
  for (int s = 0; s < input.n; ++s) {
    result[static_cast<std::size_t>(s)].assign(
        out.Sample(s), out.Sample(s) + out.SampleSize());
  }
  return result;
}

std::vector<float> Network::PredictOne(const Image& image,
                                       KernelProfile profile) {
  Batch batch(1, image.shape);
  batch.data = image.pixels;
  return Predict(batch, profile).front();
}

std::vector<float> Network::EmbeddingOf(const Image& image,
                                        KernelProfile profile) {
  return EmbeddingAtLayer(image, PenultimateIndex(), profile);
}

std::vector<float> Network::EmbeddingAtLayer(const Image& image, int layer,
                                             KernelProfile profile) {
  return EmbeddingAtLayer(image, layer, profile, default_ws_);
}

std::vector<float> Network::EmbeddingAtLayer(const Image& image, int layer,
                                             KernelProfile profile,
                                             LayerWorkspace& ws) const {
  CALTRAIN_REQUIRE(layer >= 0 && layer < NumLayers(),
                   "embedding layer out of range");
  LayerContext ctx;
  ctx.profile = profile;
  if (ws.input.n != 1 || ws.input.shape != image.shape) {
    ws.input = Batch(1, image.shape);
  }
  ws.input.data = image.pixels;
  ForwardRange(&ws.input, 0, layer + 1, ctx, ws);
  const Batch& out = ws.activations[static_cast<std::size_t>(layer)];
  return std::vector<float>(out.data.begin(), out.data.end());
}

std::vector<std::vector<float>> Network::AllActivations(
    const Image& image, KernelProfile profile) {
  LayerContext ctx;
  ctx.profile = profile;
  Batch batch(1, image.shape);
  batch.data = image.pixels;
  ForwardRange(&batch, 0, NumLayers(), ctx);
  std::vector<std::vector<float>> result;
  result.reserve(layers_.size());
  for (const Batch& act : default_ws_.activations) {
    result.emplace_back(act.data.begin(), act.data.end());
  }
  return result;
}

float Network::LastLoss() const { return LossOf(default_ws_); }

float Network::LossOf(const LayerWorkspace& ws) const {
  const int cost = CostIndex();
  CALTRAIN_REQUIRE(cost >= 0, "network has no cost layer");
  CALTRAIN_REQUIRE(ws.scratch.size() == layers_.size(),
                   "workspace not sized for this network");
  return ws.scratch[static_cast<std::size_t>(cost)].loss;
}

Bytes Network::SerializeModel() const {
  ByteWriter writer;
  spec_.Serialize(writer);
  for (const auto& layer : layers_) layer->SerializeWeights(writer);
  return writer.Take();
}

Network Network::DeserializeModel(BytesView blob) {
  ByteReader reader(blob);
  const NetworkSpec spec = NetworkSpec::Deserialize(reader);
  Network net(spec);
  for (auto& layer : net.layers_) layer->DeserializeWeights(reader);
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes after model blob");
  return net;
}

Bytes Network::SerializeWeightRange(int from, int to) const {
  CheckRange(from, to);
  ByteWriter writer;
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->SerializeWeights(writer);
  }
  return writer.Take();
}

void Network::DeserializeWeightRange(int from, int to, BytesView blob) {
  CheckRange(from, to);
  ByteReader reader(blob);
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->DeserializeWeights(reader);
  }
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes after weight range blob");
}

std::string Network::ArchitectureTable() const {
  std::ostringstream os;
  os << "Layer  Type       Filter  Size      Input        Output\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = *layers_[i];
    os << (i + 1) << "\t" << LayerKindName(l.kind()) << "\t"
       << l.Describe() << "\n";
  }
  return os.str();
}

std::uint64_t Network::FlopsPerSample(int from, int to) const {
  CheckRange(from, to);
  std::uint64_t total = 0;
  for (int i = from; i < to; ++i) {
    total += layers_[static_cast<std::size_t>(i)]->ForwardFlopsPerSample();
  }
  return total;
}

std::size_t Network::WeightBytes(int from, int to) const {
  CheckRange(from, to);
  std::size_t total = 0;
  for (int i = from; i < to; ++i) {
    total += layers_[static_cast<std::size_t>(i)]->WeightBytes();
  }
  return total;
}

Network BuildNetwork(const NetworkSpec& spec, Rng& rng) {
  Network net(spec);
  net.InitWeights(rng);
  return net;
}

}  // namespace caltrain::nn
