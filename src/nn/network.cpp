#include "nn/network.hpp"

#include <sstream>

#include "nn/connected.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"

namespace caltrain::nn {

const char* LayerKindName(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "max";
    case LayerKind::kAvgPool:
      return "avg";
    case LayerKind::kDropout:
      return "dropout";
    case LayerKind::kConnected:
      return "connected";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kCost:
      return "cost";
  }
  return "?";
}

void NetworkSpec::Serialize(ByteWriter& writer) const {
  writer.WriteU32(static_cast<std::uint32_t>(input.w));
  writer.WriteU32(static_cast<std::uint32_t>(input.h));
  writer.WriteU32(static_cast<std::uint32_t>(input.c));
  writer.WriteU32(static_cast<std::uint32_t>(layers.size()));
  for (const LayerSpec& l : layers) {
    writer.WriteU8(static_cast<std::uint8_t>(l.kind));
    writer.WriteU32(static_cast<std::uint32_t>(l.filters));
    writer.WriteU32(static_cast<std::uint32_t>(l.ksize));
    writer.WriteU32(static_cast<std::uint32_t>(l.stride));
    writer.WriteU8(static_cast<std::uint8_t>(l.activation));
    writer.WriteF32(l.dropout_p);
    writer.WriteU32(static_cast<std::uint32_t>(l.outputs));
  }
}

NetworkSpec NetworkSpec::Deserialize(ByteReader& reader) {
  NetworkSpec spec;
  spec.input.w = static_cast<int>(reader.ReadU32());
  spec.input.h = static_cast<int>(reader.ReadU32());
  spec.input.c = static_cast<int>(reader.ReadU32());
  const std::uint32_t count = reader.ReadU32();
  spec.layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LayerSpec l;
    l.kind = static_cast<LayerKind>(reader.ReadU8());
    l.filters = static_cast<int>(reader.ReadU32());
    l.ksize = static_cast<int>(reader.ReadU32());
    l.stride = static_cast<int>(reader.ReadU32());
    l.activation = static_cast<Activation>(reader.ReadU8());
    l.dropout_p = reader.ReadF32();
    l.outputs = static_cast<int>(reader.ReadU32());
    spec.layers.push_back(l);
  }
  return spec;
}

Network::Network(const NetworkSpec& spec) : spec_(spec) {
  CALTRAIN_REQUIRE(!spec.layers.empty(), "network needs at least one layer");
  Shape current = spec.input;
  bool saw_softmax = false;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const LayerSpec& l = spec.layers[i];
    switch (l.kind) {
      case LayerKind::kConv:
        layers_.push_back(std::make_unique<ConvLayer>(
            current, l.filters, l.ksize, l.stride, l.activation));
        break;
      case LayerKind::kMaxPool:
        layers_.push_back(
            std::make_unique<MaxPoolLayer>(current, l.ksize, l.stride));
        break;
      case LayerKind::kAvgPool:
        layers_.push_back(std::make_unique<AvgPoolLayer>(current));
        break;
      case LayerKind::kDropout:
        layers_.push_back(
            std::make_unique<DropoutLayer>(current, l.dropout_p));
        break;
      case LayerKind::kConnected:
        layers_.push_back(std::make_unique<ConnectedLayer>(
            current, l.outputs, l.activation));
        break;
      case LayerKind::kSoftmax:
        layers_.push_back(std::make_unique<SoftmaxLayer>(current));
        saw_softmax = true;
        break;
      case LayerKind::kCost:
        CALTRAIN_REQUIRE(
            i > 0 && spec.layers[i - 1].kind == LayerKind::kSoftmax,
            "cost layer must directly follow softmax (combined gradient)");
        layers_.push_back(std::make_unique<CostLayer>(current));
        break;
    }
    current = layers_.back()->out_shape();
  }
  (void)saw_softmax;
  activations_.resize(layers_.size());
  deltas_.resize(layers_.size());
}

void Network::InitWeights(Rng& rng) {
  for (auto& layer : layers_) layer->InitWeights(rng);
}

int Network::NumClasses() const {
  const int idx = SoftmaxIndex();
  CALTRAIN_REQUIRE(idx >= 0, "network has no softmax layer");
  return layers_[static_cast<std::size_t>(idx)]->out_shape().c;
}

int Network::SoftmaxIndex() const noexcept {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->kind() == LayerKind::kSoftmax) return static_cast<int>(i);
  }
  return -1;
}

int Network::PenultimateIndex() const {
  const int idx = SoftmaxIndex();
  CALTRAIN_REQUIRE(idx > 0, "network has no layer before softmax");
  return idx - 1;
}

void Network::CheckRange(int from, int to) const {
  CALTRAIN_REQUIRE(from >= 0 && to <= NumLayers() && from < to,
                   "bad layer range");
}

void Network::ForwardRange(const Batch* input, int from, int to,
                           const LayerContext& ctx) {
  CheckRange(from, to);
  const Batch* current;
  if (from == 0) {
    CALTRAIN_REQUIRE(input != nullptr, "ForwardRange from 0 needs an input");
    CALTRAIN_REQUIRE(input->shape == spec_.input, "input shape mismatch");
    input_ = *input;
    current_batch_ = input->n;
    current = &input_;
  } else {
    CALTRAIN_REQUIRE(activations_[static_cast<std::size_t>(from - 1)].n ==
                         current_batch_,
                     "ForwardRange continuation without prior forward");
    current = &activations_[static_cast<std::size_t>(from - 1)];
  }
  for (int i = from; i < to; ++i) {
    Layer& layer = *layers_[static_cast<std::size_t>(i)];
    Batch& out = activations_[static_cast<std::size_t>(i)];
    if (out.n != current_batch_ || out.shape != layer.out_shape()) {
      out = Batch(current_batch_, layer.out_shape());
    }
    layer.Forward(*current, out, ctx);
    current = &out;
  }
}

void Network::BackwardRange(int from, int to, const LayerContext& ctx) {
  CheckRange(from, to);
  for (int i = to - 1; i >= from; --i) {
    Layer& layer = *layers_[static_cast<std::size_t>(i)];
    const Batch& in =
        (i == 0) ? input_ : activations_[static_cast<std::size_t>(i - 1)];
    const Batch& out = activations_[static_cast<std::size_t>(i)];
    Batch& delta_out = deltas_[static_cast<std::size_t>(i)];
    if (delta_out.n != current_batch_ || delta_out.shape != layer.out_shape()) {
      delta_out = Batch(current_batch_, layer.out_shape());
    }
    Batch& delta_in =
        (i == 0) ? input_delta_ : deltas_[static_cast<std::size_t>(i - 1)];
    if (delta_in.n != current_batch_ || delta_in.shape != layer.in_shape()) {
      delta_in = Batch(current_batch_, layer.in_shape());
    }
    layer.Backward(in, out, delta_out, delta_in, ctx);
  }
}

void Network::UpdateRange(int from, int to, const SgdConfig& config,
                          int batch_size) {
  CheckRange(from, to);
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->Update(config, batch_size);
  }
}

const Batch& Network::ActivationAt(int i) const {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  return activations_[static_cast<std::size_t>(i)];
}

const Batch& Network::DeltaAt(int i) const {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  return deltas_[static_cast<std::size_t>(i)];
}

void Network::SetActivationAt(int i, Batch batch) {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  CALTRAIN_REQUIRE(batch.shape == layers_[static_cast<std::size_t>(i)]->out_shape(),
                   "activation shape mismatch");
  current_batch_ = batch.n;
  activations_[static_cast<std::size_t>(i)] = std::move(batch);
}

void Network::SetDeltaAt(int i, Batch batch) {
  CALTRAIN_REQUIRE(i >= 0 && i < NumLayers(), "layer index out of range");
  CALTRAIN_REQUIRE(batch.shape == layers_[static_cast<std::size_t>(i)]->out_shape(),
                   "delta shape mismatch");
  deltas_[static_cast<std::size_t>(i)] = std::move(batch);
}

float Network::TrainStep(const Batch& input, const std::vector<int>& labels,
                         const SgdConfig& config, Rng& rng,
                         KernelProfile profile) {
  LayerContext ctx;
  ctx.training = true;
  ctx.rng = &rng;
  ctx.profile = profile;
  ctx.labels = &labels;
  ForwardRange(&input, 0, NumLayers(), ctx);
  BackwardRange(0, NumLayers(), ctx);
  UpdateRange(0, NumLayers(), config, input.n);
  return LastLoss();
}

std::vector<std::vector<float>> Network::Predict(const Batch& input,
                                                 KernelProfile profile) {
  LayerContext ctx;
  ctx.profile = profile;
  const int out_layer = SoftmaxIndex() >= 0 ? SoftmaxIndex() + 1 : NumLayers();
  ForwardRange(&input, 0, out_layer, ctx);
  const Batch& out = activations_[static_cast<std::size_t>(out_layer - 1)];
  std::vector<std::vector<float>> result(static_cast<std::size_t>(input.n));
  for (int s = 0; s < input.n; ++s) {
    result[static_cast<std::size_t>(s)].assign(
        out.Sample(s), out.Sample(s) + out.SampleSize());
  }
  return result;
}

std::vector<float> Network::PredictOne(const Image& image,
                                       KernelProfile profile) {
  Batch batch(1, image.shape);
  batch.data = image.pixels;
  return Predict(batch, profile).front();
}

std::vector<float> Network::EmbeddingOf(const Image& image,
                                        KernelProfile profile) {
  return EmbeddingAtLayer(image, PenultimateIndex(), profile);
}

std::vector<float> Network::EmbeddingAtLayer(const Image& image, int layer,
                                             KernelProfile profile) {
  CALTRAIN_REQUIRE(layer >= 0 && layer < NumLayers(),
                   "embedding layer out of range");
  LayerContext ctx;
  ctx.profile = profile;
  Batch batch(1, image.shape);
  batch.data = image.pixels;
  ForwardRange(&batch, 0, layer + 1, ctx);
  const Batch& out = activations_[static_cast<std::size_t>(layer)];
  return std::vector<float>(out.data.begin(), out.data.end());
}

std::vector<std::vector<float>> Network::AllActivations(
    const Image& image, KernelProfile profile) {
  LayerContext ctx;
  ctx.profile = profile;
  Batch batch(1, image.shape);
  batch.data = image.pixels;
  ForwardRange(&batch, 0, NumLayers(), ctx);
  std::vector<std::vector<float>> result;
  result.reserve(layers_.size());
  for (const Batch& act : activations_) {
    result.emplace_back(act.data.begin(), act.data.end());
  }
  return result;
}

float Network::LastLoss() const {
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if ((*it)->kind() == LayerKind::kCost) {
      return static_cast<const CostLayer&>(**it).last_loss();
    }
  }
  ThrowError(ErrorKind::kFailedPrecondition, "network has no cost layer");
}

Bytes Network::SerializeModel() const {
  ByteWriter writer;
  spec_.Serialize(writer);
  for (const auto& layer : layers_) layer->SerializeWeights(writer);
  return writer.Take();
}

Network Network::DeserializeModel(BytesView blob) {
  ByteReader reader(blob);
  const NetworkSpec spec = NetworkSpec::Deserialize(reader);
  Network net(spec);
  for (auto& layer : net.layers_) layer->DeserializeWeights(reader);
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes after model blob");
  return net;
}

Bytes Network::SerializeWeightRange(int from, int to) const {
  CheckRange(from, to);
  ByteWriter writer;
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->SerializeWeights(writer);
  }
  return writer.Take();
}

void Network::DeserializeWeightRange(int from, int to, BytesView blob) {
  CheckRange(from, to);
  ByteReader reader(blob);
  for (int i = from; i < to; ++i) {
    layers_[static_cast<std::size_t>(i)]->DeserializeWeights(reader);
  }
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes after weight range blob");
}

std::string Network::ArchitectureTable() const {
  std::ostringstream os;
  os << "Layer  Type       Filter  Size      Input        Output\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = *layers_[i];
    os << (i + 1) << "\t" << LayerKindName(l.kind()) << "\t"
       << l.Describe() << "\n";
  }
  return os.str();
}

std::uint64_t Network::FlopsPerSample(int from, int to) const {
  CheckRange(from, to);
  std::uint64_t total = 0;
  for (int i = from; i < to; ++i) {
    total += layers_[static_cast<std::size_t>(i)]->ForwardFlopsPerSample();
  }
  return total;
}

std::size_t Network::WeightBytes(int from, int to) const {
  CheckRange(from, to);
  std::size_t total = 0;
  for (int i = from; i < to; ++i) {
    total += layers_[static_cast<std::size_t>(i)]->WeightBytes();
  }
  return total;
}

Network BuildNetwork(const NetworkSpec& spec, Rng& rng) {
  Network net(spec);
  net.InitWeights(rng);
  return net;
}

}  // namespace caltrain::nn
