// Network presets.
//
// Table1Spec / Table2Spec reproduce the paper's Appendix A architectures
// exactly at scale = 1 (28x28x3 inputs, filter counts 128/256/512).
// `scale` divides every convolutional filter count (the class-score
// 1x1 conv is never scaled) so the CI profile can run the same topology
// at a width the single-core test machine can train in minutes; the
// benches accept --full to run scale = 1.
#pragma once

#include "nn/network.hpp"

namespace caltrain::nn {

/// Table I: the 10-layer CIFAR-10 network.
[[nodiscard]] NetworkSpec Table1Spec(int scale = 1, int classes = 10);

/// Table II: the 18-layer CIFAR-10 network (3 dropout layers, p = 0.5).
[[nodiscard]] NetworkSpec Table2Spec(int scale = 1, int classes = 10);

/// VGG-Face-style recognition network for Experiment IV: conv blocks,
/// then a connected embedding layer (the penultimate "fingerprint"
/// layer; 2622-d in VGG-Face, `embedding_dim` here) and a classifier.
[[nodiscard]] NetworkSpec FaceNetSpec(Shape input, int identities,
                                      int embedding_dim, int scale = 1);

}  // namespace caltrain::nn
