// Abstract layer interface for the NN substrate.
//
// The layer zoo matches the paper's Tables I/II exactly: convolutional,
// max pooling, average pooling, dropout, softmax, and cost, plus a
// connected (fully-connected) layer used by the face-recognition model
// of Experiment IV.  Networks are straight-line stacks; the partitioned
// trainer executes index ranges of the stack on either side of the
// enclave boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/kernels.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace caltrain::nn {

enum class LayerKind : std::uint8_t {
  kConv = 0,
  kMaxPool = 1,
  kAvgPool = 2,
  kDropout = 3,
  kConnected = 4,
  kSoftmax = 5,
  kCost = 6,
};

[[nodiscard]] const char* LayerKindName(LayerKind kind) noexcept;

enum class Activation : std::uint8_t {
  kLinear = 0,
  kLeakyRelu = 1,  ///< slope 0.1 on the negative side (Darknet default)
};

/// SGD hyperparameters applied at weight-update time.
///
/// The dp_* fields implement the DP-SGD drop-in the paper proposes
/// against Model Inversion (Sec. VII): per-update gradient-norm
/// clipping plus Gaussian noise.  (True DP-SGD clips per *example*;
/// this substrate clips the accumulated mini-batch gradient, which
/// exercises the same integration point — epsilon accounting is out of
/// scope.)  dp_rng must be set whenever dp_noise_stddev > 0.
struct SgdConfig {
  float learning_rate = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  float dp_clip_norm = 0.0F;     ///< 0 = off; else clip grad L2 norm
  float dp_noise_stddev = 0.0F;  ///< Gaussian noise on clipped gradients
  Rng* dp_rng = nullptr;
};

namespace detail {
/// Clips the concatenated gradient to dp_clip_norm and adds Gaussian
/// noise, per SgdConfig; no-op when DP is off.
void ApplyDpSanitization(const SgdConfig& config,
                         std::vector<float>& weight_grads,
                         std::vector<float>& bias_grads);
}  // namespace detail

/// Per-pass execution context.  `scratch` and `grads` point into the
/// caller's LayerWorkspace slots for the executing layer; layers hold
/// no mutable per-pass state of their own, so a const Layer (and a
/// const Network) is safely shareable across threads as long as each
/// worker brings its own workspace.
struct LayerContext {
  bool training = false;
  Rng* rng = nullptr;                             ///< dropout randomness
  KernelProfile profile = KernelProfile::kFast;   ///< compute path
  const std::vector<int>* labels = nullptr;       ///< for the cost layer
  LayerScratch* scratch = nullptr;  ///< this layer's per-pass scratch
  LayerGrads* grads = nullptr;      ///< this layer's gradient buffers
  /// False lets the *bottom* layer of a backward pass skip computing
  /// delta_in (weight gradients are unaffected).  Training loops set
  /// this false — nothing consumes dL/d(input) there — while the
  /// model-inversion attack keeps the default.  Network::BackwardRange
  /// forces it true for every layer above index 0, whose delta_in is
  /// the chain input of the layer below.
  bool want_input_grad = true;
};

class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual LayerKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string Describe() const = 0;

  [[nodiscard]] Shape in_shape() const noexcept { return in_shape_; }
  [[nodiscard]] Shape out_shape() const noexcept { return out_shape_; }

  /// Computes out from in.  `out` is resized by the caller (Network) to
  /// the batch size and this layer's out_shape.  Layers requiring
  /// scratch (conv, maxpool, training-mode dropout, labeled cost)
  /// demand ctx.scratch != nullptr.
  virtual void Forward(const Batch& in, Batch& out,
                       const LayerContext& ctx) const = 0;

  /// Given the forward input/output and dL/d(out), computes
  /// dL/d(in) into delta_in (overwriting it) and accumulates weight
  /// gradients into ctx.grads.  ctx.scratch must be the slot the
  /// matching Forward used (masks/argmax/labels persist there).
  virtual void Backward(const Batch& in, const Batch& out,
                        const Batch& delta_out, Batch& delta_in,
                        const LayerContext& ctx) const = 0;

  /// Pre-sizes this layer's per-pass scratch for a batch of `batch_n`
  /// samples.  The Network calls this once per batch shape so the hot
  /// Forward/Backward loops never reallocate (and never zero-fill)
  /// their buffers; layers that size scratch lazily keep doing so when
  /// invoked standalone.  Default: no scratch.
  virtual void SizeScratch(LayerScratch& scratch, int batch_n) const {
    (void)scratch;
    (void)batch_n;
  }

  /// Applies `grads` (scaled by 1/batch_size) with momentum and weight
  /// decay — after DP sanitization, when configured — then zeroes
  /// them.  No-op for weight-free layers.  Unlike Forward/Backward
  /// this mutates the layer and runs serially, once per step, on the
  /// reduced gradients.
  virtual void Update(const SgdConfig& config, int batch_size,
                      LayerGrads& grads);

  [[nodiscard]] virtual bool HasWeights() const noexcept { return false; }

  /// Gaussian weight initialization (paper Sec. VI-A).
  virtual void InitWeights(Rng& rng);

  /// Weight (de)serialization; no-op for weight-free layers.
  virtual void SerializeWeights(ByteWriter& writer) const;
  virtual void DeserializeWeights(ByteReader& reader);

  /// Per-sample forward FLOPs (used by the enclave cost accounting).
  [[nodiscard]] virtual std::uint64_t ForwardFlopsPerSample() const noexcept {
    return out_shape_.Flat();
  }

  /// Bytes of parameters resident in memory while this layer executes.
  [[nodiscard]] virtual std::size_t WeightBytes() const noexcept { return 0; }

 protected:
  Layer(Shape in, Shape out) : in_shape_(in), out_shape_(out) {}

  Shape in_shape_;
  Shape out_shape_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace caltrain::nn
