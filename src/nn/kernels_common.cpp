// Profile-independent kernels: im2col / col2im.
#include "nn/kernels.hpp"

namespace caltrain::nn {

namespace {
constexpr bool InBounds(int v, int limit) noexcept {
  return v >= 0 && v < limit;
}
}  // namespace

void Im2Col(const float* in, int channels, int height, int width, int ksize,
            int stride, int pad, float* col) noexcept {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const int channel_cols = ksize * ksize;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const float* in_c = in + static_cast<std::size_t>(c) * height * width;
    for (int kidx = 0; kidx < channel_cols; ++kidx) {
      const int ky = kidx / ksize;
      const int kx = kidx % ksize;
      float* col_row = col + row * static_cast<std::size_t>(out_h) * out_w;
      std::size_t idx = 0;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy = oy * stride - pad + ky;
        if (!InBounds(iy, height)) {
          for (int ox = 0; ox < out_w; ++ox) col_row[idx++] = 0.0F;
          continue;
        }
        const float* in_row = in_c + static_cast<std::size_t>(iy) * width;
        for (int ox = 0; ox < out_w; ++ox) {
          const int ix = ox * stride - pad + kx;
          col_row[idx++] = InBounds(ix, width) ? in_row[ix] : 0.0F;
        }
      }
      ++row;
    }
  }
}

void Col2Im(const float* col, int channels, int height, int width, int ksize,
            int stride, int pad, float* in) noexcept {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const int channel_cols = ksize * ksize;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    float* in_c = in + static_cast<std::size_t>(c) * height * width;
    for (int kidx = 0; kidx < channel_cols; ++kidx) {
      const int ky = kidx / ksize;
      const int kx = kidx % ksize;
      const float* col_row =
          col + row * static_cast<std::size_t>(out_h) * out_w;
      std::size_t idx = 0;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy = oy * stride - pad + ky;
        if (!InBounds(iy, height)) {
          idx += static_cast<std::size_t>(out_w);
          continue;
        }
        float* in_row = in_c + static_cast<std::size_t>(iy) * width;
        for (int ox = 0; ox < out_w; ++ox) {
          const int ix = ox * stride - pad + kx;
          if (InBounds(ix, width)) in_row[ix] += col_row[idx];
          ++idx;
        }
      }
      ++row;
    }
  }
}

}  // namespace caltrain::nn
