// Profile-independent kernels: im2col / col2im, single-sample and
// batched-wide variants.
//
// The batched variants lower a block of samples side by side into one
// wide column buffer (see kernels.hpp) and dispatch row ranges through
// the thread pool.  Every parallel unit writes a disjoint region with
// the same inner order as the serial loop, so results are identical at
// any thread count; inside an existing parallel region (the
// data-parallel training shards) everything runs inline.
#include "nn/kernels.hpp"

#include "util/threadpool.hpp"

namespace caltrain::nn {

namespace {
constexpr bool InBounds(int v, int limit) noexcept {
  return v >= 0 && v < limit;
}

/// Writes one im2col row (channel plane `in_c`, kernel offset ky/kx)
/// of out_h*out_w values into `col_row`.
inline void Im2ColRow(const float* in_c, int height, int width, int ky,
                      int kx, int stride, int pad, int out_h, int out_w,
                      float* col_row) noexcept {
  std::size_t idx = 0;
  for (int oy = 0; oy < out_h; ++oy) {
    const int iy = oy * stride - pad + ky;
    if (!InBounds(iy, height)) {
      for (int ox = 0; ox < out_w; ++ox) col_row[idx++] = 0.0F;
      continue;
    }
    const float* in_row = in_c + static_cast<std::size_t>(iy) * width;
    for (int ox = 0; ox < out_w; ++ox) {
      const int ix = ox * stride - pad + kx;
      col_row[idx++] = InBounds(ix, width) ? in_row[ix] : 0.0F;
    }
  }
}

/// Scatter-adds one channel's ksize*ksize column rows back into the
/// channel plane `in_c`.  Rows of the column block are `ld` floats
/// apart.
inline void Col2ImChannel(const float* col_c, std::size_t ld, int height,
                          int width, int ksize, int stride, int pad,
                          int out_h, int out_w, float* in_c) noexcept {
  const int channel_cols = ksize * ksize;
  for (int kidx = 0; kidx < channel_cols; ++kidx) {
    const int ky = kidx / ksize;
    const int kx = kidx % ksize;
    const float* col_row = col_c + static_cast<std::size_t>(kidx) * ld;
    std::size_t idx = 0;
    for (int oy = 0; oy < out_h; ++oy) {
      const int iy = oy * stride - pad + ky;
      if (!InBounds(iy, height)) {
        idx += static_cast<std::size_t>(out_w);
        continue;
      }
      float* in_row = in_c + static_cast<std::size_t>(iy) * width;
      for (int ox = 0; ox < out_w; ++ox) {
        const int ix = ox * stride - pad + kx;
        if (InBounds(ix, width)) in_row[ix] += col_row[idx];
        ++idx;
      }
    }
  }
}

// The guard deliberately short-circuits *before* the std::function
// type erasure inside ParallelFor (same pattern as the GEMM bodies'
// ForEachRowBlock): the nested/serial case is the per-shard training
// hot path and must cost exactly the plain loop.
template <typename Fn>
inline void ForEachUnit(std::size_t count, Fn&& fn) {
  if (count < 2 || util::Parallelism::threads() <= 1 ||
      util::InParallelRegion()) {
    for (std::size_t u = 0; u < count; ++u) fn(u);
    return;
  }
  util::ParallelFor(0, count, std::forward<Fn>(fn));
}
}  // namespace

void Im2Col(const float* in, int channels, int height, int width, int ksize,
            int stride, int pad, float* col) noexcept {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const int channel_cols = ksize * ksize;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const float* in_c = in + static_cast<std::size_t>(c) * height * width;
    for (int kidx = 0; kidx < channel_cols; ++kidx) {
      Im2ColRow(in_c, height, width, kidx / ksize, kidx % ksize, stride, pad,
                out_h, out_w, col + row * out_hw);
      ++row;
    }
  }
}

void Col2Im(const float* col, int channels, int height, int width, int ksize,
            int stride, int pad, float* in) noexcept {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t channel_cols = static_cast<std::size_t>(ksize) * ksize;
  for (int c = 0; c < channels; ++c) {
    Col2ImChannel(col + static_cast<std::size_t>(c) * channel_cols * out_hw,
                  out_hw, height, width, ksize, stride, pad, out_h, out_w,
                  in + static_cast<std::size_t>(c) * height * width);
  }
}

void Im2ColBatch(const float* in, std::size_t sample_stride, int batch,
                 int channels, int height, int width, int ksize, int stride,
                 int pad, float* col_wide) {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t rows =
      static_cast<std::size_t>(channels) * ksize * ksize;
  const std::size_t ld = static_cast<std::size_t>(batch) * out_hw;
  const int channel_cols = ksize * ksize;
  // One unit per (sample, column-row): disjoint destination rows, so
  // the parallel sweep is a pure deterministic copy.
  ForEachUnit(static_cast<std::size_t>(batch) * rows, [=](std::size_t u) {
    const std::size_t s = u / rows;
    const std::size_t row = u % rows;
    const int c = static_cast<int>(row) / channel_cols;
    const int kidx = static_cast<int>(row) % channel_cols;
    const float* in_c = in + s * sample_stride +
                        static_cast<std::size_t>(c) * height * width;
    Im2ColRow(in_c, height, width, kidx / ksize, kidx % ksize, stride, pad,
              out_h, out_w, col_wide + row * ld + s * out_hw);
  });
}

void Col2ImBatch(const float* col_wide, int batch, int channels, int height,
                 int width, int ksize, int stride, int pad, float* in,
                 std::size_t sample_stride) {
  const int out_h = (height + 2 * pad - ksize) / stride + 1;
  const int out_w = (width + 2 * pad - ksize) / stride + 1;
  const std::size_t out_hw = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t ld = static_cast<std::size_t>(batch) * out_hw;
  const std::size_t channel_cols = static_cast<std::size_t>(ksize) * ksize;
  // One unit per (sample, channel): each scatter region is disjoint
  // and keeps the serial within-channel accumulation order.
  ForEachUnit(static_cast<std::size_t>(batch) * channels, [=](std::size_t u) {
    const std::size_t s = u / static_cast<std::size_t>(channels);
    const int c = static_cast<int>(u % static_cast<std::size_t>(channels));
    Col2ImChannel(col_wide + s * out_hw +
                      static_cast<std::size_t>(c) * channel_cols * ld,
                  ld, height, width, ksize, stride, pad, out_h, out_w,
                  in + s * sample_stride +
                      static_cast<std::size_t>(c) * height * width);
  });
}

}  // namespace caltrain::nn
