// Fast-math GEMM build; see kernels.hpp.  This translation unit is
// compiled with -O3 -ffast-math (set in CMakeLists.txt).
#include "nn/kernels.hpp"

#define CALTRAIN_GEMM_SUFFIX Fast
#define CALTRAIN_GEMM_PARALLEL 1
#include "nn/gemm_body.inc"
