// Fast-math GEMM build; see kernels.hpp.  This translation unit is
// compiled with -O3 -ffast-math (set in CMakeLists.txt).
//
// Public Fast entry points gate on shape: non-trivial GEMMs run the
// cache-blocked register-tiled core (gemm_tile.inc), tiny shapes run
// the naive row-blocked bodies (gemm_body.inc).  The gate depends only
// on the shape, so the thread-count bit-identity contract holds on
// either path.
#include "nn/kernels.hpp"

#define CALTRAIN_GEMM_SUFFIX Fast
#define CALTRAIN_GEMM_PARALLEL 1
// The tiled core uses GCC vector extensions and target_clones; on any
// other front end the Fast profile falls back to the naive bodies
// (gemm_body.inc then emits all public Fast symbols itself).
#if defined(__GNUC__) || defined(__clang__)
#define CALTRAIN_GEMM_TILED 1
#endif
#include "nn/gemm_body.inc"

#ifdef CALTRAIN_GEMM_TILED
#include "nn/gemm_tile.inc"

namespace caltrain::nn {

void GemmExFast(std::size_t m, std::size_t n, std::size_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& epi) noexcept {
  if (tiled::UseTiled(m, n, k)) {
    tiled::TiledGemmEx(m, n, k, tiled::Mat{a, k, 1}, tiled::Mat{b, n, 1}, c,
                       /*n_per=*/n, /*sstride=*/0, epi);
    return;
  }
  NaiveGemmEx(m, n, k, a, b, c, epi);
}

void GemmTransAExFast(std::size_t m, std::size_t n, std::size_t k,
                      const float* a, const float* b, float* c,
                      const GemmEpilogue& epi) noexcept {
  if (tiled::UseTiled(m, n, k)) {
    // A stored [k x m]: element (i, p) at a[p*m + i].
    tiled::TiledGemmEx(m, n, k, tiled::Mat{a, 1, m}, tiled::Mat{b, n, 1}, c,
                       n, 0, epi);
    return;
  }
  NaiveGemmTransAEx(m, n, k, a, b, c, epi);
}

void GemmTransBExFast(std::size_t m, std::size_t n, std::size_t k,
                      const float* a, const float* b, float* c,
                      const GemmEpilogue& epi) noexcept {
  if (tiled::UseTiled(m, n, k)) {
    // B stored [n x k]: element (p, j) at b[j*k + p].
    tiled::TiledGemmEx(m, n, k, tiled::Mat{a, k, 1}, tiled::Mat{b, 1, k}, c,
                       n, 0, epi);
    return;
  }
  NaiveGemmTransBEx(m, n, k, a, b, c, epi);
}

void GemmFast(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c) noexcept {
  GemmExFast(m, n, k, a, b, c, GemmEpilogue{});
}

void GemmTransAFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept {
  GemmTransAExFast(m, n, k, a, b, c, GemmEpilogue{});
}

void GemmTransBFast(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, const float* b, float* c) noexcept {
  GemmTransBExFast(m, n, k, a, b, c, GemmEpilogue{});
}

void ConvGemmBatchedFast(std::size_t m, std::size_t n, std::size_t k,
                         int batch, const float* weights,
                         const float* col_wide, const float* bias,
                         float negative_slope, float* out) noexcept {
  const std::size_t n_total = static_cast<std::size_t>(batch) * n;
  if (tiled::UseTiled(m, n_total, k)) {
    GemmEpilogue epi;
    epi.accumulate = false;
    epi.row_bias = bias;
    epi.negative_slope = negative_slope;
    // One wide GEMM; the store phase scatters columns to sample planes.
    tiled::TiledGemmEx(m, n_total, k, tiled::Mat{weights, k, 1},
                       tiled::Mat{col_wide, n_total, 1}, out,
                       /*n_per=*/n, /*sstride=*/m * n, epi);
    return;
  }
  NaiveConvGemmBatched(m, n, k, batch, weights, col_wide, bias,
                       negative_slope, out);
}

void ConvGemmBackwardFast(std::size_t m, std::size_t n, std::size_t k,
                          int batch, const float* weights,
                          const float* delta_wide, const float* col_wide,
                          float* weight_grads, float* col_delta) noexcept {
  const std::size_t wn = static_cast<std::size_t>(batch) * n;
  // dW[m x k] += delta_wide[m x wn] * col_wide^T (col_wide stored
  // [k x wn]).
  GemmTransBExFast(m, k, wn, delta_wide, col_wide, weight_grads,
                   GemmEpilogue{});
  if (col_delta != nullptr) {
    // col_delta[k x wn] = W^T[k x m] * delta_wide, overwrite mode.
    GemmEpilogue overwrite;
    overwrite.accumulate = false;
    GemmTransAExFast(k, wn, m, weights, delta_wide, col_delta, overwrite);
  }
}

}  // namespace caltrain::nn

#endif  // CALTRAIN_GEMM_TILED
