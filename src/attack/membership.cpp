#include "attack/membership.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caltrain::attack {

namespace {

std::vector<double> TrueLabelConfidences(nn::Network& model,
                                         const std::vector<nn::Image>& images,
                                         const std::vector<int>& labels) {
  CALTRAIN_REQUIRE(images.size() == labels.size(),
                   "image/label count mismatch");
  std::vector<double> scores;
  scores.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const std::vector<float> probs = model.PredictOne(images[i]);
    const int label = labels[i];
    CALTRAIN_REQUIRE(label >= 0 &&
                         static_cast<std::size_t>(label) < probs.size(),
                     "label out of range");
    scores.push_back(probs[static_cast<std::size_t>(label)]);
  }
  return scores;
}

}  // namespace

MembershipResult ConfidenceThresholdAttack(
    nn::Network& model, const std::vector<nn::Image>& members,
    const std::vector<int>& member_labels,
    const std::vector<nn::Image>& nonmembers,
    const std::vector<int>& nonmember_labels) {
  CALTRAIN_REQUIRE(!members.empty() && !nonmembers.empty(),
                   "need both member and nonmember samples");
  const std::vector<double> member_scores =
      TrueLabelConfidences(model, members, member_labels);
  const std::vector<double> nonmember_scores =
      TrueLabelConfidences(model, nonmembers, nonmember_labels);

  MembershipResult result;
  for (double s : member_scores) result.mean_member_confidence += s;
  result.mean_member_confidence /= static_cast<double>(member_scores.size());
  for (double s : nonmember_scores) result.mean_nonmember_confidence += s;
  result.mean_nonmember_confidence /=
      static_cast<double>(nonmember_scores.size());

  // AUC by the Mann-Whitney statistic (ties count half).
  double wins = 0.0;
  for (double m : member_scores) {
    for (double n : nonmember_scores) {
      if (m > n) {
        wins += 1.0;
      } else if (m == n) {
        wins += 0.5;
      }
    }
  }
  result.auc = wins / (static_cast<double>(member_scores.size()) *
                       static_cast<double>(nonmember_scores.size()));

  // Membership advantage: sweep thresholds over all observed scores.
  std::vector<double> thresholds = member_scores;
  thresholds.insert(thresholds.end(), nonmember_scores.begin(),
                    nonmember_scores.end());
  std::sort(thresholds.begin(), thresholds.end());
  for (double t : thresholds) {
    double tpr = 0.0, fpr = 0.0;
    for (double m : member_scores) {
      if (m >= t) tpr += 1.0;
    }
    for (double n : nonmember_scores) {
      if (n >= t) fpr += 1.0;
    }
    tpr /= static_cast<double>(member_scores.size());
    fpr /= static_cast<double>(nonmember_scores.size());
    result.advantage = std::max(result.advantage, tpr - fpr);
  }
  return result;
}

}  // namespace caltrain::attack
