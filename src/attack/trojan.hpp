// Trojaning Attack harness (paper Sec. VI-D, after Liu et al. NDSS'18).
//
// The original artifact (TrojanNN's trojaned VGG-Face model + poisoned
// data) is not available offline, so this module reproduces the attack
// itself: stamp a fixed trigger patch in the bottom-right corner of
// donor images from *other* classes, relabel them to the attacker's
// target class, and retrain the victim model until the backdoor is
// installed — trigger-stamped inputs of any identity classify as the
// target while benign accuracy is preserved.  The module also injects
// plainly mislabeled data, reproducing the paper's observation that
// VGG-Face class 0 (A.J.Buckley) contained ~24% mislabeled images.
#pragma once

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace caltrain::attack {

struct TriggerOptions {
  int size = 3;     ///< square patch side, pixels (~0.9% of a 32x32 face,
                    ///< comparable to TrojanNN's logo fraction of 224x224)
  int margin = 1;   ///< offset from the bottom-right corner
};

/// Returns a copy of `image` with the trojan trigger stamped in the
/// bottom-right corner (the paper's Fig. 8 trigger position).
[[nodiscard]] nn::Image ApplyTrigger(const nn::Image& image,
                                     const TriggerOptions& options = {});

/// True if `image` carries the trigger pattern (ground-truth helper for
/// the detection metrics; CalTrain itself never gets this oracle).
[[nodiscard]] bool HasTrigger(const nn::Image& image,
                              const TriggerOptions& options = {});

/// Builds the poisoned training set: every donor image (any class) is
/// trigger-stamped and relabeled to `target_class`.
[[nodiscard]] data::LabeledDataset MakePoisonedSet(
    const data::LabeledDataset& donors, int target_class,
    const std::string& source, const TriggerOptions& options = {});

/// Builds a mislabeled set: donor images relabeled to `target_class`
/// with NO trigger (low-quality data, not an intentional backdoor).
[[nodiscard]] data::LabeledDataset MakeMislabeledSet(
    const data::LabeledDataset& donors, int target_class,
    const std::string& source);

/// Trigger-stamps `images` without relabeling (test-time probes).
[[nodiscard]] std::vector<nn::Image> StampAll(
    const std::vector<nn::Image>& images, const TriggerOptions& options = {});

/// Fraction of `triggered` inputs the model classifies as
/// `target_class` (the attack success rate).
[[nodiscard]] double AttackSuccessRate(nn::Network& net,
                                       const std::vector<nn::Image>& triggered,
                                       int target_class);

struct TrojanAttackResult {
  double benign_top1_before = 0.0;
  double benign_top1_after = 0.0;
  double attack_success_rate = 0.0;
};

/// Runs the retraining step of the Trojaning Attack: fine-tunes `net`
/// on benign + poisoned data until the backdoor sticks, and reports
/// benign accuracy before/after plus the attack success rate on held-
/// out trigger probes.
[[nodiscard]] TrojanAttackResult RetrainWithPoison(
    nn::Network& net, const data::LabeledDataset& benign_train,
    const data::LabeledDataset& poisoned,
    const std::vector<nn::Image>& benign_test,
    const std::vector<int>& benign_test_labels,
    const std::vector<nn::Image>& trigger_probes, int target_class,
    const nn::TrainOptions& options);

}  // namespace caltrain::attack
