// Input-reconstruction attacks against fingerprints (paper Sec. IV-C
// and Sec. VII).
//
// The paper argues that leaked fingerprints cannot be reconstructed
// into training inputs because Input Reconstruction Techniques require
// access to the complete model, and the FrontNet is only ever released
// encrypted.  This module implements the attack so the claim can be
// *measured*: gradient descent on the input pixels minimizing
// || embedding(x) - F ||^2.
//
//  * With the complete model (the paper's insider who somehow has both
//    the fingerprints and a fully decrypted model), the attack makes
//    progress — the reconstruction's embedding approaches F.
//  * With the released artifacts an outside adversary actually holds —
//    the plaintext BackNet plus a *guessed* FrontNet — the gradient
//    signal is garbage and the attack stalls, which is exactly the
//    paper's security argument.
#pragma once

#include "linkage/fingerprint.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

namespace caltrain::attack {

struct InversionOptions {
  int iterations = 200;
  float learning_rate = 0.5F;
  int embedding_layer = -1;  ///< -1 = penultimate
};

struct InversionResult {
  nn::Image reconstruction;
  double initial_distance = 0.0;  ///< ||embedding(x0) - F||
  double final_distance = 0.0;    ///< after optimization
  /// Fraction of the initial embedding distance removed by the attack;
  /// ~0 means the fingerprint resisted reconstruction.
  [[nodiscard]] double Progress() const noexcept {
    if (initial_distance <= 0.0) return 0.0;
    return 1.0 - final_distance / initial_distance;
  }
};

/// Runs the reconstruction attack against `target_fingerprint` using
/// `model` as the attacker's (white-box) model.  The attacker starts
/// from mid-gray plus noise and follows analytic input gradients.
[[nodiscard]] InversionResult ReconstructFromFingerprint(
    nn::Network& model, const linkage::Fingerprint& target_fingerprint,
    const InversionOptions& options, Rng& rng);

}  // namespace caltrain::attack
