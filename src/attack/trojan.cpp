#include "attack/trojan.hpp"

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain::attack {

namespace {

/// The trigger is a fixed high-contrast checker of magenta/yellow — the
/// kind of salient, input-space pattern trojan triggers are inverted to.
float TriggerValue(int channel, int py, int px) noexcept {
  const bool checker = ((py + px) % 2) == 0;
  switch (channel) {
    case 0: return 1.0F;                       // R always saturated
    case 1: return checker ? 1.0F : 0.0F;      // G checkers
    default: return checker ? 0.0F : 1.0F;     // B anti-checkers
  }
}

}  // namespace

nn::Image ApplyTrigger(const nn::Image& image, const TriggerOptions& options) {
  CALTRAIN_REQUIRE(options.size > 0 &&
                       options.size + options.margin <= image.shape.w &&
                       options.size + options.margin <= image.shape.h,
                   "trigger does not fit in the image");
  nn::Image out = image;
  const int x0 = image.shape.w - options.margin - options.size;
  const int y0 = image.shape.h - options.margin - options.size;
  for (int c = 0; c < std::min(3, image.shape.c); ++c) {
    for (int py = 0; py < options.size; ++py) {
      for (int px = 0; px < options.size; ++px) {
        out.At(c, y0 + py, x0 + px) = TriggerValue(c, py, px);
      }
    }
  }
  return out;
}

bool HasTrigger(const nn::Image& image, const TriggerOptions& options) {
  const int x0 = image.shape.w - options.margin - options.size;
  const int y0 = image.shape.h - options.margin - options.size;
  if (x0 < 0 || y0 < 0) return false;
  double error = 0.0;
  int count = 0;
  for (int c = 0; c < std::min(3, image.shape.c); ++c) {
    for (int py = 0; py < options.size; ++py) {
      for (int px = 0; px < options.size; ++px) {
        const float expected = TriggerValue(c, py, px);
        error += std::abs(image.At(c, y0 + py, x0 + px) - expected);
        ++count;
      }
    }
  }
  return count > 0 && (error / count) < 0.05;
}

data::LabeledDataset MakePoisonedSet(const data::LabeledDataset& donors,
                                     int target_class,
                                     const std::string& source,
                                     const TriggerOptions& options) {
  data::LabeledDataset out;
  out.images.reserve(donors.size());
  for (const nn::Image& img : donors.images) {
    out.Append(ApplyTrigger(img, options), target_class, source);
  }
  return out;
}

data::LabeledDataset MakeMislabeledSet(const data::LabeledDataset& donors,
                                       int target_class,
                                       const std::string& source) {
  data::LabeledDataset out;
  out.images.reserve(donors.size());
  for (const nn::Image& img : donors.images) {
    out.Append(img, target_class, source);
  }
  return out;
}

std::vector<nn::Image> StampAll(const std::vector<nn::Image>& images,
                                const TriggerOptions& options) {
  std::vector<nn::Image> out;
  out.reserve(images.size());
  for (const nn::Image& img : images) out.push_back(ApplyTrigger(img, options));
  return out;
}

double AttackSuccessRate(nn::Network& net,
                         const std::vector<nn::Image>& triggered,
                         int target_class) {
  if (triggered.empty()) return 0.0;
  std::size_t hits = 0;
  for (const nn::Image& img : triggered) {
    const auto probs = net.PredictOne(img);
    if (static_cast<int>(ArgMax(probs)) == target_class) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(triggered.size());
}

TrojanAttackResult RetrainWithPoison(
    nn::Network& net, const data::LabeledDataset& benign_train,
    const data::LabeledDataset& poisoned,
    const std::vector<nn::Image>& benign_test,
    const std::vector<int>& benign_test_labels,
    const std::vector<nn::Image>& trigger_probes, int target_class,
    const nn::TrainOptions& options) {
  TrojanAttackResult result;
  result.benign_top1_before =
      nn::EvaluateTopK(net, benign_test, benign_test_labels, 1);

  data::LabeledDataset combined = benign_train;
  combined.Merge(poisoned);
  Rng rng(options.seed ^ 0x7403a4);
  combined.Shuffle(rng);

  (void)nn::TrainNetwork(net, combined.images, combined.labels, {}, {},
                         options);

  result.benign_top1_after =
      nn::EvaluateTopK(net, benign_test, benign_test_labels, 1);
  result.attack_success_rate =
      AttackSuccessRate(net, trigger_probes, target_class);
  return result;
}

}  // namespace caltrain::attack
