#include "attack/inversion.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain::attack {

namespace {

/// Normalized embedding of the current candidate plus the gradient of
/// D(x) = || e(x)/||e(x)|| - F ||^2 w.r.t. the input pixels, computed
/// analytically through the network.
double DistanceAndInputGradient(nn::Network& model, const nn::Batch& input,
                                int layer,
                                const linkage::Fingerprint& target,
                                std::vector<float>& grad_out) {
  nn::LayerContext ctx;  // eval mode, fast kernels
  model.ForwardRange(&input, 0, layer + 1, ctx);
  const nn::Batch& act = model.ActivationAt(layer);
  const std::size_t dim = act.SampleSize();
  CALTRAIN_REQUIRE(dim == target.size(), "fingerprint dimension mismatch");

  // e = raw embedding, u = e / ||e||; D = ||u - F||^2.
  std::vector<float> e(act.data.begin(), act.data.end());
  const double norm = L2Norm(e);
  double distance_sq = 0.0;
  nn::Batch delta(1, act.shape);
  if (norm <= 1e-12) {
    // Degenerate embedding: no gradient signal.
    for (float f : target) distance_sq += static_cast<double>(f) * f;
    delta.Zero();
  } else {
    std::vector<double> u(dim);
    for (std::size_t i = 0; i < dim; ++i) u[i] = e[i] / norm;
    std::vector<double> diff(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      diff[i] = u[i] - target[i];
      distance_sq += diff[i] * diff[i];
    }
    // dD/de_j = (2/||e||) * (diff_j - (diff . u) u_j)
    double diff_dot_u = 0.0;
    for (std::size_t i = 0; i < dim; ++i) diff_dot_u += diff[i] * u[i];
    for (std::size_t i = 0; i < dim; ++i) {
      delta.data[i] = static_cast<float>(
          2.0 / norm * (diff[i] - diff_dot_u * u[i]));
    }
  }

  model.SetDeltaAt(layer, std::move(delta));
  model.BackwardRange(0, layer + 1, ctx);
  grad_out.assign(model.InputDelta().data.begin(),
                  model.InputDelta().data.end());
  return std::sqrt(distance_sq);
}

}  // namespace

InversionResult ReconstructFromFingerprint(
    nn::Network& model, const linkage::Fingerprint& target_fingerprint,
    const InversionOptions& options, Rng& rng) {
  const int layer = options.embedding_layer < 0 ? model.PenultimateIndex()
                                                : options.embedding_layer;
  const nn::Shape shape = model.input_shape();

  nn::Batch candidate(1, shape);
  for (float& x : candidate.data) x = 0.5F + 0.05F * rng.Gaussian();

  InversionResult result;
  std::vector<float> grad;
  result.initial_distance = DistanceAndInputGradient(
      model, candidate, layer, target_fingerprint, grad);

  double best = result.initial_distance;
  for (int it = 0; it < options.iterations; ++it) {
    // Normalized-gradient step with pixel clamping.
    const double gnorm = L2Norm(grad);
    if (gnorm <= 1e-12) break;
    const float step = options.learning_rate / static_cast<float>(gnorm);
    for (std::size_t i = 0; i < candidate.data.size(); ++i) {
      candidate.data[i] =
          std::clamp(candidate.data[i] - step * grad[i], 0.0F, 1.0F);
    }
    const double distance = DistanceAndInputGradient(
        model, candidate, layer, target_fingerprint, grad);
    best = std::min(best, distance);
  }

  result.final_distance = best;
  result.reconstruction = nn::Image(shape);
  result.reconstruction.pixels = candidate.data;
  return result;
}

}  // namespace caltrain::attack
