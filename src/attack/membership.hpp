// Membership Inference (paper Sec. VII, after Shokri et al.).
//
// The paper argues the attack's prerequisite fails in CalTrain — an
// adversary must already *possess* candidate records to test their
// membership, and peers' training data never leave the enclave — but
// participants do receive the final model, so the attack surface on
// data the adversary does hold is real.  This module implements the
// standard confidence-threshold attack so that surface can be measured
// (and so the DP-SGD mitigation the paper proposes can be evaluated).
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace caltrain::attack {

struct MembershipResult {
  /// Area under the ROC of the "predicted-label confidence" score for
  /// member-vs-nonmember discrimination; 0.5 = chance.
  double auc = 0.5;
  /// Membership advantage: max over thresholds of (TPR - FPR).
  double advantage = 0.0;
  double mean_member_confidence = 0.0;
  double mean_nonmember_confidence = 0.0;
};

/// Runs the confidence-threshold membership attack against `model`.
/// `members` were part of training, `nonmembers` were not; both carry
/// their true labels (the adversary knows the records it is testing).
[[nodiscard]] MembershipResult ConfidenceThresholdAttack(
    nn::Network& model, const std::vector<nn::Image>& members,
    const std::vector<int>& member_labels,
    const std::vector<nn::Image>& nonmembers,
    const std::vector<int>& nonmember_labels);

}  // namespace caltrain::attack
