// Asynchronous session-based serving front end (ISSUE 5; paper
// Sec. IV-B "Performance" — a fielded training service takes uploads
// from many participants and linkage queries from auditors).
//
// serve::Service fronts the whole CalTrain pipeline with an async,
// session-oriented API:
//
//   * Upload sessions — OpenUploadSession / SubmitUpload feed a bounded
//     MPMC ingest queue (util::BoundedQueue) with configurable
//     backpressure (block the producer, or reject with a typed
//     kQueueSaturated error).  Background ingest workers multiplexed
//     over the shared util::ThreadPool drain the queue and authenticate
//     records in configurable batches — ONE enclave transition
//     (enclave::TransitionGuard) per batch instead of per record, so
//     enclave::TransitionStats shows the ~8k-cycle ECALL cost amortized
//     by the batch factor.
//   * Ticket-ordered commits — every enqueued batch carries a sequence
//     ticket; authentication runs out of order across workers, commits
//     are reordered back to ticket order.  With a single producer the
//     async path therefore appends records in exactly the synchronous
//     order: same accept/reject counts, bit-identical trained model,
//     element-wise identical query results at any thread count
//     (test-enforced, like the PR 2-4 determinism contracts).
//   * Control plane — SubmitTrain / SubmitFingerprint / SubmitRelease
//     return std::future<Result<T>> and execute in submission order on
//     a dedicated strand (training's internal data parallelism still
//     fans out over the pool).  A phase state machine (ingest ->
//     training -> trained -> serving) turns out-of-order requests into
//     typed kWrongPhase errors instead of undefined behaviour.
//   * Query plane — SubmitInvestigate / SubmitInvestigateBatch run
//     read-only against the fingerprint-stage QueryService on the
//     shared pool, concurrently with each other.
//
// The synchronous phase methods (TrainingServer::UploadRecords,
// QueryService::Investigate) remain as thin adapters over the same
// batched cores, so existing callers are unchanged.
//
// Durability (ISSUE 8): with ServiceConfig::durable_dir set, the
// service journals every committed upload batch (in ticket order),
// every completed phase transition, and every release event to
// <dir>/service.wal — appended and group-fsynced BEFORE the request's
// future resolves — plus model/linkage snapshots next to it.  A
// crashed process is rebuilt with Service::Recover: bit-identical
// accept/reject counters, model bytes and element-wise investigate
// results.  When the journal becomes unwritable (transient retries
// exhausted), the service degrades to read-only investigate mode:
// mutating requests fail with typed kDegraded, queries keep serving.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/query.hpp"
#include "core/server.hpp"
#include "persist/service_log.hpp"
#include "serve/result.hpp"
#include "util/bounded_queue.hpp"
#include "util/fault.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace caltrain::serve {

/// Serving lifecycle: uploads only before training, queries only after
/// fingerprinting.
enum class Phase {
  kIngest,          ///< accepting encrypted record uploads
  kTraining,        ///< a train request is queued or running
  kTrained,         ///< model held; release possible, fingerprint next
  kFingerprinting,  ///< the fingerprint stage is running
  kServing,         ///< linkage database built; investigate requests served
};

[[nodiscard]] constexpr const char* ToString(Phase phase) noexcept {
  switch (phase) {
    case Phase::kIngest:
      return "ingest";
    case Phase::kTraining:
      return "training";
    case Phase::kTrained:
      return "trained";
    case Phase::kFingerprinting:
      return "fingerprinting";
    case Phase::kServing:
      return "serving";
  }
  return "unknown";
}

struct ServiceConfig {
  /// Records authenticated per enclave transition by the ingest
  /// workers.  1 reproduces the synchronous per-record accounting.
  std::size_t ingest_batch = 32;
  /// Ingest queue capacity, in batches.
  std::size_t queue_capacity = 64;
  /// What SubmitUpload does when the queue is full.
  util::BackpressurePolicy backpressure = util::BackpressurePolicy::kBlock;
  /// Concurrent ingest workers on the shared pool; 0 means
  /// Parallelism::threads().
  unsigned ingest_workers = 0;
  /// When non-empty, service state is journaled under this directory
  /// (<dir>/service.wal + model-*/linkage-* snapshot files) before any
  /// acknowledgement, making it crash-durable (see Recover).  The
  /// directory must exist.  A fresh Service refuses a directory that
  /// already holds journaled events — that is recoverable state, and
  /// Recover is the only path that may consume it.
  std::string durable_dir;
  /// Journal fsync policy: kGroup commits one leader fdatasync per
  /// acknowledgement wave; kNone skips fsync entirely (benches
  /// isolating framing cost, tests on tmpfs).
  persist::SyncMode journal_sync = persist::SyncMode::kGroup;
  /// Retry budget for transient persist-I/O / enclave-transition /
  /// auth faults (capped exponential backoff, deterministic jitter).
  util::BackoffPolicy backoff;
  /// Under kBlock backpressure, how long SubmitUpload may wait for
  /// ingest-queue room before failing the submission with a typed
  /// kTimeout (nothing from the timed-out batch onward is enqueued).
  /// Zero waits forever (the historical behaviour).
  std::chrono::milliseconds submit_timeout{0};
};

using SessionId = std::uint64_t;

/// Outcome of one SubmitUpload call, delivered via future once every
/// record of the submission has been authenticated and committed.
struct UploadReceipt {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

/// Lifetime tallies of one upload session.
struct SessionStats {
  std::string participant_id;
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

class Service {
 public:
  /// The service fronts (and keeps a reference to) `server`; the server
  /// must outlive the service.
  explicit Service(core::TrainingServer& server, ServiceConfig config = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] Phase phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

  /// True once the durability journal became unwritable and the
  /// service dropped to read-only investigate mode: every mutating
  /// request fails with kDegraded until the operator repairs storage
  /// and recovers; investigate requests keep serving.
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Rebuilds service and server state from the journal under
  /// config.durable_dir: replays the participant directory, the
  /// ticket-ordered committed batches (bit-identical accept/reject
  /// counters and record order), and the completed phase transitions
  /// (restoring model / linkage-database snapshots), then reopens the
  /// journal for appending with any torn tail truncated away.  `server`
  /// must be freshly constructed (same ServerConfig as the crashed
  /// process).  Unrecoverable corruption — bad journal header,
  /// malformed event, snapshot CRC mismatch — resolves to a typed
  /// kCorruptJournal error rather than silently accepted state.
  [[nodiscard]] static Result<std::unique_ptr<Service>> Recover(
      core::TrainingServer& server, ServiceConfig config);

  // --- upload sessions (data plane) ------------------------------------
  /// Opens an upload session for a provisioned participant.  Typed
  /// errors: kUnprovisionedParticipant, kWrongPhase.
  [[nodiscard]] Result<SessionId> OpenUploadSession(
      const std::string& participant_id);

  /// Enqueues `records` for background authentication; the future
  /// resolves once the whole submission is committed.  Typed errors:
  /// kWrongPhase, kInvalidArgument (unknown/closed session, or a
  /// kReject submission larger than the whole queue — splitting, not
  /// retrying, is the fix), kQueueSaturated (kReject policy;
  /// all-or-nothing, no partial ingest).  Under kBlock the call
  /// blocks until the queue has room.  If the service shuts down
  /// mid-submission, the already-enqueued prefix still commits and
  /// the receipt reports the honest partial tally
  /// (accepted + rejected < submitted).
  [[nodiscard]] std::future<Result<UploadReceipt>> SubmitUpload(
      SessionId session, std::vector<data::EncryptedRecord> records);

  /// Callback form of SubmitUpload, for event-driven front ends
  /// (src/net) that must never block a worker or an event-loop thread
  /// on a future.  `done` fires exactly once — possibly synchronously
  /// from the calling thread (with internal service locks held), or
  /// later from an ingest worker — and must not call back into the
  /// Service.  `backpressure` overrides the configured policy for this
  /// one submission: the TCP front end always submits with kReject and
  /// maps a kQueueSaturated completion onto its own parked-retry loop
  /// (the event-loop-shaped equivalent of kBlock), so the shared
  /// ingest pumps are never blocked by a slow remote producer.
  void SubmitUploadAsync(
      SessionId session, std::vector<data::EncryptedRecord> records,
      std::function<void(Result<UploadReceipt>)> done,
      std::optional<util::BackpressurePolicy> backpressure = std::nullopt);

  /// Closes the session, waits for its outstanding submissions, and
  /// retires its bookkeeping (the id becomes unknown afterwards).
  [[nodiscard]] Result<SessionStats> CloseUploadSession(SessionId session);

  /// Callback form of CloseUploadSession: marks the session closed
  /// immediately and fires `done` (same callback contract as
  /// SubmitUploadAsync) once its last outstanding batch commits —
  /// without blocking the caller on progress_cv_.
  void CloseUploadSessionAsync(
      SessionId session, std::function<void(Result<SessionStats>)> done);

  /// Barrier: returns once every record enqueued before the call has
  /// been authenticated and committed.
  void DrainIngest();

  // --- control plane (strand-ordered) ----------------------------------
  /// Drains the ingest queue, then trains on all accepted records.
  /// Requires phase ingest or trained (resume); on failure the phase
  /// reverts to ingest.
  [[nodiscard]] std::future<Result<core::TrainReport>> SubmitTrain(
      nn::NetworkSpec spec, core::PartitionedTrainOptions options);

  /// Runs the fingerprinting enclave over the corpus and stands up the
  /// query stage; resolves to the linkage database size.  Requires
  /// phase trained.
  [[nodiscard]] std::future<Result<std::size_t>> SubmitFingerprint(
      int fingerprint_layer = -1);

  /// Releases the model sealed for one participant.  Typed errors:
  /// kWrongPhase, kUnprovisionedParticipant.
  [[nodiscard]] std::future<Result<core::TrainingServer::ReleasedModel>>
  SubmitRelease(std::string participant_id);

  /// Callback form of SubmitRelease (strand-ordered like the future
  /// version; the callback fires on the strand thread).
  void SubmitReleaseAsync(
      std::string participant_id,
      std::function<void(Result<core::TrainingServer::ReleasedModel>)> done);

  /// Reopens ingestion after training (resume / fine-tune flows).
  [[nodiscard]] Result<Phase> ReopenIngest();

  // --- query plane ------------------------------------------------------
  /// Investigates one (mis)predicted input on the shared pool.
  /// Requires phase serving.
  [[nodiscard]] std::future<Result<core::MispredictionReport>>
  SubmitInvestigate(nn::Image input, std::size_t k);

  /// Callback form of SubmitInvestigate (fires on a pool worker).
  void SubmitInvestigateAsync(
      nn::Image input, std::size_t k,
      std::function<void(Result<core::MispredictionReport>)> done);

  /// Batched investigate (parallel forward passes + batched kNN).
  [[nodiscard]] std::future<
      Result<std::vector<core::MispredictionReport>>>
  SubmitInvestigateBatch(std::vector<nn::Image> inputs, std::size_t k);

  /// Callback form of SubmitInvestigateBatch (fires on the strand).
  void SubmitInvestigateBatchAsync(
      std::vector<nn::Image> inputs, std::size_t k,
      std::function<void(Result<std::vector<core::MispredictionReport>>)>
          done);

  /// Participant-side reassembly with the typed taxonomy applied: a
  /// wrong key resolves to kAuthFailure instead of an escaping
  /// exception.
  [[nodiscard]] static Result<nn::Network> AssembleReleased(
      const core::TrainingServer::ReleasedModel& released,
      BytesView participant_key);

  /// The query stage (valid in phase serving; nullptr before).
  [[nodiscard]] core::QueryService* query_service() noexcept {
    return query_.has_value() ? &*query_ : nullptr;
  }

  /// The fronted training server — the networking layer needs its
  /// attestation surface (handshake tunneling) and upload counters.
  [[nodiscard]] core::TrainingServer& server() noexcept { return server_; }

 private:
  struct Session {
    explicit Session(std::string pid) : participant_id(std::move(pid)) {}
    std::string participant_id;
    SessionId id = 0;
    // All tallies guarded by the owning Service's state_mu_ — the
    // capability language cannot name the outer class's mutex from a
    // nested struct, so these stay convention-documented.
    bool open = true;
    std::size_t submitted = 0;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t outstanding_batches = 0;
    /// Set by CloseUploadSessionAsync when batches are still in
    /// flight; fired (and the session retired) by whichever commit or
    /// abort drains the last one.
    std::function<void(Result<SessionStats>)> close_cb;
  };

  struct Submission {
    /// Completion callback (the future API wraps a promise in one).
    /// Invoked exactly once, guarded by `done`.
    std::function<void(Result<UploadReceipt>)> done_cb;
    std::shared_ptr<Session> session;
    std::size_t submitted = 0;
    // Guarded by the owning Service's state_mu_ (convention; see
    // Session above).
    std::size_t remaining_batches = 0;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    bool done = false;
  };

  /// A close callback due to fire, detached from the session under
  /// state_mu_ and invoked after the lock (and any group commit) drops.
  struct PendingClose {
    std::function<void(Result<SessionStats>)> callback;
    SessionStats stats;
  };

  /// If `sess` was closed and just drained, retires it and moves its
  /// close callback (with final stats) onto `closers`.
  void CollectClosedSessionLocked(Session& sess,
                                  std::vector<PendingClose>& closers)
      REQUIRES(state_mu_);

  struct IngestBatch {
    std::uint64_t seq = 0;
    std::vector<data::EncryptedRecord> records;
    std::shared_ptr<Submission> submission;
  };

  struct AuthedBatch {
    std::vector<data::EncryptedRecord> records;
    std::vector<char> accepted;
    std::shared_ptr<Submission> submission;
    /// Pre-encoded kCommitBatch journal payload (built off the commit
    /// lock by the ingest worker; empty when not journaling).
    Bytes wal_event;
    /// Authentication failed permanently (transient retries exhausted
    /// or a non-transient error); the batch commits nothing and the
    /// submission resolves with `fail_kind`.
    bool failed = false;
    ServeErrorKind fail_kind = ServeErrorKind::kInternal;
    std::string fail_message;
  };

  // Ingest workers (pool tasks).
  void MaybeSpawnPump();
  void PumpIngest();
  void ProcessBatch(IngestBatch batch);
  void Commit(std::uint64_t seq, AuthedBatch batch);
  void FinishPoolOp();

  // Durability plumbing.
  Service(core::TrainingServer& server, ServiceConfig config, bool recover);
  void OpenFreshLog();
  void RecoverFromLog();
  void EnterDegraded(const std::string& why);
  /// Journals a fresh participant-directory snapshot if provisioning
  /// moved past the last version logged.
  void JournalDirectoryLocked() REQUIRES(state_mu_);
  /// Strand-side: journal one phase-transition/release event (plus a
  /// directory refresh) and group-sync it.  Returns an error on
  /// degradation, nullopt on success.
  std::optional<ServeError> JournalControlEvent(
      const std::function<void()>& append);

  // Workspace pool for single-probe investigate requests (avoids one
  // full LayerWorkspace allocation per query on the serving path).
  std::unique_ptr<nn::LayerWorkspace> AcquireQueryWorkspace();
  void RecycleQueryWorkspace(std::unique_ptr<nn::LayerWorkspace> ws);

  /// Runs `fn` and folds any escaping exception into the typed
  /// taxonomy — the single boundary between throwing core code and
  /// serve::Result, shared by the strand, the query plane, and
  /// AssembleReleased.
  template <typename T, typename Fn>
  [[nodiscard]] static Result<T> Guarded(Fn&& fn) {
    try {
      return std::forward<Fn>(fn)();
    } catch (const Error& e) {
      return Result<T>(FromError(e));
    } catch (const std::exception& e) {
      return Result<T>(ServeError{ServeErrorKind::kInternal, e.what()});
    }
  }

  // Strand scheduler.
  void StrandLoop();

  /// Enqueues `fn` on the strand and feeds its Guarded result to
  /// `done` (from the strand thread; synchronously from the caller
  /// when the strand is already stopped).
  template <typename T, typename Fn>
  void ScheduleAsync(Fn fn, std::function<void(Result<T>)> done) {
    {
      util::MutexLock lock(strand_mu_);
      if (!strand_stop_) {
        strand_queue_.emplace_back(
            [fn = std::move(fn), done = std::move(done)]() mutable {
              done(Guarded<T>(fn));
            });
        lock.Unlock();
        strand_cv_.NotifyOne();
        return;
      }
    }
    done(Result<T>(
        ServeError{ServeErrorKind::kWrongPhase, "service is shutting down"}));
  }

  template <typename T, typename Fn>
  std::future<Result<T>> Schedule(Fn fn) {
    auto prom = std::make_shared<std::promise<Result<T>>>();
    std::future<Result<T>> fut = prom->get_future();
    ScheduleAsync<T>(std::move(fn), std::function<void(Result<T>)>(
                                        [prom](Result<T> result) {
                                          prom->set_value(std::move(result));
                                        }));
    return fut;
  }

  core::TrainingServer& server_;
  ServiceConfig config_;
  unsigned max_pumps_;
  util::ThreadPool& pool_;

  // Durability state.  log_ is set once in the constructor (before any
  // worker thread exists) and never reassigned.
  std::unique_ptr<persist::ServiceLog> log_;
  std::atomic<bool> degraded_{false};
  std::uint64_t logged_directory_version_ GUARDED_BY(state_mu_) = 0;
  std::uint64_t model_snapshots_ = 0;    ///< strand-only
  std::uint64_t linkage_snapshots_ = 0;  ///< strand-only

  // Enqueue side: ingest_mu_ orders ticket assignment, makes the
  // reject-policy capacity check all-or-nothing, and fences phase
  // transitions against in-flight enqueues.  Lock order: ingest_mu_
  // before state_mu_; never the reverse.
  util::Mutex ingest_mu_;
  std::uint64_t next_enqueue_seq_ GUARDED_BY(ingest_mu_) = 0;
  std::atomic<Phase> phase_{Phase::kIngest};
  util::BoundedQueue<IngestBatch> queue_;

  std::atomic<unsigned> active_pumps_{0};
  std::atomic<std::size_t> inflight_pool_ops_{0};

  // Commit side (reorder buffer, sessions, drain barrier).
  util::Mutex state_mu_;
  util::CondVar progress_cv_;
  std::uint64_t next_commit_seq_ GUARDED_BY(state_mu_) = 0;
  std::map<std::uint64_t, AuthedBatch> ready_ GUARDED_BY(state_mu_);
  std::map<SessionId, std::shared_ptr<Session>> sessions_
      GUARDED_BY(state_mu_);
  SessionId next_session_id_ GUARDED_BY(state_mu_) = 1;

  // Strand.
  std::thread strand_;
  util::Mutex strand_mu_;
  util::CondVar strand_cv_;
  std::deque<std::function<void()>> strand_queue_ GUARDED_BY(strand_mu_);
  bool strand_stop_ GUARDED_BY(strand_mu_) = false;

  std::optional<core::QueryService> query_;
  util::Mutex query_ws_mu_;
  std::vector<std::unique_ptr<nn::LayerWorkspace>> query_ws_pool_
      GUARDED_BY(query_ws_mu_);
};

}  // namespace caltrain::serve
