#include "serve/service.hpp"

#include <algorithm>
#include <iterator>

#include "persist/snapshot.hpp"
#include "util/log.hpp"

namespace caltrain::serve {

Service::Service(core::TrainingServer& server, ServiceConfig config)
    : Service(server, std::move(config), /*recover=*/false) {}

Service::Service(core::TrainingServer& server, ServiceConfig config,
                 bool recover)
    : server_(server),
      config_(std::move(config)),
      max_pumps_(std::max(1U, config_.ingest_workers != 0
                                   ? config_.ingest_workers
                                   : util::Parallelism::threads())),
      pool_(util::ThreadPool::Global()),
      queue_(std::max<std::size_t>(1, config_.queue_capacity),
             config_.backpressure) {
  config_.ingest_batch = std::max<std::size_t>(1, config_.ingest_batch);
  if (!config_.durable_dir.empty()) {
    // Both paths run before any worker thread exists, so recovery and
    // the fresh-journal probe need no locking.
    if (recover) {
      RecoverFromLog();
    } else {
      OpenFreshLog();
    }
  } else {
    CALTRAIN_REQUIRE(!recover, "Recover requires config.durable_dir");
  }
  // Pumps are pool tasks: with zero workers the pool would run them
  // inline on the producer, which is correct but not asynchronous.
  pool_.EnsureWorkers(max_pumps_);
  strand_ = std::thread([this] { StrandLoop(); });
}

Result<std::unique_ptr<Service>> Service::Recover(
    core::TrainingServer& server, ServiceConfig config) {
  try {
    return std::unique_ptr<Service>(
        new Service(server, std::move(config), /*recover=*/true));
  } catch (const Error& e) {
    if (e.kind() == ErrorKind::kInvalidArgument) {
      // Every kInvalidArgument the persist layer can throw during
      // replay is corruption: a bad journal header, a malformed event
      // inside a CRC-valid frame, or a snapshot CRC mismatch.
      return ServeError{ServeErrorKind::kCorruptJournal, e.what()};
    }
    return FromError(e);
  } catch (const std::exception& e) {
    return ServeError{ServeErrorKind::kInternal, e.what()};
  }
}

void Service::OpenFreshLog() {
  const std::string path =
      persist::ServiceLog::JournalPath(config_.durable_dir);
  const persist::ScanReport scan = persist::ScanJournal(path, [](BytesView) {});
  if (scan.exists && !scan.header_valid) {
    ThrowError(ErrorKind::kInvalidArgument,
               "journal '" + path + "' exists but its header is corrupt");
  }
  if (scan.frames > 0) {
    ThrowError(ErrorKind::kFailedPrecondition,
               "journal '" + path + "' already holds " +
                   std::to_string(scan.frames) +
                   " event(s); use Service::Recover instead of "
                   "constructing a fresh service over recoverable state");
  }
  log_ = persist::ServiceLog::Open(config_.durable_dir, config_.journal_sync,
                                   scan.valid_bytes);
}

void Service::RecoverFromLog() {
  CALTRAIN_REQUIRE(server_.accepted_records() == 0 &&
                       server_.rejected_records() == 0,
                   "Recover requires a freshly constructed server");
  const std::string& dir = config_.durable_dir;

  Bytes directory_blob;
  std::uint64_t directory_version = 0;
  bool have_directory = false;
  Phase phase = Phase::kIngest;
  std::string model_file;
  int front_layers = 0;
  bool have_model = false;
  std::string linkage_file;
  int fingerprint_layer = -1;
  std::uint64_t next_seq = 0;

  persist::ReplayVisitor visitor;
  visitor.on_directory = [&](persist::DirectoryEvent event) {
    directory_blob = std::move(event.blob);
    directory_version = event.version;
    have_directory = true;
  };
  visitor.on_commit = [&](persist::CommitBatchEvent event) {
    if (event.seq != next_seq) {
      ThrowError(ErrorKind::kInvalidArgument,
                 "journal commit ticket " + std::to_string(event.seq) +
                     " out of order (expected " + std::to_string(next_seq) +
                     ")");
    }
    // Replaying CommitRecords in ticket order reproduces the exact
    // record sequence — and accept/reject counters — the crashed
    // process acknowledged.
    (void)server_.CommitRecords(event.records, event.accepted);
    ++next_seq;
  };
  visitor.on_train_complete = [&](persist::TrainCompleteEvent event) {
    model_file = std::move(event.model_file);
    front_layers = event.front_layers;
    have_model = true;
    phase = Phase::kTrained;
    ++model_snapshots_;
  };
  visitor.on_fingerprint_complete =
      [&](persist::FingerprintCompleteEvent event) {
        linkage_file = std::move(event.linkage_file);
        fingerprint_layer = event.fingerprint_layer;
        phase = Phase::kServing;
        ++linkage_snapshots_;
      };
  visitor.on_reopen_ingest = [&] { phase = Phase::kIngest; };
  // Releases mutate nothing recoverable; they are an audit trail.

  const persist::ScanReport scan = persist::ServiceLog::Replay(dir, visitor);
  if (scan.truncated_bytes > 0) {
    CALTRAIN_LOG(kWarn) << "[serve] recovery dropped "
                        << scan.truncated_bytes
                        << " torn journal byte(s) after "
                        << scan.frames << " valid event(s)";
  }

  const auto snapshot_bytes = [&dir](const std::string& file) -> Bytes {
    std::optional<Bytes> blob = persist::ReadSnapshot(dir + "/" + file);
    if (!blob.has_value()) {
      ThrowError(ErrorKind::kInvalidArgument,
                 "journal references missing snapshot '" + file + "'");
    }
    return std::move(*blob);
  };

  if (have_directory) {
    server_.RestoreDirectory(directory_blob, directory_version);
  }
  if (have_model) {
    server_.RestoreModel(snapshot_bytes(model_file), front_layers);
  }
  if (phase == Phase::kServing) {
    linkage::LinkageDatabase db =
        linkage::LinkageDatabase::Deserialize(snapshot_bytes(linkage_file));
    // Same query-stage stand-up as SubmitFingerprint: the query model
    // is a clone of the restored (bit-identical) trained model.
    const nn::Network& model = server_.model();
    nn::Network clone(model.spec());
    clone.DeserializeWeightRange(
        0, clone.NumLayers(),
        model.SerializeWeightRange(0, model.NumLayers()));
    query_.emplace(std::move(clone), std::move(db), fingerprint_layer);
  }

  {
    // No worker thread exists yet (the strand starts after the
    // delegating constructor returns), but RecoverFromLog is an
    // ordinary member function, so it takes the locks the members it
    // writes are guarded by — uncontended, and the analysis can prove
    // the accesses instead of special-casing them.  Lock order:
    // ingest_mu_ before state_mu_.
    util::MutexLock ingest_lock(ingest_mu_);
    util::MutexLock state_lock(state_mu_);
    next_enqueue_seq_ = next_seq;
    next_commit_seq_ = next_seq;
    logged_directory_version_ = directory_version;
  }
  phase_.store(phase, std::memory_order_release);
  log_ = persist::ServiceLog::Open(dir, config_.journal_sync,
                                   scan.valid_bytes);
}

void Service::EnterDegraded(const std::string& why) {
  bool expected = false;
  if (degraded_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    CALTRAIN_LOG(kError)
        << "[serve] durability journal unwritable — degrading to "
           "read-only investigate mode: "
        << why;
  }
}

void Service::JournalDirectoryLocked() {
  const std::uint64_t version = server_.directory_version();
  if (version == logged_directory_version_) return;
  persist::DirectoryEvent event;
  event.version = version;
  event.blob = server_.SerializeDirectory();
  (void)log_->AppendDirectory(event);
  logged_directory_version_ = version;
}

std::optional<ServeError> Service::JournalControlEvent(
    const std::function<void()>& append) {
  if (log_ == nullptr) return std::nullopt;
  if (degraded()) {
    return ServeError{ServeErrorKind::kDegraded,
                      "durability journal unwritable; service is read-only"};
  }
  try {
    {
      util::MutexLock lock(state_mu_);
      util::RetryTransient(config_.backoff, [&] {
        // Capabilities do not flow into lambda bodies; the enclosing
        // scope holds state_mu_, which JournalDirectoryLocked requires.
        state_mu_.AssertHeld();
        JournalDirectoryLocked();
        append();
      });
    }
    util::RetryTransient(config_.backoff, [&] { log_->Sync(); });
  } catch (const Error& e) {
    EnterDegraded(e.what());
    return ServeError{ServeErrorKind::kDegraded, e.what()};
  }
  return std::nullopt;
}

Service::~Service() {
  // 1. Stop new ingest; wait for in-flight pool work (pumps and
  // investigate tasks reference `this`).
  queue_.Close();
  {
    util::MutexLock lock(state_mu_);
    while (inflight_pool_ops_.load(std::memory_order_acquire) != 0) {
      progress_cv_.Wait(lock);
    }
  }
  // 2. Drain anything the pumps left behind (Close keeps queued items
  // poppable), so every submission's future still resolves.
  while (std::optional<IngestBatch> item = queue_.TryPop()) {
    ProcessBatch(std::move(*item));
  }
  // 3. Run the strand dry (pending control-plane futures resolve), then
  // stop it.
  {
    util::MutexLock lock(strand_mu_);
    strand_stop_ = true;
  }
  strand_cv_.NotifyAll();
  if (strand_.joinable()) strand_.join();
}

// ---------------------------------------------------------------- sessions

Result<SessionId> Service::OpenUploadSession(
    const std::string& participant_id) {
  if (degraded()) {
    return ServeError{ServeErrorKind::kDegraded,
                      "durability journal unwritable; service is read-only"};
  }
  const Phase p = phase();
  if (p != Phase::kIngest) {
    return ServeError{ServeErrorKind::kWrongPhase,
                      std::string("cannot open an upload session in phase ") +
                          ToString(p)};
  }
  if (!server_.IsProvisioned(participant_id)) {
    return ServeError{
        ServeErrorKind::kUnprovisionedParticipant,
        "participant '" + participant_id + "' has no provisioned key"};
  }
  util::MutexLock lock(state_mu_);
  const SessionId id = next_session_id_++;
  auto session = std::make_shared<Session>(participant_id);
  session->id = id;
  sessions_.emplace(id, std::move(session));
  return id;
}

std::future<Result<UploadReceipt>> Service::SubmitUpload(
    SessionId session, std::vector<data::EncryptedRecord> records) {
  auto prom = std::make_shared<std::promise<Result<UploadReceipt>>>();
  std::future<Result<UploadReceipt>> fut = prom->get_future();
  SubmitUploadAsync(session, std::move(records),
                    [prom](Result<UploadReceipt> result) {
                      prom->set_value(std::move(result));
                    });
  return fut;
}

void Service::SubmitUploadAsync(
    SessionId session, std::vector<data::EncryptedRecord> records,
    std::function<void(Result<UploadReceipt>)> done,
    std::optional<util::BackpressurePolicy> backpressure) {
  auto sub = std::make_shared<Submission>();
  sub->done_cb = std::move(done);
  const auto fail = [&sub](ServeErrorKind kind, std::string message) {
    sub->done = true;
    sub->done_cb(Result<UploadReceipt>(ServeError{kind, std::move(message)}));
  };
  sub->submitted = records.size();

  // The per-submission override only changes how THIS producer meets a
  // full queue; the queue itself keeps its configured policy.
  const util::BackpressurePolicy policy =
      backpressure.value_or(config_.backpressure);
  const std::size_t batch = config_.ingest_batch;
  const std::size_t n_batches = (records.size() + batch - 1) / batch;
  // The submission-wide deadline starts at entry, so a slow producer
  // spanning many batches cannot block past submit_timeout in total.
  const bool use_deadline = config_.submit_timeout.count() > 0 &&
                            policy == util::BackpressurePolicy::kBlock;
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() + config_.submit_timeout;

  // ingest_mu_ orders ticket assignment across producers and fences the
  // enqueue against a phase flip by SubmitTrain.
  util::MutexLock ingest_lock(ingest_mu_);
  if (degraded()) {
    fail(ServeErrorKind::kDegraded,
         "durability journal unwritable; service is read-only");
    return;
  }
  if (phase_.load(std::memory_order_acquire) != Phase::kIngest) {
    fail(ServeErrorKind::kWrongPhase,
         std::string("uploads are not accepted in phase ") +
             ToString(phase()));
    return;
  }
  {
    util::MutexLock state_lock(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second->open) {
      fail(ServeErrorKind::kInvalidArgument,
           "unknown or closed upload session");
      return;
    }
    if (records.empty()) {
      sub->done = true;
      sub->done_cb(Result<UploadReceipt>(UploadReceipt{}));
      return;
    }
    if (policy == util::BackpressurePolicy::kReject) {
      if (n_batches > queue_.capacity()) {
        // Retrying can never help: the submission does not fit an
        // empty queue.  Tell the client to split it instead of
        // feeding a retry loop with kQueueSaturated.
        fail(ServeErrorKind::kInvalidArgument,
             "submission needs " + std::to_string(n_batches) +
                 " batches but the ingest queue holds " +
                 std::to_string(queue_.capacity()) +
                 "; split the submission");
        return;
      }
      if (queue_.size() + n_batches > queue_.capacity()) {
        // All-or-nothing: a submission is never partially ingested.
        fail(ServeErrorKind::kQueueSaturated,
             "ingest queue full (" + std::to_string(queue_.size()) + "/" +
                 std::to_string(queue_.capacity()) + " batches)");
        return;
      }
    }
    sub->session = it->second;
    sub->remaining_batches = n_batches;
    sub->session->submitted += records.size();
    sub->session->outstanding_batches += n_batches;
  }

  std::size_t pushed = 0;
  // Unwinds a push that could not complete (queue closed, or the
  // submit_timeout deadline hit while the queue was full).  With
  // nothing enqueued this is a clean all-or-nothing rejection,
  // invisible in the session tallies; with a prefix enqueued, that
  // prefix still commits and the receipt reports the honest partial
  // tally (accepted+rejected < submitted tells the caller how far the
  // stream got).
  const auto abort_push = [&](ServeErrorKind kind, std::string message) {
    std::optional<Result<UploadReceipt>> resolution;
    std::vector<PendingClose> closers;
    {
      util::MutexLock state_lock(state_mu_);
      const std::size_t unenqueued = n_batches - pushed;
      sub->remaining_batches -= unenqueued;
      sub->session->outstanding_batches -= unenqueued;
      if (pushed == 0) {
        sub->session->submitted -= sub->submitted;
        if (!sub->done) {
          sub->done = true;
          resolution.emplace(ServeError{kind, std::move(message)});
        }
      } else if (sub->remaining_batches == 0 && !sub->done) {
        sub->done = true;
        resolution.emplace(
            UploadReceipt{sub->submitted, sub->accepted, sub->rejected});
      }
      // else: the in-flight prefix resolves the submission with the
      // partial receipt when its last batch commits.
      CollectClosedSessionLocked(*sub->session, closers);
    }
    if (resolution.has_value() && resolution->ok() && pushed > 0 &&
        log_ != nullptr && !degraded()) {
      // The committed prefix is about to be acknowledged; its journal
      // frames must be on disk first (same contract as Commit).
      try {
        util::RetryTransient(config_.backoff, [&] { log_->Sync(); });
      } catch (const Error& e) {
        EnterDegraded(e.what());
        resolution.emplace(ServeError{ServeErrorKind::kDegraded, e.what()});
      }
    }
    if (resolution.has_value()) {
      sub->done_cb(std::move(*resolution));
    }
    for (PendingClose& close : closers) {
      close.callback(Result<SessionStats>(std::move(close.stats)));
    }
    progress_cv_.NotifyAll();
  };
  for (std::size_t first = 0; first < records.size(); first += batch) {
    const std::size_t last = std::min(records.size(), first + batch);
    IngestBatch item;
    item.seq = next_enqueue_seq_;
    item.submission = sub;
    item.records.assign(std::make_move_iterator(records.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    first)),
                        std::make_move_iterator(records.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    last)));
    if (policy == util::BackpressurePolicy::kReject) {
      // The capacity precheck above ran under ingest_mu_, which every
      // producer holds; consumers only shrink the queue, so a failed
      // TryPush here can only mean the queue was closed for shutdown.
      if (!queue_.TryPush(std::move(item))) {
        abort_push(ServeErrorKind::kWrongPhase, "service is shutting down");
        return;
      }
    } else if (use_deadline) {
      // Deadline-aware wait for queue room: the producer is throttled,
      // but never for longer than submit_timeout across the whole
      // submission.
      const util::PushResult result =
          queue_.PushUntil(std::move(item), deadline);
      if (result == util::PushResult::kTimedOut) {
        abort_push(ServeErrorKind::kTimeout,
                   "ingest queue still full after " +
                       std::to_string(config_.submit_timeout.count()) +
                       "ms; nothing further was enqueued");
        return;
      }
      if (result == util::PushResult::kClosed) {
        abort_push(ServeErrorKind::kWrongPhase, "service is shutting down");
        return;
      }
    } else if (queue_.policy() == util::BackpressurePolicy::kBlock) {
      if (!queue_.Push(std::move(item))) {
        // Under kBlock this waits for queue room (backpressure
        // throttles the producer); it only fails once the service is
        // shutting down — a permanent condition, so not the retryable
        // kQueueSaturated.
        abort_push(ServeErrorKind::kWrongPhase, "service is shutting down");
        return;
      }
    } else {
      // kBlock override on a kReject-configured queue (whose plain
      // Push would bounce instead of waiting): wait without a deadline.
      const util::PushResult result = queue_.PushUntil(
          std::move(item), std::chrono::steady_clock::time_point::max());
      if (result == util::PushResult::kTimedOut) {
        // Only reachable through the queue.push fault point — there is
        // no real deadline to miss.
        abort_push(ServeErrorKind::kTimeout,
                   "ingest queue wait failed; nothing further was enqueued");
        return;
      }
      if (result == util::PushResult::kClosed) {
        abort_push(ServeErrorKind::kWrongPhase, "service is shutting down");
        return;
      }
    }
    ++next_enqueue_seq_;  // a ticket exists only for enqueued batches
    ++pushed;
    MaybeSpawnPump();
  }
}

Result<SessionStats> Service::CloseUploadSession(SessionId session) {
  // The callback path resolves either synchronously (drained session)
  // or from whichever ingest worker commits the last outstanding batch,
  // so the future below never deadlocks on this thread.
  auto prom = std::make_shared<std::promise<Result<SessionStats>>>();
  std::future<Result<SessionStats>> fut = prom->get_future();
  CloseUploadSessionAsync(session, [prom](Result<SessionStats> result) {
    prom->set_value(std::move(result));
  });
  return fut.get();
}

void Service::CloseUploadSessionAsync(
    SessionId session, std::function<void(Result<SessionStats>)> done) {
  std::optional<Result<SessionStats>> immediate;
  {
    util::MutexLock lock(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      immediate.emplace(ServeError{ServeErrorKind::kInvalidArgument,
                                   "unknown upload session"});
    } else if (!it->second->open) {
      immediate.emplace(ServeError{ServeErrorKind::kInvalidArgument,
                                   "upload session already closed"});
    } else {
      Session& sess = *it->second;
      sess.open = false;
      if (sess.outstanding_batches == 0) {
        // Retire the bookkeeping — a closed session can never be used
        // again, and a long-lived service must not accumulate dead
        // sessions.
        SessionStats stats;
        stats.participant_id = sess.participant_id;
        stats.submitted = sess.submitted;
        stats.accepted = sess.accepted;
        stats.rejected = sess.rejected;
        sessions_.erase(it);
        immediate.emplace(std::move(stats));
      } else {
        // The commit (or abort) that drains the last batch fires this.
        sess.close_cb = std::move(done);
      }
    }
  }
  if (immediate.has_value()) done(std::move(*immediate));
}

void Service::CollectClosedSessionLocked(Session& sess,
                                         std::vector<PendingClose>& closers) {
  if (sess.open || sess.outstanding_batches != 0 || !sess.close_cb) return;
  PendingClose close;
  close.callback = std::move(sess.close_cb);
  close.stats.participant_id = sess.participant_id;
  close.stats.submitted = sess.submitted;
  close.stats.accepted = sess.accepted;
  close.stats.rejected = sess.rejected;
  closers.push_back(std::move(close));
  // The Submission shared_ptrs keep the Session object alive; only the
  // id lookup is retired here.
  sessions_.erase(sess.id);
}

void Service::DrainIngest() {
  std::uint64_t target = 0;
  {
    util::MutexLock lock(ingest_mu_);
    target = next_enqueue_seq_;
  }
  util::MutexLock lock(state_mu_);
  while (next_commit_seq_ < target) progress_cv_.Wait(lock);
}

// ------------------------------------------------------------ ingest pumps

void Service::MaybeSpawnPump() {
  unsigned cur = active_pumps_.load(std::memory_order_relaxed);
  while (cur < max_pumps_) {
    if (active_pumps_.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel)) {
      inflight_pool_ops_.fetch_add(1, std::memory_order_relaxed);
      pool_.Submit([this] {
        PumpIngest();
        FinishPoolOp();
      });
      return;
    }
  }
}

void Service::PumpIngest() {
  for (;;) {
    std::optional<IngestBatch> item = queue_.TryPop();
    if (item.has_value()) {
      ProcessBatch(std::move(*item));
      continue;
    }
    // The queue looked empty: retire this pump's slot, then re-check —
    // a producer that saw the slot occupied may have skipped spawning.
    active_pumps_.fetch_sub(1, std::memory_order_acq_rel);
    if (queue_.empty()) return;
    unsigned cur = active_pumps_.load(std::memory_order_relaxed);
    bool reacquired = false;
    while (cur < max_pumps_) {
      if (active_pumps_.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_acq_rel)) {
        reacquired = true;
        break;
      }
    }
    if (!reacquired) return;  // every slot is busy; they will drain it
  }
}

void Service::ProcessBatch(IngestBatch batch) {
  const std::uint64_t seq = batch.seq;
  AuthedBatch done;
  try {
    // The whole batch is authenticated under ONE enclave transition —
    // this is the ECALL amortization the async API exists for.
    // Transient failures (fault-injected EIO, flaky enclave
    // transitions) are retried with capped backoff before the batch is
    // failed for good.
    util::RetryTransient(config_.backoff, [&] {
      if (util::FaultInjector::Global().armed()) {
        (void)util::FaultPoint("serve.auth");
      }
      done.accepted =
          server_.AuthenticateRecords(batch.records, batch.records.size());
    });
  } catch (const Error& e) {
    done.failed = true;
    done.fail_kind = e.kind() == ErrorKind::kUnavailable
                         ? ServeErrorKind::kRetryExhausted
                         : ServeErrorKind::kInternal;
    done.fail_message = e.what();
    done.accepted.assign(batch.records.size(), 0);
  }
  done.records = std::move(batch.records);
  done.submission = std::move(batch.submission);
  if (!done.failed && log_ != nullptr) {
    // Pre-encode the journal frame here, on the parallel worker, so the
    // commit lock only pays for the raw append.  The ticket IS the
    // event seq, so encoding before commit order is settled is safe.
    persist::CommitBatchEvent event;
    event.seq = seq;
    event.records = std::move(done.records);
    event.accepted = done.accepted;
    done.wal_event = persist::EncodeCommitBatch(event);
    done.records = std::move(event.records);
  }
  Commit(seq, std::move(done));
}

void Service::Commit(std::uint64_t seq, AuthedBatch batch) {
  // Futures whose terminal batch committed in this call.  Success
  // receipts must not be handed to the caller until the journal frames
  // backing them are synced (sync-before-acknowledge), so resolutions
  // are collected under the lock and fired after the group commit.
  struct Resolution {
    std::shared_ptr<Submission> submission;
    Result<UploadReceipt> result;
  };
  std::vector<Resolution> resolutions;
  std::vector<PendingClose> closers;
  bool ack_needs_sync = false;
  {
    util::MutexLock lock(state_mu_);
    ready_.emplace(seq, std::move(batch));
    // Authentication finishes out of order across pumps; commits are
    // reordered back to ticket order so the async record sequence is
    // identical to the synchronous one.
    while (!ready_.empty() && ready_.begin()->first == next_commit_seq_) {
      AuthedBatch b = std::move(ready_.begin()->second);
      ready_.erase(ready_.begin());
      if (!b.failed && degraded_.load(std::memory_order_acquire)) {
        b.failed = true;
        b.fail_kind = ServeErrorKind::kDegraded;
        b.fail_message =
            "durability journal unwritable; service is read-only";
      }
      if (!b.failed && log_ != nullptr) {
        // Journal-before-apply: the frame reaches the OS before the
        // records reach the store, so a crash can lose an acknowledged
        // suffix but never commit records the journal doesn't know.
        try {
          util::RetryTransient(config_.backoff, [&] {
            // The enclosing Commit scope holds state_mu_ (lambdas do
            // not inherit capabilities).
            state_mu_.AssertHeld();
            JournalDirectoryLocked();
            (void)log_->journal().Append(b.wal_event);
          });
          ack_needs_sync = true;
        } catch (const Error& e) {
          EnterDegraded(e.what());
          b.failed = true;
          b.fail_kind = ServeErrorKind::kDegraded;
          b.fail_message = e.what();
        }
      }
      Submission& sub = *b.submission;
      Session& sess = *sub.session;
      if (!b.failed) {
        const std::size_t ok = server_.CommitRecords(b.records, b.accepted);
        const std::size_t bad = b.records.size() - ok;
        sub.accepted += ok;
        sub.rejected += bad;
        sess.accepted += ok;
        sess.rejected += bad;
      }
      // A failed batch leaves its records out of the tallies entirely:
      // accepted+rejected < submitted tells the caller those records
      // were never evaluated and must be resubmitted.
      --sess.outstanding_batches;
      const bool last = --sub.remaining_batches == 0;
      if (b.failed && !sub.done) {
        // Fail-first: the submission's future carries the first error;
        // later batches of the same submission still commit (the
        // record-store prefix stays contiguous) but cannot un-fail it.
        sub.done = true;
        resolutions.push_back(
            {b.submission,
             Result<UploadReceipt>(
                 ServeError{b.fail_kind, b.fail_message})});
      } else if (last && !sub.done) {
        sub.done = true;
        resolutions.push_back(
            {b.submission,
             Result<UploadReceipt>(UploadReceipt{
                 sub.submitted, sub.accepted, sub.rejected})});
      }
      CollectClosedSessionLocked(sess, closers);
      ++next_commit_seq_;  // tickets advance even for failed batches
    }
  }
  if (ack_needs_sync && log_ != nullptr &&
      std::any_of(resolutions.begin(), resolutions.end(),
                  [](const Resolution& r) { return r.result.ok(); })) {
    // Group commit: one fdatasync covers every frame appended up to
    // here, and it only runs when this call is about to acknowledge a
    // receipt.  Un-synced frames behind an un-acknowledged submission
    // are safe — the caller will resubmit from the recovered tally.
    try {
      util::RetryTransient(config_.backoff, [&] { log_->Sync(); });
    } catch (const Error& e) {
      EnterDegraded(e.what());
      for (Resolution& r : resolutions) {
        if (r.result.ok()) {
          // The records are applied in memory but their durability is
          // unknown; an honest receipt is impossible.
          r.result = Result<UploadReceipt>(
              ServeError{ServeErrorKind::kDegraded, e.what()});
        }
      }
    }
  }
  for (Resolution& r : resolutions) {
    r.submission->done_cb(std::move(r.result));
  }
  // Close acknowledgements fire after the receipts they waited on.
  for (PendingClose& close : closers) {
    close.callback(Result<SessionStats>(std::move(close.stats)));
  }
  progress_cv_.NotifyAll();
}

void Service::FinishPoolOp() {
  // Decrement and notify under the lock: the destructor destroys this
  // condition variable as soon as its wait observes zero, so the
  // notify must complete before the waiter can re-acquire the mutex.
  util::MutexLock lock(state_mu_);
  inflight_pool_ops_.fetch_sub(1, std::memory_order_acq_rel);
  progress_cv_.NotifyAll();
}

// ------------------------------------------------------------ control plane

void Service::StrandLoop() {
  for (;;) {
    std::function<void()> job;
    {
      util::MutexLock lock(strand_mu_);
      while (!strand_stop_ && strand_queue_.empty()) strand_cv_.Wait(lock);
      if (strand_queue_.empty()) {
        if (strand_stop_) return;
        continue;
      }
      job = std::move(strand_queue_.front());
      strand_queue_.pop_front();
    }
    job();
  }
}

std::future<Result<core::TrainReport>> Service::SubmitTrain(
    nn::NetworkSpec spec, core::PartitionedTrainOptions options) {
  return Schedule<core::TrainReport>(
      [this, spec = std::move(spec),
       options = std::move(options)]() -> Result<core::TrainReport> {
        {
          // Under ingest_mu_, so no upload can slip between the phase
          // flip and the drain target snapshot.
          util::MutexLock lock(ingest_mu_);
          if (degraded()) {
            return ServeError{
                ServeErrorKind::kDegraded,
                "durability journal unwritable; service is read-only"};
          }
          const Phase p = phase_.load(std::memory_order_acquire);
          if (p != Phase::kIngest && p != Phase::kTrained) {
            return ServeError{ServeErrorKind::kWrongPhase,
                              std::string("cannot train in phase ") +
                                  ToString(p)};
          }
          phase_.store(Phase::kTraining, std::memory_order_release);
        }
        DrainIngest();
        try {
          core::TrainReport report = server_.Train(spec, options);
          if (log_ != nullptr) {
            // Snapshot first, then the journal event that names it —
            // a crash between the two leaves an orphan file, never a
            // dangling reference.  A crash before the event replays to
            // kIngest and the deterministic pipeline retrains the
            // bit-identical model.
            const std::string file =
                "model-" + std::to_string(++model_snapshots_) + ".snap";
            try {
              util::RetryTransient(config_.backoff, [&] {
                persist::WriteSnapshot(config_.durable_dir + "/" + file,
                                       server_.model().SerializeModel());
              });
            } catch (const Error& e) {
              EnterDegraded(e.what());
              phase_.store(Phase::kIngest, std::memory_order_release);
              return ServeError{ServeErrorKind::kDegraded, e.what()};
            }
            persist::TrainCompleteEvent event;
            event.model_file = file;
            event.front_layers = server_.released_front_layers();
            if (std::optional<ServeError> err = JournalControlEvent(
                    [&] { (void)log_->AppendTrainComplete(event); })) {
              phase_.store(Phase::kIngest, std::memory_order_release);
              return *err;
            }
          }
          phase_.store(Phase::kTrained, std::memory_order_release);
          return report;
        } catch (...) {
          // Any failure — typed or not — must reopen ingestion, or the
          // service would be stuck in kTraining forever; the strand's
          // Guarded wrapper folds the rethrown exception into the
          // taxonomy.
          phase_.store(Phase::kIngest, std::memory_order_release);
          throw;
        }
      });
}

std::future<Result<std::size_t>> Service::SubmitFingerprint(
    int fingerprint_layer) {
  return Schedule<std::size_t>(
      [this, fingerprint_layer]() -> Result<std::size_t> {
        {
          // Check-and-flip under ingest_mu_, like SubmitTrain: a
          // concurrent ReopenIngest must either win (and fail this
          // request) or lose (and get kWrongPhase) — never be
          // clobbered by the kServing store below.
          util::MutexLock lock(ingest_mu_);
          if (degraded()) {
            return ServeError{
                ServeErrorKind::kDegraded,
                "durability journal unwritable; service is read-only"};
          }
          const Phase p = phase_.load(std::memory_order_acquire);
          if (p != Phase::kTrained) {
            return ServeError{ServeErrorKind::kWrongPhase,
                              std::string("cannot fingerprint in phase ") +
                                  ToString(p)};
          }
          phase_.store(Phase::kFingerprinting, std::memory_order_release);
        }
        try {
          // Escaping errors are folded into the taxonomy by the
          // strand's Guarded wrapper.
          linkage::LinkageDatabase db =
              server_.FingerprintAll(fingerprint_layer);
          const std::size_t size = db.size();
          if (log_ != nullptr) {
            // Snapshot-then-journal, like SubmitTrain; serialize before
            // the database is moved into the query stage.
            const std::string file =
                "linkage-" + std::to_string(++linkage_snapshots_) + ".snap";
            try {
              util::RetryTransient(config_.backoff, [&] {
                persist::WriteSnapshot(config_.durable_dir + "/" + file,
                                       db.Serialize());
              });
            } catch (const Error& e) {
              EnterDegraded(e.what());
              phase_.store(Phase::kTrained, std::memory_order_release);
              return ServeError{ServeErrorKind::kDegraded, e.what()};
            }
            persist::FingerprintCompleteEvent event;
            event.linkage_file = file;
            event.fingerprint_layer = fingerprint_layer;
            if (std::optional<ServeError> err = JournalControlEvent([&] {
                  (void)log_->AppendFingerprintComplete(event);
                })) {
              phase_.store(Phase::kTrained, std::memory_order_release);
              return *err;
            }
          }
          // The query stage gets its own clone of the trained model;
          // the server keeps its copy for release.
          const nn::Network& model = server_.model();
          nn::Network clone(model.spec());
          clone.DeserializeWeightRange(
              0, clone.NumLayers(),
              model.SerializeWeightRange(0, model.NumLayers()));
          query_.emplace(std::move(clone), std::move(db), fingerprint_layer);
          phase_.store(Phase::kServing, std::memory_order_release);
          return size;
        } catch (...) {
          phase_.store(Phase::kTrained, std::memory_order_release);
          throw;
        }
      });
}

std::future<Result<core::TrainingServer::ReleasedModel>>
Service::SubmitRelease(std::string participant_id) {
  auto prom = std::make_shared<
      std::promise<Result<core::TrainingServer::ReleasedModel>>>();
  std::future<Result<core::TrainingServer::ReleasedModel>> fut =
      prom->get_future();
  SubmitReleaseAsync(std::move(participant_id),
                     [prom](Result<core::TrainingServer::ReleasedModel> r) {
                       prom->set_value(std::move(r));
                     });
  return fut;
}

void Service::SubmitReleaseAsync(
    std::string participant_id,
    std::function<void(Result<core::TrainingServer::ReleasedModel>)> done) {
  ScheduleAsync<core::TrainingServer::ReleasedModel>(
      [this, participant_id = std::move(participant_id)]()
          -> Result<core::TrainingServer::ReleasedModel> {
        if (degraded()) {
          return ServeError{
              ServeErrorKind::kDegraded,
              "durability journal unwritable; service is read-only"};
        }
        const Phase p = phase();
        if (p != Phase::kTrained && p != Phase::kServing) {
          return ServeError{ServeErrorKind::kWrongPhase,
                            std::string("cannot release in phase ") +
                                ToString(p)};
        }
        if (!server_.IsProvisioned(participant_id)) {
          return ServeError{ServeErrorKind::kUnprovisionedParticipant,
                            "participant '" + participant_id +
                                "' has no provisioned key"};
        }
        core::TrainingServer::ReleasedModel released =
            server_.ReleaseModelFor(participant_id);
        // Audit trail: the release is durable before the caller holds
        // the model bytes.
        persist::ReleaseEvent event;
        event.participant_id = participant_id;
        if (std::optional<ServeError> err = JournalControlEvent(
                [&] { (void)log_->AppendRelease(event); })) {
          return *err;
        }
        return released;
      },
      std::move(done));
}

Result<Phase> Service::ReopenIngest() {
  util::MutexLock lock(ingest_mu_);
  if (degraded()) {
    return ServeError{ServeErrorKind::kDegraded,
                      "durability journal unwritable; service is read-only"};
  }
  const Phase p = phase_.load(std::memory_order_acquire);
  if (p != Phase::kTrained) {
    return ServeError{ServeErrorKind::kWrongPhase,
                      std::string("cannot reopen ingestion in phase ") +
                          ToString(p)};
  }
  // Journal the transition before it is visible: a crash right after
  // the event replays to kIngest, exactly the state the caller saw.
  if (std::optional<ServeError> err = JournalControlEvent(
          [&] { (void)log_->AppendReopenIngest(); })) {
    return *err;
  }
  phase_.store(Phase::kIngest, std::memory_order_release);
  return Phase::kIngest;
}

// -------------------------------------------------------------- query plane

std::future<Result<core::MispredictionReport>> Service::SubmitInvestigate(
    nn::Image input, std::size_t k) {
  auto prom =
      std::make_shared<std::promise<Result<core::MispredictionReport>>>();
  std::future<Result<core::MispredictionReport>> fut = prom->get_future();
  SubmitInvestigateAsync(std::move(input), k,
                         [prom](Result<core::MispredictionReport> r) {
                           prom->set_value(std::move(r));
                         });
  return fut;
}

void Service::SubmitInvestigateAsync(
    nn::Image input, std::size_t k,
    std::function<void(Result<core::MispredictionReport>)> done) {
  const Phase p = phase();
  if (p != Phase::kServing) {
    done(Result<core::MispredictionReport>(
        ServeError{ServeErrorKind::kWrongPhase,
                   std::string("cannot investigate in phase ") +
                       ToString(p)}));
    return;
  }
  inflight_pool_ops_.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, done = std::move(done), input = std::move(input),
                k]() mutable {
    done(Guarded<core::MispredictionReport>(
        [&]() -> Result<core::MispredictionReport> {
          std::unique_ptr<nn::LayerWorkspace> ws = AcquireQueryWorkspace();
          core::MispredictionReport report =
              query_->InvestigateWith(*ws, input, k);
          RecycleQueryWorkspace(std::move(ws));
          return report;
        }));
    FinishPoolOp();
  });
}

std::unique_ptr<nn::LayerWorkspace> Service::AcquireQueryWorkspace() {
  {
    util::MutexLock lock(query_ws_mu_);
    if (!query_ws_pool_.empty()) {
      std::unique_ptr<nn::LayerWorkspace> ws =
          std::move(query_ws_pool_.back());
      query_ws_pool_.pop_back();
      return ws;
    }
  }
  return std::make_unique<nn::LayerWorkspace>(query_->model());
}

void Service::RecycleQueryWorkspace(std::unique_ptr<nn::LayerWorkspace> ws) {
  util::MutexLock lock(query_ws_mu_);
  if (query_ws_pool_.size() < max_pumps_) {
    query_ws_pool_.push_back(std::move(ws));
  }
}

std::future<Result<std::vector<core::MispredictionReport>>>
Service::SubmitInvestigateBatch(std::vector<nn::Image> inputs,
                                std::size_t k) {
  auto prom = std::make_shared<
      std::promise<Result<std::vector<core::MispredictionReport>>>>();
  std::future<Result<std::vector<core::MispredictionReport>>> fut =
      prom->get_future();
  SubmitInvestigateBatchAsync(
      std::move(inputs), k,
      [prom](Result<std::vector<core::MispredictionReport>> r) {
        prom->set_value(std::move(r));
      });
  return fut;
}

void Service::SubmitInvestigateBatchAsync(
    std::vector<nn::Image> inputs, std::size_t k,
    std::function<void(Result<std::vector<core::MispredictionReport>>)>
        done) {
  // Runs on the strand, NOT as a pool task: a pool task counts as a
  // parallel region, which would serialize InvestigateBatch's internal
  // per-probe fan-out.  From the strand the batch keeps full pool
  // parallelism; concurrent batch requests serialize against each
  // other (single-probe SubmitInvestigate stays fully concurrent).
  ScheduleAsync<std::vector<core::MispredictionReport>>(
      [this, inputs = std::move(inputs),
       k]() -> Result<std::vector<core::MispredictionReport>> {
        const Phase p = phase();
        if (p != Phase::kServing) {
          return ServeError{ServeErrorKind::kWrongPhase,
                            std::string("cannot investigate in phase ") +
                                ToString(p)};
        }
        return query_->InvestigateBatch(inputs, k);
      },
      std::move(done));
}

Result<nn::Network> Service::AssembleReleased(
    const core::TrainingServer::ReleasedModel& released,
    BytesView participant_key) {
  return Guarded<nn::Network>([&]() -> Result<nn::Network> {
    return core::TrainingServer::AssembleReleasedModel(released,
                                                       participant_key);
  });
}

}  // namespace caltrain::serve
