#include "serve/service.hpp"

#include <algorithm>
#include <iterator>

#include "util/log.hpp"

namespace caltrain::serve {

Service::Service(core::TrainingServer& server, ServiceConfig config)
    : server_(server),
      config_(config),
      max_pumps_(std::max(1U, config.ingest_workers != 0
                                   ? config.ingest_workers
                                   : util::Parallelism::threads())),
      pool_(util::ThreadPool::Global()),
      queue_(std::max<std::size_t>(1, config.queue_capacity),
             config.backpressure) {
  config_.ingest_batch = std::max<std::size_t>(1, config_.ingest_batch);
  // Pumps are pool tasks: with zero workers the pool would run them
  // inline on the producer, which is correct but not asynchronous.
  pool_.EnsureWorkers(max_pumps_);
  strand_ = std::thread([this] { StrandLoop(); });
}

Service::~Service() {
  // 1. Stop new ingest; wait for in-flight pool work (pumps and
  // investigate tasks reference `this`).
  queue_.Close();
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    progress_cv_.wait(lock, [this] {
      return inflight_pool_ops_.load(std::memory_order_acquire) == 0;
    });
  }
  // 2. Drain anything the pumps left behind (Close keeps queued items
  // poppable), so every submission's future still resolves.
  while (std::optional<IngestBatch> item = queue_.TryPop()) {
    ProcessBatch(std::move(*item));
  }
  // 3. Run the strand dry (pending control-plane futures resolve), then
  // stop it.
  {
    std::lock_guard<std::mutex> lock(strand_mu_);
    strand_stop_ = true;
  }
  strand_cv_.notify_all();
  if (strand_.joinable()) strand_.join();
}

// ---------------------------------------------------------------- sessions

Result<SessionId> Service::OpenUploadSession(
    const std::string& participant_id) {
  const Phase p = phase();
  if (p != Phase::kIngest) {
    return ServeError{ServeErrorKind::kWrongPhase,
                      std::string("cannot open an upload session in phase ") +
                          ToString(p)};
  }
  if (!server_.IsProvisioned(participant_id)) {
    return ServeError{
        ServeErrorKind::kUnprovisionedParticipant,
        "participant '" + participant_id + "' has no provisioned key"};
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  const SessionId id = next_session_id_++;
  sessions_.emplace(id, std::make_shared<Session>(participant_id));
  return id;
}

std::future<Result<UploadReceipt>> Service::SubmitUpload(
    SessionId session, std::vector<data::EncryptedRecord> records) {
  auto sub = std::make_shared<Submission>();
  std::future<Result<UploadReceipt>> fut = sub->promise.get_future();
  const auto fail = [&sub](ServeErrorKind kind, std::string message) {
    sub->done = true;
    sub->promise.set_value(
        Result<UploadReceipt>(ServeError{kind, std::move(message)}));
  };
  sub->submitted = records.size();

  const std::size_t batch = config_.ingest_batch;
  const std::size_t n_batches = (records.size() + batch - 1) / batch;

  // ingest_mu_ orders ticket assignment across producers and fences the
  // enqueue against a phase flip by SubmitTrain.
  std::unique_lock<std::mutex> ingest_lock(ingest_mu_);
  if (phase_.load(std::memory_order_acquire) != Phase::kIngest) {
    fail(ServeErrorKind::kWrongPhase,
         std::string("uploads are not accepted in phase ") +
             ToString(phase()));
    return fut;
  }
  {
    std::lock_guard<std::mutex> state_lock(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second->open) {
      fail(ServeErrorKind::kInvalidArgument,
           "unknown or closed upload session");
      return fut;
    }
    if (records.empty()) {
      sub->done = true;
      sub->promise.set_value(Result<UploadReceipt>(UploadReceipt{}));
      return fut;
    }
    if (config_.backpressure == util::BackpressurePolicy::kReject) {
      if (n_batches > queue_.capacity()) {
        // Retrying can never help: the submission does not fit an
        // empty queue.  Tell the client to split it instead of
        // feeding a retry loop with kQueueSaturated.
        fail(ServeErrorKind::kInvalidArgument,
             "submission needs " + std::to_string(n_batches) +
                 " batches but the ingest queue holds " +
                 std::to_string(queue_.capacity()) +
                 "; split the submission");
        return fut;
      }
      if (queue_.size() + n_batches > queue_.capacity()) {
        // All-or-nothing: a submission is never partially ingested.
        fail(ServeErrorKind::kQueueSaturated,
             "ingest queue full (" + std::to_string(queue_.size()) + "/" +
                 std::to_string(queue_.capacity()) + " batches)");
        return fut;
      }
    }
    sub->session = it->second;
    sub->remaining_batches = n_batches;
    sub->session->submitted += records.size();
    sub->session->outstanding_batches += n_batches;
  }

  std::size_t pushed = 0;
  for (std::size_t first = 0; first < records.size(); first += batch) {
    const std::size_t last = std::min(records.size(), first + batch);
    IngestBatch item;
    item.seq = next_enqueue_seq_;
    item.submission = sub;
    item.records.assign(std::make_move_iterator(records.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    first)),
                        std::make_move_iterator(records.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    last)));
    // Under kBlock this waits for queue room (backpressure throttles
    // the producer); it only fails once the service is shutting down.
    if (!queue_.Push(std::move(item))) {
      std::lock_guard<std::mutex> state_lock(state_mu_);
      const std::size_t unenqueued = n_batches - pushed;
      sub->remaining_batches -= unenqueued;
      sub->session->outstanding_batches -= unenqueued;
      if (pushed == 0) {
        // Nothing entered the queue: a clean all-or-nothing rejection,
        // invisible in the session tallies.  Push only fails here once
        // the queue is closed (shutdown) — a permanent condition, so
        // not the retryable kQueueSaturated.
        sub->session->submitted -= sub->submitted;
        if (!sub->done) {
          sub->done = true;
          sub->promise.set_value(Result<UploadReceipt>(
              ServeError{ServeErrorKind::kWrongPhase,
                         "service is shutting down"}));
        }
      } else if (sub->remaining_batches == 0 && !sub->done) {
        // The enqueued prefix already committed; resolve with the
        // honest partial tally (accepted+rejected < submitted tells
        // the caller how far the stream got before shutdown).
        sub->done = true;
        sub->promise.set_value(Result<UploadReceipt>(
            UploadReceipt{sub->submitted, sub->accepted, sub->rejected}));
      }
      // else: the in-flight prefix resolves the future with the
      // partial receipt when its last batch commits.
      progress_cv_.notify_all();
      return fut;
    }
    ++next_enqueue_seq_;  // a ticket exists only for enqueued batches
    ++pushed;
    MaybeSpawnPump();
  }
  return fut;
}

Result<SessionStats> Service::CloseUploadSession(SessionId session) {
  std::shared_ptr<Session> state;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return ServeError{ServeErrorKind::kInvalidArgument,
                        "unknown upload session"};
    }
    if (!it->second->open) {
      return ServeError{ServeErrorKind::kInvalidArgument,
                        "upload session already closed"};
    }
    it->second->open = false;
    state = it->second;
  }
  std::unique_lock<std::mutex> lock(state_mu_);
  progress_cv_.wait(lock, [&] { return state->outstanding_batches == 0; });
  // Retire the bookkeeping — a closed session can never be used again,
  // and a long-lived service must not accumulate dead sessions.
  sessions_.erase(session);
  SessionStats stats;
  stats.participant_id = state->participant_id;
  stats.submitted = state->submitted;
  stats.accepted = state->accepted;
  stats.rejected = state->rejected;
  return stats;
}

void Service::DrainIngest() {
  std::uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    target = next_enqueue_seq_;
  }
  std::unique_lock<std::mutex> lock(state_mu_);
  progress_cv_.wait(lock, [&] { return next_commit_seq_ >= target; });
}

// ------------------------------------------------------------ ingest pumps

void Service::MaybeSpawnPump() {
  unsigned cur = active_pumps_.load(std::memory_order_relaxed);
  while (cur < max_pumps_) {
    if (active_pumps_.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel)) {
      inflight_pool_ops_.fetch_add(1, std::memory_order_relaxed);
      pool_.Submit([this] {
        PumpIngest();
        FinishPoolOp();
      });
      return;
    }
  }
}

void Service::PumpIngest() {
  for (;;) {
    std::optional<IngestBatch> item = queue_.TryPop();
    if (item.has_value()) {
      ProcessBatch(std::move(*item));
      continue;
    }
    // The queue looked empty: retire this pump's slot, then re-check —
    // a producer that saw the slot occupied may have skipped spawning.
    active_pumps_.fetch_sub(1, std::memory_order_acq_rel);
    if (queue_.empty()) return;
    unsigned cur = active_pumps_.load(std::memory_order_relaxed);
    bool reacquired = false;
    while (cur < max_pumps_) {
      if (active_pumps_.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_acq_rel)) {
        reacquired = true;
        break;
      }
    }
    if (!reacquired) return;  // every slot is busy; they will drain it
  }
}

void Service::ProcessBatch(IngestBatch batch) {
  const std::uint64_t seq = batch.seq;
  AuthedBatch done;
  // The whole batch is authenticated under ONE enclave transition —
  // this is the ECALL amortization the async API exists for.
  done.accepted =
      server_.AuthenticateRecords(batch.records, batch.records.size());
  done.records = std::move(batch.records);
  done.submission = std::move(batch.submission);
  Commit(seq, std::move(done));
}

void Service::Commit(std::uint64_t seq, AuthedBatch batch) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ready_.emplace(seq, std::move(batch));
    // Authentication finishes out of order across pumps; commits are
    // reordered back to ticket order so the async record sequence is
    // identical to the synchronous one.
    while (!ready_.empty() && ready_.begin()->first == next_commit_seq_) {
      AuthedBatch b = std::move(ready_.begin()->second);
      ready_.erase(ready_.begin());
      const std::size_t ok = server_.CommitRecords(b.records, b.accepted);
      const std::size_t bad = b.records.size() - ok;
      Submission& sub = *b.submission;
      Session& sess = *sub.session;
      sub.accepted += ok;
      sub.rejected += bad;
      sess.accepted += ok;
      sess.rejected += bad;
      --sess.outstanding_batches;
      if (--sub.remaining_batches == 0 && !sub.done) {
        sub.done = true;
        sub.promise.set_value(Result<UploadReceipt>(
            UploadReceipt{sub.submitted, sub.accepted, sub.rejected}));
      }
      ++next_commit_seq_;
    }
  }
  progress_cv_.notify_all();
}

void Service::FinishPoolOp() {
  // Decrement and notify under the lock: the destructor destroys this
  // condition variable as soon as its wait observes zero, so the
  // notify must complete before the waiter can re-acquire the mutex.
  std::lock_guard<std::mutex> lock(state_mu_);
  inflight_pool_ops_.fetch_sub(1, std::memory_order_acq_rel);
  progress_cv_.notify_all();
}

// ------------------------------------------------------------ control plane

void Service::StrandLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(strand_mu_);
      strand_cv_.wait(lock,
                      [this] { return strand_stop_ || !strand_queue_.empty(); });
      if (strand_queue_.empty()) {
        if (strand_stop_) return;
        continue;
      }
      job = std::move(strand_queue_.front());
      strand_queue_.pop_front();
    }
    job();
  }
}

std::future<Result<core::TrainReport>> Service::SubmitTrain(
    nn::NetworkSpec spec, core::PartitionedTrainOptions options) {
  return Schedule<core::TrainReport>(
      [this, spec = std::move(spec),
       options = std::move(options)]() -> Result<core::TrainReport> {
        {
          // Under ingest_mu_, so no upload can slip between the phase
          // flip and the drain target snapshot.
          std::lock_guard<std::mutex> lock(ingest_mu_);
          const Phase p = phase_.load(std::memory_order_acquire);
          if (p != Phase::kIngest && p != Phase::kTrained) {
            return ServeError{ServeErrorKind::kWrongPhase,
                              std::string("cannot train in phase ") +
                                  ToString(p)};
          }
          phase_.store(Phase::kTraining, std::memory_order_release);
        }
        DrainIngest();
        try {
          core::TrainReport report = server_.Train(spec, options);
          phase_.store(Phase::kTrained, std::memory_order_release);
          return report;
        } catch (...) {
          // Any failure — typed or not — must reopen ingestion, or the
          // service would be stuck in kTraining forever; the strand's
          // Guarded wrapper folds the rethrown exception into the
          // taxonomy.
          phase_.store(Phase::kIngest, std::memory_order_release);
          throw;
        }
      });
}

std::future<Result<std::size_t>> Service::SubmitFingerprint(
    int fingerprint_layer) {
  return Schedule<std::size_t>(
      [this, fingerprint_layer]() -> Result<std::size_t> {
        {
          // Check-and-flip under ingest_mu_, like SubmitTrain: a
          // concurrent ReopenIngest must either win (and fail this
          // request) or lose (and get kWrongPhase) — never be
          // clobbered by the kServing store below.
          std::lock_guard<std::mutex> lock(ingest_mu_);
          const Phase p = phase_.load(std::memory_order_acquire);
          if (p != Phase::kTrained) {
            return ServeError{ServeErrorKind::kWrongPhase,
                              std::string("cannot fingerprint in phase ") +
                                  ToString(p)};
          }
          phase_.store(Phase::kFingerprinting, std::memory_order_release);
        }
        try {
          // Escaping errors are folded into the taxonomy by the
          // strand's Guarded wrapper.
          linkage::LinkageDatabase db =
              server_.FingerprintAll(fingerprint_layer);
          const std::size_t size = db.size();
          // The query stage gets its own clone of the trained model;
          // the server keeps its copy for release.
          const nn::Network& model = server_.model();
          nn::Network clone(model.spec());
          clone.DeserializeWeightRange(
              0, clone.NumLayers(),
              model.SerializeWeightRange(0, model.NumLayers()));
          query_.emplace(std::move(clone), std::move(db), fingerprint_layer);
          phase_.store(Phase::kServing, std::memory_order_release);
          return size;
        } catch (...) {
          phase_.store(Phase::kTrained, std::memory_order_release);
          throw;
        }
      });
}

std::future<Result<core::TrainingServer::ReleasedModel>>
Service::SubmitRelease(std::string participant_id) {
  return Schedule<core::TrainingServer::ReleasedModel>(
      [this, participant_id = std::move(participant_id)]()
          -> Result<core::TrainingServer::ReleasedModel> {
        const Phase p = phase();
        if (p != Phase::kTrained && p != Phase::kServing) {
          return ServeError{ServeErrorKind::kWrongPhase,
                            std::string("cannot release in phase ") +
                                ToString(p)};
        }
        if (!server_.IsProvisioned(participant_id)) {
          return ServeError{ServeErrorKind::kUnprovisionedParticipant,
                            "participant '" + participant_id +
                                "' has no provisioned key"};
        }
        return server_.ReleaseModelFor(participant_id);
      });
}

Result<Phase> Service::ReopenIngest() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const Phase p = phase_.load(std::memory_order_acquire);
  if (p != Phase::kTrained) {
    return ServeError{ServeErrorKind::kWrongPhase,
                      std::string("cannot reopen ingestion in phase ") +
                          ToString(p)};
  }
  phase_.store(Phase::kIngest, std::memory_order_release);
  return Phase::kIngest;
}

// -------------------------------------------------------------- query plane

std::future<Result<core::MispredictionReport>> Service::SubmitInvestigate(
    nn::Image input, std::size_t k) {
  auto prom =
      std::make_shared<std::promise<Result<core::MispredictionReport>>>();
  std::future<Result<core::MispredictionReport>> fut = prom->get_future();
  const Phase p = phase();
  if (p != Phase::kServing) {
    prom->set_value(Result<core::MispredictionReport>(
        ServeError{ServeErrorKind::kWrongPhase,
                   std::string("cannot investigate in phase ") +
                       ToString(p)}));
    return fut;
  }
  inflight_pool_ops_.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, prom, input = std::move(input), k] {
    prom->set_value(Guarded<core::MispredictionReport>(
        [&]() -> Result<core::MispredictionReport> {
          std::unique_ptr<nn::LayerWorkspace> ws = AcquireQueryWorkspace();
          core::MispredictionReport report =
              query_->InvestigateWith(*ws, input, k);
          RecycleQueryWorkspace(std::move(ws));
          return report;
        }));
    FinishPoolOp();
  });
  return fut;
}

std::unique_ptr<nn::LayerWorkspace> Service::AcquireQueryWorkspace() {
  {
    std::lock_guard<std::mutex> lock(query_ws_mu_);
    if (!query_ws_pool_.empty()) {
      std::unique_ptr<nn::LayerWorkspace> ws =
          std::move(query_ws_pool_.back());
      query_ws_pool_.pop_back();
      return ws;
    }
  }
  return std::make_unique<nn::LayerWorkspace>(query_->model());
}

void Service::RecycleQueryWorkspace(std::unique_ptr<nn::LayerWorkspace> ws) {
  std::lock_guard<std::mutex> lock(query_ws_mu_);
  if (query_ws_pool_.size() < max_pumps_) {
    query_ws_pool_.push_back(std::move(ws));
  }
}

std::future<Result<std::vector<core::MispredictionReport>>>
Service::SubmitInvestigateBatch(std::vector<nn::Image> inputs,
                                std::size_t k) {
  // Runs on the strand, NOT as a pool task: a pool task counts as a
  // parallel region, which would serialize InvestigateBatch's internal
  // per-probe fan-out.  From the strand the batch keeps full pool
  // parallelism; concurrent batch requests serialize against each
  // other (single-probe SubmitInvestigate stays fully concurrent).
  return Schedule<std::vector<core::MispredictionReport>>(
      [this, inputs = std::move(inputs),
       k]() -> Result<std::vector<core::MispredictionReport>> {
        const Phase p = phase();
        if (p != Phase::kServing) {
          return ServeError{ServeErrorKind::kWrongPhase,
                            std::string("cannot investigate in phase ") +
                                ToString(p)};
        }
        return query_->InvestigateBatch(inputs, k);
      });
}

Result<nn::Network> Service::AssembleReleased(
    const core::TrainingServer::ReleasedModel& released,
    BytesView participant_key) {
  return Guarded<nn::Network>([&]() -> Result<nn::Network> {
    return core::TrainingServer::AssembleReleasedModel(released,
                                                       participant_key);
  });
}

}  // namespace caltrain::serve
