// Typed results for the serving API (ISSUE 5).
//
// The phase methods of the core pipeline signal failure with bools and
// zero counts (UploadRecords) or untyped exceptions; a serving front
// end needs callers — possibly remote — to branch on *what went wrong*:
// an unprovisioned participant is a client error, an authentication
// failure is adversarial input, a saturated queue means "back off and
// retry", a wrong-phase request is a protocol violation.  serve::Result
// carries either the value or one of exactly those categories.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace caltrain::serve {

enum class ServeErrorKind {
  kUnprovisionedParticipant,  ///< no key provisioned for this identity
  kAuthFailure,               ///< cryptographic authentication failed
  kQueueSaturated,            ///< ingest queue full under kReject policy
  kWrongPhase,                ///< request illegal in the current phase
  kInvalidArgument,           ///< malformed request (bad session id, ...)
  kTimeout,          ///< a deadline elapsed first (e.g. SubmitUpload's
                     ///< submit_timeout hit while the ingest queue was
                     ///< full); nothing was enqueued — retrying later
                     ///< is safe and may succeed
  kRetryExhausted,   ///< a transient fault (injected or real I/O /
                     ///< enclave-transition failure) persisted through
                     ///< the capped-backoff retry budget; the request
                     ///< had no durable effect
  kDegraded,         ///< the durability journal became unwritable, so
                     ///< the service dropped to read-only investigate
                     ///< mode; mutating requests are refused until the
                     ///< operator repairs storage and restarts
  kCorruptJournal,   ///< recovery found corruption it must not repair
                     ///< silently (bad journal header, snapshot CRC
                     ///< mismatch, malformed event)
  kInternal,                  ///< invariant violation inside the library
};

[[nodiscard]] constexpr const char* ToString(ServeErrorKind kind) noexcept {
  switch (kind) {
    case ServeErrorKind::kUnprovisionedParticipant:
      return "unprovisioned-participant";
    case ServeErrorKind::kAuthFailure:
      return "auth-failure";
    case ServeErrorKind::kQueueSaturated:
      return "queue-saturated";
    case ServeErrorKind::kWrongPhase:
      return "wrong-phase";
    case ServeErrorKind::kInvalidArgument:
      return "invalid-argument";
    case ServeErrorKind::kTimeout:
      return "timeout";
    case ServeErrorKind::kRetryExhausted:
      return "retry-exhausted";
    case ServeErrorKind::kDegraded:
      return "degraded";
    case ServeErrorKind::kCorruptJournal:
      return "corrupt-journal";
    case ServeErrorKind::kInternal:
      return "internal";
  }
  return "unknown";
}

struct ServeError {
  ServeErrorKind kind = ServeErrorKind::kInternal;
  std::string message;
};

/// Maps a thrown caltrain::Error onto the serving taxonomy (used at the
/// boundary where the async core wraps the throwing phase methods).
[[nodiscard]] inline ServeError FromError(const Error& error) {
  ServeErrorKind kind = ServeErrorKind::kInternal;
  switch (error.kind()) {
    case ErrorKind::kAuthFailure:
      kind = ServeErrorKind::kAuthFailure;
      break;
    case ErrorKind::kInvalidArgument:
      kind = ServeErrorKind::kInvalidArgument;
      break;
    case ErrorKind::kFailedPrecondition:
      kind = ServeErrorKind::kWrongPhase;
      break;
    case ErrorKind::kUnavailable:
      // A transient fault that escapes to this boundary has already
      // burned its retry budget (util::RetryTransient).
      kind = ServeErrorKind::kRetryExhausted;
      break;
    default:
      break;
  }
  return ServeError{kind, error.what()};
}

/// Either a value or a ServeError.  `value()` on an error rethrows the
/// error as a caltrain::Error so sync adapters keep the historical
/// throwing behaviour for free.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value)  // NOLINT(google-explicit-constructor)
      : state_(std::in_place_index<0>, std::move(value)) {}
  Result(ServeError error)  // NOLINT(google-explicit-constructor)
      : state_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    RequireOk();
    return std::get<0>(state_);
  }
  [[nodiscard]] T& value() & {
    RequireOk();
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    RequireOk();
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] const ServeError& error() const {
    CALTRAIN_CHECK(!ok(), "Result holds a value, not an error");
    return std::get<1>(state_);
  }

 private:
  void RequireOk() const {
    if (ok()) return;
    const ServeError& e = std::get<1>(state_);
    ErrorKind kind = ErrorKind::kInternal;
    switch (e.kind) {
      case ServeErrorKind::kAuthFailure:
        kind = ErrorKind::kAuthFailure;
        break;
      case ServeErrorKind::kUnprovisionedParticipant:
      case ServeErrorKind::kInvalidArgument:
        kind = ErrorKind::kInvalidArgument;
        break;
      case ServeErrorKind::kQueueSaturated:
        kind = ErrorKind::kCapacity;
        break;
      case ServeErrorKind::kWrongPhase:
      case ServeErrorKind::kDegraded:
        kind = ErrorKind::kFailedPrecondition;
        break;
      case ServeErrorKind::kTimeout:
      case ServeErrorKind::kRetryExhausted:
        kind = ErrorKind::kUnavailable;
        break;
      case ServeErrorKind::kCorruptJournal:
      case ServeErrorKind::kInternal:
        break;
    }
    ThrowError(kind, std::string(ToString(e.kind)) + ": " + e.message);
  }

  std::variant<T, ServeError> state_;
};

}  // namespace caltrain::serve
