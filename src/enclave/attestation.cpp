#include "enclave/attestation.hpp"

#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::enclave {

namespace {
Bytes SeedBytes(std::uint64_t seed) {
  Bytes out(8);
  StoreLe64(out.data(), seed);
  return out;
}
}  // namespace

Bytes Quote::SignedBody() const {
  ByteWriter writer;
  writer.WriteBytes(BytesView(measurement.data(), measurement.size()));
  writer.WriteBytes(report_data);
  return writer.Take();
}

Bytes Quote::Serialize() const {
  ByteWriter writer;
  writer.WriteBytes(BytesView(measurement.data(), measurement.size()));
  writer.WriteBytes(report_data);
  writer.WriteBytes(crypto::SerializeSignature(signature));
  return writer.Take();
}

Quote Quote::Deserialize(BytesView blob) {
  ByteReader reader(blob);
  Quote quote;
  const Bytes measurement = reader.ReadBytes();
  CALTRAIN_REQUIRE(measurement.size() == crypto::kSha256DigestSize,
                   "bad quote measurement size");
  std::copy(measurement.begin(), measurement.end(),
            quote.measurement.begin());
  quote.report_data = reader.ReadBytes();
  quote.signature = crypto::DeserializeSignature(reader.ReadBytes());
  CALTRAIN_REQUIRE(reader.AtEnd(), "trailing bytes in quote");
  return quote;
}

AttestationService::AttestationService(std::uint64_t seed)
    : drbg_(SeedBytes(seed), BytesOf("attestation-service")),
      key_(crypto::SchnorrGenerate(drbg_)) {}

Quote AttestationService::GenerateQuote(const Enclave& enclave,
                                        BytesView report_data) {
  Quote quote;
  quote.measurement = enclave.measurement();
  quote.report_data.assign(report_data.begin(), report_data.end());
  const Bytes body = quote.SignedBody();
  quote.signature = crypto::SchnorrSign(key_, body, drbg_);
  return quote;
}

bool AttestationService::VerifyQuote(crypto::U128 service_public_key,
                                     const Quote& quote) noexcept {
  return crypto::SchnorrVerify(service_public_key, quote.SignedBody(),
                               quote.signature);
}

}  // namespace caltrain::enclave
