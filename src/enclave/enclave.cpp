#include "enclave/enclave.hpp"

#include "crypto/hmac.hpp"
#include "util/error.hpp"
#include "util/serial.hpp"

namespace caltrain::enclave {

namespace {

crypto::Sha256Digest ComputeMeasurement(const EnclaveConfig& config) {
  crypto::Sha256 hasher;
  hasher.Update(BytesOf("caltrain-enclave-v1"));
  hasher.Update(BytesOf(config.name));
  hasher.Update(config.code_identity);
  std::array<std::uint8_t, 16> epc_desc{};
  StoreLe64(epc_desc.data(), config.epc.capacity_bytes);
  StoreLe64(epc_desc.data() + 8, config.epc.page_bytes);
  hasher.Update(BytesView(epc_desc.data(), epc_desc.size()));
  return hasher.Finish();
}

Bytes SeedBytes(std::uint64_t seed) {
  Bytes out(8);
  StoreLe64(out.data(), seed);
  return out;
}

}  // namespace

Enclave::Enclave(EnclaveConfig config)
    : config_(std::move(config)),
      measurement_(ComputeMeasurement(config_)),
      epc_(config_.epc),
      drbg_(SeedBytes(config_.seed), BytesOf(config_.name)) {}

crypto::AesGcm Enclave::SealingCipher() const {
  // Sealing key bound to the measurement: HKDF(processor fuse key,
  // measurement).  The "fuse key" is fixed for the simulated CPU.
  const Bytes key = crypto::Hkdf(
      BytesOf("caltrain-simulated-fuse-key"),
      BytesView(measurement_.data(), measurement_.size()),
      BytesOf("sealing-v1"), 32);
  return crypto::AesGcm(key);
}

Bytes Enclave::Seal(BytesView data) {
  const crypto::AesGcm cipher = SealingCipher();
  // Deterministic unique nonces from a per-enclave counter.
  std::array<std::uint8_t, crypto::kGcmIvSize> iv{};
  StoreLe64(iv.data(), ++seal_counter_);
  const crypto::GcmSealed sealed = cipher.Seal(iv, BytesOf("sealed-blob"),
                                               data);
  ByteWriter writer;
  writer.WriteBytes(BytesView(iv.data(), iv.size()));
  writer.WriteBytes(sealed.ciphertext);
  writer.WriteBytes(BytesView(sealed.tag.data(), sealed.tag.size()));
  return writer.Take();
}

std::optional<Bytes> Enclave::Unseal(BytesView sealed) {
  try {
    ByteReader reader(sealed);
    const Bytes iv = reader.ReadBytes();
    const Bytes ciphertext = reader.ReadBytes();
    const Bytes tag = reader.ReadBytes();
    if (iv.size() != crypto::kGcmIvSize || tag.size() != crypto::kGcmTagSize ||
        !reader.AtEnd()) {
      return std::nullopt;
    }
    const crypto::AesGcm cipher = SealingCipher();
    std::array<std::uint8_t, crypto::kGcmTagSize> tag_arr{};
    std::copy(tag.begin(), tag.end(), tag_arr.begin());
    return cipher.Open(iv, BytesOf("sealed-blob"), ciphertext, tag_arr);
  } catch (const Error&) {
    return std::nullopt;  // malformed blob is an authentication failure
  }
}

}  // namespace caltrain::enclave
