#include "enclave/epc.hpp"

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace caltrain::enclave {

EpcManager::EpcManager(const EpcConfig& config)
    : config_(config),
      mee_(Bytes(16, 0x5a)),  // fixed simulation MEE key
      page_scratch_(config.page_bytes, 0xa5) {
  CALTRAIN_REQUIRE(config.page_bytes >= 64 && config.capacity_bytes > 0,
                   "invalid EPC configuration");
  capacity_pages_ = config_.capacity_bytes / config_.page_bytes;
  CALTRAIN_REQUIRE(capacity_pages_ > 0, "EPC smaller than one page");
}

RegionId EpcManager::Allocate(std::string name, std::size_t bytes) {
  const RegionId id = next_id_++;
  Region region;
  region.name = std::move(name);
  region.bytes = bytes;
  region.resident.assign((bytes + config_.page_bytes - 1) / config_.page_bytes,
                         false);
  regions_.emplace(id, std::move(region));
  return id;
}

void EpcManager::Free(RegionId id) {
  const auto it = regions_.find(id);
  CALTRAIN_REQUIRE(it != regions_.end(), "unknown EPC region");
  for (std::uint32_t p = 0; p < it->second.resident.size(); ++p) {
    if (!it->second.resident[p]) continue;
    const PageKey key{id, p};
    const auto page_it = page_iters_.find(key);
    lru_.erase(page_it->second);
    page_iters_.erase(page_it);
    --resident_pages_;
  }
  regions_.erase(it);
}

void EpcManager::Resize(RegionId id, std::size_t bytes) {
  const auto it = regions_.find(id);
  CALTRAIN_REQUIRE(it != regions_.end(), "unknown EPC region");
  const std::size_t new_pages =
      (bytes + config_.page_bytes - 1) / config_.page_bytes;
  // Drop residency of truncated pages.
  for (std::uint32_t p = static_cast<std::uint32_t>(new_pages);
       p < it->second.resident.size(); ++p) {
    if (!it->second.resident[p]) continue;
    const PageKey key{id, p};
    const auto page_it = page_iters_.find(key);
    lru_.erase(page_it->second);
    page_iters_.erase(page_it);
    --resident_pages_;
  }
  it->second.bytes = bytes;
  it->second.resident.resize(new_pages, false);
}

void EpcManager::EncryptPage() {
  // One page of real AES-CTR traffic through the simulated MEE.
  crypto::AesBlock counter{};
  crypto::AesCtrXor(mee_, counter, page_scratch_, page_scratch_.data());
  stats_.bytes_encrypted += config_.page_bytes;
}

void EpcManager::EvictOnePage() {
  CALTRAIN_CHECK(!lru_.empty(), "EPC eviction with no resident pages");
  const PageKey victim = lru_.back();
  lru_.pop_back();
  page_iters_.erase(victim);
  regions_.at(victim.region).resident[victim.index] = false;
  --resident_pages_;
  ++stats_.pages_evicted;
  EncryptPage();
}

void EpcManager::Touch(RegionId id) {
  const auto it = regions_.find(id);
  CALTRAIN_REQUIRE(it != regions_.end(), "unknown EPC region");
  ++stats_.touches;
  Stopwatch timer;
  bool did_crypto = false;
  Region& region = it->second;
  for (std::uint32_t p = 0; p < region.resident.size(); ++p) {
    const PageKey key{id, p};
    if (region.resident[p]) {
      // Refresh LRU position.
      const auto page_it = page_iters_.find(key);
      lru_.splice(lru_.begin(), lru_, page_it->second);
      continue;
    }
    // Fault the page in, evicting if full.  A region bigger than the
    // whole EPC self-evicts (thrashes), exactly like real paging.
    while (resident_pages_ >= capacity_pages_) {
      EvictOnePage();
      did_crypto = true;
    }
    lru_.push_front(key);
    page_iters_[key] = lru_.begin();
    region.resident[p] = true;
    ++resident_pages_;
    ++stats_.page_faults;
    EncryptPage();  // MEE decrypt on the way in (same cost as encrypt)
    did_crypto = true;
  }
  if (did_crypto) stats_.mee_seconds += timer.ElapsedSeconds();
}

std::size_t EpcManager::region_bytes(RegionId id) const {
  const auto it = regions_.find(id);
  CALTRAIN_REQUIRE(it != regions_.end(), "unknown EPC region");
  return it->second.bytes;
}

}  // namespace caltrain::enclave
