// Enclave Page Cache (EPC) simulator.
//
// Real SGX reserves a Processor Reserved Memory region (128 MB on the
// paper's hardware); enclave pages evicted from the EPC are encrypted
// by the Memory Encryption Engine before landing in ordinary RAM, and
// decrypted (plus integrity-checked) on the way back in.  Swapping on
// encrypted memory is the paper's second performance limiter
// (Sec. IV-B).
//
// This simulator tracks page residency at 4 KiB granularity with an LRU
// policy and charges *real* AES-CTR work for every eviction and reload,
// so the paging overhead reported by the Fig. 6 benchmark is measured,
// not modeled.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace caltrain::enclave {

using RegionId = std::uint64_t;

struct EpcConfig {
  std::size_t capacity_bytes = 128ULL << 20;  ///< PRM size (paper: 128 MB)
  std::size_t page_bytes = 4096;
};

struct EpcStats {
  std::uint64_t touches = 0;          ///< region residency requests
  std::uint64_t page_faults = 0;      ///< pages brought (back) in
  std::uint64_t pages_evicted = 0;
  std::uint64_t bytes_encrypted = 0;  ///< MEE traffic (both directions)
  double mee_seconds = 0.0;           ///< wall time spent on page crypto
};

class EpcManager {
 public:
  explicit EpcManager(const EpcConfig& config);

  /// Registers a region of `bytes` bytes (weights, activation buffer...).
  /// Regions larger than the whole EPC are allowed — they simply thrash.
  [[nodiscard]] RegionId Allocate(std::string name, std::size_t bytes);

  /// Releases a region; its resident pages are dropped without cost.
  void Free(RegionId id);

  /// Grows/shrinks a region (e.g. activation buffer resized for a new
  /// batch size).
  void Resize(RegionId id, std::size_t bytes);

  /// Makes every page of the region resident, faulting pages in (AES
  /// decrypt) and evicting LRU pages (AES encrypt) as needed.
  void Touch(RegionId id);

  [[nodiscard]] const EpcStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = EpcStats{}; }

  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return resident_pages_ * config_.page_bytes;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return config_.capacity_bytes;
  }
  [[nodiscard]] std::size_t region_bytes(RegionId id) const;

 private:
  struct PageKey {
    RegionId region;
    std::uint32_t index;
    [[nodiscard]] bool operator==(const PageKey&) const noexcept = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.region * 0x9e3779b97f4a7c15ULL +
                                        k.index);
    }
  };
  struct Region {
    std::string name;
    std::size_t bytes = 0;
    std::vector<bool> resident;  ///< per page
  };

  void EvictOnePage();
  void EncryptPage();  // one page of MEE work

  EpcConfig config_;
  crypto::Aes mee_;             ///< memory encryption engine key
  Bytes page_scratch_;
  RegionId next_id_ = 1;
  std::unordered_map<RegionId, Region> regions_;
  // LRU list of resident pages; map gives O(1) splice-to-front.
  std::list<PageKey> lru_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash>
      page_iters_;
  std::size_t resident_pages_ = 0;
  std::size_t capacity_pages_ = 0;
  EpcStats stats_;
};

}  // namespace caltrain::enclave
