// Enclave runtime simulator.
//
// Models the SGX lifecycle pieces CalTrain depends on:
//  * a code/config *measurement* (SHA-256, standing in for MRENCLAVE),
//  * ECALL/OCALL boundary crossings with transition accounting,
//  * an on-chip DRBG (the paper uses the hardware RNG for augmentation),
//  * sealed storage keyed to the measurement (MRENCLAVE policy),
//  * an EPC with measured paging costs (epc.hpp).
//
// Everything executes in-process; what is simulated is the *protection
// boundary bookkeeping*, with real cryptographic work wherever SGX
// would do cryptographic work.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/sha256.hpp"
#include "enclave/epc.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"

namespace caltrain::enclave {

struct EnclaveConfig {
  std::string name = "enclave";
  /// Identity of the code/data loaded at initialization; participants
  /// validate this via remote attestation before provisioning secrets
  /// (paper Sec. III "Consensus and Cooperation").
  Bytes code_identity;
  EpcConfig epc;
  std::uint64_t seed = 1;  ///< DRBG seed (deterministic experiments)
};

struct TransitionStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  /// Virtual cost accounting: real SGX charges ~8k cycles per
  /// transition; we track counts so harnesses can report the modeled
  /// cost alongside measured compute time.
  [[nodiscard]] double ModeledSeconds(double seconds_per_transition =
                                          8000.0 / 3.4e9) const noexcept {
    return static_cast<double>(ecalls + ocalls) * seconds_per_transition;
  }
};

class Enclave {
 public:
  explicit Enclave(EnclaveConfig config);

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }

  /// MRENCLAVE-equivalent: SHA-256 over the code identity and the
  /// enclave configuration.
  [[nodiscard]] const crypto::Sha256Digest& measurement() const noexcept {
    return measurement_;
  }

  /// Executes `body` "inside" the enclave, counting the ECALL.
  /// Transition accounting is atomic, so concurrent ECALLs from the
  /// async ingest workers never lose counts.
  template <typename F>
  auto Ecall(F&& body) -> decltype(std::forward<F>(body)()) {
    CountEcall();
    return std::forward<F>(body)();
  }

  /// Counts an OCALL (enclave calling out, e.g. delivering IRs to the
  /// BackNet).
  template <typename F>
  auto Ocall(F&& body) -> decltype(std::forward<F>(body)()) {
    ocalls_.fetch_add(1, std::memory_order_relaxed);
    return std::forward<F>(body)();
  }

  /// Accounts one ECALL boundary crossing without running a body (used
  /// by TransitionGuard below).
  void CountEcall() noexcept {
    ecalls_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] TransitionStats transitions() const noexcept {
    TransitionStats snapshot;
    snapshot.ecalls = ecalls_.load(std::memory_order_relaxed);
    snapshot.ocalls = ocalls_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetTransitions() noexcept {
    ecalls_.store(0, std::memory_order_relaxed);
    ocalls_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] EpcManager& epc() noexcept { return epc_; }
  [[nodiscard]] const EpcManager& epc() const noexcept { return epc_; }

  /// On-chip randomness (simulated RDRAND/RDSEED behind a DRBG).
  [[nodiscard]] crypto::HmacDrbg& drbg() noexcept { return drbg_; }

  /// Seals data to this enclave's measurement (MRENCLAVE policy): only
  /// an enclave with the same measurement can unseal.
  [[nodiscard]] Bytes Seal(BytesView data);
  [[nodiscard]] std::optional<Bytes> Unseal(BytesView sealed);

 private:
  [[nodiscard]] crypto::AesGcm SealingCipher() const;

  EnclaveConfig config_;
  crypto::Sha256Digest measurement_{};
  EpcManager epc_;
  crypto::HmacDrbg drbg_;
  std::atomic<std::uint64_t> ecalls_{0};
  std::atomic<std::uint64_t> ocalls_{0};
  std::uint64_t seal_counter_ = 0;
};

/// RAII form of one enclave transition: constructing the guard pays a
/// single ECALL's boundary crossing, and everything executed while it
/// lives runs "inside" the enclave.  The batched ingest path holds one
/// guard per record *batch* instead of paying one Ecall per record,
/// which is exactly the ~8k-cycle amortization the serving layer's
/// TransitionStats must show (ISSUE 5).
/// Fault point "enclave.transition" fires on construction (before the
/// ECALL is counted): a transient `eio` here models a failed boundary
/// crossing (EPC pressure, AEX storms), which the serve layer's ingest
/// pumps absorb with capped backoff; `crash` kills the process
/// mid-transition for the recovery harness.
class TransitionGuard {
 public:
  explicit TransitionGuard(Enclave& enclave) {
    if (util::FaultInjector::Global().armed()) {
      (void)util::FaultPoint("enclave.transition");
    }
    enclave.CountEcall();
  }
  TransitionGuard(const TransitionGuard&) = delete;
  TransitionGuard& operator=(const TransitionGuard&) = delete;
};

}  // namespace caltrain::enclave
