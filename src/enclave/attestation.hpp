// Remote attestation (simulated).
//
// Protocol shape mirrors Intel's flow (paper Sec. IV-A "Establishing a
// Training Enclave"): the processor produces a signed *quote* over the
// enclave measurement plus caller-chosen report data (here: the
// enclave's ephemeral DH public key, binding the secure channel to the
// attested enclave).  Participants verify the quote against the
// attestation service's public key and check the measurement against
// the code they reviewed, and only then provision their symmetric data
// keys.
#pragma once

#include "crypto/schnorr.hpp"
#include "enclave/enclave.hpp"
#include "util/bytes.hpp"

namespace caltrain::enclave {

struct Quote {
  crypto::Sha256Digest measurement{};
  Bytes report_data;
  crypto::SchnorrSignature signature;

  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static Quote Deserialize(BytesView blob);

  /// The byte string the signature covers.
  [[nodiscard]] Bytes SignedBody() const;
};

/// The simulated processor / Intel Attestation Service: owns the
/// attestation keypair and signs quotes for enclaves running on "this"
/// machine.
class AttestationService {
 public:
  explicit AttestationService(std::uint64_t seed);

  [[nodiscard]] crypto::U128 public_key() const noexcept {
    return key_.public_value;
  }

  /// Issues a quote for `enclave` embedding `report_data`.
  [[nodiscard]] Quote GenerateQuote(const Enclave& enclave,
                                    BytesView report_data);

  /// Participant-side verification against the published service key.
  [[nodiscard]] static bool VerifyQuote(crypto::U128 service_public_key,
                                        const Quote& quote) noexcept;

 private:
  crypto::HmacDrbg drbg_;
  crypto::SchnorrKeyPair key_;
};

}  // namespace caltrain::enclave
