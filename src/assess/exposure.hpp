// Information-exposure assessment framework (paper Sec. IV-B, Fig. 5).
//
// Dual-network architecture: the IRGenNet (the model under training)
// produces intermediate representations (IRs) at every layer for a
// probe input; each IR feature map is projected back to an image and
// fed to an independently trained IRValNet acting as an oracle.  The KL
// divergence between the IRValNet's class distribution on the original
// input and on each IR image measures how much of the input's content
// survives at that layer.  Low KL -> the IR still reveals the input;
// KL at or above the uniform-distribution baseline
// delta_mu = D_KL(P(x) || U) -> the IR is as uninformative as random
// guessing, so the layer may safely run outside the enclave.
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace caltrain::assess {

/// Per-layer KL statistics across all feature maps (and probe inputs).
struct LayerExposure {
  int layer = 0;            ///< 1-based layer index, matching Fig. 5's x axis
  double min_kl = 0.0;
  double max_kl = 0.0;
  double mean_kl = 0.0;
  double p10_kl = 0.0;      ///< 10th percentile across maps (see below)
  std::size_t maps = 0;     ///< feature maps assessed
};

struct ExposureReport {
  std::vector<LayerExposure> layers;
  double uniform_baseline = 0.0;  ///< mean delta_mu across probes
};

/// Projects one feature map (channel `channel` of a layer activation
/// with shape `shape`) to an IR image of `target` shape: bilinear
/// upsample to target spatial size, min-max normalize to [0, 1], and
/// replicate across target channels.
[[nodiscard]] nn::Image ProjectIrToImage(const std::vector<float>& activation,
                                         nn::Shape shape, int channel,
                                         nn::Shape target);

/// Runs the full assessment: for every *spatial* layer of `gen_net`
/// (layers whose output has w,h > 1), projects all feature maps of all
/// probe images and scores them with `val_net`.
[[nodiscard]] ExposureReport AssessExposure(
    nn::Network& gen_net, nn::Network& val_net,
    const std::vector<nn::Image>& probes);

/// Which per-layer statistic decides "this layer's IRs still leak".
///
/// The paper uses the minimum KL over all IR images (kMin).  With the
/// synthetic 10-class proxy corpus that statistic saturates: the deep
/// layers of a classifier contain class-selective maps that agree with
/// the reference on the (public) class label, pinning the min near zero
/// at every depth even though the input *content* is long gone.  The
/// 10th-percentile statistic (kP10) ignores that thin tail and restores
/// the paper's depth profile; DESIGN.md documents this calibration.
enum class LeakStatistic { kMin, kP10 };

/// Paper's partition rule: the smallest number of leading layers to
/// enclose so that every layer at or beyond the boundary has
/// leak-statistic KL >= uniform baseline.  Returns the count of layers
/// to put in the FrontNet (e.g. 4 for the paper's 18-layer net).
[[nodiscard]] int RecommendFrontNetLayers(
    const ExposureReport& report,
    LeakStatistic statistic = LeakStatistic::kP10);

}  // namespace caltrain::assess
