#include "assess/exposure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace caltrain::assess {

nn::Image ProjectIrToImage(const std::vector<float>& activation,
                           nn::Shape shape, int channel, nn::Shape target) {
  CALTRAIN_REQUIRE(channel >= 0 && channel < shape.c, "channel out of range");
  CALTRAIN_REQUIRE(activation.size() == shape.Flat(),
                   "activation size mismatch");
  const std::size_t plane =
      static_cast<std::size_t>(shape.w) * static_cast<std::size_t>(shape.h);
  const float* map = activation.data() + static_cast<std::size_t>(channel) *
                                             plane;

  // Min-max normalize the feature map (an adversary inspecting IRs
  // would rescale them the same way to view them as images).
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < plane; ++i) {
    lo = std::min(lo, map[i]);
    hi = std::max(hi, map[i]);
  }
  const float range = (hi > lo) ? (hi - lo) : 1.0F;

  nn::Image out(target);
  const float sx =
      static_cast<float>(shape.w) / static_cast<float>(target.w);
  const float sy =
      static_cast<float>(shape.h) / static_cast<float>(target.h);
  for (int y = 0; y < target.h; ++y) {
    for (int x = 0; x < target.w; ++x) {
      // Bilinear sample the (normalized) feature map.
      const float fsx = (static_cast<float>(x) + 0.5F) * sx - 0.5F;
      const float fsy = (static_cast<float>(y) + 0.5F) * sy - 0.5F;
      const int x0 = std::clamp(static_cast<int>(std::floor(fsx)), 0,
                                shape.w - 1);
      const int y0 = std::clamp(static_cast<int>(std::floor(fsy)), 0,
                                shape.h - 1);
      const int x1 = std::min(x0 + 1, shape.w - 1);
      const int y1 = std::min(y0 + 1, shape.h - 1);
      const float fx = std::clamp(fsx - static_cast<float>(x0), 0.0F, 1.0F);
      const float fy = std::clamp(fsy - static_cast<float>(y0), 0.0F, 1.0F);
      const auto at = [&](int yy, int xx) {
        return (map[static_cast<std::size_t>(yy) * shape.w + xx] - lo) / range;
      };
      const float v = at(y0, x0) * (1 - fx) * (1 - fy) +
                      at(y0, x1) * fx * (1 - fy) +
                      at(y1, x0) * (1 - fx) * fy + at(y1, x1) * fx * fy;
      for (int c = 0; c < target.c; ++c) out.At(c, y, x) = v;
    }
  }
  return out;
}

ExposureReport AssessExposure(nn::Network& gen_net, nn::Network& val_net,
                              const std::vector<nn::Image>& probes) {
  CALTRAIN_REQUIRE(!probes.empty(), "need at least one probe image");
  const nn::Shape input_shape = val_net.input_shape();

  ExposureReport report;
  double baseline_sum = 0.0;
  std::vector<std::vector<double>> kl_samples;  // per assessed layer

  // Identify the spatial layers of the generator once.
  std::vector<int> spatial_layers;
  for (int i = 0; i < gen_net.NumLayers(); ++i) {
    const nn::Shape s = gen_net.layer(i).out_shape();
    if (s.w > 1 && s.h > 1) spatial_layers.push_back(i);
  }
  report.layers.resize(spatial_layers.size());
  kl_samples.resize(spatial_layers.size());
  for (std::size_t li = 0; li < spatial_layers.size(); ++li) {
    report.layers[li].layer = spatial_layers[li] + 1;  // 1-based like Fig. 5
    report.layers[li].min_kl = std::numeric_limits<double>::infinity();
    report.layers[li].max_kl = -std::numeric_limits<double>::infinity();
  }

  const auto uniform = UniformDistribution(
      static_cast<std::size_t>(val_net.NumClasses()));

  for (const nn::Image& probe : probes) {
    const std::vector<float> reference = val_net.PredictOne(probe);
    baseline_sum += KlDivergence(reference, uniform);

    const auto activations = gen_net.AllActivations(probe);
    for (std::size_t li = 0; li < spatial_layers.size(); ++li) {
      const int layer = spatial_layers[li];
      const nn::Shape shape = gen_net.layer(layer).out_shape();
      LayerExposure& exposure = report.layers[li];
      for (int channel = 0; channel < shape.c; ++channel) {
        const nn::Image ir = ProjectIrToImage(
            activations[static_cast<std::size_t>(layer)], shape, channel,
            input_shape);
        const std::vector<float> ir_pred = val_net.PredictOne(ir);
        const double kl = KlDivergence(reference, ir_pred);
        exposure.min_kl = std::min(exposure.min_kl, kl);
        exposure.max_kl = std::max(exposure.max_kl, kl);
        exposure.mean_kl += kl;
        kl_samples[li].push_back(kl);
        ++exposure.maps;
      }
    }
  }

  for (std::size_t li = 0; li < report.layers.size(); ++li) {
    LayerExposure& exposure = report.layers[li];
    if (exposure.maps > 0) {
      exposure.mean_kl /= static_cast<double>(exposure.maps);
      std::vector<double>& samples = kl_samples[li];
      std::sort(samples.begin(), samples.end());
      exposure.p10_kl = samples[samples.size() / 10];
    }
  }
  report.uniform_baseline =
      baseline_sum / static_cast<double>(probes.size());
  return report;
}

int RecommendFrontNetLayers(const ExposureReport& report,
                            LeakStatistic statistic) {
  CALTRAIN_REQUIRE(!report.layers.empty(), "empty exposure report");
  // Walk from the deepest assessed layer backwards; the boundary sits
  // just after the last layer whose IRs still leak (leak statistic
  // below the uniform baseline).
  int last_leaky_layer = 0;
  for (const LayerExposure& exposure : report.layers) {
    const double leak = statistic == LeakStatistic::kMin ? exposure.min_kl
                                                         : exposure.p10_kl;
    if (leak < report.uniform_baseline) {
      last_leaky_layer = exposure.layer;
    }
  }
  // Enclose everything up to and including the first non-leaky layer
  // after the last leaky one (the paper encloses layer 4, the max-pool
  // after the three leaky convs).
  const int recommended = last_leaky_layer + 1;
  return std::min<int>(recommended,
                       report.layers.back().layer);
}

}  // namespace caltrain::assess
